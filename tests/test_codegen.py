"""Conformance suite for the emitted-source codegen backend.

Three layers of guarantees:

* **golden sources** — the exact text :func:`repro.machine.codegen.
  emitted_source` produces for canonical star/box kernels is committed
  under ``tests/goldens/`` and compared byte-for-byte.  Any change to
  the emission pipeline shows up as a readable source diff; rerun with
  ``pytest --regen-goldens`` to bless an intended change.
* **emission units** — the index-precomputation split (zero-copy strided
  views vs hoisted gather constants) and arithmetic folding (single-use
  FMA chains inlined into one expression) hold on purpose-built
  programs, with results checked bitwise against the interpreter.
* **fallback taxonomy** — every :class:`CodegenFallback` reason
  (``compile`` | ``layout`` | ``memory`` | ``recurrence`` | ``mem_hook``)
  fires where documented, deferred stores keep failed attempts
  side-effect free, and the driver degrades codegen -> batch -> interp
  with the per-engine reason counters.
"""

from __future__ import annotations

import os
import re

import numpy as np
import pytest

from repro import obs
from repro.config import GENERIC_AVX2
from repro.errors import VectorizeError
from repro.machine import codegen as codegen_mod
from repro.machine.codegen import (
    CodegenFallback,
    CodegenProgram,
    emitted_source,
    get_codegen,
)
from repro.machine.isa import Affine
from repro.machine.machine import SimdMachine
from repro.schemes import generate, scheme_halo
from repro.stencils import library
from repro.stencils.grid import Grid
from repro.vectorize.driver import run_program
from repro.vectorize.program import Loop, ProgramBuilder

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

#: kernel name -> committed golden file for the jigsaw/AVX2 lowering on
#: a fixed 8x32 interior (the source depends only on program + shapes)
GOLDEN_CASES = {
    "star-2d9p": "codegen_star2d9p_jigsaw_avx2.txt",
    "box-2d9p": "codegen_box2d9p_jigsaw_avx2.txt",
}

GOLDEN_SHAPE = (8, 32)


def _jigsaw_case(kernel_name, shape=GOLDEN_SHAPE, seed=7):
    spec = library.get(kernel_name)
    halo = scheme_halo("jigsaw", spec, GENERIC_AVX2)
    grid = Grid.random(shape, halo, seed=seed)
    prog = generate("jigsaw", spec, GENERIC_AVX2, grid)
    return prog, grid


def _golden_source(kernel_name):
    prog, grid = _jigsaw_case(kernel_name)
    arrays = {prog.input_array: grid.data,
              prog.output_array: grid.like().data}
    return emitted_source(prog, arrays)


def _run_both(prog, arrays_factory):
    """(interpreter arrays, codegen arrays) after one sweep each."""
    a1 = arrays_factory()
    a2 = arrays_factory()
    SimdMachine(prog.width, elem_bytes=prog.elem_bytes).run(prog, a1)
    CodegenProgram(prog).run(a2)
    return a1, a2


# ---------------------------------------------------------------------------
# golden sources
# ---------------------------------------------------------------------------

class TestGoldenSources:
    @pytest.mark.parametrize("kernel", sorted(GOLDEN_CASES))
    def test_emitted_source_matches_golden(self, kernel, request):
        src = _golden_source(kernel)
        path = os.path.join(GOLDEN_DIR, GOLDEN_CASES[kernel])
        if request.config.getoption("--regen-goldens"):
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(src)
        with open(path, "r", encoding="utf-8") as fh:
            expected = fh.read()
        assert src == expected, (
            f"emitted source for {kernel!r} drifted from the committed "
            f"golden ({path}); if the emission change is intended, rerun "
            f"with --regen-goldens and review the diff")

    def test_emitted_source_is_deterministic(self):
        assert _golden_source("star-2d9p") == _golden_source("star-2d9p")

    def test_specialization_is_per_shape(self):
        """A different grid shape re-specializes; the original entry
        stays cached (source text differs in its hoisted geometry)."""
        prog, grid = _jigsaw_case("star-2d9p")
        cg = CodegenProgram(prog)
        arrays = {prog.input_array: grid.data,
                  prog.output_array: grid.like().data}
        first = cg.specialize(arrays)
        assert cg.specialize(arrays) is first


# ---------------------------------------------------------------------------
# emission units
# ---------------------------------------------------------------------------

class TestEmissionUnits:
    def test_forward_strides_become_views(self):
        """Non-negative lattice strides lower loads to zero-copy
        ``_as_strided`` views — no index constants materialized."""
        src = _golden_source("star-2d9p")
        assert "_as_view(" in src

    def test_negative_stride_becomes_gather(self):
        """A reversed x walk (negative row stride) cannot be a view; the
        load must gather through a hoisted int64 index constant."""
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("x", coeff=-1, const=12)))
        b.store(v, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="rev", scheme="t",
                       loops=[Loop("x", 0, 16, 4)], vectors_per_iter=1)
        arrays = {"a": np.arange(16.0), "out": np.zeros(16)}
        src = emitted_source(prog, arrays)
        assert re.search(r"_a\d+\[_K\d+\]", src), src

        def factory():
            return {"a": np.arange(16.0) ** 2, "out": np.zeros(16)}
        a1, a2 = _run_both(prog, factory)
        assert np.array_equal(a2["out"], a1["out"])

    def test_fma_chain_folds_into_one_expression(self):
        """Single-use FMA results are inlined into their consumer: the
        whole chain becomes one ``a*b + (c*d + ...)`` expression instead
        of one temporary per instruction."""
        b = ProgramBuilder(4)
        v0 = b.load(b.mem(Affine.var("x")))
        v1 = b.load(b.mem(Affine.var("x", const=1)))
        c = b.broadcast(3.0)
        z = b.setzero()
        f1 = b.fma(c, v0, z)
        f2 = b.fma(c, v1, f1)
        b.store(f2, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="fold", scheme="t",
                       loops=[Loop("x", 0, 16, 4)], vectors_per_iter=1)
        arrays = {"a": np.arange(20.0), "out": np.zeros(16)}
        src = emitted_source(prog, arrays)
        folded = [ln for ln in src.splitlines()
                  if ln.count(" * ") == 2 and " + (" in ln]
        assert folded, f"no folded FMA chain in emitted source:\n{src}"

        def factory():
            return {"a": np.linspace(0.0, 2.0, 20), "out": np.zeros(16)}
        a1, a2 = _run_both(prog, factory)
        assert np.array_equal(a2["out"], a1["out"])

    def test_multi_use_value_is_materialized_once(self):
        """A value consumed twice must bind to one ``_v`` variable, not
        be re-evaluated per use."""
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("x")))
        s = b.add(v, v)
        r = b.mul(s, s)
        b.store(r, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="reuse", scheme="t",
                       loops=[Loop("x", 0, 16, 4)], vectors_per_iter=1)
        arrays = {"a": np.arange(16.0), "out": np.zeros(16)}
        src = emitted_source(prog, arrays)
        # the doubly-used sum binds to one variable, evaluated once;
        # its consumer squares the variable, not the re-inlined sum
        assert src.count("(_v0 + _v0)") == 1, src
        assert re.search(r"\(_v\d+ \* _v\d+\)", src), src

        def factory():
            return {"a": np.arange(16.0), "out": np.zeros(16)}
        a1, a2 = _run_both(prog, factory)
        assert np.array_equal(a2["out"], a1["out"])

    def test_get_codegen_is_memoized(self):
        prog, _ = _jigsaw_case("star-2d9p")
        assert get_codegen(prog) is get_codegen(prog)


# ---------------------------------------------------------------------------
# fallback taxonomy
# ---------------------------------------------------------------------------

def _scan_program():
    """A prefix-sum over x — a true loop-carried recurrence no amount
    of peeling resolves."""
    b = ProgramBuilder(4)
    b.in_prologue()
    z = b.setzero()
    b.mov_to("acc", z)
    b.in_body()
    v = b.load(b.mem(Affine.var("x")))
    b.add(v, "acc", dst="acc")
    b.store("acc", b.mem(Affine.var("x"), array="out"))
    return b.build(name="scan", scheme="t", loops=[Loop("x", 0, 16, 4)],
                   vectors_per_iter=1)


def _copy_program():
    b = ProgramBuilder(4)
    v = b.load(b.mem(Affine.var("x")))
    b.store(v, b.mem(Affine.var("x"), array="out"))
    return b.build(name="copy", scheme="t", loops=[Loop("x", 0, 16, 4)],
                   vectors_per_iter=1)


class TestFallbackTaxonomy:
    def test_recurrence_raises_with_untouched_output(self):
        prog = _scan_program()
        arrays = {"a": np.arange(16.0), "out": np.zeros(16)}
        with pytest.raises(CodegenFallback) as ei:
            CodegenProgram(prog).run(arrays)
        assert ei.value.reason == "recurrence"
        # deferred stores: the failed attempt must not have scribbled
        assert np.array_equal(arrays["out"], np.zeros(16))

    def test_dtype_mismatch_is_layout_fallback(self):
        arrays = {"a": np.arange(16, dtype=np.float32),
                  "out": np.zeros(16, dtype=np.float32)}
        with pytest.raises(CodegenFallback) as ei:
            CodegenProgram(_copy_program()).run(arrays)
        assert ei.value.reason == "layout"

    def test_noncontiguous_array_is_layout_fallback(self):
        arrays = {"a": np.arange(32.0)[::2], "out": np.zeros(16)}
        with pytest.raises(CodegenFallback) as ei:
            CodegenProgram(_copy_program()).run(arrays)
        assert ei.value.reason == "layout"

    def test_index_budget_is_memory_fallback(self, monkeypatch):
        monkeypatch.setattr(codegen_mod, "MEMORY_GUARD", 0)
        arrays = {"a": np.arange(16.0), "out": np.zeros(16)}
        with pytest.raises(CodegenFallback) as ei:
            CodegenProgram(_copy_program()).run(arrays)
        assert ei.value.reason == "memory"

    def test_prologue_store_is_compile_fallback(self):
        b = ProgramBuilder(4)
        b.in_prologue()
        v = b.load(b.mem(Affine.of(0)))
        b.store(v, b.mem(Affine.of(0), array="out"))
        b.in_body()
        w = b.load(b.mem(Affine.var("x")))
        b.store(w, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="ps", scheme="t", loops=[Loop("x", 0, 16, 4)],
                       vectors_per_iter=1)
        with pytest.raises(CodegenFallback) as ei:
            CodegenProgram(prog)
        assert ei.value.reason == "compile"

    def test_inplace_aliasing_is_compile_fallback(self):
        """Loading and storing the same array would reorder reads past
        writes once flattened; codegen must refuse."""
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("x")))
        b.store(v, b.mem(Affine.var("x", const=4)))
        prog = b.build(name="alias", scheme="t",
                       loops=[Loop("x", 0, 16, 4)], vectors_per_iter=1)
        with pytest.raises(CodegenFallback) as ei:
            CodegenProgram(prog)
        assert ei.value.reason == "compile"


@pytest.fixture()
def observing():
    was = obs.enabled()
    obs.enable(reset=True)
    try:
        yield
    finally:
        if not was:
            obs.disable()


class TestDriverDegradation:
    def test_unknown_backend_rejected(self):
        prog, grid = _jigsaw_case("star-2d9p")
        with pytest.raises(VectorizeError):
            run_program(prog, grid, prog.steps_per_iter, backend="vliw")

    def test_recurrence_walks_the_full_ladder(self, observing):
        """codegen (recurrence) -> batch (recurrence) -> interp, with one
        reason counter per degraded engine and interp-identical output."""
        prog = _scan_program()
        grid = Grid.random((16,), 0, seed=1)
        expect = run_program(prog, grid, 1, backend="interp")
        got = run_program(prog, grid, 1, backend="codegen")
        assert np.array_equal(got.data, expect.data)
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["exec.codegen_fallback.reason.recurrence"] == 1
        assert counters["exec.batch_fallback.reason.recurrence"] == 1

    def test_mem_hook_forces_interp(self, observing):
        """A per-access hook needs the interpreter's ordered accesses;
        the codegen engine must bow out before the first sweep."""
        prog, grid = _jigsaw_case("star-2d9p")
        expect = run_program(prog, grid, prog.steps_per_iter,
                             backend="interp")
        hits = []
        got = run_program(prog, grid, prog.steps_per_iter,
                          backend="codegen",
                          mem_hook=lambda *a, **k: hits.append(a))
        assert np.array_equal(got.data, expect.data)
        assert hits, "mem_hook never fired — interp did not run"
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["exec.codegen_fallback.reason.mem_hook"] == 1

    def test_codegen_backend_matches_interp_on_jigsaw(self):
        prog, grid = _jigsaw_case("star-2d9p", seed=11)
        steps = 2 * prog.steps_per_iter
        a = run_program(prog, grid, steps, backend="interp")
        b = run_program(prog, grid, steps, backend="codegen")
        assert np.array_equal(a.data, b.data)


# ---------------------------------------------------------------------------
# interpreter-parity error paths and store-commit modes
# ---------------------------------------------------------------------------

from repro.errors import IsaError, MachineError  # noqa: E402
from repro.machine.isa import Instr, Op  # noqa: E402


class TestErrorPathParity:
    def test_store_of_undefined_register(self):
        b = ProgramBuilder(4)
        b.store("ghost", b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="sg", scheme="t", loops=[Loop("x", 0, 16, 4)],
                       vectors_per_iter=1)
        with pytest.raises(MachineError):
            CodegenProgram(prog)

    def test_read_of_undefined_register(self):
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("x")))
        b.emit(Instr(Op.ADD, dst="d", srcs=(v, "ghost")))
        b.store("d", b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="rg", scheme="t", loops=[Loop("x", 0, 16, 4)],
                       vectors_per_iter=1)
        with pytest.raises(IsaError):
            CodegenProgram(prog)

    def test_undefined_carry_is_deferred_to_run(self):
        """A register read before its first body definition with no
        prologue seed faults on the interpreter's first read; codegen
        must surface the same error at run time, not read zeros."""
        b = ProgramBuilder(4)
        b.in_body()
        b.store("w", b.mem(Affine.var("x"), array="out"))
        b.load_to("w", b.mem(Affine.var("x")))
        prog = b.build(name="uc", scheme="t", loops=[Loop("x", 0, 16, 4)],
                       vectors_per_iter=1)
        cg = CodegenProgram(prog)
        with pytest.raises(IsaError):
            cg.run({"a": np.arange(16.0), "out": np.zeros(16)})

    def test_unknown_array_in_specialize(self):
        cg = CodegenProgram(_copy_program())
        with pytest.raises(MachineError):
            cg.specialize({"a": np.arange(16.0)})

    def test_unbound_loop_variable(self):
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("z")))
        b.store(v, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="ub", scheme="t", loops=[Loop("x", 0, 16, 4)],
                       vectors_per_iter=1)
        with pytest.raises(IsaError):
            CodegenProgram(prog).specialize(
                {"a": np.arange(16.0), "out": np.zeros(16)})

    def test_rank_mismatch(self):
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("y"), Affine.var("x")))
        b.store(v, b.mem(Affine.var("y"), Affine.var("x"), array="out"))
        prog = b.build(name="rk", scheme="t",
                       loops=[Loop("y", 0, 2, 1), Loop("x", 0, 8, 4)],
                       vectors_per_iter=1)
        with pytest.raises(MachineError):
            CodegenProgram(prog).specialize(
                {"a": np.arange(16.0), "out": np.zeros(16)})

    def test_outer_axis_out_of_bounds(self):
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("y", const=3), Affine.var("x")))
        b.store(v, b.mem(Affine.var("y"), Affine.var("x"), array="out"))
        prog = b.build(name="ob", scheme="t",
                       loops=[Loop("y", 0, 2, 1), Loop("x", 0, 8, 4)],
                       vectors_per_iter=1)
        arrays = {"a": np.zeros((2, 8)), "out": np.zeros((2, 8))}
        with pytest.raises(MachineError) as ei:
            CodegenProgram(prog).specialize(arrays)
        assert "out of bounds" in str(ei.value)

    def test_x_range_out_of_bounds(self):
        arrays = {"a": np.arange(8.0), "out": np.zeros(16)}
        with pytest.raises(MachineError) as ei:
            CodegenProgram(_copy_program()).specialize(arrays)
        assert "out of bounds" in str(ei.value)

    def test_x_dependent_outer_axis_is_compile_fallback(self):
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("x"), Affine.var("x")))
        b.store(v, b.mem(Affine.var("y"), Affine.var("x"), array="out"))
        prog = b.build(name="xd", scheme="t",
                       loops=[Loop("y", 0, 2, 1), Loop("x", 0, 8, 4)],
                       vectors_per_iter=1)
        with pytest.raises(CodegenFallback) as ei:
            CodegenProgram(prog)
        assert ei.value.reason == "compile"


class TestStoreCommitModes:
    def test_overlapping_rows_use_ordered_rowloop(self):
        """x rows two apart with width 4 overlap; the commit must replay
        the interpreter's in-order row writes."""
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("x")))
        two = b.broadcast(2.0)
        r = b.mul(two, v)
        b.store(r, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="ovr", scheme="t",
                       loops=[Loop("x", 0, 14, 2)], vectors_per_iter=1)
        arrays = {"a": np.arange(20.0), "out": np.zeros(20)}
        src = emitted_source(prog, arrays)
        assert "for _t in range(" in src, src

        def factory():
            return {"a": np.arange(20.0) ** 2, "out": np.zeros(20)}
        a1, a2 = _run_both(prog, factory)
        assert np.array_equal(a2["out"], a1["out"])

    def test_overlapping_envs_use_ordered_elemloop(self):
        """When even the per-env row spans interleave, the commit drops
        to the fully ordered element loop (env-major, the interpreter's
        order)."""
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.of(0, x=1, y=2)))
        b.store(v, b.mem(Affine.of(0, x=1, y=2), array="out"))
        prog = b.build(name="ove", scheme="t",
                       loops=[Loop("y", 0, 2, 1), Loop("x", 0, 8, 4)],
                       vectors_per_iter=1)
        arrays = {"a": np.arange(12.0), "out": np.zeros(12)}
        src = emitted_source(prog, arrays)
        assert "for _j in range(" in src, src

        def factory():
            return {"a": np.arange(12.0) * 1.5, "out": np.zeros(12)}
        a1, a2 = _run_both(prog, factory)
        assert np.array_equal(a2["out"], a1["out"])

    def test_interleaved_double_store_is_layout_fallback(self):
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("x")))
        b.store(v, b.mem(Affine.var("x"), array="out"))
        b.store(v, b.mem(Affine.var("x", const=2), array="out"))
        prog = b.build(name="dbl", scheme="t",
                       loops=[Loop("x", 0, 16, 4)], vectors_per_iter=1)
        arrays = {"a": np.arange(24.0), "out": np.zeros(24)}
        with pytest.raises(CodegenFallback) as ei:
            CodegenProgram(prog).specialize(arrays)
        assert ei.value.reason == "layout"


class TestShuffleEmission:
    def test_single_source_shuffle_is_one_gather(self):
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("x")))
        s = b.shufpd(v, v, 0b0101)
        b.store(s, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="sh1", scheme="t",
                       loops=[Loop("x", 0, 16, 4)], vectors_per_iter=1)
        arrays = {"a": np.arange(16.0), "out": np.zeros(16)}
        src = emitted_source(prog, arrays)
        assert re.search(r"_v\d+\[\.\.\., _K\d+\]", src), src

        def factory():
            return {"a": np.arange(16.0) + 0.5, "out": np.zeros(16)}
        a1, a2 = _run_both(prog, factory)
        assert np.array_equal(a2["out"], a1["out"])

    def test_lane_zeroing_shuffle(self):
        """vperm2f128's zero bit (a ``None`` selector) must emit the
        explicit zero-column fill."""
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("x")))
        z = b.lane_concat(v, v, (None, 0))
        b.store(z, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="shz", scheme="t",
                       loops=[Loop("x", 0, 16, 4)], vectors_per_iter=1)
        arrays = {"a": np.arange(16.0), "out": np.zeros(16)}
        src = emitted_source(prog, arrays)
        assert "= 0.0" in src, src

        def factory():
            return {"a": np.arange(16.0) + 1.0, "out": np.ones(16)}
        a1, a2 = _run_both(prog, factory)
        assert np.array_equal(a2["out"], a1["out"])

    def test_shuffle_of_broadcast_constant(self):
        b = ProgramBuilder(4)
        c = b.broadcast(2.5)
        v = b.load(b.mem(Affine.var("x")))
        s = b.shufpd(c, c, 0)
        r = b.mul(s, v)
        b.store(r, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="shc", scheme="t",
                       loops=[Loop("x", 0, 16, 4)], vectors_per_iter=1)

        def factory():
            return {"a": np.arange(16.0), "out": np.zeros(16)}
        a1, a2 = _run_both(prog, factory)
        assert np.array_equal(a2["out"], a1["out"])

    def test_sub_op(self):
        b = ProgramBuilder(4)
        v0 = b.load(b.mem(Affine.var("x")))
        v1 = b.load(b.mem(Affine.var("x", const=1)))
        b.emit(Instr(Op.SUB, dst="d", srcs=(v1, v0)))
        b.store("d", b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="sub", scheme="t",
                       loops=[Loop("x", 0, 16, 4)], vectors_per_iter=1)

        def factory():
            return {"a": np.arange(20.0) ** 2, "out": np.zeros(16)}
        a1, a2 = _run_both(prog, factory)
        assert np.array_equal(a2["out"], a1["out"])
