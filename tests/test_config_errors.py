"""Tests for machine configs and the exception hierarchy."""

import pytest

from repro import errors
from repro.config import (
    AMD_EPYC_7V13,
    GENERIC_AVX2,
    GENERIC_AVX512,
    GENERIC_SSE,
    INTEL_XEON_6230R,
    PAPER_MACHINES,
    CacheLevel,
    MachineConfig,
    get_machine,
    register_machine,
)
from repro.errors import ModelError


class TestMachineConfig:
    def test_simd_geometry(self):
        assert GENERIC_SSE.vector_elems == 2 and GENERIC_SSE.lanes == 1
        assert GENERIC_AVX2.vector_elems == 4 and GENERIC_AVX2.lanes == 2
        assert GENERIC_AVX512.vector_elems == 8 and GENERIC_AVX512.lanes == 4
        assert GENERIC_AVX2.elems_per_lane == 2
        assert GENERIC_AVX2.vector_bytes == 32

    def test_paper_machines_match_section41(self):
        amd, intel = PAPER_MACHINES
        assert amd.name == "amd-epyc-7v13"
        assert amd.freq_ghz == 2.45 and amd.total_cores == 24
        assert intel.freq_ghz == 2.10 and intel.total_cores == 52
        assert intel.sockets == 2
        assert amd.isa == intel.isa == "avx2"

    def test_cache_sizes_match_section41(self):
        assert INTEL_XEON_6230R.caches[0].size_bytes == 32 * 1024
        assert INTEL_XEON_6230R.caches[1].size_bytes == 1024 * 1024
        assert INTEL_XEON_6230R.caches[2].size_bytes == int(35.75 * 2**20)
        assert AMD_EPYC_7V13.caches[2].size_bytes == 96 * 2**20

    def test_with_vector_bits(self):
        avx512 = AMD_EPYC_7V13.with_vector_bits(512)
        assert avx512.vector_elems == 8
        assert avx512.freq_ghz == AMD_EPYC_7V13.freq_ghz

    def test_total_dram_bandwidth_by_sockets(self):
        assert INTEL_XEON_6230R.total_dram_bandwidth(1) == \
            INTEL_XEON_6230R.dram_bandwidth_gbs
        assert INTEL_XEON_6230R.total_dram_bandwidth(52) == \
            2 * INTEL_XEON_6230R.dram_bandwidth_gbs

    def test_validation(self):
        with pytest.raises(ModelError):
            MachineConfig(name="x", isa="avx2", freq_ghz=2.0,
                          vector_bits=200, cores_per_socket=1, sockets=1)
        with pytest.raises(ModelError):
            MachineConfig(name="x", isa="avx2", freq_ghz=0,
                          vector_bits=256, cores_per_socket=1, sockets=1)
        with pytest.raises(ModelError):
            CacheLevel("L1", 0, 100.0)
        with pytest.raises(ModelError):
            CacheLevel("L1", 1024, 0.0)

    def test_cache_aggregate_bandwidth(self):
        lvl = CacheLevel("L3", 1024, 10.0, shared=True,
                         total_bandwidth_gbs=50.0)
        assert lvl.aggregate_bandwidth(3) == 30.0
        assert lvl.aggregate_bandwidth(10) == 50.0


class TestRegistry:
    def test_lookup(self):
        assert get_machine("amd-epyc-7v13") is AMD_EPYC_7V13

    def test_unknown(self):
        with pytest.raises(ModelError):
            get_machine("cray-1")

    def test_register_custom(self):
        custom = MachineConfig(
            name="test-custom", isa="avx2", freq_ghz=1.0, vector_bits=256,
            cores_per_socket=2, sockets=1,
            caches=(CacheLevel("L1", 1024, 10.0),),
        )
        register_machine(custom)
        assert get_machine("test-custom") is custom
        with pytest.raises(ModelError):
            register_machine(custom)
        register_machine(custom, overwrite=True)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.SpecError, errors.GridError, errors.IsaError,
        errors.MachineError, errors.VectorizeError, errors.PlanError,
        errors.TilingError, errors.ModelError, errors.ExperimentError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.SpecError("x")
