"""Tests for the scheme registry."""

import numpy as np
import pytest

from repro.config import GENERIC_AVX2
from repro.errors import VectorizeError
from repro.schemes import (
    LABELS,
    SCHEMES,
    generate,
    model_cost,
    model_grid,
    model_program,
    scheme_block,
    scheme_halo,
)
from repro.stencils import apply_steps, library
from repro.vectorize.driver import run_program


def test_all_schemes_labelled():
    assert set(LABELS) == set(SCHEMES)


@pytest.mark.parametrize("scheme", [s for s in SCHEMES if s != "t4-jigsaw"])
@pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d", "box-2d9p"])
def test_registry_lowers_and_validates(scheme, kernel):
    spec = library.get(kernel)
    grid = model_grid(scheme, spec, GENERIC_AVX2, seed=1)
    prog = generate(scheme, spec, GENERIC_AVX2, grid)
    steps = prog.steps_per_iter
    got = run_program(prog, grid, steps)
    ref = apply_steps(spec, grid, steps)
    assert np.allclose(got.interior, ref.interior, rtol=1e-12, atol=1e-14)


def test_t4_jigsaw_1d_only():
    spec = library.get("heat-1d")
    grid = model_grid("t4-jigsaw", spec, GENERIC_AVX2, seed=1)
    prog = generate("t4-jigsaw", spec, GENERIC_AVX2, grid)
    assert prog.steps_per_iter == 4
    with pytest.raises(VectorizeError):
        model_program("t4-jigsaw", library.get("heat-2d"), GENERIC_AVX2)


def test_unknown_scheme_rejected():
    with pytest.raises(VectorizeError):
        generate("nope", library.get("heat-1d"), GENERIC_AVX2,
                 model_grid("auto", library.get("heat-1d"), GENERIC_AVX2))


def test_scheme_blocks():
    assert scheme_block("auto", GENERIC_AVX2) == 4
    assert scheme_block("folding", GENERIC_AVX2) == 16
    assert scheme_block("jigsaw", GENERIC_AVX2) == 8


def test_scheme_halos_cover_radius():
    spec = library.get("star-2d9p")
    for scheme in ("auto", "reorg", "folding", "jigsaw", "t-jigsaw"):
        halo = scheme_halo(scheme, spec, GENERIC_AVX2)
        assert halo[0] >= 2


def test_model_grid_divisible():
    for scheme in ("auto", "reorg", "folding", "jigsaw"):
        g = model_grid(scheme, library.get("heat-2d"), GENERIC_AVX2)
        assert g.shape[-1] % scheme_block(scheme, GENERIC_AVX2) == 0


def test_model_cost_fields():
    cost = model_cost("t-jigsaw", library.get("heat-1d"), GENERIC_AVX2)
    assert cost.steps_per_iter == 2
    assert cost.scheme == "t-jigsaw"
    assert cost.cycles_per_iter > 0


# -- instruction-mix contracts for the new scheme families ------------------
#
# Hand-derived body mixes per output vector per fused step on AVX2/f64
# (W=4, 2 elements per 128-bit lane).
#
# temporal (vertical fusion, depth s): every tap of the s-fold merged
# footprint is one unaligned load, amortized over s steps, and there are
# no shuffles at all:
#   L = |merged footprint| / s, S = 1/s, C = I = 0.
#   heat-1d s=2:   merged {-2..2}                ->  5/2 = 2.5 loads
#   star-1d5p s=2: merged {-4..4}                ->  9/2 = 4.5
#   heat-2d s=2:   merged radius-2 diamond (13)  -> 13/2 = 6.5
#   box-2d9p s=2:  merged 5x5 box (25)           -> 25/2 = 12.5
#   star-2d13p s=1 (radius 3 forbids s=2 at W=4) -> 13 loads, 1 store
#
# redundancy (column-sum hoisting): one aligned load per stencil row, one
# store; each nonzero column offset dx pays exactly one cross-lane
# lane-concat — the odd shifts' even neighbours land on the aligned
# registers (0 or W) — plus one in-lane vshufpd when dx is odd:
#   L = #rows, S = 1, C = #nonzero columns, I = #odd columns.
#   heat-1d:    1 row,  columns {-1,+1}          -> C=2, I=2
#   star-1d5p:  1 row,  columns {-2,-1,+1,+2}    -> C=4, I=2
#   box-2d9p:   3 rows, columns {-1,+1}          -> C=2, I=2
#   star-2d13p: 7 rows, columns {-3..+3}\\{0}     -> C=6, I=4
TEMPORAL_MIXES = {
    "heat-1d": {"L": 2.5, "S": 0.5, "C": 0.0, "I": 0.0},
    "star-1d5p": {"L": 4.5, "S": 0.5, "C": 0.0, "I": 0.0},
    "heat-2d": {"L": 6.5, "S": 0.5, "C": 0.0, "I": 0.0},
    "box-2d9p": {"L": 12.5, "S": 0.5, "C": 0.0, "I": 0.0},
    "star-2d13p": {"L": 13.0, "S": 1.0, "C": 0.0, "I": 0.0},
    "varcoef-2d5p": {"L": 6.5, "S": 0.5, "C": 0.0, "I": 0.0},
}
REDUNDANCY_MIXES = {
    "heat-1d": {"L": 1.0, "S": 1.0, "C": 2.0, "I": 2.0},
    "star-1d5p": {"L": 1.0, "S": 1.0, "C": 4.0, "I": 2.0},
    "heat-2d": {"L": 3.0, "S": 1.0, "C": 2.0, "I": 2.0},
    "box-2d9p": {"L": 3.0, "S": 1.0, "C": 2.0, "I": 2.0},
    "star-2d13p": {"L": 7.0, "S": 1.0, "C": 6.0, "I": 4.0},
    "varcoef-2d5p": {"L": 3.0, "S": 1.0, "C": 2.0, "I": 2.0},
}


@pytest.mark.parametrize("kernel", sorted(TEMPORAL_MIXES))
def test_temporal_mix_contract(kernel):
    prog = model_program("temporal", library.get(kernel), GENERIC_AVX2)
    mix = prog.per_vector_mix()
    for key, want in TEMPORAL_MIXES[kernel].items():
        assert mix[key] == pytest.approx(want), (kernel, key, mix)


@pytest.mark.parametrize("kernel", sorted(REDUNDANCY_MIXES))
def test_redundancy_mix_contract(kernel):
    prog = model_program("redundancy", library.get(kernel), GENERIC_AVX2)
    mix = prog.per_vector_mix()
    for key, want in REDUNDANCY_MIXES[kernel].items():
        assert mix[key] == pytest.approx(want), (kernel, key, mix)


@pytest.mark.parametrize("kernel", sorted(TEMPORAL_MIXES))
def test_analytic_table2_matches_generated_mix(kernel):
    from repro.analysis.instruction_count import (
        analytic_table2_row,
        measured_table2_row,
    )
    spec = library.get(kernel)
    for method in ("temporal", "redundancy"):
        fs = 1 if (method == "temporal" and max(spec.radius) > 2) else 2
        analytic = analytic_table2_row(method, spec, fused_steps=fs)
        measured = measured_table2_row(method, spec, GENERIC_AVX2)
        assert analytic == pytest.approx(measured), (kernel, method)


def test_temporal_fusion_depth_legality():
    from repro.vectorize.temporal import generate_temporal, max_fusion
    spec = library.get("star-2d13p")  # radius 3: W=4 admits depth 1 only
    assert max_fusion(spec, GENERIC_AVX2) == 1
    grid = model_grid("temporal", spec, GENERIC_AVX2)
    with pytest.raises(VectorizeError, match="fusion depth"):
        generate_temporal(spec, GENERIC_AVX2, grid, time_fusion=2)
    assert max_fusion(library.get("heat-1d"), GENERIC_AVX2) == 4
