"""Tests for the scheme registry."""

import numpy as np
import pytest

from repro.config import GENERIC_AVX2
from repro.errors import VectorizeError
from repro.schemes import (
    LABELS,
    SCHEMES,
    generate,
    model_cost,
    model_grid,
    model_program,
    scheme_block,
    scheme_halo,
)
from repro.stencils import apply_steps, library
from repro.vectorize.driver import run_program


def test_all_schemes_labelled():
    assert set(LABELS) == set(SCHEMES)


@pytest.mark.parametrize("scheme", [s for s in SCHEMES if s != "t4-jigsaw"])
@pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d", "box-2d9p"])
def test_registry_lowers_and_validates(scheme, kernel):
    spec = library.get(kernel)
    grid = model_grid(scheme, spec, GENERIC_AVX2, seed=1)
    prog = generate(scheme, spec, GENERIC_AVX2, grid)
    steps = prog.steps_per_iter
    got = run_program(prog, grid, steps)
    ref = apply_steps(spec, grid, steps)
    assert np.allclose(got.interior, ref.interior, rtol=1e-12, atol=1e-14)


def test_t4_jigsaw_1d_only():
    spec = library.get("heat-1d")
    grid = model_grid("t4-jigsaw", spec, GENERIC_AVX2, seed=1)
    prog = generate("t4-jigsaw", spec, GENERIC_AVX2, grid)
    assert prog.steps_per_iter == 4
    with pytest.raises(VectorizeError):
        model_program("t4-jigsaw", library.get("heat-2d"), GENERIC_AVX2)


def test_unknown_scheme_rejected():
    with pytest.raises(VectorizeError):
        generate("nope", library.get("heat-1d"), GENERIC_AVX2,
                 model_grid("auto", library.get("heat-1d"), GENERIC_AVX2))


def test_scheme_blocks():
    assert scheme_block("auto", GENERIC_AVX2) == 4
    assert scheme_block("folding", GENERIC_AVX2) == 16
    assert scheme_block("jigsaw", GENERIC_AVX2) == 8


def test_scheme_halos_cover_radius():
    spec = library.get("star-2d9p")
    for scheme in ("auto", "reorg", "folding", "jigsaw", "t-jigsaw"):
        halo = scheme_halo(scheme, spec, GENERIC_AVX2)
        assert halo[0] >= 2


def test_model_grid_divisible():
    for scheme in ("auto", "reorg", "folding", "jigsaw"):
        g = model_grid(scheme, library.get("heat-2d"), GENERIC_AVX2)
        assert g.shape[-1] % scheme_block(scheme, GENERIC_AVX2) == 0


def test_model_cost_fields():
    cost = model_cost("t-jigsaw", library.get("heat-1d"), GENERIC_AVX2)
    assert cost.steps_per_iter == 2
    assert cost.scheme == "t-jigsaw"
    assert cost.cycles_per_iter > 0
