"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# make sibling helper modules (and this conftest) importable from tests
sys.path.insert(0, os.path.dirname(__file__))

from repro.config import (
    AMD_EPYC_7V13,
    GENERIC_AVX2,
    GENERIC_AVX512,
    GENERIC_SSE,
    INTEL_XEON_6230R,
)
from repro.stencils import library
from repro.stencils.grid import Grid

from _helpers import KERNELS, SIM_KERNELS, random_grid, small_shape  # noqa: F401,E402


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens", action="store_true", default=False,
        help="rewrite the committed golden emitted-source snapshots "
             "(tests/goldens/) from the current codegen output instead "
             "of comparing against them")


@pytest.fixture
def avx2():
    return GENERIC_AVX2


@pytest.fixture
def sse():
    return GENERIC_SSE


@pytest.fixture
def avx512():
    return GENERIC_AVX512


@pytest.fixture
def amd():
    return AMD_EPYC_7V13


@pytest.fixture
def intel():
    return INTEL_XEON_6230R


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


