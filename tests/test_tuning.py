"""Tests for the model-driven autotuner."""

import pytest

from repro.config import AMD_EPYC_7V13
from repro.errors import ModelError
from repro.stencils import library
from repro.tuning import (
    TuneResult,
    autotune,
    candidate_depths,
    candidate_tiles,
)


class TestCandidates:
    def test_tiles_cover_axes(self):
        tiles = candidate_tiles((256, 1024))
        assert all(len(t) == 2 for t in tiles)
        assert (256, 1024) in tiles  # the untiled option
        assert all(t[0] <= 256 and t[1] <= 1024 for t in tiles)

    def test_depths_respect_tessellation_bound(self):
        spec = library.get("star-2d9p")  # r=2
        depths = candidate_depths(spec, (64, 64))
        assert depths[0] == 1
        assert max(depths) == 64 // 4
        assert all(2 * 2 * d <= 64 for d in depths)

    def test_depths_for_radius3(self):
        spec = library.get("star-1d7p")
        assert max(candidate_depths(spec, (60,))) == 10


class TestAutotune:
    @pytest.fixture(scope="class")
    def tuned(self):
        return autotune(library.get("box-2d9p"), AMD_EPYC_7V13,
                        problem_size=(2048, 2048), steps=100)

    def test_returns_ranked_candidates(self, tuned: TuneResult):
        gs = [c.gstencil_s for c in tuned.ranking]
        assert gs == sorted(gs, reverse=True)
        assert tuned.best is tuned.ranking[0]
        assert tuned.evaluated > 10

    def test_best_beats_untiled(self, tuned: TuneResult):
        untiled = next(c for c in tuned.ranking
                       if c.tile_shape == (2048, 2048) and c.time_depth == 1)
        assert tuned.best.gstencil_s >= untiled.gstencil_s

    def test_best_uses_time_tiling(self, tuned: TuneResult):
        # memory-bound stencils want temporal reuse
        assert tuned.best.time_depth > 1

    def test_summary_text(self, tuned: TuneResult):
        text = tuned.summary()
        assert "GStencil/s" in text and "Tb=" in text

    def test_infeasible_schemes_skipped(self):
        # t4-jigsaw cannot lower 2-D kernels; the tuner must survive
        result = autotune(library.get("heat-2d"), AMD_EPYC_7V13,
                          problem_size=(512, 512), steps=10,
                          schemes=("jigsaw", "t4-jigsaw"))
        assert all(c.scheme == "jigsaw" for c in result.ranking)

    def test_all_schemes_infeasible_raises(self):
        with pytest.raises(ModelError):
            autotune(library.get("heat-2d"), AMD_EPYC_7V13,
                     problem_size=(512, 512), steps=10,
                     schemes=("t4-jigsaw",))

    def test_validation(self):
        with pytest.raises(ModelError):
            autotune(library.get("heat-2d"), AMD_EPYC_7V13,
                     problem_size=(512,), steps=10)
        with pytest.raises(ModelError):
            autotune(library.get("heat-2d"), AMD_EPYC_7V13,
                     problem_size=(512, 512), steps=0)

    def test_top_truncates(self):
        result = autotune(library.get("heat-1d"), AMD_EPYC_7V13,
                          problem_size=(1 << 16,), steps=10, top=3)
        assert result.evaluated == 3

    def test_explicit_tiles(self):
        result = autotune(library.get("heat-1d"), AMD_EPYC_7V13,
                          problem_size=(1 << 16,), steps=10,
                          tiles=[(2048,)])
        assert all(c.tile_shape == (2048,) for c in result.ranking)
