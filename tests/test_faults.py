"""Tests for the fault-injection framework (:mod:`repro.faults`) and the
hardening it drove into the cache/service/parallel layers: every
injected failure must be recovered bitwise-identically or surfaced
loudly, never silently corrupted."""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro import faults, obs
from repro.config import GENERIC_AVX2
from repro.core.cache import KernelCache, QUARANTINE_DIR
from repro.machine.serialize import program_to_dict
from repro.errors import ReproError
from repro.faults import (
    SITES,
    FaultAction,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultRule,
    TaskTimeout,
    call_with_timeout,
    failure_reason,
    fault_point,
    inject,
)
from repro.parallel.executor import run_parallel
from repro.service import KernelService, SweepJob
from repro.stencils import library
from repro.stencils.grid import Grid


@pytest.fixture()
def observing():
    was = obs.enabled()
    obs.enable(reset=True)
    try:
        yield
    finally:
        if not was:
            obs.disable()


def _plan(*rules, seed=0):
    return FaultPlan(rules=tuple(rules), seed=seed)


SPEC = library.get("heat-2d")


# -- the framework itself ------------------------------------------------------

class TestRuleMatching:
    def test_site_glob_matches_families(self):
        inj = FaultInjector(_plan(FaultRule("cache.*", times=2)))
        assert inj.decide("cache.disk_read") is not None
        assert inj.decide("cache.disk_write") is not None
        assert inj.decide("compile.kernel") is None

    def test_exact_site_only(self):
        inj = FaultInjector(_plan(FaultRule("tile.sweep")))
        assert inj.decide("pool.task_start") is None
        assert inj.decide("tile.sweep") is not None

    def test_nth_hit_window(self):
        # after=2, every=3, times=2: hits 2 and 5 trigger, nothing else
        inj = FaultInjector(
            _plan(FaultRule("tile.sweep", after=2, every=3, times=2)))
        fired = [i for i in range(10)
                 if inj.decide("tile.sweep") is not None]
        assert fired == [2, 5]

    def test_times_burnout(self):
        inj = FaultInjector(_plan(FaultRule("tile.sweep", times=3)))
        fired = sum(inj.decide("tile.sweep") is not None for _ in range(10))
        assert fired == 3
        assert inj.hits("tile.sweep") == 10

    def test_hit_counter_is_per_site(self):
        inj = FaultInjector(_plan(FaultRule("pool.task_start", after=1)))
        inj.decide("tile.sweep")  # unrelated site: does not advance
        assert inj.decide("pool.task_start") is None       # hit 0
        assert inj.decide("pool.task_start") is not None   # hit 1

    def test_first_matching_rule_wins(self):
        inj = FaultInjector(_plan(
            FaultRule("tile.sweep", kind="delay", delay_s=0.0),
            FaultRule("tile.*", kind="raise"),
        ))
        action = inj.decide("tile.sweep")
        assert action.kind == "delay"


class TestInjectScoping:
    def test_no_active_injector_is_noop(self):
        assert faults.active() is None
        assert fault_point("tile.sweep", payload="data") == "data"

    def test_raises_inside_scope_only(self):
        with inject(_plan(FaultRule("tile.sweep"))) as inj:
            with pytest.raises(FaultInjected) as err:
                fault_point("tile.sweep")
            assert err.value.site == "tile.sweep"
            assert inj.injected_by_site() == {"tile.sweep": 1}
        fault_point("tile.sweep")  # scope exited: no-op again

    def test_nesting_innermost_wins(self):
        outer = _plan(FaultRule("cache.disk_read"))
        inner = _plan(FaultRule("tile.sweep"))
        with inject(outer) as o:
            with inject(inner) as i:
                # the inner injector absorbs hits, even for sites only
                # the outer plan watches
                fault_point("cache.disk_read")
                assert i.hits("cache.disk_read") == 1
                assert o.hits("cache.disk_read") == 0
            with pytest.raises(FaultInjected):
                fault_point("cache.disk_read")

    def test_injected_counters(self, observing):
        with inject(_plan(FaultRule("tile.sweep", kind="delay"))):
            fault_point("tile.sweep")
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["faults.injected"] == 1
        assert counters["faults.injected.site.tile.sweep"] == 1
        assert counters["faults.injected.kind.delay"] == 1


class TestCorruption:
    def test_seeded_corruption_is_deterministic(self):
        text = json.dumps({"k": [1, 2, 3], "p": "x" * 64})
        outs = set()
        for _ in range(3):
            inj = FaultInjector(
                _plan(FaultRule("cache.disk_read", kind="corrupt"), seed=7))
            outs.add(fault_result(inj, text))
        assert len(outs) == 1

    def test_seed_changes_corruption(self):
        text = json.dumps({"k": [1, 2, 3], "p": "x" * 64})
        a = fault_result(FaultInjector(
            _plan(FaultRule("cache.disk_read", kind="corrupt"), seed=1)), text)
        b = fault_result(FaultInjector(
            _plan(FaultRule("cache.disk_read", kind="corrupt"), seed=2)), text)
        assert a != text and b != text

    @pytest.mark.parametrize("seed", range(8))
    def test_corruption_always_detectable(self, seed):
        # the corruption contract: a mangled JSON payload never parses,
        # so a corrupt cache entry can always be quarantined
        text = json.dumps({"format": 2, "program": {"x": list(range(20))}})
        out = fault_result(FaultInjector(
            _plan(FaultRule("cache.disk_read", kind="corrupt"),
                  seed=seed)), text)
        assert out != text
        with pytest.raises(ValueError):
            json.loads(out)

    def test_bytes_payload(self):
        inj = FaultInjector(
            _plan(FaultRule("cache.disk_read", kind="corrupt"), seed=3))
        action = inj.decide("cache.disk_read")
        out = inj.perform(action, b"0123456789abcdef")
        assert isinstance(out, bytes) and out != b"0123456789abcdef"

    def test_corrupt_without_payload_raises(self):
        with inject(_plan(FaultRule("tile.sweep", kind="corrupt"))):
            with pytest.raises(FaultInjected):
                fault_point("tile.sweep")


def fault_result(inj: FaultInjector, payload):
    action = inj.decide("cache.disk_read")
    return inj.perform(action, payload)


class TestPlanSerialization:
    def test_round_trip(self, tmp_path):
        plan = _plan(
            FaultRule("cache.*", kind="corrupt", after=1, times=2, every=3),
            FaultRule("pool.task_start", kind="kill"),
            seed=42)
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_from_json_round_trip(self):
        plan = _plan(FaultRule("tile.sweep", kind="delay", delay_s=0.5))
        assert FaultPlan.from_json(plan.to_json()) == plan

    @pytest.mark.parametrize("bad", [
        {"site": "x", "kind": "explode"},
        {"site": ""},
        {"site": "x", "after": -1},
        {"site": "x", "times": 0},
        {"site": "x", "every": 0},
        {"site": "x", "delay_s": -1.0},
        {"site": "x", "unknown_field": 1},
        "not-an-object",
    ])
    def test_malformed_rules_rejected(self, bad):
        with pytest.raises(ReproError):
            FaultRule.from_dict(bad)

    def test_malformed_plan_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan.from_json("{nope")
        with pytest.raises(ReproError):
            FaultPlan.from_dict({"rules": "nope"})
        with pytest.raises(ReproError):
            FaultPlan.from_dict({"seed": "abc"})

    def test_missing_plan_file(self, tmp_path):
        with pytest.raises(ReproError):
            FaultPlan.load(str(tmp_path / "absent.json"))


class TestPolicyHelpers:
    def test_failure_reason_taxonomy(self):
        from concurrent.futures.process import BrokenProcessPool
        assert failure_reason(FaultInjected()) == "fault"
        assert failure_reason(TaskTimeout("t")) == "timeout"
        assert failure_reason(BrokenProcessPool("b")) == "worker_lost"
        assert failure_reason(ReproError("e")) == "error"

    def test_call_with_timeout_passthrough(self):
        assert call_with_timeout(lambda: 5, None) == 5
        assert call_with_timeout(lambda: 5, 10.0) == 5

    def test_call_with_timeout_times_out(self):
        import time
        with pytest.raises(TaskTimeout):
            call_with_timeout(lambda: time.sleep(2.0), 0.05)

    def test_perform_shipped_delay_and_raise(self):
        # worker-side replay, exercised here in-process (only "kill"
        # would exit, and it is deliberately not used)
        done = FaultAction(site="pool.task_start", kind="delay", hit=0,
                           rule=0, delay_s=0.0)
        faults.perform_shipped(done)
        with pytest.raises(FaultInjected):
            faults.perform_shipped(FaultAction(
                site="pool.task_start", kind="raise", hit=0, rule=0))

    def test_kill_degrades_to_raise_outside_workers(self):
        # a kill fault in the parent (or a thread worker) must never
        # take the process down — it degrades to a raise
        with inject(_plan(FaultRule("tile.sweep", kind="kill"))):
            with pytest.raises(FaultInjected) as err:
                fault_point("tile.sweep")
        assert err.value.kind == "kill"

    def test_fault_injected_pickles_with_attrs(self):
        exc = FaultInjected("boom", site="tile.sweep", kind="kill", hit=3)
        back = pickle.loads(pickle.dumps(exc))
        assert (back.site, back.kind, back.hit) == ("tile.sweep", "kill", 3)
        assert isinstance(back, ReproError)


# -- hardening regressions -----------------------------------------------------

def _run_grids(backend: str, **kw):
    grid = Grid.random((40, 40), SPEC.radius, seed=5)
    return run_parallel(SPEC, grid, 3, workers=4, backend=backend, **kw)


class TestExecutorHardening:
    def test_thread_tile_fault_retried_bitwise(self):
        clean = _run_grids("thread")
        with inject(_plan(FaultRule("tile.sweep", after=2, times=2))) as inj:
            faulted = _run_grids("thread")
        assert inj.injected_by_site()["tile.sweep"] == 2
        assert np.array_equal(clean.data, faulted.data)

    def test_thread_pool_task_fault_retried_bitwise(self):
        clean = _run_grids("thread")
        with inject(_plan(FaultRule("pool.task_start"))):
            faulted = _run_grids("thread")
        assert np.array_equal(clean.data, faulted.data)

    def test_process_worker_raise_recovered_bitwise(self):
        clean = _run_grids("process")
        with inject(_plan(FaultRule("pool.task_start", after=1))) as inj:
            faulted = _run_grids("process")
        assert inj.injected_by_site()["pool.task_start"] == 1
        assert np.array_equal(clean.data, faulted.data)

    def test_process_worker_kill_restarts_pool(self, observing):
        # a killed worker breaks the pool: the executor must restart it,
        # resubmit the unfinished tiles, and still match bitwise
        clean = _run_grids("process")
        with inject(_plan(FaultRule("pool.task_start", kind="kill",
                                    after=1))) as inj:
            faulted = _run_grids("process")
        assert inj.injected_by_site()["pool.task_start"] == 1
        assert np.array_equal(clean.data, faulted.data)
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["parallel.pool_restarts"] >= 1
        assert counters["parallel.fallback.reason.worker_lost"] >= 1

    def test_restart_budget_exhausted_degrades_to_parent(self, observing):
        # more kills than the restart budget: the parent finishes the
        # phase serially instead of looping on resurrection
        clean = _run_grids("process")
        with inject(_plan(FaultRule("pool.task_start", kind="kill",
                                    times=8))):
            faulted = _run_grids("process", pool_restarts=1)
        assert np.array_equal(clean.data, faulted.data)
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["parallel.pool_restarts"] >= 1

    def test_retry_budget_exhausted_raises(self):
        with inject(_plan(FaultRule("tile.sweep", times=1000))):
            with pytest.raises(FaultInjected):
                _run_grids("thread", retries=1)

    @pytest.mark.parametrize("kw", [{"retries": -1}, {"pool_restarts": -1}])
    def test_negative_budgets_rejected(self, kw):
        grid = Grid.random((16, 16), SPEC.radius, seed=0)
        with pytest.raises(ReproError):
            run_parallel(SPEC, grid, 1, **kw)


class TestCacheHardening:
    def test_corrupt_disk_write_quarantined_on_read(self, tmp_path):
        # a write fault corrupts the persisted entry; the next cache
        # generation must quarantine it and recompile, bitwise identical
        d = str(tmp_path / "cache")
        grid = Grid((32, 32), 16)
        with inject(_plan(FaultRule("cache.disk_write", kind="corrupt"))):
            k1 = KernelCache(d).compile(SPEC, GENERIC_AVX2, grid)
            p1 = k1.program
        cache2 = KernelCache(d)
        k2 = cache2.compile(SPEC, GENERIC_AVX2, grid)
        assert program_to_dict(k2.program) == program_to_dict(p1)
        assert cache2.stats.disk_quarantined == 1
        qdir = os.path.join(d, QUARANTINE_DIR)
        assert len(os.listdir(qdir)) == 1
        assert cache2.stats_dict()["quarantine_entry_count"] == 1

    def test_disk_write_fault_skips_store(self, tmp_path):
        d = str(tmp_path / "cache")
        grid = Grid((32, 32), 16)
        with inject(_plan(FaultRule("cache.disk_write"))):
            cache = KernelCache(d)
            cache.compile(SPEC, GENERIC_AVX2, grid).program
        assert cache.stats.disk_write_faults == 1
        assert cache.disk_entries()[0] == 0  # nothing half-written

    def test_disk_read_fault_recompiles(self, tmp_path):
        d = str(tmp_path / "cache")
        grid = Grid((32, 32), 16)
        p1 = KernelCache(d).compile(SPEC, GENERIC_AVX2, grid).program
        with inject(_plan(FaultRule("cache.disk_read"))):
            cache2 = KernelCache(d)
            p2 = cache2.compile(SPEC, GENERIC_AVX2, grid).program
        assert program_to_dict(p2) == program_to_dict(p1)
        assert cache2.stats.disk_quarantined == 1


class TestServiceHardening:
    def test_compile_fault_retried(self):
        svc = KernelService(GENERIC_AVX2, failure_policy="retry", retries=2)
        with inject(_plan(FaultRule("compile.kernel"))):
            k = svc.compile(SPEC, (32, 32))
        assert k.exec_backend() == "auto"  # primary succeeded on retry

    def test_compile_fault_raise_policy_propagates(self):
        svc = KernelService(GENERIC_AVX2, failure_policy="raise")
        with inject(_plan(FaultRule("compile.kernel"))):
            with pytest.raises(FaultInjected):
                svc.compile(SPEC, (32, 32))

    def test_compile_timeout_degrades_to_interp(self, observing):
        # a compile stuck past its timeout degrades to an interp-stamped
        # kernel — bitwise-safe because batch and interp agree exactly
        svc = KernelService(GENERIC_AVX2, failure_policy="degrade",
                            retries=0, task_timeout_s=0.2,
                            retry_backoff_s=0.0)
        with inject(_plan(FaultRule("compile.kernel", kind="delay",
                                    delay_s=1.5))):
            k = svc.compile(SPEC, (32, 32))
        assert k.exec_backend() == "interp"
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["service.failures.reason.timeout"] >= 1
        assert counters["service.fallback.to.interp"] == 1

    def test_run_fault_recovered_bitwise(self):
        svc = KernelService(GENERIC_AVX2, failure_policy="degrade",
                            retries=2, retry_backoff_s=0.0)
        job = SweepJob(SPEC, Grid.random((40, 40), SPEC.radius, seed=4),
                       steps=3)
        clean = svc.run(job)
        with inject(_plan(FaultRule("tile.sweep", times=2))):
            faulted = svc.run(job)
        assert np.array_equal(clean.data, faulted.data)

    def test_run_many_faulted_matches_clean(self):
        svc = KernelService(GENERIC_AVX2, failure_policy="degrade",
                            retries=3, retry_backoff_s=0.0)
        jobs = [SweepJob(SPEC, Grid.random((32, 32), SPEC.radius, seed=s),
                         steps=2) for s in (1, 2)]
        clean = svc.run_many(jobs)
        with inject(_plan(FaultRule("pool.task_start", times=3))):
            faulted = svc.run_many(jobs)
        for c, f in zip(clean, faulted):
            assert np.array_equal(c.data, f.data)


class TestDriverHardening:
    def test_batch_closure_fault_falls_back_to_interp(self, observing):
        svc = KernelService(GENERIC_AVX2)
        k = svc.compile(SPEC, (32, 32))
        g = k.grid_like((32, 32), seed=9)
        steps = 2 * k.plan.time_fusion
        clean = k.run(g, steps, backend="batch")
        with inject(_plan(FaultRule("exec.batch_closure"))) as inj:
            faulted = k.run(g, steps, backend="batch")
        assert inj.injected_by_site()["exec.batch_closure"] == 1
        assert np.array_equal(clean.data, faulted.data)
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["exec.batch_fallback.reason.fault"] == 1

    def test_codegen_fault_degrades_to_batch_bitwise(self, observing):
        """A fault at the codegen site must degrade to the batch engine
        (the next ladder rung), not to the interpreter directly."""
        svc = KernelService(GENERIC_AVX2)
        k = svc.compile(SPEC, (32, 32))
        g = k.grid_like((32, 32), seed=9)
        steps = 2 * k.plan.time_fusion
        clean = k.run(g, steps)
        with inject(_plan(FaultRule("exec.codegen_kernel"))) as inj:
            faulted = k.run(g, steps)
        assert inj.injected_by_site()["exec.codegen_kernel"] == 1
        assert np.array_equal(clean.data, faulted.data)
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["exec.codegen_fallback.reason.fault"] == 1
        assert "exec.batch_fallback" not in counters


class TestTunerHardening:
    def test_faulted_trial_recorded_as_failure(self, observing):
        from repro.core.cache import KernelCache as KC
        from repro.tune.engine import TuneBudget, measure
        from repro.tune.space import TuneConfig
        budget = TuneBudget(max_trials=1, warmup=0, repeats=1,
                            trial_timeout_s=30.0)
        config = TuneConfig(engine="machine")
        with inject(_plan(FaultRule("compile.kernel", times=100))):
            trial = measure(SPEC, GENERIC_AVX2, config, (32, 32),
                            steps=2, budget=budget, cache=KC(None))
        assert not trial.ok
        assert "injected" in trial.error
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["tune.trial_failures"] == 1
        assert counters["tune.trial_failures.reason.fault"] == 1


# -- chaos ---------------------------------------------------------------------

class TestChaos:
    def test_chaos_plan_covers_every_site(self):
        from repro.faults.chaos import CHAOS_SITE_KINDS, chaos_plan
        for seed in range(5):
            plan = chaos_plan(seed)
            assert sorted(r.site for r in plan.rules) == sorted(SITES)
            for r in plan.rules:
                assert r.kind in CHAOS_SITE_KINDS[r.site]
        assert chaos_plan(3) == chaos_plan(3)  # seeded: reproducible

    def test_chaos_run_bitwise_identical(self):
        from repro.faults.chaos import run_chaos
        try:
            report = run_chaos(size=(32, 32), steps=2, seed=0,
                               backends=("thread",))
        finally:
            obs.disable()  # run_chaos enables recording process-wide
        assert report.ok, report.summary()
        assert report.total_injected >= len(SITES)
        assert not report.sites_missing and not report.mismatches
        # every injected fault shows up in the taxonomy slice
        assert report.taxonomy["faults.injected"] == report.total_injected
        d = report.to_dict()
        assert d["ok"] and d["injected"] == report.injected
        assert "result: OK" in report.summary()

    def test_chaos_report_failure_rendering(self):
        from repro.faults.chaos import ChaosReport, chaos_plan
        rep = ChaosReport(kernel="heat-2d", size=(8, 8), steps=1, seed=0,
                          backends=("thread",), plan=chaos_plan(0),
                          injected={"tile.sweep": 1},
                          sites_missing=["cache.disk_read"],
                          mismatches=["machine"])
        assert not rep.ok and not rep.to_dict()["ok"]
        text = rep.summary()
        assert "MISSING" in text and "MISMATCH" in text and "FAILED" in text

    def test_taxonomy_slice_filters_prefixes(self):
        from repro.faults.chaos import taxonomy_slice
        counters = {"faults.injected": 3, "faults.injected.kind.raise": 3,
                    "service.failures.reason.fault": 1, "exec.sweeps": 9,
                    "cache.disk_quarantined": 1, "cache.disk_writes": 4}
        out = taxonomy_slice(counters)
        assert "exec.sweeps" not in out and "cache.disk_writes" not in out
        assert out["faults.injected"] == 3
        assert out["cache.disk_quarantined"] == 1
