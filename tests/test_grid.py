"""Unit tests for :mod:`repro.stencils.grid`."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.stencils.grid import Grid


class TestConstruction:
    def test_data_shape_includes_halo(self):
        g = Grid((4, 8), (1, 2))
        assert g.data.shape == (6, 12)
        assert g.shape == (4, 8)
        assert g.halo == (1, 2)

    def test_scalar_halo_broadcasts(self):
        g = Grid((4, 8), 2)
        assert g.halo == (2, 2)

    def test_rejects_nonpositive_shape(self):
        with pytest.raises(GridError):
            Grid((0, 4), 1)

    def test_rejects_negative_halo(self):
        with pytest.raises(GridError):
            Grid((4,), -1)

    def test_rejects_halo_rank_mismatch(self):
        with pytest.raises(GridError):
            Grid((4, 4), (1,))

    def test_rejects_empty_shape(self):
        with pytest.raises(GridError):
            Grid((), 1)

    def test_from_array_copies(self):
        a = np.arange(8.0)
        g = Grid.from_array(a, 2)
        a[0] = 99.0
        assert g.interior[0] == 0.0

    def test_random_reproducible(self):
        g1 = Grid.random((8,), 1, seed=7)
        g2 = Grid.random((8,), 1, seed=7)
        assert np.array_equal(g1.interior, g2.interior)

    def test_random_bounds(self):
        g = Grid.random((64,), 0, seed=0, low=2.0, high=3.0)
        assert g.interior.min() >= 2.0
        assert g.interior.max() <= 3.0


class TestViews:
    def test_interior_is_view(self):
        g = Grid((4,), 2)
        g.interior[...] = 5.0
        assert np.all(g.data[2:6] == 5.0)
        assert np.all(g.data[:2] == 0.0)

    def test_shifted_interior_reads_halo(self):
        g = Grid((4,), 1)
        g.data[...] = np.arange(6.0)
        assert np.array_equal(g.shifted_interior((-1,)), [0, 1, 2, 3])
        assert np.array_equal(g.shifted_interior((1,)), [2, 3, 4, 5])
        assert np.array_equal(g.shifted_interior((0,)), g.interior)

    def test_shifted_interior_2d(self):
        g = Grid((2, 2), 1)
        g.data[...] = np.arange(16.0).reshape(4, 4)
        assert np.array_equal(g.shifted_interior((-1, 1)),
                              [[2, 3], [6, 7]])

    def test_shifted_interior_rejects_beyond_halo(self):
        g = Grid((4,), 1)
        with pytest.raises(GridError):
            g.shifted_interior((2,))

    def test_shifted_interior_rejects_rank_mismatch(self):
        g = Grid((4, 4), 1)
        with pytest.raises(GridError):
            g.shifted_interior((1,))


class TestMisc:
    def test_like_is_zeroed_same_geometry(self):
        g = Grid.random((4, 4), 1, seed=0)
        h = g.like()
        assert h.shape == g.shape and h.halo == g.halo
        assert np.all(h.data == 0.0)

    def test_copy_independent(self):
        g = Grid.random((4,), 1, seed=0)
        h = g.copy()
        h.interior[0] = -1.0
        assert g.interior[0] != -1.0

    def test_npoints_and_nbytes(self):
        g = Grid((4, 8), 1)
        assert g.npoints() == 32
        assert g.nbytes() == 6 * 10 * 8
