"""Tests for the end-to-end validation harness."""

import pytest

from repro.config import GENERIC_AVX2
from repro.validate import (
    DEFAULT_KERNELS,
    ValidationCase,
    ValidationReport,
    validate,
)


@pytest.fixture(scope="module")
def avx2_report():
    return validate(machines=(GENERIC_AVX2,),
                    kernels=("heat-1d", "heat-2d", "box-2d9p"))


def test_matrix_all_green(avx2_report):
    assert avx2_report.all_ok, avx2_report.summary()


def test_case_count(avx2_report):
    # every registered scheme x 3 kernels x 2 boundaries
    from repro.schemes import SCHEMES
    assert len(avx2_report.cases) == len(SCHEMES) * 3 * 2


def test_unsupported_combos_counted_benign(avx2_report):
    # t4-jigsaw on 2-D kernels is an expected refusal, not a failure
    skipped = [c for c in avx2_report.cases
               if c.detail.startswith("unsupported")]
    assert skipped
    assert all(c.ok for c in skipped)


def test_fused_dirichlet_skipped(avx2_report):
    fused_dirichlet = [
        c for c in avx2_report.cases
        if c.scheme.startswith("t") and c.boundary == "dirichlet"
        and "skipped" in c.detail
    ]
    assert fused_dirichlet


def test_summary_mentions_counts(avx2_report):
    assert "cases passed" in avx2_report.summary()


def test_report_flags_failures():
    bad = ValidationCase("s", "k", "m", "periodic", False, 1.0, "boom")
    rep = ValidationReport(cases=(bad,))
    assert not rep.all_ok
    assert "FAIL" in rep.summary()


def test_default_kernels_cover_table3():
    assert set(DEFAULT_KERNELS) >= {
        "heat-1d", "heat-2d", "heat-3d", "box-2d9p", "box-3d27p",
    }
