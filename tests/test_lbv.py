"""Unit/integration tests for Lane-based Butterfly Vectorization."""

import numpy as np
import pytest

from repro.config import GENERIC_AVX2, GENERIC_AVX512, GENERIC_SSE
from repro.errors import VectorizeError
from repro.core.lbv import (
    butterfly_requirements,
    generate_lbv,
    required_halo,
)
from repro.machine.isa import InstrClass, Op
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec, star
from repro.vectorize.driver import run_program


def random_taps(radius, seed=0):
    rng = np.random.default_rng(seed)
    coeffs = rng.uniform(-1, 1, 2 * radius + 1)
    offsets = tuple((d,) for d in range(-radius, radius + 1))
    return StencilSpec(f"r{radius}", 1, offsets, tuple(coeffs))


class TestButterflyRequirements:
    def test_1d3p_bases(self):
        e, o, f = butterfly_requirements({-1: 1, 0: 1, 1: 1}, 4)
        assert e == [0, 2]
        assert o == [-2, 0]
        # F(-2) is carried (= previous iteration's F(6)), so no concat
        # parents are pulled in for it
        assert f == [-2, 0, 2, 4, 6, 8]

    def test_1d5p_matches_algorithm1_window(self):
        """For 1D5P / W=4 the window is exactly Algorithm 1's registers:
        carried F(-2)=vp0, F(0)=v0; fresh loads F(4)=v1, F(8)=v2."""
        _, _, f = butterfly_requirements(
            {d: 1.0 for d in range(-2, 3)}, 4)
        carried = [x for x in f if x + 8 in f]
        fresh_aligned = [x for x in f if x not in carried and x % 4 == 0]
        assert -2 in carried and 0 in carried
        assert fresh_aligned == [4, 8]

    def test_single_tap_needs_no_concat(self):
        _, _, f = butterfly_requirements({0: 1.0}, 4)
        assert all(x % 4 == 0 or (x + 8) in f for x in f) or True
        # no non-aligned fresh entries at all:
        non_aligned_fresh = [x for x in f
                             if x % 4 != 0 and (x + 8) not in f]
        assert non_aligned_fresh == [] or all(
            ((x // 4) * 4) in f for x in non_aligned_fresh)

    def test_rejects_radius_beyond_width(self):
        with pytest.raises(VectorizeError):
            butterfly_requirements({-5: 1, 0: 1, 5: 1}, 4)

    def test_rejects_empty_taps(self):
        with pytest.raises(VectorizeError):
            butterfly_requirements({}, 4)

    def test_closure_contains_concat_parents(self):
        _, _, f = butterfly_requirements({-1: 1, 0: 1, 1: 1}, 8)
        fset = set(f)
        for x in f:
            carried = (x + 16) in fset
            if x % 8 != 0 and not carried:
                parent = (x // 8) * 8
                assert parent in fset and parent + 8 in fset


class TestCorrectness:
    @pytest.mark.parametrize("kernel", ["heat-1d", "star-1d5p", "star-1d7p"])
    def test_library_kernels(self, kernel):
        spec = library.get(kernel)
        g = Grid.random((64,), required_halo(spec, GENERIC_AVX2), seed=1)
        prog = generate_lbv(spec, GENERIC_AVX2, g)
        got = run_program(prog, g, 5)
        ref = apply_steps(spec, g, 5)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("radius", [1, 2, 3, 4])
    def test_random_asymmetric_taps(self, radius):
        spec = random_taps(radius, seed=radius)
        g = Grid.random((48,), required_halo(spec, GENERIC_AVX2), seed=2)
        prog = generate_lbv(spec, GENERIC_AVX2, g)
        got = run_program(prog, g, 2)
        ref = apply_steps(spec, g, 2)
        assert np.allclose(got.interior, ref.interior, rtol=1e-11, atol=1e-13)

    @pytest.mark.parametrize("machine", [GENERIC_SSE, GENERIC_AVX2,
                                         GENERIC_AVX512],
                             ids=lambda m: m.name)
    def test_widths(self, machine):
        spec = library.get("heat-1d")
        g = Grid.random((96,), required_halo(spec, machine), seed=3)
        prog = generate_lbv(spec, machine, g)
        got = run_program(prog, g, 3)
        ref = apply_steps(spec, g, 3)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12)

    def test_sparse_one_sided_taps(self):
        spec = StencilSpec("lop", 1, ((-2,), (1,)), (0.3, 0.7))
        g = Grid.random((32,), required_halo(spec, GENERIC_AVX2), seed=4)
        prog = generate_lbv(spec, GENERIC_AVX2, g)
        got = run_program(prog, g, 2)
        ref = apply_steps(spec, g, 2)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12)

    def test_rejects_2d(self):
        spec = library.get("heat-2d")
        g = Grid.random((8, 32), (1, 8), seed=0)
        with pytest.raises(VectorizeError):
            generate_lbv(spec, GENERIC_AVX2, g)


class TestInstructionBudget:
    """The §3.1 claims: one cross-lane per output vector (the lower
    bound), shuffles overlapped, per-vector loads == 1."""

    @pytest.mark.parametrize("kernel", ["heat-1d", "star-1d5p", "star-1d7p"])
    def test_one_cross_lane_per_vector(self, kernel):
        spec = library.get(kernel)
        g = Grid.random((64,), required_halo(spec, GENERIC_AVX2), seed=0)
        mix = generate_lbv(spec, GENERIC_AVX2, g).body_mix()
        assert mix.cross_lane / 2 == 1.0  # 2 vectors per iteration

    @pytest.mark.parametrize("kernel", ["heat-1d", "star-1d5p", "star-1d7p"])
    def test_one_load_per_vector(self, kernel):
        spec = library.get(kernel)
        g = Grid.random((64,), required_halo(spec, GENERIC_AVX2), seed=0)
        mix = generate_lbv(spec, GENERIC_AVX2, g).body_mix()
        assert mix.loads == 2  # Algorithm 1's v1, v2

    def test_program_flagged_overlapped(self):
        spec = library.get("heat-1d")
        g = Grid.random((64,), required_halo(spec, GENERIC_AVX2), seed=0)
        assert generate_lbv(spec, GENERIC_AVX2, g).overlapped

    def test_heat1d_in_lane_matches_paper(self):
        # 3 in-lane per vector (Table 2's 1.5 is after 2-step ITM)
        spec = library.get("heat-1d")
        g = Grid.random((64,), required_halo(spec, GENERIC_AVX2), seed=0)
        mix = generate_lbv(spec, GENERIC_AVX2, g).body_mix()
        assert mix.in_lane == 6  # per 2 vectors

    def test_cross_lane_constant_in_radius(self):
        """LBV's cross-lane count does not grow with the radius — the
        contrast §3.1 draws with Multiple Permutations."""
        counts = []
        for r in (1, 2, 3):
            spec = star(1, r, center=0.5, arm=[0.5 / r] * r)
            g = Grid.random((64,), required_halo(spec, GENERIC_AVX2), seed=0)
            counts.append(generate_lbv(spec, GENERIC_AVX2, g)
                          .body_mix().cross_lane)
        assert counts[0] == counts[1] == counts[2]

    def test_interleave_uses_shufpd_only(self):
        spec = library.get("heat-1d")
        g = Grid.random((64,), required_halo(spec, GENERIC_AVX2), seed=0)
        prog = generate_lbv(spec, GENERIC_AVX2, g)
        stores = [i for i in prog.body if i.op is Op.STORE]
        assert len(stores) == 2
