"""Unit tests for the batched execution backend (repro.machine.batch).

The differential harness (tests/test_differential.py) already asserts
bitwise interp/batch equality over random specs; this file pins the batch
backend's *mechanisms*: carried-register peeling, the overlapping-store
row loop, deferred stores across warm-up rounds, the recurrence fallback,
and the driver's automatic interpreter fallback triggers.
"""

import numpy as np
import pytest

from repro.config import GENERIC_AVX2
from repro.errors import VectorizeError
from repro.machine.batch import (
    BatchedProgram,
    BatchFallback,
    analytic_trace,
    get_batched,
)
from repro.machine.isa import Affine
from repro.machine.machine import SimdMachine
from repro.schemes import generate, scheme_halo
from repro.stencils.grid import Grid
from repro.stencils.spec import star
from repro.vectorize.driver import run_program
from repro.vectorize.program import Loop, ProgramBuilder


def _scan_program():
    """A prefix-sum over x — a true loop-carried recurrence the batch
    backend cannot peel."""
    b = ProgramBuilder(4)
    b.in_prologue()
    z = b.setzero()
    b.mov_to("acc", z)
    b.in_body()
    v = b.load(b.mem(Affine.var("x")))
    b.add(v, "acc", dst="acc")
    b.store("acc", b.mem(Affine.var("x"), array="out"))
    return b.build(name="scan", scheme="t", loops=[Loop("x", 0, 16, 4)],
                   vectors_per_iter=1)


def _run_both(prog, arrays_factory):
    """Run ``prog`` on the interpreter and on the batch backend against
    independent array sets; return (interp_arrays, batch_arrays)."""
    a1 = arrays_factory()
    a2 = arrays_factory()
    SimdMachine(prog.width, elem_bytes=prog.elem_bytes).run(prog, a1)
    BatchedProgram(prog).run(a2)
    return a1, a2


class TestBatchedBody:
    def test_straight_line_body(self):
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("x")))
        two = b.broadcast(2.0)
        r = b.mul(two, v)
        b.store(r, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="copy", scheme="test",
                       loops=[Loop("x", 0, 16, 4)], vectors_per_iter=1)

        def arrays():
            return {"a": np.arange(16.0), "out": np.zeros(16)}
        a1, a2 = _run_both(prog, arrays)
        assert np.array_equal(a2["out"], a1["out"])
        assert np.array_equal(a2["out"], 2 * np.arange(16.0))

    def test_carried_register_peeling(self):
        """A prologue-seeded register slid by the body (the Algorithm-1
        window) must peel into shifted rows, matching the interpreter."""
        b = ProgramBuilder(4)
        b.in_prologue()
        b.load_to("carry", b.mem(Affine.var("x")))
        b.in_body()
        b.store("carry", b.mem(Affine.var("x"), array="out"))
        b.load_to("carry", b.mem(Affine.var("x", const=4)))
        prog = b.build(name="p", scheme="t", loops=[Loop("x", 0, 16, 4)],
                       vectors_per_iter=1)
        assert BatchedProgram(prog)._carried == ("carry",)

        def arrays():
            return {"a": np.arange(20.0) ** 2, "out": np.zeros(16)}
        a1, a2 = _run_both(prog, arrays)
        assert np.array_equal(a2["out"], a1["out"])

    def test_carry_chain_of_depth_two(self):
        """mov-slide chains (w0 <- w1 <- fresh load) need one peel round
        per link; convergence must still be exact."""
        b = ProgramBuilder(4)
        b.in_prologue()
        b.load_to("w0", b.mem(Affine.var("x")))
        b.load_to("w1", b.mem(Affine.var("x", const=4)))
        b.in_body()
        r = b.add("w0", "w1")
        b.store(r, b.mem(Affine.var("x"), array="out"))
        b.mov_to("w0", "w1")
        b.load_to("w1", b.mem(Affine.var("x", const=8)))
        prog = b.build(name="p", scheme="t", loops=[Loop("x", 0, 24, 4)],
                       vectors_per_iter=1)
        assert set(BatchedProgram(prog)._carried) == {"w0", "w1"}

        def arrays():
            return {"a": np.linspace(0.0, 1.0, 32), "out": np.zeros(24)}
        a1, a2 = _run_both(prog, arrays)
        assert np.array_equal(a2["out"], a1["out"])

    def test_true_recurrence_raises_fallback(self):
        """An accumulator carried across x never reaches a fixed point;
        the backend must refuse rather than return wrong values."""
        prog = _scan_program()
        arrays = {"a": np.arange(16.0), "out": np.zeros(16)}
        with pytest.raises(BatchFallback):
            BatchedProgram(prog).run(arrays)
        # deferred stores: the failed attempt must not have scribbled
        assert np.array_equal(arrays["out"], np.zeros(16))


class TestDriverFallback:
    def _jigsaw_case(self, seed=3):
        spec = star(2, 1, center=-4.0, arm=[1.0], name="fb-probe")
        halo = scheme_halo("jigsaw", spec, GENERIC_AVX2)
        grid = Grid.random((4, 24), halo, seed=seed)
        prog = generate("jigsaw", spec, GENERIC_AVX2, grid)
        return prog, grid

    def test_mem_hook_forces_interpreter(self):
        """A per-access hook needs ordered accesses, so the driver must
        run the interpreter — and still produce the identical grid."""
        prog, grid = self._jigsaw_case()
        accesses = []

        def hook(array, offset, nbytes, is_store):
            accesses.append((array, offset, nbytes, is_store))
        hooked = run_program(prog, grid, 1, mem_hook=hook, backend="auto")
        assert accesses, "hook must observe the interpreter's accesses"
        plain = run_program(prog, grid, 1, backend="batch")
        assert np.array_equal(hooked.data, plain.data)

    def test_recurrence_program_falls_back_silently(self):
        """backend="auto" on a non-peelable program must transparently
        produce the interpreter's result."""
        prog = _scan_program()
        a = np.arange(32.0)
        out1, out2 = np.zeros(16), np.zeros(16)
        SimdMachine(4).run(prog, {"a": a, "out": out1})
        batched = BatchedProgram(prog)
        try:
            batched.run({"a": a, "out": out2})
        except BatchFallback:
            SimdMachine(4).run(prog, {"a": a, "out": out2})
        assert np.array_equal(out2, out1)

    def test_steps_zero_short_circuits(self):
        prog, grid = self._jigsaw_case()
        before = grid.data.copy()
        got = run_program(prog, grid, 0)
        assert got is not grid
        assert np.array_equal(got.data, before)
        assert np.array_equal(grid.data, before)  # input untouched

    def test_bad_backend_rejected(self):
        prog, grid = self._jigsaw_case()
        with pytest.raises(VectorizeError):
            run_program(prog, grid, 1, backend="simd")


class TestOverlappingStores:
    def test_unit_stride_store_lets_later_rows_win(self):
        """Store stride (1) < width (4): consecutive rows overlap, so the
        batched scatter must apply rows in order like the interpreter."""
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("x")))
        b.store(v, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="overlap", scheme="t",
                       loops=[Loop("x", 0, 8, 1)], vectors_per_iter=1)

        def arrays():
            return {"a": np.arange(12.0), "out": np.zeros(12)}
        a1, a2 = _run_both(prog, arrays)
        assert np.array_equal(a2["out"], a1["out"])


class TestCompileCache:
    def test_get_batched_memoizes(self):
        spec = star(1, 1, center=-2.0, arm=[1.0])
        halo = scheme_halo("jigsaw", spec, GENERIC_AVX2)
        grid = Grid.random((40,), halo, seed=0)
        prog = generate("jigsaw", spec, GENERIC_AVX2, grid)
        assert get_batched(prog) is get_batched(prog)

    def test_analytic_trace_fresh_counter(self):
        spec = star(1, 1, center=-2.0, arm=[1.0])
        halo = scheme_halo("jigsaw", spec, GENERIC_AVX2)
        grid = Grid.random((40,), halo, seed=0)
        prog = generate("jigsaw", spec, GENERIC_AVX2, grid)
        tc = analytic_trace(prog)
        assert tc.vectors == prog.vectors_per_iter * prog.total_body_runs()
        assert tc.steps == prog.steps_per_iter
