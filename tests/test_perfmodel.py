"""Tests for the end-to-end roofline model."""

import pytest

from repro.config import GENERIC_AVX2
from repro.errors import ModelError
from repro.machine.perfmodel import KernelCost, PerformanceModel
from repro.schemes import model_cost, model_program
from repro.stencils import library


@pytest.fixture
def model():
    return PerformanceModel(GENERIC_AVX2)


@pytest.fixture
def cost():
    return model_cost("jigsaw", library.get("heat-2d"), GENERIC_AVX2)


class TestKernelCost:
    def test_from_program_fields(self):
        prog = model_program("jigsaw", library.get("heat-2d"), GENERIC_AVX2)
        cost = KernelCost.from_program(prog, GENERIC_AVX2)
        assert cost.scheme == "jigsaw"
        assert cost.width == 4
        assert cost.vectors_per_iter == 2
        assert cost.elems_per_iter == 8
        assert cost.cycles_per_iter > 0
        assert cost.registers_used > 0

    def test_t_jigsaw_steps_recorded(self):
        prog = model_program("t-jigsaw", library.get("heat-1d"),
                             GENERIC_AVX2)
        cost = KernelCost.from_program(prog, GENERIC_AVX2)
        assert cost.steps_per_iter == 2


class TestEstimate:
    def test_roofline_max_composition(self, model, cost):
        res = model.estimate(cost, points=10**6, steps=10)
        assert res.time_s >= max(res.compute_time_s, res.memory_time_s) * 0.999
        assert res.gstencil_s == pytest.approx(
            10**7 / res.time_s / 1e9)

    def test_validation(self, model, cost):
        with pytest.raises(ModelError):
            model.estimate(cost, points=0, steps=1)
        with pytest.raises(ModelError):
            model.estimate(cost, points=100, steps=1, cores=0)
        with pytest.raises(ModelError):
            model.estimate(cost, points=100, steps=1,
                           cores=GENERIC_AVX2.total_cores + 1)
        with pytest.raises(ModelError):
            model.estimate(cost, points=100, steps=1, efficiency=0)

    def test_more_cores_never_slower_compute(self, model, cost):
        r1 = model.estimate(cost, points=10**7, steps=10, cores=1)
        r4 = model.estimate(cost, points=10**7, steps=10, cores=4)
        assert r4.compute_time_s < r1.compute_time_s

    def test_bigger_working_set_slower_or_equal(self, model, cost):
        fast = model.estimate(cost, points=10**6, steps=10,
                              working_set_bytes=16 * 1024)
        slow = model.estimate(cost, points=10**6, steps=10,
                              working_set_bytes=10**9)
        assert slow.gstencil_s <= fast.gstencil_s

    def test_stair_levels_reported(self, model, cost):
        small = model.estimate(cost, points=1024, steps=10)
        huge = model.estimate(cost, points=10**8, steps=10)
        assert small.level in ("L1", "L2")
        assert huge.level == "DRAM"

    def test_sync_overhead_added(self, model, cost):
        quiet = model.estimate(cost, points=10**6, steps=10)
        noisy = model.estimate(cost, points=10**6, steps=10,
                               sync_phases=1000)
        assert noisy.time_s > quiet.time_s

    def test_efficiency_derating(self, model, cost):
        full = model.estimate(cost, points=10**5, steps=10)
        half = model.estimate(cost, points=10**5, steps=10, efficiency=0.5)
        assert half.compute_time_s == pytest.approx(
            2 * full.compute_time_s)

    def test_fused_cost_amortizes_sweeps(self, model):
        """A 2-step-fused kernel runs half the sweeps, so its memory term
        halves for the same step count."""
        c1 = model_cost("jigsaw", library.get("heat-1d"), GENERIC_AVX2)
        c2 = model_cost("t-jigsaw", library.get("heat-1d"), GENERIC_AVX2)
        r1 = model.estimate(c1, points=10**8, steps=20)
        r2 = model.estimate(c2, points=10**8, steps=20)
        assert r2.memory_time_s == pytest.approx(r1.memory_time_s / 2)

    def test_bottleneck_labels(self, model, cost):
        res = model.estimate(cost, points=10**8, steps=10)
        assert res.bottleneck in ("compute", "memory")

    def test_speedup_over(self, model, cost):
        a = model.estimate(cost, points=10**6, steps=10)
        b = model.estimate(cost, points=10**6, steps=10, efficiency=0.5)
        assert a.speedup_over(b) > 1.0


class TestSchemeRanking:
    """The model must reproduce the paper's headline ordering: jigsaw
    above the multiple-loads ("auto") and multiple-permutations
    ("reorg") baselines on every library kernel.  The autotuner's stage-1
    pruning (:mod:`repro.tune.engine`) relies on this ordering."""

    @pytest.mark.parametrize("kernel", library.names())
    @pytest.mark.parametrize("baseline", ["auto", "reorg"])
    def test_jigsaw_ranks_above_baselines(self, model, kernel, baseline):
        spec = library.get(kernel)
        j = model.estimate(model_cost("jigsaw", spec, GENERIC_AVX2),
                           points=10**6, steps=10)
        b = model.estimate(model_cost(baseline, spec, GENERIC_AVX2),
                           points=10**6, steps=10)
        # fewer shuffles -> strictly cheaper compute, always
        assert j.compute_time_s < b.compute_time_s
        # end-to-end throughput never loses; memory-bound 1-D kernels may
        # tie at the bandwidth roof, compute-bound kernels must win
        assert j.gstencil_s >= b.gstencil_s
        if j.bottleneck == "compute":
            assert j.gstencil_s > b.gstencil_s
