"""Integration tests for the full Jigsaw generator and planner."""

import numpy as np
import pytest

from repro.config import GENERIC_AVX2, GENERIC_AVX512, GENERIC_SSE
from repro.errors import PlanError, VectorizeError
from repro.core.jigsaw import generate_jigsaw, required_halo
from repro.core.planner import JigsawPlan, ablation_ladder, auto_fusion, plan
from repro.core.sdf import rows_as_terms
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid
from repro.vectorize.driver import run_program
from repro.vectorize.multiple_perms import generate_multiple_perms
from repro.vectorize.multiple_perms import required_halo as perms_halo

from _helpers import SIM_KERNELS


def jig_grid(spec, machine, fusion=1, nx=32, seed=0):
    shape = (5,) * (spec.ndim - 1) + (nx,)
    return Grid.random(shape, required_halo(spec, machine,
                                            time_fusion=fusion), seed=seed)


class TestCorrectness:
    @pytest.mark.parametrize("kernel", SIM_KERNELS)
    def test_jigsaw_matches_reference(self, kernel):
        spec = library.get(kernel)
        g = jig_grid(spec, GENERIC_AVX2)
        prog = generate_jigsaw(spec, GENERIC_AVX2, g)
        got = run_program(prog, g, 3)
        ref = apply_steps(spec, g, 3)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d", "box-2d9p",
                                        "heat-3d", "star-2d9p"])
    def test_t_jigsaw_two_step(self, kernel):
        spec = library.get(kernel)
        g = jig_grid(spec, GENERIC_AVX2, fusion=2)
        prog = generate_jigsaw(spec, GENERIC_AVX2, g, time_fusion=2)
        got = run_program(prog, g, 4)
        ref = apply_steps(spec, g, 4)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12, atol=1e-14)

    def test_t4_jigsaw_heat1d(self):
        spec = library.get("heat-1d")
        g = jig_grid(spec, GENERIC_AVX2, fusion=4, nx=64)
        prog = generate_jigsaw(spec, GENERIC_AVX2, g, time_fusion=4)
        got = run_program(prog, g, 8)
        ref = apply_steps(spec, g, 8)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d", "box-2d9p"])
    def test_lbv_only_ablation_variant(self, kernel):
        spec = library.get(kernel)
        g = jig_grid(spec, GENERIC_AVX2)
        prog = generate_jigsaw(spec, GENERIC_AVX2, g,
                               terms=rows_as_terms(spec),
                               scheme="jigsaw-lbv-only")
        got = run_program(prog, g, 2)
        ref = apply_steps(spec, g, 2)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12)

    @pytest.mark.parametrize("machine", [GENERIC_SSE, GENERIC_AVX512],
                             ids=lambda m: m.name)
    @pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d", "box-2d9p"])
    def test_other_vector_widths(self, machine, kernel):
        spec = library.get(kernel)
        nx = 6 * machine.vector_elems
        g = jig_grid(spec, machine, nx=nx)
        prog = generate_jigsaw(spec, machine, g)
        got = run_program(prog, g, 2)
        ref = apply_steps(spec, g, 2)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12)

    def test_dirichlet_unfused(self):
        spec = library.get("heat-2d")
        g = jig_grid(spec, GENERIC_AVX2)
        prog = generate_jigsaw(spec, GENERIC_AVX2, g)
        got = run_program(prog, g, 2, boundary="dirichlet", value=1.0)
        ref = apply_steps(spec, g, 2, boundary="dirichlet", value=1.0)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12)


class TestInstructionBudget:
    @pytest.mark.parametrize("kernel", ["heat-2d", "box-2d9p", "heat-3d"])
    def test_jigsaw_shuffles_below_reorg(self, kernel):
        spec = library.get(kernel)
        gj = jig_grid(spec, GENERIC_AVX2)
        jig = generate_jigsaw(spec, GENERIC_AVX2, gj).per_vector_mix()
        gr = Grid.random((5,) * (spec.ndim - 1) + (32,),
                         perms_halo(spec, GENERIC_AVX2), seed=0)
        reorg = generate_multiple_perms(spec, GENERIC_AVX2, gr).per_vector_mix()
        assert jig["C"] <= reorg["C"]

    def test_box2d9p_loads_equal_rows_amortized(self):
        spec = library.get("box-2d9p")
        g = jig_grid(spec, GENERIC_AVX2)
        mix = generate_jigsaw(spec, GENERIC_AVX2, g).body_mix()
        # 3 rows, each loaded at 2 fresh offsets per 2-vector block
        assert mix.loads == 6

    def test_direct_term_adds_no_shuffles(self):
        """The residualized centre column contributes zero shuffles: the
        star kernel's butterfly shuffle count equals the 1-row case."""
        spec2d = library.get("heat-2d")
        g2 = jig_grid(spec2d, GENERIC_AVX2)
        mix2 = generate_jigsaw(spec2d, GENERIC_AVX2, g2).body_mix()
        spec1d = library.get("heat-1d")
        g1 = jig_grid(spec1d, GENERIC_AVX2)
        mix1 = generate_jigsaw(spec1d, GENERIC_AVX2, g1).body_mix()
        assert mix2.cross_lane == mix1.cross_lane

    def test_t_jigsaw_halves_stores_per_step(self):
        spec = library.get("heat-1d")
        g1 = jig_grid(spec, GENERIC_AVX2)
        g2 = jig_grid(spec, GENERIC_AVX2, fusion=2)
        s1 = generate_jigsaw(spec, GENERIC_AVX2, g1).per_vector_mix()["S"]
        s2 = generate_jigsaw(spec, GENERIC_AVX2, g2,
                             time_fusion=2).per_vector_mix()["S"]
        assert s2 == pytest.approx(s1 / 2)


class TestPlanner:
    def test_auto_fusion_policies(self):
        m = GENERIC_AVX2
        assert auto_fusion(library.get("heat-1d"), m) == 2
        assert auto_fusion(library.get("heat-2d"), m) == 2
        assert auto_fusion(library.get("box-3d27p"), m) == 1  # §4.3
        assert auto_fusion(library.get("star-1d7p"), m) == 1  # r=3: 2*3 > 4

    def test_plan_validates_fusion_feasibility(self):
        with pytest.raises(PlanError):
            plan(library.get("star-1d5p"), GENERIC_AVX2, time_fusion=4)

    def test_plan_rejects_nonpositive_fusion(self):
        with pytest.raises(PlanError):
            plan(library.get("heat-1d"), GENERIC_AVX2, time_fusion=0)

    def test_plan_scheme_names(self):
        m = GENERIC_AVX2
        assert plan(library.get("heat-1d"), m, time_fusion=1).scheme == "jigsaw"
        assert plan(library.get("heat-1d"), m, time_fusion=2).scheme == "t-jigsaw"
        p = plan(library.get("heat-1d"), m, time_fusion=1, use_sdf=False)
        assert "lbv" in p.scheme

    def test_ablation_ladder_order(self):
        rungs = ablation_ladder(library.get("box-2d9p"), GENERIC_AVX2)
        names = [name for name, _ in rungs]
        assert names == ["base", "+LBV", "+SDF", "+ITM"]
        assert rungs[0][1] is None
        assert rungs[1][1].use_sdf is False
        assert rungs[3][1].time_fusion == 2

    def test_plan_describe(self):
        p = plan(library.get("heat-2d"), GENERIC_AVX2, time_fusion=2)
        text = p.describe()
        assert "2D13P" in text

    def test_jigsaw_plan_rejects_bad_fusion(self):
        with pytest.raises(PlanError):
            JigsawPlan(spec=library.get("heat-1d"), machine=GENERIC_AVX2,
                       time_fusion=0)


class TestGeometry:
    def test_required_halo_covers_fused_radius(self):
        spec = library.get("heat-2d")
        halo = required_halo(spec, GENERIC_AVX2, time_fusion=2)
        assert halo[0] == 2
        assert halo[1] >= 8

    def test_block_is_two_vectors(self):
        spec = library.get("heat-1d")
        g = jig_grid(spec, GENERIC_AVX2)
        assert generate_jigsaw(spec, GENERIC_AVX2, g).block == 8

    def test_indivisible_x_gets_scalar_epilogue(self):
        spec = library.get("heat-1d")
        g = Grid.random((28,), 8, seed=0)  # 28 % 8 != 0
        prog = generate_jigsaw(spec, GENERIC_AVX2, g, time_fusion=2)
        got = run_program(prog, g, 4)
        ref = apply_steps(spec, g, 4)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12)

    def test_epilogue_uses_fused_spec(self):
        spec = library.get("heat-1d")
        g = Grid.random((28,), 8, seed=0)
        prog = generate_jigsaw(spec, GENERIC_AVX2, g, time_fusion=2)
        assert prog.tail_spec.tag == "1D5P"  # the fused operator
