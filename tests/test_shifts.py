"""Unit tests for shifted-vector construction (ShiftCache/RowShifter).

Every shift distance is validated by executing the emitted instructions on
the SIMD machine and comparing against the sliced expectation.
"""

import numpy as np
import pytest

from repro.errors import VectorizeError
from repro.machine.isa import Affine, InstrClass, Op
from repro.machine.machine import SimdMachine
from repro.vectorize.program import Loop, ProgramBuilder
from repro.vectorize.shifts import RowShifter, ShiftCache


def run_shift_program(width, build):
    """Build a one-iteration program with `build(b) -> result register`,
    execute over a = 0..4W-1 and return (result, body_instrs)."""
    b = ProgramBuilder(width)
    result = build(b)
    b.store(result, b.mem(Affine.var("x"), array="out"))
    prog = b.build(name="t", scheme="t", loops=[Loop("x", 0, width, width)],
                   vectors_per_iter=1)
    a = np.arange(4.0 * width)
    out = np.zeros(width)
    SimdMachine(width).run(prog, {"a": a, "out": out})
    return out, prog.body


def shift_cases(widths, max_d):
    """Every (width, d) pair.  Distances within the register pair
    (d <= width) must work; anything beyond is a hard, documented
    rejection — xfail(strict) so an accidental widening of the
    supported range fails loudly instead of passing silently."""
    for width in widths:
        for d in range(0, max_d + 1):
            if d <= width:
                yield pytest.param(width, d)
            else:
                yield pytest.param(
                    width, d,
                    marks=pytest.mark.xfail(
                        strict=True, raises=VectorizeError,
                        reason=f"shift {d} exceeds the {width}-element "
                               f"register pair"),
                )


@pytest.mark.parametrize("width,d", shift_cases((2, 4, 8), 8))
def test_shift_cache_all_distances(width, d):
    def build(b):
        u = b.load(b.mem(Affine.var("x")))
        v = b.load(b.mem(Affine.var("x", const=width)))
        return ShiftCache(b, u, v).shift(d)

    out, _ = run_shift_program(width, build)
    assert np.array_equal(out, np.arange(d, d + width, dtype=float))


@pytest.mark.parametrize("width", [2, 4, 8])
def test_shift_supported_range_boundary(width):
    """The supported range is exactly 0..width: the last in-range
    distance executes, one past it raises."""
    def build(b):
        u = b.load(b.mem(Affine.var("x")))
        v = b.load(b.mem(Affine.var("x", const=width)))
        return ShiftCache(b, u, v).shift(width)

    out, _ = run_shift_program(width, build)
    assert np.array_equal(out, np.arange(width, 2 * width, dtype=float))

    b = ProgramBuilder(width)
    with pytest.raises(VectorizeError):
        ShiftCache(b, "u", "v").shift(width + 1)


def test_shift_rejects_out_of_range():
    b = ProgramBuilder(4)
    cache = ShiftCache(b, "u", "v")
    with pytest.raises(VectorizeError):
        cache.shift(5)
    with pytest.raises(VectorizeError):
        cache.shift(-1)


def test_even_shift_rejects_odd():
    b = ProgramBuilder(4)
    with pytest.raises(VectorizeError):
        ShiftCache(b, "u", "v").even_shift(1)


def test_shift_instruction_classes():
    """Even shifts are one cross-lane; odd shifts add one in-lane."""
    def build_even(b):
        u = b.load(b.mem(Affine.var("x")))
        v = b.load(b.mem(Affine.var("x", const=4)))
        return ShiftCache(b, u, v).shift(2)

    _, body = run_shift_program(4, build_even)
    klasses = [i.klass for i in body]
    assert klasses.count(InstrClass.CROSS_LANE) == 1
    assert klasses.count(InstrClass.IN_LANE) == 0

    def build_odd(b):
        u = b.load(b.mem(Affine.var("x")))
        v = b.load(b.mem(Affine.var("x", const=4)))
        return ShiftCache(b, u, v).shift(1)

    _, body = run_shift_program(4, build_odd)
    klasses = [i.klass for i in body]
    assert klasses.count(InstrClass.CROSS_LANE) == 1
    assert klasses.count(InstrClass.IN_LANE) == 1


def test_cache_shares_intermediates():
    """Shifts 1 and 3 share the even shift 2; total = 2 cross + 2 in."""
    b = ProgramBuilder(4)
    u = b.load(b.mem(Affine.var("x")))
    v = b.load(b.mem(Affine.var("x", const=4)))
    cache = ShiftCache(b, u, v)
    cache.shift(1)
    cache.shift(3)
    cache.shift(2)  # should be free (already built for shift 1/3)
    klasses = [i.klass for i in b._body]
    assert klasses.count(InstrClass.CROSS_LANE) == 1  # only shift 2's concat
    assert klasses.count(InstrClass.IN_LANE) == 2

    cached = cache.shift(1)
    assert cached == cache.shift(1)  # memoized name


@pytest.mark.parametrize("delta", range(-4, 5))
def test_row_shifter_all_deltas(delta):
    def build(b):
        prev = b.load(b.mem(Affine.var("x", const=-4)))
        cur = b.load(b.mem(Affine.var("x")))
        nxt = b.load(b.mem(Affine.var("x", const=4)))
        return RowShifter(b, prev, cur, nxt).at(delta)

    b = ProgramBuilder(4)
    result = build(b)
    b.store(result, b.mem(Affine.var("x"), array="out"))
    prog = b.build(name="t", scheme="t", loops=[Loop("x", 4, 8, 4)],
                   vectors_per_iter=1)
    a = np.arange(16.0)
    out = np.zeros(16)
    SimdMachine(4).run(prog, {"a": a, "out": out})
    assert np.array_equal(out[4:8], np.arange(4 + delta, 8 + delta,
                                              dtype=float))


def test_row_shifter_rejects_beyond_window():
    b = ProgramBuilder(4)
    shifter = RowShifter(b, "p", "c", "n")
    with pytest.raises(VectorizeError):
        shifter.at(5)
    with pytest.raises(VectorizeError):
        shifter.at(-5)
