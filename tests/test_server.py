"""Tests for the async serving layer (:mod:`repro.server`)."""

from __future__ import annotations

import asyncio
import math

import numpy as np
import pytest

from repro import obs
from repro.config import GENERIC_AVX2
from repro.errors import ReproError
from repro.server import (AdmissionController, LoadConfig, LocalClient,
                          ServerOverloaded, StencilJob, StencilServer,
                          TokenBucket, reference_results, request_schedule,
                          run_load_sync)
from repro.server.net import interior_checksum, request_tcp, serve_tcp
from repro.service import KernelService, SweepJob
from repro.stencils import library
from repro.stencils.grid import Grid

SHAPE = (16, 16)
STEPS = 2


@pytest.fixture()
def observing():
    was = obs.enabled()
    obs.enable(reset=True)
    try:
        yield
    finally:
        if not was:
            obs.disable()


def _job(kernel="heat-2d", seed=0, shape=SHAPE, steps=STEPS):
    return StencilJob(library.get(kernel), shape, steps, seed=seed)


def _expected(kernel="heat-2d", seed=0, shape=SHAPE, steps=STEPS):
    """The uncontended single-request answer every server response must
    match bitwise (the sweep engine is deterministic across backends)."""
    spec = library.get(kernel)
    grid = Grid.random(shape, spec.radius, seed=seed)
    return KernelService(GENERIC_AVX2).run(
        SweepJob(spec, grid, steps)).interior.copy()


def _serve(coro_fn, **server_kwargs):
    """Run ``await coro_fn(server)`` against a started server on a fresh
    event loop."""
    server_kwargs.setdefault("machine", GENERIC_AVX2)

    async def main():
        async with StencilServer(**server_kwargs) as server:
            return await coro_fn(server)

    return asyncio.run(main())


class TestStencilJob:
    def test_validates_shape_rank(self):
        with pytest.raises(ReproError):
            StencilJob(library.get("heat-2d"), (16,), 1, seed=0)

    def test_validates_extents_and_steps(self):
        spec = library.get("heat-2d")
        with pytest.raises(ReproError):
            StencilJob(spec, (16, 0), 1, seed=0)
        with pytest.raises(ReproError):
            StencilJob(spec, (16, 16), -1, seed=0)

    def test_requires_exactly_one_input_source(self):
        spec = library.get("heat-2d")
        grid = Grid.random((16, 16), spec.radius, seed=0)
        with pytest.raises(ReproError):
            StencilJob(spec, (16, 16), 1)  # neither seed nor grid
        with pytest.raises(ReproError):
            StencilJob(spec, (16, 16), 1, seed=0, grid=grid)

    def test_batch_key_coalesces_across_seeds_not_shapes(self):
        a = _job(seed=0)
        b = _job(seed=1)
        c = _job(seed=0, shape=(16, 32))
        assert a.batch_key() == b.batch_key()
        assert a.batch_key() != c.batch_key()

    def test_materialize_is_deterministic(self):
        a, b = _job(seed=3), _job(seed=3)
        assert np.array_equal(a.materialize().data, b.materialize().data)


class TestServerValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"max_batch": 2.0},
        {"batch_window_s": -0.1},
        {"deadline_margin_s": -1.0},
        {"executor_workers": 0},
        {"fault_retries": -1},
        {"shed_occupancy": 0.0},
        {"interp_occupancy": 1.5},
        {"shed_occupancy": 0.9, "interp_occupancy": 0.5},
    ])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ReproError):
            StencilServer(machine=GENERIC_AVX2, **kwargs)

    def test_rejects_service_plus_construction_keywords(self):
        svc = KernelService(GENERIC_AVX2)
        with pytest.raises(ReproError):
            StencilServer(svc, machine=GENERIC_AVX2)
        with pytest.raises(ReproError):
            StencilServer(svc, run_workers=2)

    def test_submit_requires_running_server(self):
        server = StencilServer(machine=GENERIC_AVX2)
        with pytest.raises(ServerOverloaded) as err:
            asyncio.run(server.submit(_job()))
        assert err.value.reason == "closed"


class TestServing:
    def test_single_request_is_bitwise_correct(self):
        async def go(server):
            return await server.submit(_job(seed=5))

        res = _serve(go)
        assert np.array_equal(res.grid.interior, _expected(seed=5))
        assert res.batch_size == 1 and res.latency_s > 0
        assert res.deadline_met

    def test_concurrent_same_key_requests_share_one_batch(self):
        async def go(server):
            return await asyncio.gather(
                *(server.submit(_job(seed=s % 3)) for s in range(6)))

        results = _serve(go, batch_window_s=0.05, max_batch=16)
        assert all(r.batch_size == 6 for r in results)
        for s, r in enumerate(results):
            assert np.array_equal(r.grid.interior, _expected(seed=s % 3))

    def test_full_batch_flushes_before_window(self):
        async def go(server):
            return await asyncio.gather(
                *(server.submit(_job(seed=0)) for _ in range(4)))

        # a 10 s window would time the test out if filling didn't flush
        results = _serve(go, batch_window_s=10.0, max_batch=2)
        assert {r.batch_size for r in results} == {2}

    def test_per_tenant_metrics_and_latency_histograms(self, observing):
        async def go(server):
            await asyncio.gather(
                server.submit(_job(seed=0), tenant="acme"),
                server.submit(_job(seed=1), tenant="acme"),
                server.submit(_job(seed=2), tenant="zeta"))

        _serve(go)
        metrics = obs.snapshot()["metrics"]
        counters = metrics["counters"]
        assert counters["server.requests"] == 3
        assert counters["server.requests.tenant.acme"] == 2
        assert counters["server.requests.tenant.zeta"] == 1
        assert counters["server.completed"] == 3
        assert counters["server.admission.accepted"] == 3
        hists = metrics["histograms"]
        assert hists["server.latency_ms.tenant.acme"]["count"] == 2
        assert hists["server.latency_ms.tenant.zeta"]["count"] == 1
        assert metrics["gauges"]["server.queue_depth"] == 0

    def test_forced_interp_backend_is_bitwise_identical(self):
        async def go(server):
            return await asyncio.gather(
                *(server.submit(_job(seed=s)) for s in range(3)))

        # occupancy rungs so low every flush pins the interp backend
        results = _serve(go, max_queue_depth=64, shed_occupancy=0.01,
                         interp_occupancy=0.01)
        for s, r in enumerate(results):
            assert np.array_equal(r.grid.interior, _expected(seed=s))

    def test_overload_ladder_sheds_batch_size(self):
        server = StencilServer(machine=GENERIC_AVX2, max_queue_depth=10,
                               max_batch=8, shed_occupancy=0.5,
                               interp_occupancy=0.75)
        assert server._effective_max_batch() == 8
        assert not server._force_interp()
        server._inflight = 5  # occupancy 0.5: rung 1
        assert server._effective_max_batch() == 2
        assert not server._force_interp()
        server._inflight = 8  # occupancy 0.8: rung 2
        assert server._force_interp()


class TestTokenBucket:
    def test_exhaustion_and_refill(self):
        t = [0.0]
        bucket = TokenBucket(2.0, 3.0, clock=lambda: t[0])
        assert [bucket.try_take() for _ in range(4)] == [
            True, True, True, False]
        t[0] = 1.0  # 2 tokens/s refill
        assert bucket.available() == pytest.approx(2.0)
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()

    def test_burst_caps_refill(self):
        t = [0.0]
        bucket = TokenBucket(5.0, 2.0, clock=lambda: t[0])
        t[0] = 100.0
        assert bucket.available() == pytest.approx(2.0)

    def test_unlimited_rate(self):
        bucket = TokenBucket(math.inf, 1.0)
        assert all(bucket.try_take() for _ in range(100))

    def test_validation(self):
        with pytest.raises(ReproError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ReproError):
            TokenBucket(1.0, 0.5)


class TestAdmission:
    def test_check_order_deadline_queue_quota(self):
        t = [0.0]
        adm = AdmissionController(max_queue_depth=2, quota_rate=1.0,
                                  quota_burst=1.0, clock=lambda: t[0])
        # an expired deadline is rejected before any token is consumed
        assert adm.check("a", 0, 0.0) == "deadline"
        assert adm.check("a", 0, -1.0) == "deadline"
        assert adm.bucket("a").tokens == 1.0
        # a full queue is rejected before any token is consumed
        assert adm.check("a", 2, None) == "queue"
        assert adm.bucket("a").tokens == 1.0
        # only an actual admission pays a token
        assert adm.check("a", 0, None) is None
        assert adm.check("a", 0, None) == "quota"
        t[0] = 1.0  # refill restores admission
        assert adm.check("a", 0, None) is None

    def test_quota_is_per_tenant(self):
        adm = AdmissionController(max_queue_depth=10, quota_rate=1e-6,
                                  quota_burst=1.0)
        assert adm.check("a", 0, None) is None
        assert adm.check("a", 0, None) == "quota"
        assert adm.check("b", 0, None) is None  # b has its own bucket
        assert adm.tenants() == ("a", "b")

    def test_validation(self):
        with pytest.raises(ReproError):
            AdmissionController(max_queue_depth=0, quota_rate=1.0)
        with pytest.raises(ReproError):
            AdmissionController(max_queue_depth=1, quota_rate=-1.0)
        with pytest.raises(ReproError):
            AdmissionController(max_queue_depth=1, quota_rate=1.0,
                                quota_burst=0.0)


class TestAdmissionEdgeCases:
    """The server-level admission contract (satellite: edge cases)."""

    def test_expired_deadline_rejected_at_enqueue(self, observing):
        async def go(server):
            with pytest.raises(ServerOverloaded) as err:
                await server.submit(_job(), tenant="late", deadline_s=0.0)
            return err.value

        exc = _serve(go)
        assert exc.reason == "deadline" and exc.tenant == "late"
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["server.admission.rejected"] == 1
        assert counters["server.admission.rejected.reason.deadline"] == 1
        assert counters["server.admission.rejected.tenant.late"] == 1
        assert "server.admission.accepted" not in counters

    def test_nan_deadline_is_an_error_not_a_rejection(self):
        async def go(server):
            with pytest.raises(ReproError):
                await server.submit(_job(), deadline_s=float("nan"))

        _serve(go)

    def test_queue_full_rejections_match_counters(self, observing):
        async def go(server):
            return await asyncio.gather(
                *(server.submit(_job(seed=s)) for s in range(6)),
                return_exceptions=True)

        # all six admission checks run before any batch completes, so
        # exactly depth-many are admitted and the rest bounce
        outcomes = _serve(go, max_queue_depth=2, batch_window_s=0.01)
        rejected = [o for o in outcomes if isinstance(o, ServerOverloaded)]
        completed = [o for o in outcomes if not isinstance(o, Exception)]
        assert len(rejected) == 4 and len(completed) == 2
        assert all(o.reason == "queue" for o in rejected)
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["server.admission.rejected"] == 4
        assert counters["server.admission.rejected.reason.queue"] == 4
        assert counters["server.admission.accepted"] == 2
        assert counters["server.completed"] == 2

    def test_quota_exhaustion_and_refill(self):
        async def go(server):
            outcomes = []
            for _ in range(4):
                try:
                    outcomes.append(await server.submit(_job(),
                                                        tenant="metered"))
                except ServerOverloaded as exc:
                    outcomes.append(exc)
            # manual refill (the rate is ~0): admission recovers
            server.admission.bucket("metered").tokens = 1.0
            outcomes.append(await server.submit(_job(), tenant="metered"))
            return outcomes

        outcomes = _serve(go, quota_rate=1e-9, quota_burst=2.0)
        kinds = ["ok" if not isinstance(o, Exception) else o.reason
                 for o in outcomes]
        assert kinds == ["ok", "ok", "quota", "quota", "ok"]

    def test_flush_order_follows_deadlines_not_arrival(self):
        async def go(server):
            lazy = server.submit(_job("heat-2d"), deadline_s=0.8)
            urgent = server.submit(_job("box-2d9p"), deadline_s=0.3)
            await asyncio.gather(lazy, urgent)
            return list(server.flush_log)

        # the window alone would flush heat-2d (opened first) first; the
        # deadline-ordering contract dispatches the urgent batch first
        log = _serve(go, batch_window_s=5.0)
        assert log == [_job("box-2d9p").batch_key(),
                       _job("heat-2d").batch_key()]

    def test_stop_drains_open_batches(self):
        async def go(server):
            # window far beyond the test: only stop() can flush this
            task = asyncio.ensure_future(server.submit(_job(seed=9)))
            await asyncio.sleep(0.01)
            return task

        async def main():
            server = StencilServer(machine=GENERIC_AVX2,
                                   batch_window_s=60.0)
            await server.start()
            task = await go(server)
            await server.stop()
            return await task

        res = asyncio.run(main())
        assert np.array_equal(res.grid.interior, _expected(seed=9))


class TestLocalClient:
    def test_blocking_submit(self):
        with LocalClient(machine=GENERIC_AVX2) as client:
            res = client.submit(_job(seed=2), tenant="sync")
        assert np.array_equal(res.grid.interior, _expected(seed=2))
        assert res.tenant == "sync"

    def test_submit_all_collects_results_and_rejections(self):
        jobs = [
            _job(seed=0),
            (_job(seed=1), "acme"),
            (_job(seed=0), "late", 0.0),  # expired: collected, not raised
        ]
        with LocalClient(machine=GENERIC_AVX2) as client:
            out = client.submit_all(jobs)
        assert np.array_equal(out[0].grid.interior, _expected(seed=0))
        assert np.array_equal(out[1].grid.interior, _expected(seed=1))
        assert isinstance(out[2], ServerOverloaded)
        assert out[2].reason == "deadline"

    def test_rejects_server_plus_keywords(self):
        with pytest.raises(ReproError):
            LocalClient(StencilServer(machine=GENERIC_AVX2), run_workers=2)


class TestLoadGenerator:
    def test_schedule_is_deterministic_and_mixed(self):
        cfg = LoadConfig(requests=8, tenants=2, kernels=("heat-2d",),
                         shape=SHAPE, steps=STEPS, seeds=2)
        a, b = request_schedule(cfg), request_schedule(cfg)
        assert [x[0] for x in a] == [x[0] for x in b]
        assert {tenant for _, _, tenant in a} == {"t0", "t1"}
        assert {job.seed for _, job, _ in a} == {0, 1}

    def test_run_load_sync_verifies_bitwise(self):
        cfg = LoadConfig(requests=12, tenants=3, kernels=("heat-2d",),
                         shape=SHAPE, steps=STEPS, seeds=2)
        report = run_load_sync(cfg, references=reference_results(cfg),
                               machine=GENERIC_AVX2, max_batch=4,
                               batch_window_s=0.002)
        assert report.completed == 12 and report.ok
        assert report.bitwise_ok and report.goodput_rps > 0
        assert report.p99_ms >= report.p50_ms

    def test_config_validation(self):
        with pytest.raises(ReproError):
            LoadConfig(requests=0)
        with pytest.raises(ReproError):
            LoadConfig(kernels=())


class TestPercentile:
    """Nearest-rank percentile edge cases — including the binary
    float-rounding regression (``ceil(28 / 100 * 25)`` is 8, not 7)."""

    def test_single_sample_is_every_percentile(self):
        from repro.server.loadgen import percentile
        for pct in (0.0, 50.0, 99.0, 100.0):
            assert percentile([7.0], pct) == 7.0

    def test_empty_is_nan(self):
        from repro.server.loadgen import percentile
        assert math.isnan(percentile([], 99.0))

    def test_p28_of_25_regression(self):
        # 0.28 * 25 == 7.000000000000001 in binary; the old formula
        # ceil'd that to rank 8 — nearest-rank says the 7th smallest
        from repro.server.loadgen import percentile
        values = [float(v) for v in range(1, 26)]
        assert percentile(values, 28.0) == 7.0

    def test_matches_exact_nearest_rank(self):
        from fractions import Fraction

        from repro.server.loadgen import percentile
        values = [float(v) for v in range(1, 101)]
        for tenth in range(1, 1001):
            pct = tenth / 10.0
            exact = max(1, math.ceil(Fraction(tenth, 10) * 100 / 100))
            assert percentile(values, pct) == float(exact), pct

    def test_extremes_and_unsorted_input(self):
        from repro.server.loadgen import percentile
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 3.0
        assert percentile(values, 50.0) == 2.0

    def test_out_of_range_pct_raises(self):
        from repro.server.loadgen import percentile
        for pct in (-0.1, 100.1, float("nan")):
            with pytest.raises(ReproError):
                percentile([1.0], pct)


class TestTcpFrontEnd:
    def test_pipelined_requests_checksums_and_bad_request(self):
        async def main():
            async with StencilServer(machine=GENERIC_AVX2) as server:
                tcp = await serve_tcp(server, port=0)
                port = tcp.sockets[0].getsockname()[1]
                responses = await request_tcp("127.0.0.1", port, [
                    {"kernel": "heat-2d", "shape": list(SHAPE),
                     "steps": STEPS, "seed": 0},
                    {"kernel": "heat-2d", "shape": list(SHAPE),
                     "steps": STEPS, "seed": 1, "tenant": "acme"},
                    {"kernel": "no-such-kernel", "shape": [8, 8],
                     "steps": 1, "seed": 0},
                    {"kernel": "heat-2d", "shape": [8],  # rank mismatch
                     "steps": 1, "seed": 0},
                ])
                tcp.close()
                await tcp.wait_closed()
                return responses

        ok0, ok1, bad_kernel, bad_shape = asyncio.run(main())
        assert ok0["ok"] and ok1["ok"]
        assert ok0["checksum"] == interior_checksum(_expected(seed=0))
        assert ok1["checksum"] == interior_checksum(_expected(seed=1))
        assert ok0["shape"] == list(SHAPE) and ok0["batch_size"] >= 1
        for bad in (bad_kernel, bad_shape):
            assert not bad["ok"] and bad["reason"] == "bad_request"

    def test_rejection_carries_reason_on_the_wire(self):
        async def main():
            async with StencilServer(machine=GENERIC_AVX2) as server:
                tcp = await serve_tcp(server, port=0)
                port = tcp.sockets[0].getsockname()[1]
                (resp,) = await request_tcp("127.0.0.1", port, [
                    {"kernel": "heat-2d", "shape": list(SHAPE),
                     "steps": STEPS, "seed": 0, "deadline_ms": 0}])
                tcp.close()
                await tcp.wait_closed()
                return resp

        resp = asyncio.run(main())
        assert not resp["ok"] and resp["reason"] == "deadline"


class TestChaosServerStage:
    def test_server_stage_bitwise_identical_under_faults(self, tmp_path):
        from repro.faults.chaos import required_sites, run_chaos
        report = run_chaos(kernel="heat-2d", size=(16, 16), steps=2,
                           seed=1, backends=("thread",),
                           stages=("server",))
        assert report.ok, report.summary()
        assert not report.mismatches
        assert set(required_sites(("server",))) <= {
            site for site, n in report.injected.items() if n >= 1}


class TestObsSnapshotIsolation:
    """Regression (satellite 6): exporting metrics must never mutate or
    alias the live registry — a `repro serve --metrics-json` snapshot is
    a point-in-time copy."""

    def test_histogram_export_is_a_copy(self, observing):
        hist = obs.histogram("server.latency_ms.tenant.t0")
        hist.observe(5.0)
        exported = obs.snapshot()["metrics"]["histograms"][
            "server.latency_ms.tenant.t0"]
        exported["count"] = 999
        exported["buckets"]["<=2^3"] = 999
        hist.observe(6.0)
        fresh = obs.snapshot()["metrics"]["histograms"][
            "server.latency_ms.tenant.t0"]
        assert fresh["count"] == 2
        assert fresh["buckets"] == {"<=2^3": 2}

    def test_snapshot_is_stable_across_calls(self, observing):
        obs.counter("server.completed").inc(3)
        obs.histogram("server.latency_ms").observe(1.5)
        first = obs.snapshot()["metrics"]
        second = obs.snapshot()["metrics"]
        assert first == second
