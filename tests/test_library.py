"""Unit tests for the kernel library (Table 3 parity)."""

import pytest

from repro.errors import SpecError
from repro.stencils import library
from repro.stencils.library import TABLE3, KernelConfig, table3_config

#: kernel -> (points, ndim, is_star) as the paper's Table 3 lists them
EXPECTED = {
    "heat-1d": (3, 1, True),
    "star-1d5p": (5, 1, True),
    "star-1d7p": (7, 1, True),
    "heat-2d": (5, 2, True),
    "star-2d9p": (9, 2, True),
    "box-2d9p": (9, 2, False),
    "heat-3d": (7, 3, True),
    "box-3d27p": (27, 3, False),
}


@pytest.mark.parametrize("kernel", sorted(EXPECTED))
def test_points_and_shape_match_table3(kernel):
    spec = library.get(kernel)
    points, ndim, is_star = EXPECTED[kernel]
    assert spec.npoints == points
    assert spec.ndim == ndim
    assert spec.is_star == is_star


@pytest.mark.parametrize("kernel", library.names())
def test_all_kernels_are_normalized(kernel):
    assert library.get(kernel).coefficient_sum() == pytest.approx(1.0)


@pytest.mark.parametrize(
    "kernel",
    [k for k in library.names() if k not in ("advection-1d", "varcoef-2d5p")])
def test_smoothing_kernels_are_symmetric(kernel):
    # advection-1d (upwind) and varcoef-2d5p (direction-dependent weights)
    # are deliberately asymmetric; all smoothing kernels are
    # centro-symmetric (the paper's §3.2 observation)
    assert library.get(kernel).is_symmetric


def test_extra_kernels_present():
    assert library.get("box-2d25p").npoints == 25
    assert library.get("star-3d13p").npoints == 13
    assert not library.get("advection-1d").is_symmetric


def test_unknown_kernel_raises():
    with pytest.raises(SpecError):
        library.get("nope")


def test_names_sorted_and_complete():
    names = library.names()
    assert list(names) == sorted(names)
    assert set(EXPECTED) <= set(names)


def test_box2d9p_matches_figure4_structure():
    # ring 1/12, centre 1/3 — rank-1 ones + centre point (paper Figure 4)
    spec = library.get("box-2d9p")
    table = spec.coefficient_table()
    assert table[(0, 0)] == pytest.approx(1 / 3)
    ring = [c for off, c in table.items() if off != (0, 0)]
    assert all(c == pytest.approx(1 / 12) for c in ring)


def test_box3d27p_separable():
    import numpy as np
    spec = library.get("box-3d27p")
    arr = spec.coefficient_array()
    b = np.array([0.25, 0.5, 0.25])
    expect = b[:, None, None] * b[None, :, None] * b[None, None, :]
    assert np.allclose(arr, expect)


class TestTable3Configs:
    def test_eight_rows(self):
        assert len(TABLE3) == 8

    @pytest.mark.parametrize("cfg", TABLE3, ids=lambda c: c.kernel)
    def test_config_consistency(self, cfg: KernelConfig):
        spec = cfg.spec
        assert len(cfg.problem_size) == spec.ndim
        assert cfg.points == spec.npoints
        assert cfg.grid_points() == pytest.approx(
            int.__mul__(1, 1) * _prod(cfg.problem_size)
        )

    @pytest.mark.parametrize("cfg", TABLE3, ids=lambda c: c.kernel)
    def test_blocking_satisfies_tessellation_constraint(self, cfg):
        # the paper's blocking column obeys 2*r*Tb <= tile on every axis
        r = max(cfg.spec.radius)
        assert 2 * r * cfg.time_depth <= min(cfg.tile_shape)

    def test_tile_shape_rank(self):
        for cfg in TABLE3:
            assert len(cfg.tile_shape) == cfg.spec.ndim

    def test_3d_rows_get_implied_time_depth(self):
        cfg = table3_config("heat-3d")
        assert cfg.time_depth == 5  # min(20,20,10) / (2*1)

    def test_1d_rows_keep_explicit_depth(self):
        assert table3_config("heat-1d").time_depth == 1000
        assert table3_config("star-1d5p").time_depth == 500

    def test_lookup_unknown_raises(self):
        with pytest.raises(SpecError):
            table3_config("nope")


def _prod(xs):
    n = 1
    for x in xs:
        n *= x
    return n
