"""float32 (4-elements-per-lane) support tests.

The paper's §3.1 claims LBV "is not constrained by register length or
specific application scenarios"; these tests exercise the single-precision
instantiation: the ps-family shuffle ISA (vshufps / vpermilps /
vunpck*ps), the generalized shift chains, and the full scheme matrix on
float32 grids at SSE/AVX2/AVX-512 widths.
"""

import numpy as np
import pytest

from repro.config import (
    GENERIC_AVX2,
    GENERIC_AVX2_F32,
    GENERIC_AVX512_F32,
    GENERIC_SSE_F32,
)
from repro.errors import IsaError, MachineError, VectorizeError
from repro.core.jigsaw import generate_jigsaw, required_halo as jig_halo
from repro.machine.isa import Affine, Instr, Op, execute_alu
from repro.machine.machine import SimdMachine
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid
from repro.vectorize.driver import run_program
from repro.vectorize.program import Loop, ProgramBuilder
from repro.vectorize.shifts import ShiftCache

F32_MACHINES = (GENERIC_SSE_F32, GENERIC_AVX2_F32, GENERIC_AVX512_F32)


def vec32(*xs):
    return np.array(xs, dtype=np.float32)


def run_alu(instr, width=8, **regs):
    regs = {k: vec32(*v) for k, v in regs.items()}
    execute_alu(instr, regs, width, epl=4, dtype=np.float32)
    return regs[instr.dst]


class TestPsIsa:
    def test_shufps_field_selection(self):
        out = run_alu(Instr(Op.SHUFPS, dst="d", srcs=("a", "b"), imm=0x1B),
                      width=4, a=(0, 1, 2, 3), b=(4, 5, 6, 7))
        # fields (3, 2, 1, 0): (a3, a2, b1, b0)
        assert np.array_equal(out, [3, 2, 5, 4])

    def test_shufps_same_imm_every_lane(self):
        out = run_alu(Instr(Op.SHUFPS, dst="d", srcs=("a", "b"), imm=0x88),
                      a=tuple(range(8)), b=tuple(range(8, 16)))
        assert np.array_equal(out, [0, 2, 8, 10, 4, 6, 12, 14])

    def test_permilps(self):
        out = run_alu(Instr(Op.PERMILPS, dst="d", srcs=("a",), imm=0x1B),
                      width=4, a=(0, 1, 2, 3))
        assert np.array_equal(out, [3, 2, 1, 0])

    def test_unpck_pair(self):
        e = (0, 2, 8, 10, 4, 6, 12, 14)
        o = (1, 3, 9, 11, 5, 7, 13, 15)
        lo = run_alu(Instr(Op.UNPCKLPS, dst="d", srcs=("e", "o")), e=e, o=o)
        hi = run_alu(Instr(Op.UNPCKHPS, dst="d", srcs=("e", "o")), e=e, o=o)
        assert np.array_equal(lo, list(range(8)))
        assert np.array_equal(hi, list(range(8, 16)))

    def test_perm2f128_four_elem_lanes(self):
        out = run_alu(Instr(Op.PERM2F128, dst="d", srcs=("a", "b"),
                            imm=(1, 2)),
                      a=tuple(range(8)), b=tuple(range(8, 16)))
        assert np.array_equal(out, [4, 5, 6, 7, 8, 9, 10, 11])

    def test_pd_family_rejected_on_f32_lanes(self):
        with pytest.raises(IsaError):
            run_alu(Instr(Op.SHUFPD, dst="d", srcs=("a", "b"), imm=0),
                    a=tuple(range(8)), b=tuple(range(8)))

    def test_ps_family_rejected_on_f64_lanes(self):
        regs = {"a": np.zeros(4), "b": np.zeros(4)}
        with pytest.raises(IsaError):
            execute_alu(Instr(Op.SHUFPS, dst="d", srcs=("a", "b"), imm=0),
                        regs, 4, epl=2)

    def test_bad_imm(self):
        with pytest.raises(IsaError):
            run_alu(Instr(Op.SHUFPS, dst="d", srcs=("a", "b"), imm=256),
                    a=tuple(range(8)), b=tuple(range(8)))


class TestMachineDtype:
    def test_machine_validates_lane_divisibility(self):
        with pytest.raises(MachineError):
            SimdMachine(2, elem_bytes=4)  # half a float32 lane

    def test_machine_rejects_other_sizes(self):
        with pytest.raises(MachineError):
            SimdMachine(8, elem_bytes=2)

    def test_driver_checks_grid_dtype(self):
        spec = library.get("heat-1d")
        m = GENERIC_AVX2_F32
        g64 = Grid.random((96,), jig_halo(spec, m), seed=0)  # float64 grid
        prog = generate_jigsaw(spec, m, g64)
        with pytest.raises(VectorizeError):
            run_program(prog, g64, 1)

    def test_registers_hold_f32(self):
        m = SimdMachine(8, elem_bytes=4)
        assert m.dtype is np.float32 and m.epl == 4


def _f32_shift_cases():
    """(width, d) matrix for the f32 shift chains.  d <= width must
    execute; beyond the register pair is a hard rejection, marked
    xfail(strict) so the supported range can only widen deliberately."""
    for width in (4, 8, 16):
        for d in range(0, 17):
            if d <= width:
                yield pytest.param(width, d)
            else:
                yield pytest.param(
                    width, d,
                    marks=pytest.mark.xfail(
                        strict=True, raises=VectorizeError,
                        reason=f"shift {d} exceeds the {width}-element "
                               f"register pair"),
                )


class TestShiftsF32:
    @pytest.mark.parametrize("width,d", _f32_shift_cases())
    def test_all_distances(self, width, d):
        b = ProgramBuilder(width, elem_bytes=4)
        u = b.load(b.mem(Affine.var("x")))
        v = b.load(b.mem(Affine.var("x", const=width)))
        r = ShiftCache(b, u, v).shift(d)
        b.store(r, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="t", scheme="t",
                       loops=[Loop("x", 0, width, width)],
                       vectors_per_iter=1)
        a = np.arange(4.0 * width, dtype=np.float32)
        out = np.zeros(width, dtype=np.float32)
        SimdMachine(width, elem_bytes=4).run(prog, {"a": a, "out": out})
        assert np.array_equal(out, np.arange(d, d + width,
                                             dtype=np.float32))

    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_supported_range_boundary(self, width):
        """shift(width) is the last supported distance at 4-byte lanes;
        width+1 raises."""
        b = ProgramBuilder(width, elem_bytes=4)
        u = b.load(b.mem(Affine.var("x")))
        v = b.load(b.mem(Affine.var("x", const=width)))
        r = ShiftCache(b, u, v).shift(width)
        b.store(r, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="t", scheme="t",
                       loops=[Loop("x", 0, width, width)],
                       vectors_per_iter=1)
        a = np.arange(4.0 * width, dtype=np.float32)
        out = np.zeros(width, dtype=np.float32)
        SimdMachine(width, elem_bytes=4).run(prog, {"a": a, "out": out})
        assert np.array_equal(out, np.arange(width, 2 * width,
                                             dtype=np.float32))
        b = ProgramBuilder(width, elem_bytes=4)
        with pytest.raises(VectorizeError):
            ShiftCache(b, "u", "v").shift(width + 1)

    def test_sublane_shift_cost(self):
        """rem=2 costs one vshufps over the lane pair; rem=1/3 two."""
        b = ProgramBuilder(8, elem_bytes=4)
        cache = ShiftCache(b, "u", "v")
        before = len(b._body)
        cache.shift(2)
        assert len(b._body) - before == 2  # 1 lane concat + 1 shufps
        before = len(b._body)
        cache.shift(1)  # shares the lane concat and the mid
        assert len(b._body) - before == 1

    def test_lane_aligned_rejects_sublane(self):
        b = ProgramBuilder(8, elem_bytes=4)
        with pytest.raises(VectorizeError):
            ShiftCache(b, "u", "v").even_shift(2)  # not lane-aligned at E=4


def f32_grid(spec, halo, nx, seed=0):
    shape = (4,) * (spec.ndim - 1) + (nx,)
    return Grid.random(shape, halo, seed=seed, dtype=np.float32)


class TestSchemesF32:
    @pytest.mark.parametrize("machine", F32_MACHINES,
                             ids=lambda m: m.name)
    @pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d", "box-2d9p",
                                        "heat-3d"])
    def test_jigsaw_matches_reference(self, machine, kernel):
        spec = library.get(kernel)
        g = f32_grid(spec, jig_halo(spec, machine),
                     nx=6 * 2 * machine.vector_elems, seed=1)
        prog = generate_jigsaw(spec, machine, g)
        got = run_program(prog, g, 1)
        ref = apply_steps(spec, g, 1)
        assert np.allclose(got.interior, ref.interior, rtol=2e-4, atol=1e-6)

    def test_t_jigsaw_fusion_f32(self):
        m = GENERIC_AVX2_F32
        spec = library.get("heat-2d")
        g = f32_grid(spec, jig_halo(spec, m, time_fusion=2), nx=96, seed=2)
        prog = generate_jigsaw(spec, m, g, time_fusion=2)
        got = run_program(prog, g, 4)
        ref = apply_steps(spec, g, 4)
        assert np.allclose(got.interior, ref.interior, rtol=5e-4, atol=1e-6)

    def test_program_uses_ps_family_only(self):
        m = GENERIC_AVX2_F32
        spec = library.get("box-2d9p")
        g = f32_grid(spec, jig_halo(spec, m), nx=96)
        prog = generate_jigsaw(spec, m, g)
        ops = {i.op for i in prog.body + prog.prologue}
        assert Op.SHUFPD not in ops and Op.PERMILPD not in ops
        assert Op.SHUFPS in ops or Op.UNPCKLPS in ops

    def test_cross_lane_budget_stays_low(self):
        """The §3.1 economy survives single precision: far fewer
        cross-lane shuffles than the per-neighbour approaches."""
        m = GENERIC_AVX2_F32
        spec = library.get("heat-1d")
        g = f32_grid(spec, jig_halo(spec, m), nx=96)
        pv = generate_jigsaw(spec, m, g).per_vector_mix()
        assert pv["C"] <= 2.0

    def test_elem_bytes_recorded_and_serialized(self):
        from repro.machine.serialize import dumps, loads
        m = GENERIC_AVX2_F32
        spec = library.get("heat-1d")
        g = f32_grid(spec, jig_halo(spec, m), nx=96)
        prog = generate_jigsaw(spec, m, g)
        assert prog.elem_bytes == 4
        assert loads(dumps(prog)).elem_bytes == 4


def test_validation_matrix_f32():
    from repro.validate import validate
    rep = validate(machines=(GENERIC_AVX2_F32,),
                   kernels=("heat-1d", "box-2d9p"))
    assert rep.all_ok, rep.summary()


def test_f32_machine_geometry():
    assert GENERIC_AVX2_F32.vector_elems == 8
    assert GENERIC_AVX2_F32.elems_per_lane == 4
    assert GENERIC_AVX512_F32.vector_elems == 16
    assert GENERIC_AVX2.vector_elems == 4  # f64 twin unchanged
