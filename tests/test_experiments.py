"""Shape tests for the experiment runners: each paper table/figure must
exhibit the qualitative result the paper reports."""

import pytest

from repro.config import AMD_EPYC_7V13, INTEL_XEON_6230R
from repro.errors import ExperimentError
from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments import fig7, fig8, fig9, fig10, fig11, table1, table2

MACHINES = (AMD_EPYC_7V13,)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "fig7", "fig8", "fig9", "fig10",
            "fig11", "disc",
        }

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    @pytest.mark.parametrize("name", ["table1", "table3"])
    def test_cheap_runners_produce_text(self, name):
        out = run_experiment(name)
        assert isinstance(out, str) and len(out) > 100


class TestTable1:
    def test_model_matches_paper_costs(self):
        for d in table1.data(MACHINES):
            assert d["latency"] == d["paper_latency"]
            assert d["cpi"] == d["paper_cpi"]

    def test_cross_lane_more_expensive(self):
        rows = {d["instruction"]: d for d in table1.data(MACHINES)}
        assert rows["vpermpd"]["latency"] > rows["vshufpd"]["latency"]


class TestTable2:
    def test_every_cell_present(self):
        from repro.analysis.instruction_count import TABLE2_METHODS
        rows = table2.data(AMD_EPYC_7V13)
        assert len(rows) == 6 * len(TABLE2_METHODS)
        for d in rows:
            assert len(d["measured"]) == 4
            # the paper only tabulates the three original methods; the new
            # scheme families carry analytic-vs-measured columns instead
            if d["method"] in ("auto", "reorg", "jigsaw"):
                assert d["paper"] is not None
            else:
                assert d["paper"] is None

    def test_jigsaw_beats_reorg_on_shuffles(self):
        rows = {(d["kernel"], d["method"]): d for d in table2.data(AMD_EPYC_7V13)}
        for kernel in ("heat-2d", "box-2d9p", "box-3d27p"):
            jig_c = rows[(kernel, "jigsaw")]["measured"][2]
            reorg_c = rows[(kernel, "reorg")]["measured"][2]
            assert jig_c < reorg_c


class TestFig7:
    def test_ladder_shapes(self):
        res = fig7.data(MACHINES)[AMD_EPYC_7V13.name]
        for p in res["by_size"]:
            assert p.gstencil["+LBV"] > p.gstencil["base"]
            assert p.gstencil["+SDF"] > p.gstencil["+LBV"]

    def test_run_renders(self):
        assert "Figure 7(a)" in fig7.run(MACHINES)


class TestFig8:
    def test_reductions_close_to_paper(self):
        d = fig8.data(MACHINES)[AMD_EPYC_7V13.name]
        assert d["reduction"]["shuffle"] == pytest.approx(0.6158, abs=0.10)
        assert d["reduction"]["compute"] == pytest.approx(0.2075, abs=0.10)


class TestFig9:
    def test_shapes(self):
        data = fig9.data(MACHINES)[AMD_EPYC_7V13.name]
        for kernel, d in data.items():
            series = d["series"]
            # Jigsaw beats both classical baselines at every size
            for i in range(len(d["sizes"])):
                # ">=": methods converge at the DRAM bandwidth wall (§4.3)
                assert series["jigsaw"][i] >= series["auto"][i] * 0.999, kernel
                assert series["jigsaw"][i] >= series["reorg"][i], kernel
            # ... and strictly wins while cache-resident
            assert series["jigsaw"][0] > series["reorg"][0], kernel
            # performance never improves as the working set grows
            assert series["jigsaw"][0] >= series["jigsaw"][-1]

    def test_convergence_at_dram(self):
        """§4.3: at memory-resident sizes the non-fused methods converge."""
        data = fig9.data(MACHINES)[AMD_EPYC_7V13.name]
        d = data["heat-1d"]
        last = [d["series"][m][-1] for m in ("auto", "reorg", "jigsaw")]
        assert max(last) / min(last) < 1.2

    def test_t_jigsaw_wins_1d(self):
        d = fig9.data(MACHINES)[AMD_EPYC_7V13.name]["heat-1d"]
        assert all(t >= j for t, j in zip(d["series"]["t-jigsaw"],
                                          d["series"]["jigsaw"]))

    def test_levels_traverse_hierarchy(self):
        d = fig9.data(MACHINES)[AMD_EPYC_7V13.name]["heat-1d"]
        assert d["levels"][0] in ("L1", "L2")
        assert d["levels"][-1] == "DRAM"


class TestFig10:
    @pytest.fixture(scope="class")
    def results(self):
        return fig10.data(MACHINES)[AMD_EPYC_7V13.name]

    def test_sdsl_is_slowest_everywhere(self, results):
        for kernel, r in results["per_kernel"].items():
            assert min(r, key=r.get) == "SDSL", kernel

    def test_jigsaw_family_wins_every_kernel(self, results):
        # ties happen exactly at the shared-cache bandwidth wall
        for kernel, r in results["per_kernel"].items():
            best_jig = max(v for k, v in r.items() if "Jigsaw" in k)
            best_other = max(v for k, v in r.items() if "Jigsaw" not in k)
            assert best_jig >= best_other, kernel

    def test_jigsaw_family_strictly_wins_most_kernels(self, results):
        wins = sum(
            1 for r in results["per_kernel"].values()
            if max(v for k, v in r.items() if "Jigsaw" in k)
            > max(v for k, v in r.items() if "Jigsaw" not in k)
        )
        assert wins >= 6

    def test_mean_speedup_near_paper(self, results):
        """Paper: 2.148x (AMD).  Shape goal: within ~35%."""
        assert results["mean_speedup"] == pytest.approx(2.148, rel=0.35)

    def test_t4_only_on_heat1d(self, results):
        assert "T-4 Jigsaw" in results["per_kernel"]["heat-1d"]
        assert "T-4 Jigsaw" not in results["per_kernel"]["star-1d5p"]

    def test_t4_beats_t2_on_heat1d(self, results):
        r = results["per_kernel"]["heat-1d"]
        assert r["T-4 Jigsaw"] > r["T-Jigsaw"]


class TestDisc:
    def test_every_width_correct_and_conflict_reduced(self):
        from repro.experiments import disc
        results = disc.data()
        for kernel, rows in results.items():
            for d in rows:
                assert d["correct"], (kernel, d["isa"])
                # cross-lane per vector tracks the lane count, capped by
                # lanes - 1... in practice lanes/2: never more than lanes
                assert d["cross_per_vec"] <= d["lanes"], (kernel, d["isa"])
            # single-lane SSE needs no cross-lane work at all
            assert rows[0]["cross_per_vec"] == 0


class TestFig11:
    @pytest.fixture(scope="class")
    def results(self):
        return fig11.data((AMD_EPYC_7V13, INTEL_XEON_6230R))

    def test_scaling_monotone_on_amd(self, results):
        # Intel's dual-socket curves legitimately wobble (§4.5 NUMA);
        # the single-socket AMD machine must scale monotonically.
        groups = results[AMD_EPYC_7V13.name]
        for gname, d in groups.items():
            for label, curve in d["series"].items():
                assert all(b >= a * 0.98 for a, b in zip(curve, curve[1:])), \
                    (gname, label)

    def test_1d_near_linear(self, results):
        d = results[AMD_EPYC_7V13.name]["1D"]
        curve = d["series"]["heat-1d/jigsaw"]
        cores = d["cores"]
        eff = (curve[-1] / curve[0]) / (cores[-1] / cores[0])
        assert eff > 0.9

    def test_3d_rolls_off(self, results):
        d = results[AMD_EPYC_7V13.name]["3D"]
        curve = d["series"]["heat-3d/jigsaw"]
        cores = d["cores"]
        eff = (curve[-1] / curve[0]) / (cores[-1] / cores[0])
        assert eff < 0.9

    def test_order_degrades_1d_performance(self, results):
        """Figure 11(a): higher order -> lower GStencil/s at full cores."""
        d = results[AMD_EPYC_7V13.name]["1D"]
        last = {k: v[-1] for k, v in d["series"].items()}
        assert last["heat-1d/jigsaw"] > last["star-1d5p/jigsaw"] \
            > last["star-1d7p/jigsaw"]


class TestIntelSide:
    """The AMD-focused shape tests, replayed on the dual-socket Intel
    model where cheap (fig7/fig9 shapes must hold on both machines)."""

    def test_fig7_ladder_on_intel(self):
        res = fig7.data((INTEL_XEON_6230R,))[INTEL_XEON_6230R.name]
        for p in res["by_size"]:
            assert p.gstencil["+SDF"] > p.gstencil["+LBV"] > p.gstencil["base"]

    def test_fig9_winner_on_intel(self):
        data = fig9.data((INTEL_XEON_6230R,))[INTEL_XEON_6230R.name]
        for kernel, d in data.items():
            s = d["series"]
            assert s["jigsaw"][0] > s["reorg"][0], kernel
            assert d["levels"][-1] == "DRAM"

    def test_fig10_intel_headline(self):
        d = fig10.data((INTEL_XEON_6230R,))[INTEL_XEON_6230R.name]
        assert d["mean_speedup"] == pytest.approx(2.466, rel=0.40)
        for kernel, r in d["per_kernel"].items():
            assert min(r, key=r.get) == "SDSL", kernel
