"""Tests for cost tables and the pipeline model."""

import pytest

from repro.config import AMD_EPYC_7V13, GENERIC_AVX2, INTEL_XEON_6230R
from repro.errors import ModelError
from repro.machine.costs import (
    DEFAULT_COSTS,
    ZEN3_COSTS,
    CostTable,
    OpCost,
    cost_table_for,
)
from repro.machine.isa import Op
from repro.machine.pipeline import (
    PHASED_STALL_PENALTY,
    PipelineModel,
    critical_path_cycles,
)
from repro.schemes import model_program
from repro.stencils import library


class TestCostTable:
    def test_paper_table1_values(self):
        """The cross-lane/in-lane asymmetry of the paper's Table 1."""
        t = DEFAULT_COSTS
        assert t.latency(Op.PERMPD) == 3 and t.cpi(Op.PERMPD) == 1
        assert t.latency(Op.PERM2F128) == 3 and t.cpi(Op.PERM2F128) == 1
        assert t.latency(Op.SHUFPD) == 1 and t.cpi(Op.SHUFPD) == 0.5
        assert t.latency(Op.PERMILPD) == 1 and t.cpi(Op.PERMILPD) == 1

    def test_load_latency_seven_cycles(self):
        """§3.1 quotes vmovupd at 7 cycles."""
        assert DEFAULT_COSTS.latency(Op.LOAD) == 7

    def test_with_cost_copy(self):
        t2 = DEFAULT_COSTS.with_cost(Op.FMA, latency=5)
        assert t2.latency(Op.FMA) == 5
        assert DEFAULT_COSTS.latency(Op.FMA) == 4

    def test_invalid_cost_rejected(self):
        with pytest.raises(ModelError):
            OpCost(latency=-1, cpi=1)
        with pytest.raises(ModelError):
            OpCost(latency=1, cpi=0)

    def test_machine_lookup(self):
        assert cost_table_for(INTEL_XEON_6230R) is DEFAULT_COSTS
        assert cost_table_for(AMD_EPYC_7V13) is ZEN3_COSTS
        assert cost_table_for(GENERIC_AVX2) is DEFAULT_COSTS

    def test_missing_entry_raises(self):
        empty = CostTable(name="empty", costs={})
        with pytest.raises(ModelError):
            empty.latency(Op.FMA)


class TestCriticalPath:
    def test_chain_accumulates_latency(self):
        from repro.machine.isa import Instr
        body = [
            Instr(Op.SETZERO, dst="a"),
            Instr(Op.ADD, dst="b", srcs=("a", "a")),
            Instr(Op.ADD, dst="c", srcs=("b", "b")),
        ]
        cp = critical_path_cycles(body, DEFAULT_COSTS)
        assert cp == pytest.approx(0.5 + 4 + 4)

    def test_independent_ops_dont_chain(self):
        from repro.machine.isa import Instr
        body = [
            Instr(Op.ADD, dst="a", srcs=("x", "y")),
            Instr(Op.ADD, dst="b", srcs=("x", "y")),
        ]
        assert critical_path_cycles(body, DEFAULT_COSTS) == pytest.approx(4)

    def test_loop_carried_inputs_start_free(self):
        from repro.machine.isa import Instr
        body = [Instr(Op.ADD, dst="a", srcs=("carried", "carried"))]
        assert critical_path_cycles(body, DEFAULT_COSTS) == pytest.approx(4)


class TestPipelineModel:
    def test_empty_body_rejected(self):
        prog = model_program("auto", library.get("heat-1d"), GENERIC_AVX2)
        object.__setattr__(prog, "body", ())
        with pytest.raises(ModelError):
            PipelineModel(GENERIC_AVX2).estimate(prog)

    def test_auto_pays_unaligned_and_stall(self):
        pm = PipelineModel(GENERIC_AVX2)
        prog = model_program("auto", library.get("box-2d9p"), GENERIC_AVX2)
        est = pm.estimate(prog)
        # 3 aligned (dx=0 column) + 6 unaligned loads at 2x throughput
        assert est.port_cycles["load"] == pytest.approx(3 * 0.5 + 6 * 1.0)
        assert est.stall_penalty == PHASED_STALL_PENALTY

    def test_reorg_is_shuffle_heavy(self):
        pm = PipelineModel(GENERIC_AVX2)
        reorg_prog = model_program("reorg", library.get("box-2d9p"),
                                   GENERIC_AVX2)
        jig_prog = model_program("jigsaw", library.get("box-2d9p"),
                                 GENERIC_AVX2)
        reorg = pm.estimate(reorg_prog).port_cycles["shuffle"] \
            / reorg_prog.vectors_per_iter
        jig = pm.estimate(jig_prog).port_cycles["shuffle"] \
            / jig_prog.vectors_per_iter
        assert reorg > 2 * jig

    def test_jigsaw_not_stalled(self):
        pm = PipelineModel(GENERIC_AVX2)
        est = pm.estimate(model_program("jigsaw", library.get("heat-2d"),
                                        GENERIC_AVX2))
        assert est.stall_penalty == 0.0

    def test_cycles_per_vector_ordering(self):
        """The §3 claim in model form: Jigsaw needs fewer cycles per output
        vector than both classical baselines on every kernel."""
        pm = PipelineModel(GENERIC_AVX2)
        for kernel in ("heat-1d", "heat-2d", "box-2d9p", "heat-3d",
                       "box-3d27p"):
            spec = library.get(kernel)
            cyc = {
                s: pm.cycles_per_vector(model_program(s, spec, GENERIC_AVX2))
                for s in ("auto", "reorg", "jigsaw")
            }
            assert cyc["jigsaw"] < cyc["auto"], kernel
            assert cyc["jigsaw"] < cyc["reorg"], kernel

    def test_folding_slower_than_jigsaw(self):
        pm = PipelineModel(GENERIC_AVX2)
        spec = library.get("heat-2d")
        fold = pm.cycles_per_vector(model_program("folding", spec,
                                                  GENERIC_AVX2))
        jig = pm.cycles_per_vector(model_program("jigsaw", spec,
                                                 GENERIC_AVX2))
        assert fold > jig

    def test_throughput_bound_property(self):
        pm = PipelineModel(GENERIC_AVX2)
        est = pm.estimate(model_program("auto", library.get("heat-1d"),
                                        GENERIC_AVX2))
        assert est.throughput_bound == max(est.port_cycles.values())
