"""The ``BENCH_*.json`` history contract: append_history keeps the
artifact bounded (newest ``cap`` entries) and drops consecutive
duplicate runs instead of inflating the file every re-run."""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "benchmarks"))

from _bench_utils import HISTORY_CAP, append_history, load_history  # noqa: E402


def _read(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


class TestLoadHistory:
    def test_missing_file_starts_fresh(self, tmp_path):
        assert load_history(str(tmp_path / "nope.json")) == []

    def test_corrupt_file_starts_fresh(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json", encoding="utf-8")
        assert load_history(str(p)) == []

    def test_legacy_single_run_dict_is_wrapped(self, tmp_path):
        p = tmp_path / "legacy.json"
        p.write_text(json.dumps({"speedup": 3.0}), encoding="utf-8")
        assert load_history(str(p)) == [{"speedup": 3.0}]

    def test_non_dict_entries_are_dropped(self, tmp_path):
        p = tmp_path / "mixed.json"
        p.write_text(json.dumps([{"a": 1}, "junk", 7, {"b": 2}]),
                     encoding="utf-8")
        assert load_history(str(p)) == [{"a": 1}, {"b": 2}]


class TestAppendHistory:
    def test_appends_and_timestamps(self, tmp_path):
        p = str(tmp_path / "bench.json")
        append_history(p, {"speedup": 1.0})
        hist = append_history(p, {"speedup": 2.0})
        assert [e["speedup"] for e in hist] == [1.0, 2.0]
        assert all("timestamp" in e for e in hist)
        assert _read(p) == hist

    def test_consecutive_duplicate_refreshes_instead_of_appending(
            self, tmp_path):
        p = str(tmp_path / "bench.json")
        first = append_history(p, {"speedup": 1.5, "timestamp": "t0"})
        again = append_history(p, {"speedup": 1.5, "timestamp": "t1"})
        assert len(first) == 1 and len(again) == 1
        assert again[0]["timestamp"] == "t1"  # refreshed, not kept

    def test_duplicate_check_ignores_timestamp_only(self, tmp_path):
        p = str(tmp_path / "bench.json")
        append_history(p, {"speedup": 1.5})
        hist = append_history(p, {"speedup": 1.6})
        assert len(hist) == 2

    def test_non_consecutive_duplicates_both_kept(self, tmp_path):
        p = str(tmp_path / "bench.json")
        append_history(p, {"speedup": 1.0})
        append_history(p, {"speedup": 2.0})
        hist = append_history(p, {"speedup": 1.0})
        assert [e["speedup"] for e in hist] == [1.0, 2.0, 1.0]

    def test_cap_keeps_newest(self, tmp_path):
        p = str(tmp_path / "bench.json")
        for i in range(7):
            hist = append_history(p, {"run": i}, cap=3)
        assert [e["run"] for e in hist] == [4, 5, 6]
        assert [e["run"] for e in _read(p)] == [4, 5, 6]

    def test_default_cap_bounds_the_file(self, tmp_path):
        p = str(tmp_path / "bench.json")
        for i in range(HISTORY_CAP + 5):
            hist = append_history(p, {"run": i})
        assert len(hist) == HISTORY_CAP
        assert hist[-1]["run"] == HISTORY_CAP + 4

    def test_cap_below_one_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            append_history(str(tmp_path / "bench.json"), {"a": 1}, cap=0)

    def test_legacy_dict_artifact_folded_in(self, tmp_path):
        p = tmp_path / "bench.json"
        p.write_text(json.dumps({"speedup": 9.0}), encoding="utf-8")
        hist = append_history(str(p), {"speedup": 10.0})
        assert [e["speedup"] for e in hist] == [9.0, 10.0]

    def test_input_entry_not_mutated(self, tmp_path):
        entry = {"speedup": 1.0}
        append_history(str(tmp_path / "bench.json"), entry)
        assert entry == {"speedup": 1.0}
