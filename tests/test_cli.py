"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


class TestCli:
    def test_kernels(self, capsys):
        code, out, _ = run_cli(capsys, "kernels")
        assert code == 0
        assert "heat-1d" in out and "box-3d27p" in out

    def test_machines(self, capsys):
        code, out, _ = run_cli(capsys, "machines")
        assert code == 0
        assert "amd-epyc-7v13" in out and "intel-xeon-6230r" in out

    def test_inspect(self, capsys):
        code, out, _ = run_cli(capsys, "inspect", "jigsaw", "heat-1d")
        assert code == 0
        assert "vperm2f128" in out
        assert "max live registers" in out

    def test_estimate(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "t-jigsaw", "heat-2d",
            "--size", "1000x1000", "--steps", "10",
        )
        assert code == 0
        assert "GStencil/s" in out

    def test_estimate_with_tile(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "jigsaw", "heat-2d",
            "--size", "1000x1000", "--steps", "10",
            "--tile", "200x200", "--time-depth", "4",
        )
        assert code == 0

    def test_tune_model_only(self, capsys):
        code, out, _ = run_cli(
            capsys, "tune", "heat-1d", "--size", "65536", "--steps", "10",
            "--top", "3", "--model-only",
        )
        assert code == 0
        assert "Tb" in out

    def test_tune_empirical_then_db_hit(self, tmp_path, capsys):
        argv = ("tune", "heat-1d", "--shape", "2048", "--steps", "2",
                "--budget-trials", "2", "--repeats", "1", "--warmup", "0",
                "--db-dir", str(tmp_path))
        code, out, _ = run_cli(capsys, *argv)
        assert code == 0
        assert "MStencil/s" in out and "winner" in out
        assert "legal configuration" in out
        # the winner is on disk, so the rerun is a pure database hit
        code, out, _ = run_cli(capsys, *argv)
        assert code == 0
        assert "0 empirical trials" in out

    def test_tune_requires_shape(self, capsys):
        code, _, err = run_cli(capsys, "tune", "heat-1d")
        assert code == 2
        assert "--shape" in err

    def test_run(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "heat-1d", "--size", "4096", "--steps", "4",
        )
        assert code == 0
        assert "MStencil/s" in out

    def test_run_baseline_scheme(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "heat-1d", "--size", "256", "--steps", "2",
            "--scheme", "reorg",
        )
        assert code == 0
        assert "scheme: reorg" in out and "machine/" in out

    def test_run_jigsaw_scheme(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "heat-1d", "--size", "4096", "--steps", "4",
            "--scheme", "t-jigsaw",
        )
        assert code == 0
        assert "fuse 2 step(s)" in out

    def test_run_tuned_without_db_entry(self, tmp_path, capsys):
        code, _, err = run_cli(
            capsys, "run", "heat-1d", "--size", "4096", "--tuned",
            "--db-dir", str(tmp_path),
        )
        assert code == 2
        assert "no tuned configuration" in err

    def test_run_tuned_applies_db_winner(self, tmp_path, capsys):
        code, _, _ = run_cli(
            capsys, "tune", "heat-1d", "--shape", "2048", "--steps", "2",
            "--budget-trials", "2", "--repeats", "1", "--warmup", "0",
            "--db-dir", str(tmp_path))
        assert code == 0
        code, out, _ = run_cli(
            capsys, "run", "heat-1d", "--size", "2048", "--steps", "4",
            "--tuned", "--db-dir", str(tmp_path))
        assert code == 0
        assert "tuned:" in out

    def test_run_temporal_scheme_rounds_steps(self, capsys):
        # temporal fuses 2 steps per sweep: 5 requested -> 4 executed
        code, out, _ = run_cli(
            capsys, "run", "heat-1d", "--size", "256", "--steps", "5",
            "--scheme", "temporal",
        )
        assert code == 0
        assert "scheme: temporal" in out and "4 steps" in out

    def test_run_redundancy_scheme(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "box-2d9p", "--size", "16x32", "--steps", "2",
            "--scheme", "redundancy",
        )
        assert code == 0
        assert "scheme: redundancy" in out

    def test_tune_scheme_engine_and_bad_scheme_name(self, tmp_path, capsys):
        code, out, _ = run_cli(
            capsys, "tune", "heat-1d", "--shape", "256", "--steps", "2",
            "--engines", "scheme", "--backend", "interp",
            "--budget-trials", "2", "--repeats", "1", "--warmup", "0",
            "--db-dir", str(tmp_path))
        assert code == 0
        assert "scheme/" in out
        code, _, err = run_cli(
            capsys, "tune", "heat-1d", "--shape", "256",
            "--schemes", "bogus", "--db-dir", str(tmp_path), "--force")
        assert code == 2
        assert "unknown scheme name" in err and "bogus" in err

    def test_run_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli(capsys, "run", "heat-1d", "--size", "4096",
                    "--backend", "cuda")
        assert exc.value.code == 2
        _, err = capsys.readouterr()
        assert "invalid choice" in err and "interp" in err

    def test_run_rejects_unknown_scheme(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli(capsys, "run", "heat-1d", "--size", "4096",
                    "--scheme", "magic")
        assert exc.value.code == 2
        _, err = capsys.readouterr()
        assert "invalid choice" in err and "jigsaw" in err

    def test_inspect_rejects_unknown_scheme(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli(capsys, "inspect", "magic", "heat-1d")
        assert exc.value.code == 2
        _, err = capsys.readouterr()
        assert "invalid choice" in err

    def test_experiments_subset(self, capsys):
        code, out, _ = run_cli(capsys, "experiments", "table1")
        assert code == 0
        assert "vshufpd" in out

    def test_unknown_kernel_reports_error(self, capsys):
        code, _, err = run_cli(capsys, "inspect", "jigsaw", "nope")
        assert code == 2
        assert "error:" in err

    def test_unknown_machine_reports_error(self, capsys):
        code, _, err = run_cli(capsys, "inspect", "jigsaw", "heat-1d",
                               "--machine", "cray-1")
        assert code == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_selftest_writes_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "serve_metrics.json"
        code, out, _ = run_cli(
            capsys, "serve", "--selftest", "12", "--size", "16x16",
            "--max-batch", "4", "--batch-window-ms", "2",
            "--metrics-json", str(metrics_path))
        assert code == 0
        assert "bitwise         all responses correct" in out
        assert "tcp probe       ok" in out
        import json
        saved = json.loads(metrics_path.read_text())
        counters = saved["metrics"]["counters"]
        assert counters["server.completed"] >= 13  # load + tcp probe
        assert counters.get("server.admission.rejected", 0) == 0
        assert any(k.startswith("server.latency_ms.tenant.")
                   for k in saved["metrics"]["histograms"])

    def test_stats_folds_saved_server_snapshot(self, tmp_path, capsys):
        import json
        snapshot = {"spans": [], "metrics": {
            "counters": {"server.completed": 7,
                         "server.admission.rejected": 2,
                         "cache.hits": 99},
            "gauges": {"server.queue_depth": 0},
            "histograms": {"server.latency_ms.tenant.t0": {
                "count": 7, "sum": 21.0, "min": 1.0, "max": 5.0,
                "mean": 3.0, "buckets": {"<=2^3": 7}}},
        }}
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(snapshot))
        code, out, _ = run_cli(capsys, "stats",
                               "--cache-dir", str(tmp_path / "cache"),
                               "--db-dir", str(tmp_path / "db"),
                               "--metrics-json", str(path))
        assert code == 0
        assert "server.completed" in out
        assert "server.latency_ms.tenant.t0" in out
        assert "cache.hits" not in out.split("server @")[1]
        code, out, _ = run_cli(capsys, "stats", "--json",
                               "--cache-dir", str(tmp_path / "cache"),
                               "--db-dir", str(tmp_path / "db"),
                               "--metrics-json", str(path))
        assert code == 0
        payload = json.loads(out)
        assert payload["server"]["counters"][
            "server.admission.rejected"] == 2
        assert payload["server"]["latency_ms"][
            "server.latency_ms.tenant.t0"]["count"] == 7

    def test_stats_rejects_unreadable_snapshot(self, tmp_path, capsys):
        code, _, err = run_cli(capsys, "stats",
                               "--cache-dir", str(tmp_path / "cache"),
                               "--db-dir", str(tmp_path / "db"),
                               "--metrics-json",
                               str(tmp_path / "missing.json"))
        assert code == 2 and "cannot read metrics snapshot" in err

    def test_chaos_rejects_unknown_stage(self, capsys):
        code, _, err = run_cli(capsys, "chaos", "--stages", "nonsense",
                               "--size", "16x16", "--steps", "1")
        assert code == 2 and "stage" in err.lower()


def test_experiments_save(tmp_path, capsys):
    from repro.experiments.__main__ import main as exp_main
    code = exp_main(["table1", "--save", str(tmp_path)])
    capsys.readouterr()
    assert code == 0
    assert (tmp_path / "table1.txt").read_text().count("vshufpd") >= 1


def test_validate_defaults_cover_both_dtypes():
    from repro.validate import DEFAULT_MACHINES
    sizes = {m.element_bytes for m in DEFAULT_MACHINES}
    assert sizes == {4, 8}
