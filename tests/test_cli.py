"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


class TestCli:
    def test_kernels(self, capsys):
        code, out, _ = run_cli(capsys, "kernels")
        assert code == 0
        assert "heat-1d" in out and "box-3d27p" in out

    def test_machines(self, capsys):
        code, out, _ = run_cli(capsys, "machines")
        assert code == 0
        assert "amd-epyc-7v13" in out and "intel-xeon-6230r" in out

    def test_inspect(self, capsys):
        code, out, _ = run_cli(capsys, "inspect", "jigsaw", "heat-1d")
        assert code == 0
        assert "vperm2f128" in out
        assert "max live registers" in out

    def test_estimate(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "t-jigsaw", "heat-2d",
            "--size", "1000x1000", "--steps", "10",
        )
        assert code == 0
        assert "GStencil/s" in out

    def test_estimate_with_tile(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "jigsaw", "heat-2d",
            "--size", "1000x1000", "--steps", "10",
            "--tile", "200x200", "--time-depth", "4",
        )
        assert code == 0

    def test_tune(self, capsys):
        code, out, _ = run_cli(
            capsys, "tune", "heat-1d", "--size", "65536", "--steps", "10",
            "--top", "3",
        )
        assert code == 0
        assert "Tb" in out

    def test_run(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "heat-1d", "--size", "4096", "--steps", "4",
        )
        assert code == 0
        assert "MStencil/s" in out

    def test_experiments_subset(self, capsys):
        code, out, _ = run_cli(capsys, "experiments", "table1")
        assert code == 0
        assert "vshufpd" in out

    def test_unknown_kernel_reports_error(self, capsys):
        code, _, err = run_cli(capsys, "inspect", "jigsaw", "nope")
        assert code == 2
        assert "error:" in err

    def test_unknown_machine_reports_error(self, capsys):
        code, _, err = run_cli(capsys, "inspect", "jigsaw", "heat-1d",
                               "--machine", "cray-1")
        assert code == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


def test_experiments_save(tmp_path, capsys):
    from repro.experiments.__main__ import main as exp_main
    code = exp_main(["table1", "--save", str(tmp_path)])
    capsys.readouterr()
    assert code == 0
    assert (tmp_path / "table1.txt").read_text().count("vshufpd") >= 1


def test_validate_defaults_cover_both_dtypes():
    from repro.validate import DEFAULT_MACHINES
    sizes = {m.element_bytes for m in DEFAULT_MACHINES}
    assert sizes == {4, 8}
