"""Unit tests for the ISA semantics — hand-checked against the Intel
AVX/AVX2 instruction definitions."""

import numpy as np
import pytest

from repro.errors import IsaError
from repro.machine.isa import (
    Affine,
    Instr,
    InstrClass,
    MemRef,
    Op,
    classify,
    execute_alu,
)


def vec(*xs):
    return np.array(xs, dtype=np.float64)


def run(instr, width=4, **regs):
    regs = {k: vec(*v) for k, v in regs.items()}
    execute_alu(instr, regs, width)
    return regs[instr.dst]


class TestAffine:
    def test_evaluate(self):
        a = Affine.of(3, x=2, y=-1)
        assert a.evaluate({"x": 5, "y": 4}) == 9

    def test_var_and_shift(self):
        a = Affine.var("x").shift(4)
        assert a.evaluate({"x": 10}) == 14

    def test_unbound_variable_raises(self):
        with pytest.raises(IsaError):
            Affine.var("x").evaluate({})

    def test_zero_coeffs_dropped(self):
        assert Affine.of(1, x=0) == Affine.of(1)

    def test_memref_evaluate(self):
        m = MemRef("a", (Affine.var("y"), Affine.var("x", const=2)))
        assert m.evaluate({"y": 3, "x": 5}) == (3, 7)


class TestInstrValidation:
    def test_load_needs_mem(self):
        with pytest.raises(IsaError):
            Instr(Op.LOAD, dst="v")

    def test_store_has_no_dst(self):
        m = MemRef("a", (Affine.of(0),))
        with pytest.raises(IsaError):
            Instr(Op.STORE, dst="v", srcs=("v",), mem=m)

    def test_alu_rejects_mem(self):
        m = MemRef("a", (Affine.of(0),))
        with pytest.raises(IsaError):
            Instr(Op.ADD, dst="d", srcs=("a", "b"), mem=m)

    def test_source_arity_checked(self):
        with pytest.raises(IsaError):
            Instr(Op.FMA, dst="d", srcs=("a", "b"))

    def test_broadcast_requires_scalar_imm(self):
        with pytest.raises(IsaError):
            Instr(Op.BROADCAST, dst="d", imm=(1, 2))

    def test_dst_required(self):
        with pytest.raises(IsaError):
            Instr(Op.ADD, srcs=("a", "b"))


class TestShufpd:
    """vshufpd ymm semantics: element 2k from src1 (low/high of lane k by
    imm bit 2k), element 2k+1 from src2 (imm bit 2k+1)."""

    def test_imm_zero_interleaves_lows(self):
        out = run(Instr(Op.SHUFPD, dst="d", srcs=("a", "b"), imm=0b0000),
                  a=(0, 1, 2, 3), b=(4, 5, 6, 7))
        assert np.array_equal(out, [0, 4, 2, 6])

    def test_imm_ones_interleaves_highs(self):
        out = run(Instr(Op.SHUFPD, dst="d", srcs=("a", "b"), imm=0b1111),
                  a=(0, 1, 2, 3), b=(4, 5, 6, 7))
        assert np.array_equal(out, [1, 5, 3, 7])

    def test_mixed_mask(self):
        # imm=0b0101: e0 = a[1], e1 = b[0], e2 = a[3], e3 = b[2]
        out = run(Instr(Op.SHUFPD, dst="d", srcs=("a", "b"), imm=0b0101),
                  a=(0, 1, 2, 3), b=(4, 5, 6, 7))
        assert np.array_equal(out, [1, 4, 3, 6])

    def test_intel_manual_example(self):
        # vshufpd with same source twice swaps within lanes for imm 0b0101
        out = run(Instr(Op.SHUFPD, dst="d", srcs=("a", "a"), imm=0b0101),
                  a=(10, 11, 12, 13))
        assert np.array_equal(out, [11, 10, 13, 12])

    def test_width8(self):
        out = run(Instr(Op.SHUFPD, dst="d", srcs=("a", "b"), imm=0),
                  width=8, a=tuple(range(8)), b=tuple(range(8, 16)))
        assert np.array_equal(out, [0, 8, 2, 10, 4, 12, 6, 14])

    def test_imm_out_of_range(self):
        with pytest.raises(IsaError):
            run(Instr(Op.SHUFPD, dst="d", srcs=("a", "b"), imm=16),
                a=(0, 1, 2, 3), b=(4, 5, 6, 7))

    def test_imm_must_be_int(self):
        with pytest.raises(IsaError):
            run(Instr(Op.SHUFPD, dst="d", srcs=("a", "b"), imm=(0, 1)),
                a=(0, 1, 2, 3), b=(4, 5, 6, 7))


class TestPermilpd:
    def test_swap_within_each_lane(self):
        out = run(Instr(Op.PERMILPD, dst="d", srcs=("a",), imm=0b0110),
                  a=(0, 1, 2, 3))
        # e0: bit0=0 -> a[0]; e1: bit1=1 -> a[1]; e2: bit2=1 -> a[3];
        # e3: bit3=0 -> a[2]
        assert np.array_equal(out, [0, 1, 3, 2])

    def test_duplicate_lows(self):
        out = run(Instr(Op.PERMILPD, dst="d", srcs=("a",), imm=0b0000),
                  a=(0, 1, 2, 3))
        assert np.array_equal(out, [0, 0, 2, 2])

    def test_bad_imm(self):
        with pytest.raises(IsaError):
            run(Instr(Op.PERMILPD, dst="d", srcs=("a",), imm=-1),
                a=(0, 1, 2, 3))


class TestPerm2f128:
    def test_lane_concat_middle(self):
        # selectors (1, 2): dst lane0 = src1.lane1, lane1 = src2.lane0 —
        # the vperm2f128 imm 0x21 idiom
        out = run(Instr(Op.PERM2F128, dst="d", srcs=("a", "b"), imm=(1, 2)),
                  a=(0, 1, 2, 3), b=(4, 5, 6, 7))
        assert np.array_equal(out, [2, 3, 4, 5])

    def test_swap_lanes_single_source(self):
        out = run(Instr(Op.PERM2F128, dst="d", srcs=("a", "a"), imm=(1, 0)),
                  a=(0, 1, 2, 3))
        assert np.array_equal(out, [2, 3, 0, 1])

    def test_zero_lane(self):
        out = run(Instr(Op.PERM2F128, dst="d", srcs=("a", "b"),
                        imm=(None, 3)),
                  a=(0, 1, 2, 3), b=(4, 5, 6, 7))
        assert np.array_equal(out, [0, 0, 6, 7])

    def test_width8_four_lanes(self):
        out = run(Instr(Op.PERM2F128, dst="d", srcs=("a", "b"),
                        imm=(1, 2, 3, 4)),
                  width=8, a=tuple(range(8)), b=tuple(range(8, 16)))
        assert np.array_equal(out, [2, 3, 4, 5, 6, 7, 8, 9])

    def test_selector_out_of_range(self):
        with pytest.raises(IsaError):
            run(Instr(Op.PERM2F128, dst="d", srcs=("a", "b"), imm=(4, 0)),
                a=(0, 1, 2, 3), b=(4, 5, 6, 7))

    def test_wrong_arity_imm(self):
        with pytest.raises(IsaError):
            run(Instr(Op.PERM2F128, dst="d", srcs=("a", "b"), imm=(1,)),
                a=(0, 1, 2, 3), b=(4, 5, 6, 7))


class TestPermpd:
    def test_arbitrary_permutation(self):
        out = run(Instr(Op.PERMPD, dst="d", srcs=("a",), imm=(3, 0, 2, 1)),
                  a=(10, 11, 12, 13))
        assert np.array_equal(out, [13, 10, 12, 11])

    def test_broadcast_element(self):
        out = run(Instr(Op.PERMPD, dst="d", srcs=("a",), imm=(2, 2, 2, 2)),
                  a=(10, 11, 12, 13))
        assert np.array_equal(out, [12, 12, 12, 12])

    def test_result_is_copy(self):
        regs = {"a": vec(1, 2, 3, 4)}
        execute_alu(Instr(Op.PERMPD, dst="d", srcs=("a",),
                          imm=(0, 1, 2, 3)), regs, 4)
        regs["d"][0] = 99
        assert regs["a"][0] == 1

    def test_bad_selector(self):
        with pytest.raises(IsaError):
            run(Instr(Op.PERMPD, dst="d", srcs=("a",), imm=(0, 1, 2, 4)),
                a=(1, 2, 3, 4))


class TestArithmetic:
    def test_add_sub_mul(self):
        a, b = (1, 2, 3, 4), (10, 20, 30, 40)
        assert np.array_equal(
            run(Instr(Op.ADD, dst="d", srcs=("a", "b")), a=a, b=b),
            [11, 22, 33, 44])
        assert np.array_equal(
            run(Instr(Op.SUB, dst="d", srcs=("b", "a")), a=a, b=b),
            [9, 18, 27, 36])
        assert np.array_equal(
            run(Instr(Op.MUL, dst="d", srcs=("a", "b")), a=a, b=b),
            [10, 40, 90, 160])

    def test_fma(self):
        out = run(Instr(Op.FMA, dst="d", srcs=("a", "b", "c")),
                  a=(1, 2, 3, 4), b=(2, 2, 2, 2), c=(1, 1, 1, 1))
        assert np.array_equal(out, [3, 5, 7, 9])

    def test_broadcast(self):
        out = run(Instr(Op.BROADCAST, dst="d", imm=2.5))
        assert np.array_equal(out, [2.5] * 4)

    def test_setzero(self):
        out = run(Instr(Op.SETZERO, dst="d"))
        assert np.array_equal(out, [0, 0, 0, 0])

    def test_mov_copies(self):
        regs = {"a": vec(1, 2, 3, 4)}
        execute_alu(Instr(Op.MOV, dst="d", srcs=("a",)), regs, 4)
        regs["a"][0] = 5
        assert regs["d"][0] == 1

    def test_undefined_register_raises(self):
        with pytest.raises(IsaError):
            execute_alu(Instr(Op.ADD, dst="d", srcs=("x", "y")), {}, 4)

    def test_width_mismatch_raises(self):
        regs = {"a": vec(1, 2), "b": vec(1, 2)}
        with pytest.raises(IsaError):
            execute_alu(Instr(Op.ADD, dst="d", srcs=("a", "b")), regs, 4)


class TestClassification:
    @pytest.mark.parametrize("op,klass", [
        (Op.LOAD, InstrClass.LOAD),
        (Op.STORE, InstrClass.STORE),
        (Op.SHUFPD, InstrClass.IN_LANE),
        (Op.PERMILPD, InstrClass.IN_LANE),
        (Op.PERM2F128, InstrClass.CROSS_LANE),
        (Op.PERMPD, InstrClass.CROSS_LANE),
        (Op.FMA, InstrClass.ARITH),
        (Op.ADD, InstrClass.ARITH),
        (Op.MOV, InstrClass.OTHER),
        (Op.BROADCAST, InstrClass.OTHER),
    ])
    def test_class_of(self, op, klass):
        assert classify(op) is klass

    def test_every_op_classified(self):
        for op in Op:
            assert classify(op) in InstrClass
