"""Tests for the observability subsystem (:mod:`repro.obs`).

Covers the tracer (nesting, thread roots, context propagation, bounded
retention), the metrics registry (counters/gauges/histograms, bucket
export), the disabled-state no-op contract, the instrumented stack
(``--profile`` span tree covering plan/SDF/codegen/sweep, cache hit/miss
latency metrics, the batch-fallback reason taxonomy), and the
``repro stats`` surface.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.__main__ import main
from repro.config import GENERIC_AVX2
from repro.obs.metrics import MetricsRegistry, _bucket_exponent
from repro.obs.tracer import Tracer, propagate
from repro.schemes import generate, scheme_halo
from repro.stencils import library
from repro.stencils.grid import Grid
from repro.vectorize.driver import run_program


@pytest.fixture()
def observing():
    """Enable recording for one test, restoring the prior state."""
    was = obs.enabled()
    obs.enable(reset=True)
    yield
    if not was:
        obs.disable()
    obs.reset()


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


# -- tracer --------------------------------------------------------------------

class TestTracer:
    def test_nesting_follows_with_scope(self):
        t = Tracer()
        with t.span("outer", k=1) as outer:
            with t.span("inner") as inner:
                assert t.current() is inner
            with t.span("inner2"):
                pass
            assert t.current() is outer
        assert t.current() is None
        roots = t.roots()
        assert [s.name for s in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner", "inner2"]
        assert roots[0].attrs == {"k": 1}
        assert roots[0].duration_s is not None
        assert all(c.duration_s <= roots[0].duration_s + 1e-9
                   for c in roots[0].children)

    def test_set_attrs_chainable(self):
        t = Tracer()
        with t.span("s") as s:
            assert s.set(a=1).set(b=2) is s
        d = t.to_list()[0]
        assert d["attrs"] == {"a": 1, "b": 2}
        assert d["duration_ms"] >= 0.0

    def test_worker_threads_open_own_roots(self):
        t = Tracer()
        def work():
            with t.span("worker"):
                pass
        with t.span("main-root"):
            th = threading.Thread(target=work, name="obs-worker")
            th.start()
            th.join()
        names = {s.name: s for s in t.roots()}
        # the worker starts from an empty context -> its span is a root,
        # stamped with the worker's thread name
        assert set(names) == {"worker", "main-root"}
        assert names["worker"].thread == "obs-worker"
        assert names["main-root"].children == []

    def test_propagate_nests_pool_spans_under_caller(self):
        t = Tracer()
        def work():
            with t.span("pooled"):
                pass
        with ThreadPoolExecutor(max_workers=1) as pool:
            with t.span("submit-root"):
                pool.submit(propagate(work)).result()
        (root,) = t.roots()
        assert root.name == "submit-root"
        assert [c.name for c in root.children] == ["pooled"]

    def test_root_retention_is_bounded(self):
        t = Tracer(max_roots=4)
        for i in range(10):
            with t.span(f"r{i}"):
                pass
        assert [s.name for s in t.roots()] == ["r6", "r7", "r8", "r9"]

    def test_render_tree(self):
        t = Tracer()
        with t.span("top", kernel="k"):
            with t.span("child"):
                pass
        text = t.render()
        assert "top" in text and "[kernel=k]" in text
        assert "`- child" in text and "ms" in text


# -- metrics -------------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        for v in (1.0, 3.0, 100.0):
            reg.histogram("h").observe(v)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["gauges"] == {"g": 2.5}
        h = snap["histograms"]["h"]
        assert h["count"] == 3 and h["sum"] == 104.0
        assert h["min"] == 1.0 and h["max"] == 100.0
        assert h["mean"] == pytest.approx(104.0 / 3)
        # power-of-two upper bounds: 1 -> 2^0, 3 -> 2^2, 100 -> 2^7
        assert h["buckets"] == {"<=2^0": 1, "<=2^2": 1, "<=2^7": 1}

    def test_bucket_exponent_clamps(self):
        assert _bucket_exponent(0.0) == -40
        assert _bucket_exponent(-3.0) == -40
        assert _bucket_exponent(float("inf")) == -40
        assert _bucket_exponent(2.0**60) == 40
        assert _bucket_exponent(1.0) == 0

    def test_same_instrument_returned(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}

    def test_thread_safe_counting(self):
        reg = MetricsRegistry()
        def bump():
            for _ in range(1000):
                reg.counter("n").inc()
        threads = [threading.Thread(target=bump) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert reg.snapshot()["counters"]["n"] == 8000


# -- the process-wide switch ---------------------------------------------------

class TestSwitch:
    def test_disabled_is_inert(self):
        obs.disable()
        obs.reset()  # other tests may have left recorded data behind
        with obs.span("never", k=1) as s:
            s.set(more=2)  # chainable no-op
        obs.counter("never").inc()
        obs.gauge("never").set(1.0)
        obs.histogram("never").observe(1.0)
        snap = obs.snapshot()
        assert snap["spans"] == []
        assert snap["metrics"]["counters"] == {}

    def test_disabled_returns_shared_singletons(self):
        assert obs.span("a") is obs.span("b")
        assert obs.counter("a") is obs.histogram("b")

    def test_enable_reset_disable(self, observing):
        with obs.span("live"):
            obs.counter("c").inc()
        assert obs.snapshot()["metrics"]["counters"] == {"c": 1}
        assert [s["name"] for s in obs.snapshot()["spans"]] == ["live"]
        obs.disable()
        with obs.span("dead"):
            pass
        assert [s["name"] for s in obs.snapshot()["spans"]] == ["live"]


# -- the instrumented stack ----------------------------------------------------

def _span_names(spans):
    out = set()
    for s in spans:
        out.add(s["name"])
        out |= _span_names(s.get("children", ()))
    return out


class TestInstrumentedStack:
    def test_fallback_reason_mem_hook(self, observing):
        spec = library.get("heat-1d")
        halo = scheme_halo("jigsaw", spec, GENERIC_AVX2)
        grid = Grid.random((64,), halo, seed=3)
        program = generate("jigsaw", spec, GENERIC_AVX2, grid)
        run_program(program, grid, program.steps_per_iter, backend="batch",
                    mem_hook=lambda *a, **k: None)
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["exec.batch_fallback"] == 1
        assert counters["exec.batch_fallback.reason.mem_hook"] == 1
        assert counters["exec.sweeps"] >= 1

    def test_fallback_reason_compile(self, observing, monkeypatch):
        from repro.machine.batch import BatchFallback
        from repro.vectorize import driver

        def boom(program):
            raise BatchFallback("forced")

        monkeypatch.setattr(driver, "get_batched", boom)
        spec = library.get("heat-1d")
        halo = scheme_halo("jigsaw", spec, GENERIC_AVX2)
        grid = Grid.random((64,), halo, seed=3)
        program = generate("jigsaw", spec, GENERIC_AVX2, grid)
        run_program(program, grid, program.steps_per_iter, backend="batch")
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["exec.batch_fallback.reason.compile"] == 1

    def test_profile_cli_covers_all_stages(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        code, out, _ = run_cli(
            capsys, "run", "heat-2d", "--size", "32x32", "--steps", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--profile", "--metrics-json", str(metrics_path),
        )
        assert code == 0
        # the span tree reaches every pipeline stage
        for stage in ("repro.run", "cache.program", "plan", "sdf",
                      "codegen", "execute"):
            assert stage in out, f"--profile output missing {stage!r}"
        snap = json.loads(metrics_path.read_text())
        names = _span_names(snap["spans"])
        assert {"repro.run", "cache.plan", "cache.program", "plan", "sdf",
                "codegen", "execute"} <= names
        counters = snap["metrics"]["counters"]
        assert counters["cache.plan.misses"] >= 1
        assert counters["cache.program.misses"] >= 1
        hists = snap["metrics"]["histograms"]
        assert hists["cache.program.miss_ms"]["count"] >= 1
        # one sweep per *fused* step block, so 2 steps may be 1 sweep
        assert hists["exec.sweep_ms"]["count"] >= 1
        # recording is torn back down after the profiled run
        assert not obs.enabled()

    def test_profile_cache_hit_latencies_on_second_run(self, tmp_path,
                                                       capsys):
        cache_dir = str(tmp_path / "cache")
        args = ("run", "heat-1d", "--size", "64", "--steps", "2",
                "--cache-dir", cache_dir, "--metrics-json")
        code, _, _ = run_cli(capsys, *args, str(tmp_path / "m1.json"))
        assert code == 0
        code, _, _ = run_cli(capsys, *args, str(tmp_path / "m2.json"))
        assert code == 0
        snap = json.loads((tmp_path / "m2.json").read_text())
        counters = snap["metrics"]["counters"]
        assert counters.get("cache.program.hits", 0) >= 1
        assert snap["metrics"]["histograms"]["cache.program.hit_ms"][
            "count"] >= 1

    def test_stats_cli_json(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        code, _, _ = run_cli(capsys, "run", "heat-1d", "--size", "64",
                             "--steps", "2", "--cache-dir", cache_dir)
        assert code == 0
        code, out, _ = run_cli(capsys, "stats", "--json",
                               "--cache-dir", cache_dir,
                               "--db-dir", str(tmp_path / "db"))
        assert code == 0
        payload = json.loads(out)
        assert payload["cache_dir"] == cache_dir
        assert payload["cache"].get("misses", 0) >= 1
        assert "disk_entry_count" in payload["cache"]
        assert "tuning" in payload and "obs" in payload
