"""Tests for the batched kernel service (:mod:`repro.service`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GENERIC_AVX2
from repro.errors import ReproError
from repro.service import CompileRequest, KernelService, SweepJob
from repro.stencils import apply_steps, library


def _svc(**kw):
    return KernelService(GENERIC_AVX2, **kw)


class TestCompile:
    def test_compile_is_ready_to_run(self):
        svc = _svc()
        k = svc.compile(library.get("heat-2d"), (64, 96))
        g = k.grid_like((64, 96), seed=0)
        out = k.run_numpy(g, k.plan.time_fusion)
        ref = apply_steps(library.get("heat-2d"), g, k.plan.time_fusion)
        assert np.allclose(out.interior, ref.interior, rtol=1e-12)

    def test_compile_many_dedupes(self):
        svc = _svc(compile_workers=2)
        reqs = [
            CompileRequest(library.get("heat-2d"), (64, 96)),
            CompileRequest(library.get("box-2d9p"), (64, 96)),
            CompileRequest(library.get("heat-2d"), (64, 96)),  # duplicate
        ]
        kernels = svc.compile_many(reqs)
        assert len(kernels) == 3
        assert kernels[0] is kernels[2]  # duplicates share one kernel
        assert kernels[0] is not kernels[1]
        # only the distinct requests hit the compilation pipeline
        assert svc.stats()["misses"] == 2

    def test_compile_many_distinguishes_options(self):
        svc = _svc()
        spec = library.get("heat-2d")
        a, b, c = svc.compile_many([
            CompileRequest(spec, (64, 96)),
            CompileRequest(spec, (64, 96), time_fusion=1),
            CompileRequest(spec, (64, 192)),
        ])
        assert a is not b and a is not c
        assert b.plan.time_fusion == 1
        assert c.grid.shape == (64, 192)

    def test_compile_many_accepts_tuples(self):
        svc = _svc()
        (k,) = svc.compile_many([(library.get("heat-1d"), (96,))])
        assert k.grid.shape == (96,)

    def test_concurrent_compiles_share_cache(self):
        svc = _svc(compile_workers=4)
        names = ["heat-1d", "heat-2d", "box-2d9p", "star-1d5p"]
        kernels = svc.compile_many(
            [CompileRequest(library.get(n), (64, 96)[-library.get(n).ndim:])
             for n in names] * 2
        )
        assert len(kernels) == 8
        assert svc.stats()["misses"] == len(names)


class TestRun:
    def test_run_many_matches_reference(self):
        svc = _svc(run_workers=3)
        spec = library.get("heat-2d")
        k = svc.compile(spec, (48, 48))
        jobs = [SweepJob(spec, k.grid_like((48, 48), seed=s), steps=2)
                for s in (0, 1)]
        outs = svc.run_many(jobs)
        for job, out in zip(jobs, outs):
            ref = apply_steps(spec, job.grid, job.steps)
            assert np.allclose(out.interior, ref.interior, rtol=1e-12)

    def test_process_backend_identical_to_thread(self):
        spec = library.get("heat-2d")
        k = _svc().compile(spec, (48, 48))
        job = SweepJob(spec, k.grid_like((48, 48), seed=2), steps=2)
        a = _svc(run_backend="thread").run(job)
        b = _svc(run_backend="process").run(job)
        assert np.array_equal(a.data, b.data)


class TestValidation:
    def test_rejects_cache_and_cache_dir(self, tmp_path):
        from repro.core.cache import KernelCache
        with pytest.raises(ReproError):
            KernelService(GENERIC_AVX2, cache=KernelCache(),
                          cache_dir=str(tmp_path))

    def test_rejects_unknown_backend(self):
        with pytest.raises(ReproError):
            KernelService(GENERIC_AVX2, run_backend="mpi")

    def test_rejects_bad_worker_counts(self):
        with pytest.raises(ReproError):
            KernelService(GENERIC_AVX2, compile_workers=0)
        with pytest.raises(ReproError):
            KernelService(GENERIC_AVX2, run_workers=0)

    @pytest.mark.parametrize("kwargs", [
        {"task_timeout_s": 0},
        {"task_timeout_s": -1.0},
        {"task_timeout_s": float("nan")},
        {"retries": -1},
        {"retry_backoff_s": -0.1},
        {"failure_policy": "explode"},
        {"failure_policy": ""},
    ])
    def test_rejects_bad_failure_config(self, kwargs):
        with pytest.raises(ReproError):
            KernelService(GENERIC_AVX2, **kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"compile_workers": 2.5},
        {"compile_workers": True},
        {"compile_workers": "4"},
        {"run_workers": 1.0},
        {"run_workers": False},
        {"retries": 1.5},
        {"retries": True},
        {"retry_backoff_s": float("nan")},
        {"retry_backoff_s": float("inf")},
        {"retry_backoff_s": "0.1"},
        {"retry_backoff_s": True},
        {"task_timeout_s": float("inf")},
        {"task_timeout_s": True},
        {"task_timeout_s": "30"},
        {"tune_budget": 8},
        {"tune_budget": "fast"},
    ])
    def test_rejects_non_numeric_config(self, kwargs):
        """Every numeric knob is validated at construction — floats where
        ints are required, bools masquerading as numbers, strings, NaN
        and inf all fail fast with a message naming the parameter."""
        with pytest.raises(ReproError) as err:
            KernelService(GENERIC_AVX2, **kwargs)
        (name,) = kwargs
        assert name in str(err.value)

    @pytest.mark.parametrize("kwargs", [
        {"task_timeout_s": None},
        {"task_timeout_s": 30.0},
        {"retries": 0},
        {"retries": 3, "retry_backoff_s": 0.0},
        {"failure_policy": "raise"},
        {"failure_policy": "retry"},
        {"failure_policy": "degrade"},
    ])
    def test_accepts_valid_failure_config(self, kwargs):
        svc = KernelService(GENERIC_AVX2, **kwargs)
        for k, v in kwargs.items():
            assert getattr(svc, k) == v

    def test_stats_exposes_cache_counters(self, tmp_path):
        svc = _svc(cache_dir=str(tmp_path))
        svc.compile(library.get("heat-1d"), (96,))
        d = svc.stats()
        assert d["misses"] == 1 and d["disk_writes"] >= 1
        assert d["disk_entry_count"] >= 1
