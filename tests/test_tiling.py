"""Tests for spatial blocking and tessellating tiling."""

import numpy as np
import pytest

from repro.errors import TilingError
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid
from repro.tiling.blocks import Tile, partition, tile_working_set
from repro.tiling.schedule import build_schedule
from repro.tiling.tessellate import (
    TessellationPlan,
    tessellate_1d,
    tessellate_grid_1d,
    tessellation_plan,
)


class TestPartition:
    def test_exact_cover(self):
        part = partition((10, 10), (4, 4))
        assert part.covers_exactly
        assert len(part) == 9  # 3x3 with clipped edges

    def test_tiles_disjoint(self):
        part = partition((8, 6), (3, 4))
        seen = np.zeros((8, 6), dtype=int)
        for tile in part:
            sl = tile.slices()
            seen[sl] += 1
        assert np.all(seen == 1)

    def test_edge_tiles_clipped(self):
        part = partition((10,), (4,))
        assert [t.shape for t in part] == [(4,), (4,), (2,)]

    def test_tile_slices_with_halo(self):
        t = Tile(start=(2,), stop=(5,))
        assert t.slices((3,)) == (slice(5, 8),)
        assert t.points == 3

    def test_rank_mismatch_rejected(self):
        with pytest.raises(TilingError):
            partition((8, 8), (4,))

    def test_nonpositive_rejected(self):
        with pytest.raises(TilingError):
            partition((8,), (0,))


class TestWorkingSet:
    def test_includes_stencil_halo(self):
        spec = library.get("heat-2d")  # radius 1
        ws = tile_working_set((10, 10), spec)
        assert ws == 12 * 12 * 8 * 2

    def test_time_depth_widens_halo(self):
        spec = library.get("heat-2d")
        shallow = tile_working_set((10, 10), spec, time_depth=1)
        deep = tile_working_set((10, 10), spec, time_depth=3)
        assert deep > shallow

    def test_rank_checked(self):
        with pytest.raises(TilingError):
            tile_working_set((10,), library.get("heat-2d"))

    def test_bad_depth(self):
        with pytest.raises(TilingError):
            tile_working_set((10,), library.get("heat-1d"), time_depth=0)


class TestTessellationPlan:
    def test_phase_count_is_2_to_the_d(self):
        assert tessellation_plan(library.get("heat-1d"), (32,), 4).phases == 2
        assert tessellation_plan(library.get("heat-2d"), (32, 32), 4).phases == 4
        assert tessellation_plan(library.get("heat-3d"),
                                 (32, 32, 32), 4).phases == 8

    def test_traffic_factor(self):
        plan = tessellation_plan(library.get("heat-1d"), (32,), 8)
        assert plan.traffic_factor == pytest.approx(1 / 8)

    def test_constraint_enforced(self):
        with pytest.raises(TilingError):
            tessellation_plan(library.get("star-1d5p"), (16,), 5)  # 2*2*5 > 16

    def test_bad_inputs(self):
        with pytest.raises(TilingError):
            tessellation_plan(library.get("heat-1d"), (16,), 0)
        with pytest.raises(TilingError):
            tessellation_plan(library.get("heat-2d"), (16,), 2)


class TestTessellate1D:
    @pytest.mark.parametrize("kernel", ["heat-1d", "star-1d5p", "star-1d7p"])
    @pytest.mark.parametrize("steps", [1, 5, 12])
    def test_matches_reference(self, kernel, steps):
        spec = library.get(kernel)
        rng = np.random.default_rng(steps)
        v = rng.uniform(size=128)
        got = tessellate_1d(spec, v, steps, tile=32)
        ref = apply_steps(spec, Grid.from_array(v, spec.radius),
                          steps).interior
        assert np.allclose(got, ref, rtol=1e-12, atol=1e-14)

    def test_explicit_depth(self):
        spec = library.get("heat-1d")
        v = np.random.default_rng(0).uniform(size=64)
        got = tessellate_1d(spec, v, 10, tile=16, time_depth=4)
        ref = apply_steps(spec, Grid.from_array(v, 1), 10).interior
        assert np.allclose(got, ref, rtol=1e-12)

    def test_phase_geometry_reported(self):
        spec = library.get("heat-1d")
        v = np.zeros(64)
        phases = []
        tessellate_1d(spec, v, 4, tile=16, time_depth=4,
                      on_phase=lambda blk, ph, rs: phases.append((blk, ph,
                                                                  len(rs))))
        # one block of depth 4: phase 0 (4 tiles) then phase 1 (4 seams)
        assert phases == [(0, 0, 4), (0, 1, 4)]

    def test_grid_wrapper(self):
        spec = library.get("heat-1d")
        g = Grid.random((64,), 1, seed=2)
        out = tessellate_grid_1d(spec, g, 6, tile=16)
        ref = apply_steps(spec, g, 6)
        assert np.allclose(out.interior, ref.interior, rtol=1e-12)

    def test_rejects_non_dividing_tile(self):
        with pytest.raises(TilingError):
            tessellate_1d(library.get("heat-1d"), np.zeros(60), 2, tile=32)

    def test_rejects_2d_spec(self):
        with pytest.raises(TilingError):
            tessellate_1d(library.get("heat-2d"), np.zeros(32), 1, tile=8)

    def test_rejects_narrow_tile(self):
        with pytest.raises(TilingError):
            tessellate_1d(library.get("star-1d7p"), np.zeros(32), 2, tile=4)


class TestSchedule:
    def test_jacobi_single_phase(self):
        sched = build_schedule((16, 16), (8, 8))
        assert sched.n_phases == 1
        assert sched.n_tiles == 4
        assert sched.max_parallelism() == 4

    def test_time_tiled_checkerboard_phases(self):
        sched = build_schedule((32, 32), (8, 8),
                               spec=library.get("heat-2d"), time_depth=2)
        assert sched.n_phases == 4
        assert sched.n_tiles == 16

    def test_all_tiles_partition(self):
        sched = build_schedule((16, 12), (8, 8), time_depth=2)
        total = sum(t.points for t in sched.all_tiles())
        assert total == 16 * 12

    def test_bad_depth_rejected(self):
        with pytest.raises(TilingError):
            build_schedule((16,), (8,), time_depth=0)


class TestTessellate2D:
    @pytest.mark.parametrize("kernel", ["heat-2d", "box-2d9p", "star-2d9p"])
    @pytest.mark.parametrize("steps", [1, 4, 11])
    def test_matches_reference(self, kernel, steps):
        from repro.tiling.tessellate import tessellate_2d
        spec = library.get(kernel)
        rng = np.random.default_rng(steps)
        v = rng.uniform(size=(48, 48))
        got = tessellate_2d(spec, v, steps, tile=(16, 16))
        ref = apply_steps(spec, Grid.from_array(v, spec.radius),
                          steps).interior
        assert np.allclose(got, ref, rtol=1e-12, atol=1e-14)

    def test_rectangular_tiles_and_explicit_depth(self):
        from repro.tiling.tessellate import tessellate_2d
        spec = library.get("heat-2d")
        v = np.random.default_rng(0).uniform(size=(32, 48))
        got = tessellate_2d(spec, v, 9, tile=(16, 12), time_depth=3)
        ref = apply_steps(spec, Grid.from_array(v, 1), 9).interior
        assert np.allclose(got, ref, rtol=1e-12)

    def test_four_phases_reported(self):
        from repro.tiling.tessellate import tessellate_2d
        spec = library.get("heat-2d")
        v = np.zeros((32, 32))
        seen = []
        tessellate_2d(spec, v, 4, tile=(16, 16), time_depth=4,
                      on_phase=lambda blk, ph, n: seen.append((blk, ph)))
        assert seen == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_grid_wrapper(self):
        from repro.tiling.tessellate import tessellate_grid_2d
        spec = library.get("box-2d9p")
        g = Grid.random((32, 32), 1, seed=5)
        out = tessellate_grid_2d(spec, g, 6, tile=(16, 16))
        ref = apply_steps(spec, g, 6)
        assert np.allclose(out.interior, ref.interior, rtol=1e-12)

    def test_rejects_non_dividing_tile(self):
        from repro.tiling.tessellate import tessellate_2d
        with pytest.raises(TilingError):
            tessellate_2d(library.get("heat-2d"), np.zeros((30, 32)), 1,
                          tile=(16, 16))

    def test_rejects_1d_spec(self):
        from repro.tiling.tessellate import tessellate_2d
        with pytest.raises(TilingError):
            tessellate_2d(library.get("heat-1d"), np.zeros((16, 16)), 1,
                          tile=(8, 8))

    def test_rejects_excessive_depth(self):
        from repro.tiling.tessellate import tessellate_2d
        with pytest.raises(TilingError):
            tessellate_2d(library.get("star-2d9p"), np.zeros((32, 32)), 8,
                          tile=(16, 16), time_depth=5)  # 2*2*5 > 16


class TestTessellateND:
    @pytest.mark.parametrize("kernel,shape,tile", [
        ("heat-1d", (96,), (24,)),
        ("star-1d5p", (96,), (48,)),
        ("heat-2d", (48, 48), (16, 16)),
        ("heat-3d", (24, 24, 24), (8, 8, 8)),
        ("box-3d27p", (24, 24, 24), (12, 8, 8)),
    ])
    @pytest.mark.parametrize("steps", [1, 7])
    def test_matches_reference_any_dim(self, kernel, shape, tile, steps):
        from repro.tiling.tessellate import tessellate_nd
        spec = library.get(kernel)
        rng = np.random.default_rng(steps)
        v = rng.uniform(size=shape)
        got = tessellate_nd(spec, v, steps, tile=tile)
        ref = apply_steps(spec, Grid.from_array(v, spec.radius),
                          steps).interior
        assert np.allclose(got, ref, rtol=1e-12, atol=1e-14)

    def test_eight_phases_in_3d(self):
        from repro.tiling.tessellate import tessellate_nd
        spec = library.get("heat-3d")
        v = np.zeros((16, 16, 16))
        seen = []
        tessellate_nd(spec, v, 2, tile=(8, 8, 8), time_depth=2,
                      on_phase=lambda blk, mask, n: seen.append(mask))
        assert seen == list(range(8))

    def test_phase_zero_is_cores(self):
        from repro.tiling.tessellate import tessellate_nd
        spec = library.get("heat-2d")
        v = np.zeros((32, 32))
        counts = {}
        tessellate_nd(spec, v, 1, tile=(16, 16), time_depth=1,
                      on_phase=lambda blk, mask, n: counts.update({mask: n}))
        assert counts[0] == 4   # 2x2 tile cores
        assert counts[3] == 4   # 2x2 corners

    def test_grid_wrapper_any_dim(self):
        from repro.tiling.tessellate import tessellate_grid
        spec = library.get("heat-3d")
        g = Grid.random((16, 16, 16), 1, seed=3)
        out = tessellate_grid(spec, g, 4, tile=(8, 8, 8))
        ref = apply_steps(spec, g, 4)
        assert np.allclose(out.interior, ref.interior, rtol=1e-12)

    def test_validation(self):
        from repro.tiling.tessellate import tessellate_nd
        spec = library.get("heat-2d")
        with pytest.raises(TilingError):
            tessellate_nd(spec, np.zeros((30, 32)), 1, tile=(16, 16))
        with pytest.raises(TilingError):
            tessellate_nd(spec, np.zeros((32,)), 1, tile=(16,))
        with pytest.raises(TilingError):
            tessellate_nd(spec, np.zeros((32, 32)), 1, tile=(16,))
        with pytest.raises(TilingError):
            tessellate_nd(spec, np.zeros((32, 32)), 10, tile=(16, 16),
                          time_depth=9)  # 2*1*9 > 16

    @pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d"])
    def test_agrees_with_specialized_variants(self, kernel):
        from repro.tiling.tessellate import (
            tessellate_1d, tessellate_2d, tessellate_nd,
        )
        spec = library.get(kernel)
        rng = np.random.default_rng(11)
        if spec.ndim == 1:
            v = rng.uniform(size=64)
            a = tessellate_nd(spec, v, 6, tile=(16,))
            b = tessellate_1d(spec, v, 6, tile=16)
        else:
            v = rng.uniform(size=(32, 32))
            a = tessellate_nd(spec, v, 6, tile=(16, 16))
            b = tessellate_2d(spec, v, 6, tile=(16, 16))
        assert np.allclose(a, b, rtol=1e-13)


class TestParallelTessellation:
    @pytest.mark.parametrize("kernel,shape,tile", [
        ("heat-1d", (128,), (32,)),
        ("heat-2d", (48, 48), (16, 16)),
        ("heat-3d", (24, 24, 24), (8, 8, 8)),
    ])
    def test_pool_matches_serial(self, kernel, shape, tile):
        from concurrent.futures import ThreadPoolExecutor
        from repro.tiling.tessellate import tessellate_nd
        spec = library.get(kernel)
        v = np.random.default_rng(9).uniform(size=shape)
        serial = tessellate_nd(spec, v, 9, tile=tile)
        with ThreadPoolExecutor(4) as pool:
            parallel = tessellate_nd(spec, v, 9, tile=tile, pool=pool)
        assert np.array_equal(serial, parallel)

    def test_pool_matches_reference(self):
        from concurrent.futures import ThreadPoolExecutor
        from repro.tiling.tessellate import tessellate_nd
        spec = library.get("box-2d9p")
        v = np.random.default_rng(10).uniform(size=(64, 64))
        ref = apply_steps(spec, Grid.from_array(v, 1), 6).interior
        with ThreadPoolExecutor(3) as pool:
            got = tessellate_nd(spec, v, 6, tile=(16, 32), pool=pool)
        assert np.allclose(got, ref, rtol=1e-12, atol=1e-14)
