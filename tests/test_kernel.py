"""Tests for the CompiledKernel public API."""

import numpy as np
import pytest

from repro.config import GENERIC_AVX2
from repro.errors import VectorizeError
from repro.core import compile_kernel
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid

from _helpers import SIM_KERNELS


def make_kernel(kernel, nx=32, fusion="auto"):
    spec = library.get(kernel)
    shape = (6,) * (spec.ndim - 1) + (nx,)
    k0 = compile_kernel(spec, GENERIC_AVX2, Grid(shape, 16),
                        time_fusion=fusion)
    g = k0.grid_like(shape, seed=7)
    return compile_kernel(spec, GENERIC_AVX2, g, time_fusion=fusion), g


@pytest.mark.parametrize("kernel", SIM_KERNELS)
def test_sim_and_numpy_paths_agree_with_reference(kernel):
    k, g = make_kernel(kernel)
    steps = 2 * k.plan.time_fusion
    ref = apply_steps(k.plan.spec, g, steps)
    sim = k.run(g, steps)
    fast = k.run_numpy(g, steps)
    assert np.allclose(sim.interior, ref.interior, rtol=1e-12, atol=1e-14)
    assert np.allclose(fast.interior, ref.interior, rtol=1e-12, atol=1e-14)


def test_numpy_path_large_grid():
    spec = library.get("box-2d9p")
    k0 = compile_kernel(spec, GENERIC_AVX2, Grid((128, 128), 8))
    g = k0.grid_like((128, 128), seed=3)
    k = compile_kernel(spec, GENERIC_AVX2, g)
    steps = 2 * k.plan.time_fusion
    fast = k.run_numpy(g, steps)
    ref = apply_steps(spec, g, steps)
    assert np.allclose(fast.interior, ref.interior, rtol=1e-12)


def test_numpy_rejects_unaligned_steps():
    k, g = make_kernel("heat-1d", fusion=2)
    with pytest.raises(VectorizeError):
        k.run_numpy(g, 3)


def test_numpy_rejects_fused_dirichlet():
    k, g = make_kernel("heat-1d", fusion=2)
    with pytest.raises(VectorizeError):
        k.run_numpy(g, 2, boundary="dirichlet")


def test_numpy_dirichlet_unfused():
    k, g = make_kernel("heat-2d", fusion=1)
    got = k.run_numpy(g, 2, boundary="dirichlet", value=0.25)
    ref = apply_steps(k.plan.spec, g, 2, boundary="dirichlet", value=0.25)
    assert np.allclose(got.interior, ref.interior, rtol=1e-12)


def test_geometry_mismatch_rejected():
    k, g = make_kernel("heat-1d")
    other = Grid.random((64,), g.halo, seed=0)
    with pytest.raises(VectorizeError):
        k.run(other, 2)


def test_program_cached():
    k, _ = make_kernel("heat-1d")
    assert k.program is k.program


def test_trace_and_mix():
    k, g = make_kernel("heat-1d")
    tc = k.trace(g)
    assert tc.vectors > 0
    pv = k.per_vector_mix()
    assert set(pv) == {"L", "S", "C", "I", "A"}


def test_kernel_cost_and_estimate():
    k, _ = make_kernel("heat-2d")
    cost = k.kernel_cost()
    assert cost.scheme.startswith("t-jigsaw") or cost.scheme == "jigsaw"
    res = k.estimate(points=10**6, steps=10)
    assert res.gstencil_s > 0
    assert res.bottleneck in ("compute", "memory")


def test_grid_like_has_kernel_halo():
    k, g = make_kernel("heat-3d")
    assert g.halo == k.halo()
