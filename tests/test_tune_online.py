"""Exploration-safety tests for the online autotuner
(:mod:`repro.tune.online`).

The three contracts the serving stack depends on:

* **Occupancy gating** — a trial never runs (and so can never delay a
  request) while the server has admitted work in flight or a batch open;
* **Bitwise-safe promotion** — a contender only lands in the shared
  :class:`~repro.tune.TuningDB` after its served results are verified
  bitwise-identical to the incumbent's, and a broken contender is
  rejected forever;
* **Determinism** — the epsilon-greedy choice stream is a pure function
  of the seed, so an online-tuned run replays exactly.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.config import GENERIC_AVX2
from repro.errors import ReproError, TuneError
from repro.server import LoadConfig, StencilServer, reference_results, \
    run_load_sync
from repro.server.core import StencilJob
from repro.service import KernelService
from repro.stencils import library
from repro.tune import OnlineTuneConfig, OnlineTuner, default_config
from repro.tune.engine import Trial
from repro.tune.online import _config_key

SPEC = library.get("heat-1d")
SHAPE = (64,)

#: a small deterministic space (machine + numpy plans on the
#: interpreter backend) so every test converges in a handful of trials
FAST = dict(engines=("machine", "numpy"), exec_backends=("interp",),
            trial_steps=2, repeats=1)


def _drive(tuner: OnlineTuner, cap: int = 300):
    """Step until convergence; returns every productive OnlineTrial."""
    out = []
    for _ in range(cap):
        if tuner.converged():
            break
        r = tuner.step()
        if r is not None:
            out.append(r)
    assert tuner.converged(), "tuner failed to converge under the cap"
    return out


def _fake_measure(spec, machine, config, shape, *, steps, budget, cache,
                  boundary="periodic", model_score=0.0, **kw):
    """Deterministic synthetic throughput per configuration."""
    score = 50.0 + (sum(ord(c) for c in config.label()) % 97)
    return Trial(config=config, seconds=1e-3, mstencil_s=score,
                 steps=steps, repeats=1, model_score=model_score)


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        for kw in ({"epsilon": 1.5}, {"epsilon": -0.1},
                   {"trial_steps": 0}, {"repeats": 0},
                   {"trial_timeout_s": 0.0}, {"max_trials": 0},
                   {"min_interval_s": -1.0}, {"promote_margin": 0.9},
                   {"confirm_trials": -1}, {"poll_interval_s": 0.0}):
            with pytest.raises(TuneError):
                OnlineTuneConfig(**kw)

    def test_tuner_rejects_non_config(self):
        svc = KernelService(GENERIC_AVX2)
        with pytest.raises(TuneError):
            OnlineTuner(svc, config={"epsilon": 0.5})

    def test_server_validates_online_flags(self):
        with pytest.raises(ReproError):
            StencilServer(machine=GENERIC_AVX2, online_tune="yes")
        with pytest.raises(ReproError):
            StencilServer(machine=GENERIC_AVX2,
                          online_tune_config=OnlineTuneConfig())
        with pytest.raises(ReproError):
            StencilServer(machine=GENERIC_AVX2, online_tune=True,
                          online_tune_config={"epsilon": 1.0})


class TestOccupancyGate:
    def test_never_trials_while_requests_are_in_flight(self):
        """The exploration-safety contract: with admitted work in
        flight (or batches open), step() declines and counts the gate —
        once drained, the same step runs a trial."""

        async def scenario():
            async with StencilServer(machine=GENERIC_AVX2,
                                     batch_window_s=0.1,
                                     max_batch=64) as server:
                tuner = server.service.online_tuner(
                    config=OnlineTuneConfig(**FAST),
                    idle=server._tuner_idle)
                tuner.observe(SPEC, SHAPE, steps=2)
                tasks = [asyncio.create_task(server.submit(
                    StencilJob(SPEC, SHAPE, 2, seed=i)))
                    for i in range(8)]
                await asyncio.sleep(0)  # let every submit reach its await
                assert server.inflight == 8
                for _ in range(5):
                    assert tuner.step() is None
                stats = tuner.stats()
                assert stats["trials"] == 0
                assert stats["gated"] == 5
                await asyncio.gather(*tasks)
                assert server.inflight == 0 and not server._batches
                return tuner

        tuner = asyncio.run(scenario())
        # drained and stopped: the gate is open again (the idle lambda
        # closed over a now-closing server stays shut — build a fresh
        # one to show the gate was the only thing blocking)
        assert tuner.stats()["trials"] == 0

    def test_idle_gate_controls_trials_directly(self):
        svc = KernelService(GENERIC_AVX2)
        busy = {"flag": True}
        tuner = svc.online_tuner(config=OnlineTuneConfig(**FAST),
                                 idle=lambda: not busy["flag"])
        tuner.observe(SPEC, SHAPE, steps=2)
        assert tuner.step() is None
        assert tuner.stats() ["gated"] == 1
        busy["flag"] = False
        assert tuner.step() is not None
        assert tuner.stats()["trials"] == 1

    def test_saturating_load_with_online_tuning_blocks_nothing(self):
        """End to end: a server with online tuning on serves a full
        load with zero failures, zero rejections and bitwise-correct
        responses; any promotion that happened was verified."""
        cfg = LoadConfig(requests=48, shape=(16, 16), steps=2)
        refs = reference_results(cfg, GENERIC_AVX2)
        server = StencilServer(
            machine=GENERIC_AVX2, online_tune=True,
            online_tune_config=OnlineTuneConfig(max_trials=6, **FAST))
        report = run_load_sync(cfg, server=server, references=refs)
        assert report.bitwise_ok, report.mismatches
        assert not report.errors, report.errors
        assert report.completed == cfg.requests
        assert report.rejected == 0 and report.failed == 0
        stats = server.online_tuner.stats()
        assert stats["workloads"] >= 1
        assert stats["promotions"] <= stats["verified"]
        # the tuner's counters fold into the server stats surface
        assert server.stats()["online_workloads"] == stats["workloads"]


class TestBitwisePromotion:
    def test_promoted_config_serves_identical_results(self):
        svc = KernelService(GENERIC_AVX2)
        tuner = svc.online_tuner(config=OnlineTuneConfig(seed=3, **FAST))
        tuner.observe(SPEC, SHAPE, steps=2)
        _drive(tuner)
        stats = tuner.stats()
        assert stats["promotions"] >= 1  # numpy beats machine/interp
        assert stats["verified"] >= stats["promotions"]
        assert stats["verify_failures"] == 0
        rec = svc.tuning_db.lookup(SPEC, GENERIC_AVX2, SHAPE)
        assert rec is not None
        assert rec.trials[0]["online"] is True
        assert rec.trials[0]["verified"] is True
        # what the winner serves is bitwise what the default served
        state = next(iter(tuner._states.values()))
        want = tuner._run_config(state,
                                 default_config(SPEC, GENERIC_AVX2))
        got = tuner._run_config(state, rec.config)
        assert want.dtype == got.dtype
        assert np.array_equal(want, got)

    def test_broken_contender_is_never_promoted(self, monkeypatch):
        svc = KernelService(GENERIC_AVX2)
        tuner = svc.online_tuner(config=OnlineTuneConfig(seed=3, **FAST))
        tuner.observe(SPEC, SHAPE, steps=2)
        real = OnlineTuner._run_config

        def crooked(self, state, config):
            out = real(self, state, config)
            if _config_key(config) != _config_key(state.incumbent):
                out = out + np.finfo(out.dtype).eps  # one-ulp corruption
            return out

        monkeypatch.setattr(OnlineTuner, "_run_config", crooked)
        _drive(tuner)
        stats = tuner.stats()
        assert stats["promotions"] == 0
        assert stats["verify_failures"] >= 1
        assert svc.tuning_db.lookup(SPEC, GENERIC_AVX2, SHAPE) is None
        assert svc.tuning_db.stats_dict()["promotions"] == 0

    def test_promotion_prewarms_the_compile_cache(self):
        svc = KernelService(GENERIC_AVX2)
        tuner = svc.online_tuner(config=OnlineTuneConfig(seed=0, **FAST))
        tuner.observe(SPEC, SHAPE, steps=2)
        _drive(tuner)
        stats = tuner.stats()
        winner = svc.tuned_config(SPEC, SHAPE)
        if winner is not None and winner.is_plan_aware:
            assert stats["prewarmed"] >= 1


class TestDeterminism:
    def _sequence(self, seed, monkeypatch):
        svc = KernelService(GENERIC_AVX2)
        tuner = svc.online_tuner(
            config=OnlineTuneConfig(seed=seed, epsilon=0.5, **FAST))
        monkeypatch.setattr("repro.tune.online.measure", _fake_measure)
        monkeypatch.setattr(
            OnlineTuner, "_run_config",
            lambda self, state, config: np.zeros(4))
        tuner.observe(SPEC, SHAPE, steps=2)
        return [(t.kind, t.trial.config.label(), t.promoted, t.verified)
                for t in _drive(tuner)]

    def test_fixed_seed_replays_exactly(self, monkeypatch):
        a = self._sequence(11, monkeypatch)
        b = self._sequence(11, monkeypatch)
        assert a == b
        assert any(kind == "explore" for kind, *_ in a)

    def test_epsilon_zero_is_pure_greedy(self, monkeypatch):
        svc = KernelService(GENERIC_AVX2)
        fast = dict(FAST)
        tuner = svc.online_tuner(
            config=OnlineTuneConfig(seed=0, epsilon=0.0, **fast))
        monkeypatch.setattr("repro.tune.online.measure", _fake_measure)
        monkeypatch.setattr(
            OnlineTuner, "_run_config",
            lambda self, state, config: np.zeros(4))
        tuner.observe(SPEC, SHAPE, steps=2)
        _drive(tuner)
        stats = tuner.stats()
        assert stats["explore"] == 0 and stats["greedy"] > 0

    def test_epsilon_one_is_pure_exploration(self, monkeypatch):
        svc = KernelService(GENERIC_AVX2)
        tuner = svc.online_tuner(
            config=OnlineTuneConfig(seed=0, epsilon=1.0, **FAST))
        monkeypatch.setattr("repro.tune.online.measure", _fake_measure)
        monkeypatch.setattr(
            OnlineTuner, "_run_config",
            lambda self, state, config: np.zeros(4))
        tuner.observe(SPEC, SHAPE, steps=2)
        _drive(tuner)
        stats = tuner.stats()
        assert stats["greedy"] == 0 and stats["explore"] > 0


class TestLifecycle:
    def test_incumbent_is_default_until_promotion(self):
        svc = KernelService(GENERIC_AVX2)
        tuner = svc.online_tuner(config=OnlineTuneConfig(**FAST))
        assert (tuner.incumbent(SPEC, SHAPE)
                == default_config(SPEC, GENERIC_AVX2))
        tuner.observe(SPEC, SHAPE, steps=2)
        _drive(tuner)
        rec = svc.tuning_db.lookup(SPEC, GENERIC_AVX2, SHAPE)
        if rec is not None:
            assert tuner.incumbent(SPEC, SHAPE) == rec.config

    def test_observe_is_idempotent(self):
        svc = KernelService(GENERIC_AVX2)
        tuner = svc.online_tuner(config=OnlineTuneConfig(**FAST))
        for _ in range(5):
            tuner.observe(SPEC, SHAPE, steps=2)
        assert tuner.stats()["workloads"] == 1

    def test_lifetime_budget_stops_exploration(self, monkeypatch):
        svc = KernelService(GENERIC_AVX2)
        tuner = svc.online_tuner(
            config=OnlineTuneConfig(max_trials=3, **FAST))
        monkeypatch.setattr("repro.tune.online.measure", _fake_measure)
        monkeypatch.setattr(
            OnlineTuner, "_run_config",
            lambda self, state, config: np.zeros(4))
        tuner.observe(SPEC, SHAPE, steps=2)
        _drive(tuner)
        assert tuner.stats()["trials"] == 3

    def test_background_thread_start_stop(self):
        svc = KernelService(GENERIC_AVX2)
        tuner = svc.online_tuner(
            config=OnlineTuneConfig(max_trials=2,
                                    poll_interval_s=0.001, **FAST))
        tuner.observe(SPEC, SHAPE, steps=2)
        tuner.start()
        with pytest.raises(TuneError):
            tuner.start()
        deadline = 5.0
        t = 0.0
        import time
        while tuner.stats()["trials"] < 2 and t < deadline:
            time.sleep(0.01)
            t += 0.01
        tuner.stop()
        assert tuner.stats()["trials"] == 2

    def test_converged_is_false_with_no_workloads(self):
        svc = KernelService(GENERIC_AVX2)
        tuner = svc.online_tuner(config=OnlineTuneConfig(**FAST))
        assert not tuner.converged()
        assert tuner.step() is None
