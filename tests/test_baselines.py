"""Integration tests: every baseline scheme reproduces the reference on
every library kernel, plus the Table-2 instruction accounting for the
baselines."""

import numpy as np
import pytest

from repro.config import GENERIC_AVX2, GENERIC_SSE
from repro.errors import VectorizeError
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec
from repro.vectorize import (
    generate_folding,
    generate_multiple_loads,
    generate_multiple_perms,
    generate_tessellation,
)
from repro.vectorize.driver import measure_trace, run_program
from repro.vectorize.folding import required_halo as folding_halo
from repro.vectorize.multiple_perms import required_halo as perms_halo

from _helpers import SIM_KERNELS

GENERATORS = {
    "auto": (generate_multiple_loads, perms_halo),
    "reorg": (generate_multiple_perms, perms_halo),
    "tess": (generate_tessellation, perms_halo),
    "folding": (generate_folding, folding_halo),
}


def make_grid(spec, halo, nx=32, seed=0):
    shape = (5,) * (spec.ndim - 1) + (nx,)
    return Grid.random(shape, halo, seed=seed)


@pytest.mark.parametrize("scheme", sorted(GENERATORS))
@pytest.mark.parametrize("kernel", SIM_KERNELS)
def test_scheme_matches_reference_periodic(scheme, kernel):
    gen, halo_fn = GENERATORS[scheme]
    spec = library.get(kernel)
    g = make_grid(spec, halo_fn(spec, GENERIC_AVX2))
    prog = gen(spec, GENERIC_AVX2, g)
    got = run_program(prog, g, 3)
    ref = apply_steps(spec, g, 3)
    assert np.allclose(got.interior, ref.interior, rtol=1e-12, atol=1e-14)


@pytest.mark.parametrize("scheme", ["auto", "reorg"])
@pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d", "heat-3d"])
def test_scheme_matches_reference_dirichlet(scheme, kernel):
    gen, halo_fn = GENERATORS[scheme]
    spec = library.get(kernel)
    g = make_grid(spec, halo_fn(spec, GENERIC_AVX2))
    prog = gen(spec, GENERIC_AVX2, g)
    got = run_program(prog, g, 2, boundary="dirichlet", value=0.5)
    ref = apply_steps(spec, g, 2, boundary="dirichlet", value=0.5)
    assert np.allclose(got.interior, ref.interior, rtol=1e-12, atol=1e-14)


@pytest.mark.parametrize("kernel", ["heat-1d", "star-1d5p", "heat-2d"])
def test_auto_and_reorg_work_on_sse(kernel):
    spec = library.get(kernel)
    for scheme in ("auto", "reorg"):
        gen, halo_fn = GENERATORS[scheme]
        g = make_grid(spec, halo_fn(spec, GENERIC_SSE))
        prog = gen(spec, GENERIC_SSE, g)
        got = run_program(prog, g, 2)
        ref = apply_steps(spec, g, 2)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12)


class TestInstructionAccounting:
    """Body instruction mixes against the paper's Table-2 baselines."""

    @pytest.mark.parametrize("kernel,loads", [
        ("heat-1d", 3), ("star-1d5p", 5), ("heat-2d", 5), ("box-2d9p", 9),
        ("heat-3d", 7), ("box-3d27p", 27),
    ])
    def test_auto_loads_equal_points(self, kernel, loads):
        spec = library.get(kernel)
        g = make_grid(spec, perms_halo(spec, GENERIC_AVX2))
        mix = generate_multiple_loads(spec, GENERIC_AVX2, g).body_mix()
        assert mix.loads == loads
        assert mix.stores == 1
        assert mix.shuffles == 0

    @pytest.mark.parametrize("kernel,rows,cross,inlane", [
        ("heat-1d", 1, 2, 2),
        ("heat-2d", 3, 2, 2),
        ("heat-3d", 5, 2, 2),
        ("box-2d9p", 3, 6, 6),
        ("box-3d27p", 9, 18, 18),
    ])
    def test_reorg_body_counts_match_paper(self, kernel, rows, cross, inlane):
        spec = library.get(kernel)
        g = make_grid(spec, perms_halo(spec, GENERIC_AVX2))
        mix = generate_multiple_perms(spec, GENERIC_AVX2, g).body_mix()
        assert mix.loads == rows
        assert mix.cross_lane == cross
        assert mix.in_lane == inlane

    def test_reorg_star1d5p_shares_concats(self):
        # paper bills 3 cross-lane; shared intermediates need only 2
        spec = library.get("star-1d5p")
        g = make_grid(spec, perms_halo(spec, GENERIC_AVX2))
        mix = generate_multiple_perms(spec, GENERIC_AVX2, g).body_mix()
        assert mix.cross_lane == 2

    def test_folding_cross_lane_doubles_jigsaw(self):
        # §3.1: LBV halves Folding's cross-lane count
        from repro.core.jigsaw import generate_jigsaw
        from repro.core.jigsaw import required_halo as jig_halo
        spec = library.get("heat-1d")
        gf = make_grid(spec, folding_halo(spec, GENERIC_AVX2))
        fold = generate_folding(spec, GENERIC_AVX2, gf).per_vector_mix()
        gj = make_grid(spec, jig_halo(spec, GENERIC_AVX2))
        jig = generate_jigsaw(spec, GENERIC_AVX2, gj).per_vector_mix()
        assert fold["C"] >= 2 * jig["C"]

    def test_tessellation_requires_symmetry(self):
        asym = StencilSpec("a", 1, ((-1,), (0,), (1,)), (0.1, 0.5, 0.4))
        g = Grid.random((32,), 4, seed=0)
        with pytest.raises(VectorizeError):
            generate_tessellation(asym, GENERIC_AVX2, g)

    def test_folding_requires_avx2_width(self):
        spec = library.get("heat-1d")
        g = make_grid(spec, folding_halo(spec, GENERIC_SSE))
        with pytest.raises(VectorizeError):
            generate_folding(spec, GENERIC_SSE, g)


class TestGeometryValidation:
    def test_indivisible_x_gets_scalar_epilogue(self):
        spec = library.get("heat-1d")
        g = Grid.random((30,), 4, seed=0)  # 30 % 4 != 0
        prog = generate_multiple_loads(spec, GENERIC_AVX2, g)
        assert prog.x_loop.trip_count * prog.block == 28
        got = run_program(prog, g, 2)
        ref = apply_steps(spec, g, 2)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12)

    def test_x_shorter_than_block_rejected(self):
        spec = library.get("heat-1d")
        g = Grid.random((3,), 3, seed=0)
        with pytest.raises(VectorizeError):
            generate_multiple_loads(spec, GENERIC_AVX2, g)

    def test_small_halo_rejected(self):
        spec = library.get("heat-2d")
        g = Grid.random((8, 32), (1, 1), seed=0)  # reorg needs x halo >= W
        with pytest.raises(VectorizeError):
            generate_multiple_perms(spec, GENERIC_AVX2, g)

    def test_ndim_mismatch_rejected(self):
        spec = library.get("heat-2d")
        g = Grid.random((32,), 4, seed=0)
        with pytest.raises(VectorizeError):
            generate_multiple_loads(spec, GENERIC_AVX2, g)


class TestDriver:
    def test_steps_must_match_fusion(self):
        from repro.core.jigsaw import generate_jigsaw, required_halo
        spec = library.get("heat-1d")
        g = make_grid(spec, required_halo(spec, GENERIC_AVX2, time_fusion=2))
        prog = generate_jigsaw(spec, GENERIC_AVX2, g, time_fusion=2)
        with pytest.raises(VectorizeError):
            run_program(prog, g, 3)

    def test_fused_dirichlet_rejected(self):
        from repro.core.jigsaw import generate_jigsaw, required_halo
        spec = library.get("heat-1d")
        g = make_grid(spec, required_halo(spec, GENERIC_AVX2, time_fusion=2))
        prog = generate_jigsaw(spec, GENERIC_AVX2, g, time_fusion=2)
        with pytest.raises(VectorizeError):
            run_program(prog, g, 2, boundary="dirichlet")

    def test_negative_steps_rejected(self):
        spec = library.get("heat-1d")
        g = make_grid(spec, perms_halo(spec, GENERIC_AVX2))
        prog = generate_multiple_loads(spec, GENERIC_AVX2, g)
        with pytest.raises(VectorizeError):
            run_program(prog, g, -1)

    def test_measure_trace_counts_vectors(self):
        spec = library.get("heat-1d")
        g = make_grid(spec, perms_halo(spec, GENERIC_AVX2))
        prog = generate_multiple_loads(spec, GENERIC_AVX2, g)
        tc = measure_trace(prog, g)
        assert tc.vectors == 32 // 4
