"""Property tests for the kernel compilation cache
(:mod:`repro.core.cache`).

Three invariants matter:

1. a cache hit (memory or disk) returns a program identical to a cold
   compile;
2. the key is content-addressed — *any* change to the spec, the machine,
   the plan options, or the grid geometry changes it;
3. a corrupted on-disk entry is discarded and recompiled, never trusted
   and never fatal.
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GENERIC_AVX2, GENERIC_AVX2_F32, GENERIC_AVX512
from repro.core import compile_kernel
from repro.core.cache import (
    ENTRY_FORMAT,
    KernelCache,
    configure_default_cache,
    default_cache,
    persisted_totals,
    plan_key,
    program_key,
    write_json_atomic,
)
from repro.machine.serialize import program_to_dict
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec, star
from repro.vectorize.program import VectorProgram

SPEC = library.get("box-2d9p")
SHAPE = (8, 96)


def _grid(machine=GENERIC_AVX2, shape=SHAPE):
    return Grid(shape, (16,) * len(shape))


def _cold_program(spec=SPEC, machine=GENERIC_AVX2, grid=None) -> VectorProgram:
    grid = grid if grid is not None else _grid(machine)
    return KernelCache().compile(spec, machine, grid).program


class TestHitIdentity:
    def test_memory_hit_identical_to_cold(self):
        cache = KernelCache()
        grid = _grid()
        cold = _cold_program()
        first = cache.compile(SPEC, GENERIC_AVX2, grid).program
        second = cache.compile(SPEC, GENERIC_AVX2, grid).program
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert first == cold and second == cold
        assert program_to_dict(second) == program_to_dict(cold)

    def test_disk_hit_identical_to_cold(self, tmp_path):
        grid = _grid()
        cold = _cold_program()
        writer = KernelCache(str(tmp_path))
        writer.compile(SPEC, GENERIC_AVX2, grid).program
        assert writer.stats.disk_writes == 1
        reader = KernelCache(str(tmp_path))  # fresh memory, warm disk
        prog = reader.compile(SPEC, GENERIC_AVX2, grid).program
        assert reader.stats.disk_hits == 1 and reader.stats.misses == 0
        assert prog == cold
        assert program_to_dict(prog) == program_to_dict(cold)
        # the tail spec survives the round trip (execution needs it)
        assert prog.tail_spec == cold.tail_spec

    def test_cached_program_executes_identically(self, tmp_path):
        spec = library.get("heat-2d")
        shape = (32, 96)
        writer = KernelCache(str(tmp_path))
        k1 = writer.compile(spec, GENERIC_AVX2, _grid(shape=shape))
        g = Grid.random(shape, k1.grid.halo, seed=5)
        a = k1.run(g, k1.plan.time_fusion)
        reader = KernelCache(str(tmp_path))
        k2 = reader.compile(spec, GENERIC_AVX2, _grid(shape=shape))
        b = k2.run(g, k2.plan.time_fusion)
        assert reader.stats.disk_hits == 1
        assert np.array_equal(a.data, b.data)
        ref = apply_steps(spec, g, k1.plan.time_fusion)
        assert np.allclose(a.interior, ref.interior, rtol=1e-12)


class TestKeySensitivity:
    def test_coefficient_change_changes_key(self):
        other = SPEC.scaled(1.0 + 1e-9)
        assert plan_key(SPEC, GENERIC_AVX2) != plan_key(other, GENERIC_AVX2)

    def test_offset_change_changes_key(self):
        spec = star(2, 1, center=-4.0, arm=[1.0], name="k")
        moved = StencilSpec(
            name="k", ndim=2,
            offsets=tuple((o[0], o[1] + (1 if o == (0, 1) else 0))
                          for o in spec.offsets),
            coeffs=spec.coeffs,
        )
        assert plan_key(spec, GENERIC_AVX2) != plan_key(moved, GENERIC_AVX2)

    def test_name_change_changes_key(self):
        assert (plan_key(SPEC, GENERIC_AVX2)
                != plan_key(SPEC.renamed("other"), GENERIC_AVX2))

    @pytest.mark.parametrize("mutation", [
        {"vector_bits": 512},
        {"element_bytes": 4},
        {"freq_ghz": 3.0},
        {"vector_registers": 32},
        {"name": "other-machine"},
    ])
    def test_machine_change_changes_key(self, mutation):
        other = dataclasses.replace(GENERIC_AVX2, **mutation)
        assert plan_key(SPEC, GENERIC_AVX2) != plan_key(SPEC, other)

    def test_plan_options_change_key(self):
        base = plan_key(SPEC, GENERIC_AVX2)
        assert base != plan_key(SPEC, GENERIC_AVX2, time_fusion=1)
        assert base != plan_key(SPEC, GENERIC_AVX2, use_sdf=False)

    def test_grid_geometry_changes_program_key(self):
        cache = KernelCache()
        plan = cache.plan(SPEC, GENERIC_AVX2)
        assert (program_key(plan, _grid(shape=(8, 96)))
                != program_key(plan, _grid(shape=(8, 192))))
        assert (program_key(plan, Grid((8, 96), 16))
                != program_key(plan, Grid((8, 96), 18)))

    @settings(max_examples=30, deadline=None)
    @given(scale=st.floats(min_value=1e-6, max_value=10.0,
                           allow_nan=False, allow_infinity=False),
           machine=st.sampled_from([GENERIC_AVX2, GENERIC_AVX512,
                                    GENERIC_AVX2_F32]))
    def test_any_scaling_perturbs_key(self, scale, machine):
        base = plan_key(SPEC, machine)
        scaled = SPEC.scaled(scale)
        same_content = scaled.coeffs == SPEC.coeffs and scaled.name == SPEC.name
        assert (plan_key(scaled, machine) == base) == same_content

    def test_distinct_machines_cache_separately(self):
        cache = KernelCache()
        p1 = cache.compile(SPEC, GENERIC_AVX2, _grid()).program
        p2 = cache.compile(SPEC, GENERIC_AVX512, _grid(GENERIC_AVX512)).program
        assert cache.stats.misses == 2
        assert p1.width != p2.width


class TestDiskRobustness:
    def _entry_paths(self, tmp_path):
        return [p for p in os.listdir(tmp_path)
                if p.endswith(".json") and not p.startswith("_")]

    def test_corrupted_entry_recompiles(self, tmp_path):
        cold = _cold_program()
        cache = KernelCache(str(tmp_path))
        cache.compile(SPEC, GENERIC_AVX2, _grid()).program
        (entry,) = self._entry_paths(tmp_path)
        path = os.path.join(tmp_path, entry)
        with open(path, "w") as fh:
            fh.write("{ this is not json")
        fresh = KernelCache(str(tmp_path))
        prog = fresh.compile(SPEC, GENERIC_AVX2, _grid()).program
        assert fresh.stats.disk_discards == 1
        assert fresh.stats.misses == 1  # recompiled, did not crash
        assert prog == cold
        # the bad file was replaced by a good entry
        again = KernelCache(str(tmp_path))
        assert again.compile(SPEC, GENERIC_AVX2, _grid()).program == cold
        assert again.stats.disk_hits == 1

    def test_corrupted_entry_is_quarantined(self, tmp_path):
        """A corrupt/truncated entry is moved into ``_quarantine/`` (not
        deleted), counted in the stats, and excluded from disk entries."""
        from repro.core.cache import QUARANTINE_DIR
        cold = _cold_program()
        cache = KernelCache(str(tmp_path))
        cache.compile(SPEC, GENERIC_AVX2, _grid()).program
        (entry,) = self._entry_paths(tmp_path)
        path = os.path.join(tmp_path, entry)
        good = open(path).read()
        with open(path, "w") as fh:
            fh.write(good[: len(good) // 2])  # truncated write
        fresh = KernelCache(str(tmp_path))
        assert fresh.compile(SPEC, GENERIC_AVX2, _grid()).program == cold
        assert fresh.stats.disk_quarantined == 1
        assert fresh.stats.disk_discards == 1
        qdir = os.path.join(tmp_path, QUARANTINE_DIR)
        assert os.listdir(qdir) == [entry]
        # the quarantined body is the evidence, preserved verbatim
        assert open(os.path.join(qdir, entry)).read() == good[: len(good) // 2]
        d = fresh.stats_dict()
        assert d["disk_quarantined"] == 1
        assert d["quarantine_entry_count"] == 1
        # quarantined files never count as live entries, and clear()
        # purges them alongside the good ones
        assert fresh.disk_entries()[0] == 1
        fresh.clear()
        assert os.listdir(qdir) == []

    def test_checksum_mismatch_quarantined(self, tmp_path):
        """Semantic corruption (valid JSON, wrong program content) is
        caught by the entry checksum and quarantined."""
        import json as _json
        cache = KernelCache(str(tmp_path))
        cache.compile(SPEC, GENERIC_AVX2, _grid()).program
        (entry,) = self._entry_paths(tmp_path)
        path = os.path.join(tmp_path, entry)
        with open(path) as fh:
            payload = _json.load(fh)
        payload["program"]["name"] = "tampered"
        with open(path, "w") as fh:
            _json.dump(payload, fh)
        fresh = KernelCache(str(tmp_path))
        fresh.compile(SPEC, GENERIC_AVX2, _grid()).program
        assert fresh.stats.disk_quarantined == 1
        assert fresh.stats.misses == 1

    @pytest.mark.parametrize("mangle", [
        lambda e: {**e, "format": ENTRY_FORMAT + 1},
        lambda e: {**e, "key": "0" * 64},
        lambda e: {**e, "program": {**e["program"], "width": 3}},
        lambda e: {**e, "program": {
            **e["program"],
            "body": [{**i, "op": "bogus-op"} for i in e["program"]["body"]],
        }},
    ])
    def test_mangled_entries_discarded(self, tmp_path, mangle):
        cache = KernelCache(str(tmp_path))
        cache.compile(SPEC, GENERIC_AVX2, _grid()).program
        (entry,) = self._entry_paths(tmp_path)
        path = os.path.join(tmp_path, entry)
        with open(path) as fh:
            payload = json.load(fh)
        with open(path, "w") as fh:
            json.dump(mangle(payload), fh)
        fresh = KernelCache(str(tmp_path))
        prog = fresh.compile(SPEC, GENERIC_AVX2, _grid()).program
        assert fresh.stats.disk_discards == 1
        assert prog == _cold_program()

    def test_clear_removes_entries(self, tmp_path):
        cache = KernelCache(str(tmp_path))
        cache.compile(SPEC, GENERIC_AVX2, _grid()).program
        assert cache.disk_entries()[0] == 1
        assert cache.clear() == 1
        assert cache.disk_entries() == (0, 0)
        # post-clear compiles still work
        assert cache.compile(SPEC, GENERIC_AVX2, _grid()).program.body


class TestStatsAndEviction:
    def test_lru_eviction_counted(self):
        cache = KernelCache(max_entries=2)
        specs = [library.get(n) for n in ("heat-1d", "star-1d5p", "star-1d7p")]
        for s in specs:
            cache.compile(s, GENERIC_AVX2, Grid((96,), 16)).program
        assert cache.stats.evictions == 1
        assert cache.stats_dict()["memory_programs"] == 2

    def test_stats_dict_shape(self, tmp_path):
        cache = KernelCache(str(tmp_path))
        cache.compile(SPEC, GENERIC_AVX2, _grid()).program
        d = cache.stats_dict()
        for key in ("hits", "misses", "evictions", "disk_hits",
                    "disk_writes", "disk_discards", "disk_entry_count",
                    "disk_entry_bytes"):
            assert key in d
        assert d["disk_entry_count"] == 1 and d["disk_entry_bytes"] > 0

    def test_persisted_stats_accumulate(self, tmp_path):
        for _ in range(2):
            c = KernelCache(str(tmp_path))
            c.compile(SPEC, GENERIC_AVX2, _grid()).program
        totals = persisted_totals(str(tmp_path))
        assert totals["misses"] == 1 and totals["disk_hits"] == 1

    def test_default_cache_is_shared_and_replaceable(self):
        replaced = configure_default_cache()
        try:
            assert default_cache() is replaced
            k1 = compile_kernel(SPEC, GENERIC_AVX2, _grid())
            k2 = compile_kernel(SPEC, GENERIC_AVX2, _grid())
            k1.program, k2.program
            assert replaced.stats.hits >= 1
            # cache=False bypasses memoization entirely
            before = replaced.stats.as_dict()
            compile_kernel(SPEC, GENERIC_AVX2, _grid(), cache=False).program
            assert replaced.stats.as_dict() == before
        finally:
            configure_default_cache()


class TestConcurrency:
    """Regression tests for the persistence-layer races (ISSUE 4)."""

    def test_atomic_write_survives_thread_hammer(self, tmp_path):
        # Historically the temp suffix was the pid only, so two threads of
        # one process writing the same entry interleaved into one temp
        # file before os.replace.  Hammer one path from many threads: the
        # file must be valid JSON (one of the payloads, never a mix) at
        # every point, and no temp droppings may remain.
        import threading

        path = os.path.join(str(tmp_path), "entry.json")
        errors = []
        barrier = threading.Barrier(8)

        def writer(tid: int) -> None:
            payload = {"writer": tid, "fill": "x" * 4096}
            barrier.wait()
            try:
                for _ in range(40):
                    write_json_atomic(path, payload)
                    with open(path, "r", encoding="utf-8") as fh:
                        seen = json.load(fh)
                    assert set(seen) == {"writer", "fill"}
                    assert seen["fill"] == "x" * 4096
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        leftovers = [n for n in os.listdir(tmp_path) if ".tmp." in n]
        assert leftovers == []

    def test_two_writer_stats_merge(self, tmp_path):
        # Two cache instances (standing in for two processes) sharing one
        # directory: the old base+session totals were last-writer-wins,
        # so one writer's counters silently vanished.  Each writer now
        # owns a delta file and persisted_totals() merges them.
        a = KernelCache(str(tmp_path))
        b = KernelCache(str(tmp_path))
        a.compile(SPEC, GENERIC_AVX2, _grid()).program            # miss
        b.compile(library.get("heat-2d"), GENERIC_AVX2,
                  _grid(shape=(32, 96))).program                  # miss
        # interleaved re-persists must not clobber the other writer
        a._persist_stats()
        b._persist_stats()
        totals = persisted_totals(str(tmp_path))
        assert totals["misses"] == 2
        assert totals["disk_writes"] == 2

    def test_clear_resets_stats_and_cli_round_trip(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        cache = KernelCache(str(tmp_path))
        cache.compile(SPEC, GENERIC_AVX2, _grid()).program
        cache.compile(SPEC, GENERIC_AVX2, _grid()).program
        assert cache.stats.misses == 1 and cache.stats.hits >= 1
        assert persisted_totals(str(tmp_path))["misses"] == 1
        cache.clear()
        # in-memory counters and the persisted files both reset
        assert cache.stats.as_dict() == {k: 0
                                         for k in cache.stats.as_dict()}
        assert persisted_totals(str(tmp_path)) == {}
        # the CLI round-trip: clear then stats must report an empty cache
        assert cli_main(["cache", "clear", "--cache-dir",
                         str(tmp_path)]) == 0
        capsys.readouterr()
        assert cli_main(["cache", "stats", "--cache-dir",
                         str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            key = line.split(":")[0].strip()
            if key in ("entries", "hits", "misses", "disk hits",
                       "disk writes", "evictions"):
                assert line.rstrip().endswith(" 0"), line

    def test_concurrent_misses_compile_once(self, monkeypatch):
        # Two services (or a service plus a tuner) sharing one cache used
        # to both run the full compile on a simultaneous miss; the
        # per-key in-flight lock collapses them to one.
        import threading

        import repro.core.cache as cache_mod

        calls = []
        real_generate = cache_mod.generate_jigsaw

        def counting_generate(*args, **kwargs):
            calls.append(threading.get_ident())
            import time as _t
            _t.sleep(0.05)  # widen the race window
            return real_generate(*args, **kwargs)

        monkeypatch.setattr(cache_mod, "generate_jigsaw",
                            counting_generate)
        cache = KernelCache()
        plan = cache.plan(SPEC, GENERIC_AVX2)
        grid = _grid()
        results = []
        barrier = threading.Barrier(6)

        def compete() -> None:
            barrier.wait()
            results.append(cache.program(plan, grid))

        threads = [threading.Thread(target=compete) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1, f"compiled {len(calls)} times"
        assert all(r is results[0] for r in results)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 5
        # stats_dict snapshots under the lock stay internally consistent
        d = cache.stats_dict()
        assert d["hits"] + d["misses"] == 6
