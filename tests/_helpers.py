"""Importable test helpers (kept out of conftest so tests/ and
benchmarks/ can be collected in one pytest invocation)."""

from repro.stencils import library
from repro.stencils.grid import Grid

#: all library kernels, id-friendly
KERNELS = library.names()

#: kernels exercised on the simulator path in every integration test
SIM_KERNELS = (
    "heat-1d", "star-1d5p", "star-1d7p", "heat-2d", "box-2d9p",
    "star-2d9p", "heat-3d", "box-3d27p",
)


def small_shape(ndim: int, nx: int = 32) -> tuple:
    """A small interior shape with the last axis vector-friendly."""
    return (5,) * (ndim - 1) + (nx,)


def random_grid(spec, halo, *, nx: int = 32, seed: int = 0) -> Grid:
    return Grid.random(small_shape(spec.ndim, nx), halo, seed=seed)
