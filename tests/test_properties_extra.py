"""Additional property-based tests: random 3-D stencils, float32
butterflies, serializer round trips, window invariants, cache-sim
invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config import GENERIC_AVX2, GENERIC_AVX2_F32
from repro.core.jigsaw import generate_jigsaw, required_halo
from repro.machine.cachesim import CacheHierarchySim, CacheLevelSim
from repro.machine.serialize import dumps, loads
from repro.stencils import apply_steps
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec
from repro.vectorize.driver import run_program
from repro.vectorize.shifts import window_offsets

coeff = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False,
                  allow_infinity=False).filter(lambda c: abs(c) > 1e-6)


@st.composite
def stencil_3d(draw):
    cells = [(dz, dy, dx)
             for dz in (-1, 0, 1) for dy in (-1, 0, 1) for dx in (-1, 0, 1)]
    picked = draw(st.lists(st.sampled_from(cells), min_size=2, max_size=10,
                           unique=True))
    assume(any(dx != 0 for *_, dx in picked))
    coeffs = draw(st.lists(coeff, min_size=len(picked),
                           max_size=len(picked)))
    return StencilSpec("h3", 3, tuple(sorted(picked)), tuple(coeffs))


@st.composite
def stencil_1d_any(draw):
    r = draw(st.integers(1, 4))
    offsets = list(range(-r, r + 1))
    picked = draw(st.lists(st.sampled_from(offsets), min_size=1,
                           max_size=len(offsets), unique=True))
    assume(max(abs(o) for o in picked) == r)
    coeffs = draw(st.lists(coeff, min_size=len(picked),
                           max_size=len(picked)))
    return StencilSpec("h1", 1, tuple((o,) for o in sorted(picked)),
                       tuple(coeffs))


@settings(max_examples=10, deadline=None)
@given(stencil_3d(), st.integers(0, 100))
def test_jigsaw_3d_random_stencils(spec, seed):
    g = Grid.random((3, 3, 32), required_halo(spec, GENERIC_AVX2), seed=seed)
    prog = generate_jigsaw(spec, GENERIC_AVX2, g)
    got = run_program(prog, g, 1)
    ref = apply_steps(spec, g, 1)
    assert np.allclose(got.interior, ref.interior, rtol=1e-9, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(stencil_1d_any(), st.integers(0, 100))
def test_jigsaw_f32_random_stencils(spec, seed):
    assume(spec.radius[0] <= GENERIC_AVX2_F32.vector_elems)
    g = Grid.random((64,), required_halo(spec, GENERIC_AVX2_F32),
                    seed=seed, dtype=np.float32)
    prog = generate_jigsaw(spec, GENERIC_AVX2_F32, g)
    got = run_program(prog, g, 1)
    ref = apply_steps(spec, g, 1)
    scale = max(1.0, float(np.max(np.abs(ref.interior))))
    assert np.max(np.abs(got.interior - ref.interior)) < 5e-4 * scale


@settings(max_examples=15, deadline=None)
@given(stencil_1d_any())
def test_serializer_roundtrip_random(spec):
    g = Grid((48,), required_halo(spec, GENERIC_AVX2))
    prog = generate_jigsaw(spec, GENERIC_AVX2, g)
    back = loads(dumps(prog))
    assert back.body == prog.body
    assert back.tail_spec.coefficient_table() == \
        prog.tail_spec.coefficient_table()


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(-12, 12), min_size=1, max_size=9),
       st.sampled_from([2, 4, 8]))
def test_window_offsets_invariants(deltas, width):
    offs = window_offsets(deltas, width)
    # aligned, consecutive, and the floor pair of every delta is present
    assert all(o % width == 0 for o in offs)
    assert all(b - a == width for a, b in zip(offs, offs[1:]))
    for d in deltas:
        if d % width == 0:
            # exact multiples resolve to the window register directly
            assert d in offs
        else:
            base = (d // width) * width
            assert base in offs and base + width in offs


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 4096), st.booleans()),
                min_size=1, max_size=120))
def test_cache_sim_invariants(accesses):
    """hits + misses == accesses; DRAM lines <= total accesses; unique
    lines <= accesses; replaying the same trace twice only adds hits."""
    h = CacheHierarchySim([CacheLevelSim(1024, name="L1"),
                           CacheLevelSim(8192, name="L2")])
    for off, st_ in accesses:
        h.access("a", off, 8, st_)
    s1 = h.stats()
    assert s1.accesses == sum(hi + mi for _, hi, mi in s1.levels[:1])
    assert s1.dram_lines <= s1.accesses
    assert s1.unique_lines <= s1.accesses
    for off, st_ in accesses:
        h.access("a", off, 8, st_)
    s2 = h.stats()
    assert s2.dram_lines == s1.dram_lines or s2.dram_lines <= 2 * s1.dram_lines


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 1000))
def test_parallel_executor_arbitrary_tiles(ty, tx, seed):
    from repro.parallel.executor import run_parallel
    from repro.stencils import library
    spec = library.get("heat-2d")
    g = Grid.random((12, 18), 1, seed=seed)
    got = run_parallel(spec, g, 2, workers=3, tile_shape=(ty, tx))
    ref = apply_steps(spec, g, 2)
    assert np.allclose(got.interior, ref.interior, rtol=1e-12)
