"""Tests for the liveness analysis and spill model (§3.1/§4.4 register
pressure)."""

import pytest

from repro.config import GENERIC_AVX2, GENERIC_AVX512
from repro.machine.isa import Affine, Instr, Op
from repro.machine.pipeline import (
    SPILL_LOAD_CPI,
    SPILL_STORE_CPI,
    PipelineModel,
)
from repro.schemes import model_program
from repro.stencils import library
from repro.vectorize.program import Loop, ProgramBuilder


def build(body_fn, width=4):
    b = ProgramBuilder(width)
    body_fn(b)
    return b.build(name="p", scheme="t", loops=[Loop("x", 0, 8, width)],
                   vectors_per_iter=1)


class TestMaxLive:
    def test_straight_chain_low_pressure(self):
        def body(b):
            v = b.load(b.mem(Affine.var("x")))
            for _ in range(5):
                v = b.add(v, v)
            b.store(v, b.mem(Affine.var("x"), array="out"))

        assert build(body).max_live_registers() <= 2

    def test_fanout_raises_pressure(self):
        def body(b):
            vs = [b.load(b.mem(Affine.var("x"))) for _ in range(6)]
            acc = vs[0]
            for v in vs[1:]:
                acc = b.add(acc, v)
            b.store(acc, b.mem(Affine.var("x"), array="out"))

        assert build(body).max_live_registers() >= 6

    def test_loop_carried_registers_live_throughout(self):
        def body(b):
            # "carry" is read before it is written -> loop-carried
            out = b.add("carry", "carry")
            b.store(out, b.mem(Affine.var("x"), array="out"))
            b.load_to("carry", b.mem(Affine.var("x")))

        assert build(body).max_live_registers() >= 1

    def test_constants_excluded(self):
        def body(b):
            v = b.load(b.mem(Affine.var("x")))
            acc = None
            for c in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8):
                cr = b.broadcast(c)
                acc = b.mul(cr, v) if acc is None else b.fma(cr, v, acc)
            b.store(acc, b.mem(Affine.var("x"), array="out"))

        prog = build(body)
        assert len(prog.constant_registers()) == 8
        assert prog.max_live_registers() <= 3

    def test_jigsaw_2d_fits_avx2_registers(self):
        """The paper's Jigsaw fits the 16-register file for the 2-D
        kernels; deep fusion does not (§4.4's spill caveat)."""
        jig = model_program("jigsaw", library.get("box-2d9p"), GENERIC_AVX2)
        assert jig.max_live_registers() <= GENERIC_AVX2.vector_registers
        tjig = model_program("t-jigsaw", library.get("box-2d9p"),
                             GENERIC_AVX2)
        assert tjig.max_live_registers() > GENERIC_AVX2.vector_registers

    def test_folding_pressure_exceeds_jigsaw(self):
        fold = model_program("folding", library.get("heat-3d"), GENERIC_AVX2)
        jig = model_program("jigsaw", library.get("heat-3d"), GENERIC_AVX2)
        assert fold.max_live_registers() > 2 * jig.max_live_registers()


class TestSpillModel:
    def test_no_spills_within_budget(self):
        pm = PipelineModel(GENERIC_AVX2)
        est = pm.estimate(model_program("jigsaw", library.get("heat-1d"),
                                        GENERIC_AVX2))
        assert est.spills == 0

    def test_spills_charged_on_ports(self):
        pm = PipelineModel(GENERIC_AVX2)
        prog = model_program("t-jigsaw", library.get("box-2d9p"),
                             GENERIC_AVX2)
        est = pm.estimate(prog)
        assert est.spills == prog.max_live_registers() - 16
        base_ports = pm.port_pressure(prog.body)
        assert est.port_cycles["load"] == pytest.approx(
            base_ports["load"] + est.spills * SPILL_LOAD_CPI)
        assert est.port_cycles["store"] == pytest.approx(
            base_ports["store"] + est.spills * SPILL_STORE_CPI)

    def test_avx512_register_file_absorbs_pressure(self):
        """AVX-512's 32 registers (the §4.6 outlook) remove spills the
        16-register file pays."""
        prog = model_program("t-jigsaw", library.get("box-2d9p"),
                             GENERIC_AVX2)
        est2 = PipelineModel(GENERIC_AVX2).estimate(prog)
        wide = GENERIC_AVX2
        import dataclasses
        wide = dataclasses.replace(wide, vector_registers=32)
        est512 = PipelineModel(wide).estimate(prog)
        assert est2.spills > 0 and est512.spills < est2.spills

    def test_generic_avx512_has_32_registers(self):
        assert GENERIC_AVX512.vector_registers == 32
        assert GENERIC_AVX2.vector_registers == 16
