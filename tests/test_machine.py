"""Unit tests for the SIMD machine interpreter."""

import numpy as np
import pytest

from repro.config import GENERIC_AVX2
from repro.errors import MachineError
from repro.machine.batch import analytic_trace
from repro.machine.isa import Affine, Instr, MemRef, Op
from repro.machine.machine import SimdMachine
from repro.machine.trace import TraceCounter
from repro.schemes import SCHEMES, generate, scheme_halo
from repro.stencils.grid import Grid
from repro.stencils.spec import star
from repro.vectorize.driver import measure_trace
from repro.vectorize.program import Loop, ProgramBuilder, VectorProgram


def copy_program(n=16, width=4):
    """for x in [0, n) step 4: out[x:x+4] = 2 * a[x:x+4]"""
    b = ProgramBuilder(width)
    v = b.load(b.mem(Affine.var("x")))
    two = b.broadcast(2.0)
    r = b.mul(two, v)
    b.store(r, b.mem(Affine.var("x"), array="out"))
    return b.build(name="copy", scheme="test",
                   loops=[Loop("x", 0, n, width)], vectors_per_iter=1)


class TestExecution:
    def test_simple_loop(self):
        prog = copy_program()
        a = np.arange(16.0)
        out = np.zeros(16)
        SimdMachine(4).run(prog, {"a": a, "out": out})
        assert np.array_equal(out, 2 * a)

    def test_width_mismatch_rejected(self):
        prog = copy_program(width=4)
        with pytest.raises(MachineError):
            SimdMachine(8).run(prog, {"a": np.zeros(16), "out": np.zeros(16)})

    def test_odd_width_rejected(self):
        with pytest.raises(MachineError):
            SimdMachine(3)

    def test_unknown_array_rejected(self):
        prog = copy_program()
        with pytest.raises(MachineError):
            SimdMachine(4).run(prog, {"a": np.zeros(16)})

    def test_out_of_bounds_load_rejected(self):
        # n=16 but array only 12 long -> last iteration faults
        prog = copy_program(n=16)
        with pytest.raises(MachineError):
            SimdMachine(4).run(prog, {"a": np.zeros(12), "out": np.zeros(16)})

    def test_axis_bounds_checked(self):
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("y"), Affine.var("x")))
        b.store(v, b.mem(Affine.var("y"), Affine.var("x"), array="out"))
        prog = b.build(name="p", scheme="t",
                       loops=[Loop("y", 0, 3, 1), Loop("x", 0, 4, 4)],
                       vectors_per_iter=1)
        with pytest.raises(MachineError):
            SimdMachine(4).run(prog, {"a": np.zeros((2, 4)),
                                      "out": np.zeros((2, 4))})

    def test_store_of_undefined_register(self):
        b = ProgramBuilder(4)
        b.store("ghost", b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="p", scheme="t", loops=[Loop("x", 0, 4, 4)],
                       vectors_per_iter=1)
        with pytest.raises(MachineError):
            SimdMachine(4).run(prog, {"a": np.zeros(4), "out": np.zeros(4)})

    def test_address_rank_checked(self):
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("x")))
        b.store(v, b.mem(Affine.var("x"), array="out"))
        prog = b.build(name="p", scheme="t", loops=[Loop("x", 0, 4, 4)],
                       vectors_per_iter=1)
        with pytest.raises(MachineError):
            SimdMachine(4).run(prog, {"a": np.zeros((2, 4)),
                                      "out": np.zeros((2, 4))})


class TestLoopCarriedState:
    def test_prologue_binds_x_start(self):
        """Prologue loads at the x-loop's start value (Algorithm 1)."""
        b = ProgramBuilder(4)
        b.in_prologue()
        b.load_to("carry", b.mem(Affine.var("x")))
        b.in_body()
        b.store("carry", b.mem(Affine.var("x"), array="out"))
        b.load_to("carry", b.mem(Affine.var("x", const=4)))
        prog = b.build(name="p", scheme="t", loops=[Loop("x", 0, 8, 4)],
                       vectors_per_iter=1)
        a = np.arange(12.0)
        out = np.zeros(8)
        SimdMachine(4).run(prog, {"a": a, "out": out})
        # iteration 0 stores the prologue load (a[0:4]); iteration 1
        # stores the value reloaded at x=0+4
        assert np.array_equal(out, np.arange(8.0))

    def test_registers_reset_per_inner_entry(self):
        b = ProgramBuilder(4)
        b.in_prologue()
        b.load_to("w", b.mem(Affine.var("y"), Affine.var("x")))
        b.in_body()
        b.store("w", b.mem(Affine.var("y"), Affine.var("x"), array="out"))
        prog = b.build(name="p", scheme="t",
                       loops=[Loop("y", 0, 2, 1), Loop("x", 0, 4, 4)],
                       vectors_per_iter=1)
        a = np.arange(8.0).reshape(2, 4)
        out = np.zeros((2, 4))
        SimdMachine(4).run(prog, {"a": a, "out": out})
        assert np.array_equal(out, a)  # each row re-ran its prologue


class TestAnalyticTrace:
    """The batch backend never executes instructions one at a time, so its
    trace is computed statically (:func:`repro.machine.batch.analytic_trace`);
    it must tally *exactly* what the interpreter counts."""

    def _assert_traces_equal(self, analytic, interp):
        assert analytic.by_class == interp.by_class
        assert analytic.by_op == interp.by_op
        assert analytic.vectors == interp.vectors
        assert analytic.steps == interp.steps

    def test_matches_interpreter_on_copy_program(self):
        prog = copy_program(n=16)
        interp = TraceCounter()
        SimdMachine(4).run(prog, {"a": np.zeros(16), "out": np.zeros(16)},
                           counter=interp)
        self._assert_traces_equal(analytic_trace(prog), interp)

    def test_counts_prologue_once_per_outer_entry(self):
        b = ProgramBuilder(4)
        b.in_prologue()
        b.load_to("w", b.mem(Affine.var("y"), Affine.var("x")))
        b.in_body()
        b.store("w", b.mem(Affine.var("y"), Affine.var("x"), array="out"))
        b.load_to("w", b.mem(Affine.var("y"), Affine.var("x", const=4)))
        prog = b.build(name="p", scheme="t",
                       loops=[Loop("y", 0, 3, 1), Loop("x", 0, 8, 4)],
                       vectors_per_iter=1)
        interp = TraceCounter()
        SimdMachine(4).run(prog, {"a": np.zeros((3, 12)),
                                  "out": np.zeros((3, 12))}, counter=interp)
        analytic = analytic_trace(prog)
        assert analytic.loads == 3 * (1 + 2)  # prologue x3 + body x6
        self._assert_traces_equal(analytic, interp)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_matches_interpreter_for_scheme(self, scheme):
        # t4-jigsaw fuses 4 steps, so its x-radius quadruples: only
        # radius-1 1-D kernels fit the butterfly window at W=4.
        if scheme == "t4-jigsaw":
            spec = star(1, 1, center=-3.0, arm=[0.5])
        else:
            spec = star(2, 2, center=-3.0, arm=[0.5, 0.25])
        width = GENERIC_AVX2.vector_elems
        nx = 6 * width + 3  # tail strip: analytic must count it too
        shape = (4,) * (spec.ndim - 1) + (nx,)
        halo = scheme_halo(scheme, spec, GENERIC_AVX2)
        grid = Grid.random(shape, halo, seed=5)
        prog = generate(scheme, spec, GENERIC_AVX2, grid)
        interp = measure_trace(prog, grid, backend="interp")
        analytic = measure_trace(prog, grid, backend="batch")
        self._assert_traces_equal(analytic, interp)


class TestTraceCounting:
    def test_counts_match_execution(self):
        prog = copy_program(n=16)
        tc = TraceCounter()
        SimdMachine(4).run(prog, {"a": np.zeros(16), "out": np.zeros(16)},
                           counter=tc)
        assert tc.loads == 4
        assert tc.stores == 4
        assert tc.arith == 4
        assert tc.vectors == 4

    def test_per_vector_normalization(self):
        prog = copy_program(n=16)
        tc = TraceCounter()
        SimdMachine(4).run(prog, {"a": np.zeros(16), "out": np.zeros(16)},
                           counter=tc)
        pv = tc.per_vector()
        assert pv["L"] == pytest.approx(1.0)
        assert pv["S"] == pytest.approx(1.0)

    def test_merge(self):
        t1, t2 = TraceCounter(), TraceCounter()
        t1.add(Instr(Op.ADD, dst="d", srcs=("a", "b")))
        t2.add(Instr(Op.ADD, dst="d", srcs=("a", "b")), times=2)
        t1.merge(t2)
        assert t1.arith == 3

    def test_summary_keys(self):
        tc = TraceCounter()
        tc.add(Instr(Op.SHUFPD, dst="d", srcs=("a", "b"), imm=0))
        s = tc.summary()
        assert s["in-lane"] == 1
        assert s["total"] == 1
        assert tc.shuffles == 1
