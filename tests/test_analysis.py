"""Tests for the analysis layer (metrics, Table 2, hotspots, ablation,
report rendering)."""

import pytest

from repro.config import AMD_EPYC_7V13, GENERIC_AVX2
from repro.errors import ModelError
from repro.analysis.ablation import LADDER, ablation_study, ablation_vs_steps
from repro.analysis.hotspots import hotspot_breakdown, sdf_reduction
from repro.analysis.instruction_count import (
    PAPER_TABLE2,
    TABLE2_KERNELS,
    analytic_table2_row,
    measured_table2_row,
)
from repro.analysis.metrics import (
    amortized,
    geomean,
    gstencil_per_s,
    relative_speedups,
    speedup,
)
from repro.analysis.report import render_dict, render_series, render_table
from repro.schemes import model_program
from repro.stencils import library


class TestMetrics:
    def test_gstencil_eq3(self):
        # 1e9 updates in 1 s = 1 GStencil/s
        assert gstencil_per_s(10**6, 1000, 1.0) == pytest.approx(1.0)

    def test_gstencil_validation(self):
        with pytest.raises(ModelError):
            gstencil_per_s(10, 10, 0.0)
        with pytest.raises(ModelError):
            gstencil_per_s(0, 10, 1.0)

    def test_speedup(self):
        assert speedup(4.0, 2.0) == 2.0
        with pytest.raises(ModelError):
            speedup(1.0, 0.0)

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ModelError):
            geomean([])
        with pytest.raises(ModelError):
            geomean([1.0, -1.0])

    def test_relative_speedups_default_baseline_is_slowest(self):
        rel = relative_speedups({"a": 4.0, "b": 2.0, "c": 8.0})
        assert rel["b"] == 1.0
        assert rel["c"] == 4.0

    def test_relative_speedups_explicit_baseline(self):
        rel = relative_speedups({"a": 4.0, "b": 2.0}, baseline="a")
        assert rel["b"] == 0.5

    def test_amortized(self):
        assert amortized(10.0, 5) == 2.0
        with pytest.raises(ModelError):
            amortized(10.0, 0)


class TestTable2:
    def test_paper_table_complete(self):
        for kernel in TABLE2_KERNELS:
            assert set(PAPER_TABLE2[kernel]) == {"auto", "reorg", "jigsaw"}

    @pytest.mark.parametrize("kernel", TABLE2_KERNELS)
    def test_auto_measured_matches_paper_exactly(self, kernel):
        spec = library.get(kernel)
        meas = measured_table2_row("auto", spec, AMD_EPYC_7V13)
        assert meas == pytest.approx(PAPER_TABLE2[kernel]["auto"])

    @pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d", "heat-3d",
                                        "box-2d9p", "box-3d27p"])
    def test_reorg_measured_matches_paper(self, kernel):
        spec = library.get(kernel)
        l, s, c, i = measured_table2_row("reorg", spec, AMD_EPYC_7V13)
        pl, ps, pc, pi = PAPER_TABLE2[kernel]["reorg"]
        # loads carry a small prologue amortization on the model grid
        assert l == pytest.approx(pl, abs=0.5)
        assert s == ps
        assert c == pc and i == pi

    @pytest.mark.parametrize("kernel", TABLE2_KERNELS)
    def test_jigsaw_loads_and_stores_match_paper(self, kernel):
        spec = library.get(kernel)
        l, s, c, i = measured_table2_row("jigsaw", spec, AMD_EPYC_7V13)
        pl, ps, pc, pi = PAPER_TABLE2[kernel]["jigsaw"]
        assert l == pytest.approx(pl, rel=0.3), "loads"
        assert s == pytest.approx(ps)
        # cross-lane within 2x of the paper's amortized accounting and far
        # below the Reorg row
        assert c <= 2 * pc + 0.01
        assert c < PAPER_TABLE2[kernel]["reorg"][2]

    def test_analytic_auto(self):
        row = analytic_table2_row("auto", library.get("box-2d9p"))
        assert row == (9, 1, 0, 0)

    def test_analytic_reorg(self):
        row = analytic_table2_row("reorg", library.get("box-2d9p"))
        assert row == (3, 1, 6, 6)

    def test_analytic_jigsaw_loads(self):
        row = analytic_table2_row("jigsaw", library.get("heat-2d"))
        assert row[0] == pytest.approx(2.5)  # fused 5 rows / 2 steps
        row = analytic_table2_row("jigsaw", library.get("heat-3d"))
        assert row[0] == pytest.approx(6.5)  # fused 13 rows / 2 steps

    def test_analytic_unknown_method(self):
        with pytest.raises(KeyError):
            analytic_table2_row("nope", library.get("heat-1d"))


class TestHotspots:
    def test_breakdown_totals(self):
        prog = model_program("jigsaw", library.get("box-2d9p"), GENERIC_AVX2)
        b = hotspot_breakdown(prog, GENERIC_AVX2)
        parts = (b.shuffle_cycles + b.compute_cycles + b.load_cycles
                 + b.store_cycles + b.other_cycles)
        assert b.total_cycles == pytest.approx(parts)
        assert 0 < b.shuffle_share < 1

    def test_events_sorted_descending(self):
        prog = model_program("reorg", library.get("box-2d9p"), GENERIC_AVX2)
        b = hotspot_breakdown(prog, GENERIC_AVX2)
        times = [t for _, t in b.events]
        assert times == sorted(times, reverse=True)

    def test_sdf_reduction_direction(self):
        """Figure 8: SDF must reduce both shuffle and compute time for
        Box-2D9P, shuffle by more (paper: 61.6% vs 20.8%)."""
        before, after, red = sdf_reduction(library.get("box-2d9p"),
                                           AMD_EPYC_7V13)
        assert after.shuffle_cycles < before.shuffle_cycles
        assert after.compute_cycles < before.compute_cycles
        assert red["shuffle"] > red["compute"] > 0

    def test_sdf_shuffle_reduction_magnitude(self):
        _, _, red = sdf_reduction(library.get("box-2d9p"), AMD_EPYC_7V13)
        assert red["shuffle"] == pytest.approx(0.6158, abs=0.10)


class TestAblation:
    def test_ladder_monotone_through_sdf(self):
        pts = ablation_study(library.get("box-2d9p"), AMD_EPYC_7V13,
                             sizes=[(1024, 1024)], steps=50,
                             tile_shape=(200, 200))
        g = pts[0].gstencil
        assert g["+LBV"] > g["base"]
        assert g["+SDF"] > g["+LBV"]

    def test_contribution_sums_to_one(self):
        pts = ablation_study(library.get("box-2d9p"), AMD_EPYC_7V13,
                             sizes=[(1024, 1024)], steps=50,
                             tile_shape=(200, 200))
        assert sum(pts[0].contribution.values()) == pytest.approx(1.0)

    def test_vs_steps_shape(self):
        pts = ablation_vs_steps(library.get("box-2d9p"), AMD_EPYC_7V13,
                                size=(512, 512), steps_list=[10, 20],
                                tile_shape=(200, 200))
        assert [p.steps for p in pts] == [10, 20]

    def test_ladder_names(self):
        assert [r for r, _ in LADDER] == ["base", "+LBV", "+SDF", "+ITM"]


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["xx", 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_render_series(self):
        text = render_series("x", [1, 2], {"s1": [0.1, 0.2]}, title="T")
        assert text.startswith("T\n")
        assert "s1" in text

    def test_render_dict(self):
        text = render_dict("head", {"key": 1.5})
        assert "head" in text and "key" in text
