"""Tests for the trace-driven cache simulator."""

import pytest

from repro.config import AMD_EPYC_7V13
from repro.errors import ModelError
from repro.machine.cachesim import (
    LINE_BYTES,
    CacheHierarchySim,
    CacheLevelSim,
    CacheStats,
    MemoryTraceRecorder,
    simulate_program_cache,
)
from repro.schemes import generate, scheme_halo
from repro.stencils import library
from repro.stencils.grid import Grid


class TestCacheLevel:
    def test_first_touch_misses_then_hits(self):
        c = CacheLevelSim(1024)
        assert not c.access(0)
        assert c.access(0)
        assert c.hits == 1 and c.misses == 1
        assert c.hit_rate() == 0.5

    def test_lru_eviction(self):
        # 2 sets x 2 ways (4 lines of 64B = 256B, ways=2)
        c = CacheLevelSim(256, ways=2)
        # fill one set (same set index: addresses congruent mod sets)
        s = c.sets
        c.access(0)
        c.access(s)      # same set, way 2
        c.access(2 * s)  # evicts line 0 (LRU)
        assert not c.access(0)  # miss: was evicted

    def test_lru_order_updated_on_hit(self):
        c = CacheLevelSim(256, ways=2)
        s = c.sets
        c.access(0)
        c.access(s)
        c.access(0)        # refresh line 0
        c.access(2 * s)    # evicts line s, not 0
        assert c.access(0)

    def test_ways_clamped_to_capacity(self):
        c = CacheLevelSim(64, ways=8)  # one line total
        assert c.ways == 1

    def test_bad_geometry(self):
        with pytest.raises(ModelError):
            CacheLevelSim(0)


class TestHierarchy:
    def test_miss_walks_down_and_installs(self):
        h = CacheHierarchySim([CacheLevelSim(128, name="L1"),
                               CacheLevelSim(4096, name="L2")])
        h.access("a", 0, 8, False)
        h.access("a", 0, 8, False)
        stats = h.stats()
        assert dict((n, (hi, mi)) for n, hi, mi in stats.levels) == {
            "L1": (1, 1), "L2": (0, 1),
        }
        assert stats.dram_lines == 1
        assert stats.unique_lines == 1

    def test_vector_access_spanning_lines(self):
        h = CacheHierarchySim([CacheLevelSim(4096, name="L1")])
        h.access("a", LINE_BYTES - 8, 32, False)  # straddles two lines
        assert h.stats().accesses == 2

    def test_distinct_arrays_distinct_lines(self):
        h = CacheHierarchySim([CacheLevelSim(4096, name="L1")])
        h.access("a", 0, 8, False)
        h.access("out", 0, 8, True)
        assert h.stats().unique_lines == 2

    def test_for_machine_uses_config_sizes(self):
        h = CacheHierarchySim.for_machine(AMD_EPYC_7V13)
        assert [l.name for l in h.levels] == ["L1", "L2", "L3"]

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ModelError):
            CacheHierarchySim([])

    def test_stats_hit_rate_lookup(self):
        h = CacheHierarchySim([CacheLevelSim(4096, name="L1")])
        h.access("a", 0, 8, False)
        stats = h.stats()
        assert stats.hit_rate("L1") == 0.0
        with pytest.raises(ModelError):
            stats.hit_rate("L9")


class TestRecorder:
    def test_limit_enforced(self):
        rec = MemoryTraceRecorder(limit=2)
        rec("a", 0, 8, False)
        rec("a", 8, 8, False)
        with pytest.raises(ModelError):
            rec("a", 16, 8, False)


class TestProgramCacheSimulation:
    @pytest.fixture(scope="class")
    def stats_by_scheme(self):
        spec = library.get("box-2d9p")
        out = {}
        for scheme in ("auto", "reorg", "jigsaw"):
            g = Grid.random((16, 48), scheme_halo(scheme, spec,
                                                  AMD_EPYC_7V13), seed=1)
            prog = generate(scheme, spec, AMD_EPYC_7V13, g)
            out[scheme] = simulate_program_cache(prog, g, AMD_EPYC_7V13)
        return out

    def test_dram_traffic_is_compulsory(self, stats_by_scheme):
        """The memory model's central assumption, measured: every scheme's
        DRAM line count equals its unique-line footprint."""
        for scheme, stats in stats_by_scheme.items():
            assert stats.dram_lines == stats.unique_lines, scheme

    def test_auto_redundant_loads_hit_l1(self, stats_by_scheme):
        """Multiple Loads re-reads neighbours from L1, not from memory."""
        assert stats_by_scheme["auto"].hit_rate("L1") > 0.85

    def test_footprints_agree_across_schemes(self, stats_by_scheme):
        lines = [s.unique_lines for s in stats_by_scheme.values()]
        assert max(lines) - min(lines) <= 8  # window/prologue slack

    def test_auto_issues_most_accesses(self, stats_by_scheme):
        assert stats_by_scheme["auto"].accesses > \
            stats_by_scheme["jigsaw"].accesses > 0

    def test_summary_keys(self, stats_by_scheme):
        s = stats_by_scheme["jigsaw"].summary()
        assert "L1 hit rate" in s and "DRAM lines" in s
