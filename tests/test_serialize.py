"""Tests for vector-program JSON serialization."""

import numpy as np
import pytest

from repro.config import GENERIC_AVX2
from repro.errors import IsaError
from repro.machine.serialize import (
    dumps,
    instr_from_dict,
    loads,
    program_from_dict,
    program_to_dict,
)
from repro.schemes import SCHEMES, generate, model_grid
from repro.stencils import apply_steps, library
from repro.vectorize.driver import run_program


@pytest.mark.parametrize("scheme", [s for s in SCHEMES if s != "t4-jigsaw"])
def test_roundtrip_program_equality(scheme):
    spec = library.get("heat-2d")
    grid = model_grid(scheme, spec, GENERIC_AVX2)
    prog = generate(scheme, spec, GENERIC_AVX2, grid)
    back = loads(dumps(prog))
    assert back.body == prog.body
    assert back.prologue == prog.prologue
    assert back.loops == prog.loops
    assert back.scheme == prog.scheme
    assert back.steps_per_iter == prog.steps_per_iter


def test_roundtripped_program_executes_identically():
    spec = library.get("box-2d9p")
    grid = model_grid("jigsaw", spec, GENERIC_AVX2, seed=4)
    prog = generate("jigsaw", spec, GENERIC_AVX2, grid)
    back = loads(dumps(prog))
    a = run_program(prog, grid, 1)
    b = run_program(back, grid, 1)
    assert np.array_equal(a.interior, b.interior)


def test_tail_spec_roundtrips():
    spec = library.get("heat-1d")
    grid = model_grid("t-jigsaw", spec, GENERIC_AVX2)
    prog = generate("t-jigsaw", spec, GENERIC_AVX2, grid)
    back = loads(dumps(prog))
    assert back.tail_spec is not None
    assert back.tail_spec.coefficient_table() == \
        prog.tail_spec.coefficient_table()


def test_tail_spec_drives_epilogue_after_roundtrip():
    from repro.stencils.grid import Grid
    from repro.core.jigsaw import generate_jigsaw, required_halo
    spec = library.get("heat-1d")
    g = Grid.random((28,), required_halo(spec, GENERIC_AVX2), seed=0)
    prog = loads(dumps(generate_jigsaw(spec, GENERIC_AVX2, g)))
    got = run_program(prog, g, 1)
    ref = apply_steps(spec, g, 1)
    assert np.allclose(got.interior, ref.interior, rtol=1e-12)


def test_unaligned_flag_preserved():
    spec = library.get("box-2d9p")
    grid = model_grid("auto", spec, GENERIC_AVX2)
    prog = generate("auto", spec, GENERIC_AVX2, grid)
    back = loads(dumps(prog))
    assert any(i.unaligned for i in back.body)


def test_unknown_opcode_rejected():
    with pytest.raises(IsaError):
        instr_from_dict({"op": "vbogus"})


def test_dict_shape_is_json_friendly():
    import json
    spec = library.get("heat-1d")
    grid = model_grid("jigsaw", spec, GENERIC_AVX2)
    prog = generate("jigsaw", spec, GENERIC_AVX2, grid)
    text = json.dumps(program_to_dict(prog))
    assert program_from_dict(json.loads(text)).width == 4
