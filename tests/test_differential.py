"""Differential test harness: random stencils, every scheme, one truth.

Hypothesis generates random :class:`~repro.stencils.spec.StencilSpec`s
(1-D/2-D/3-D, star and box, float64 and float32) and random initial
grids; for each, the **jigsaw**, **multiple-loads** (``auto``) and
**multiple-permutations** (``reorg``) lowerings are executed for 1-4 time
steps on the cycle-exact SIMD interpreter and compared against the numpy
reference sweep within a small ulp budget (the schemes reassociate the
same sums, so bitwise equality is only expected up to rounding).  Every
case additionally runs on the batched execution backend
(:mod:`repro.machine.batch`) **and** the emitted-source codegen backend
(:mod:`repro.machine.codegen`), which must both match the interpreter
**bitwise** — all three backends execute the same instruction stream, so
no rounding slack is allowed between them.  A separate axis re-runs
cases with observability recording enabled (:mod:`repro.obs`) and
asserts that tracing never perturbs any backend's output bitwise.
Further axes cover the hardened runtime layers: sharded execution
(random shard counts and temporal blocks must reproduce the serial
reference bitwise) and fault-injection chaos over the executor, batch,
codegen and shard recovery paths.  The new scheme families — temporal
(vertical time fusion) and redundancy elimination (column-sum hoisting)
— run under the same contract on every generated spec plus the
deep-radius star and variable-coefficient library workloads.

The example budget is controlled by ``REPRO_DIFF_EXAMPLES`` (per test
function; each example exercises all three schemes).  The local default
of 40 yields 2 x 40 x 3 = 240 spec/scheme combinations; CI caps it lower
(see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.config import GENERIC_AVX2, GENERIC_AVX2_F32
from repro.faults import FaultPlan, FaultRule, inject
from repro.parallel.executor import run_parallel
from repro.schemes import generate, scheme_halo
from repro.stencils import apply_steps
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec, box, star
from repro.vectorize.driver import run_program

#: examples per test function; every example runs all DIFF_SCHEMES.
EXAMPLES = int(os.environ.get("REPRO_DIFF_EXAMPLES", "40"))

#: the three independently-derived lowerings under differential test.
DIFF_SCHEMES = ("jigsaw", "auto", "reorg")

#: machine-representable coefficients keep the ulp accounting honest
#: (they are still arbitrary enough to break any wrong-tap lowering).
COEFFS = st.sampled_from(
    [-2.0, -1.5, -1.0, -0.5, -0.25, 0.125, 0.25, 0.5, 0.75, 1.0, 2.0]
)

DIFF_SETTINGS = settings(
    max_examples=EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def star_specs(draw) -> StencilSpec:
    ndim = draw(st.integers(min_value=1, max_value=3))
    radius = draw(st.integers(min_value=1, max_value=2))
    center = draw(COEFFS)
    arm = [draw(COEFFS) for _ in range(radius)]
    return star(ndim, radius, center=center, arm=arm,
                name=f"diff-star-{ndim}d-r{radius}")


@st.composite
def box_specs(draw) -> StencilSpec:
    ndim = draw(st.integers(min_value=1, max_value=3))
    # 3-D boxes stay at radius 1 (125-point kernels only slow the
    # interpreter without adding lowering coverage).
    radius = draw(st.integers(min_value=1, max_value=1 if ndim == 3 else 2))
    side = 2 * radius + 1
    flat = [draw(COEFFS) for _ in range(side**ndim)]
    weights = np.array(flat).reshape((side,) * ndim)
    return box(ndim, radius, weights, name=f"diff-box-{ndim}d-r{radius}")


random_specs = st.one_of(star_specs(), box_specs())


def _assert_ulp_close(got: np.ndarray, want: np.ndarray, *, spec, steps,
                      scheme) -> None:
    """`got` within an ulp budget of `want`, scaled to the result's
    magnitude (reassociation error grows with taps and steps)."""
    dt = want.dtype.type
    scale = max(float(np.max(np.abs(want))), float(np.finfo(dt).tiny))
    ulp = float(np.spacing(dt(scale)))
    budget = 64.0 * spec.npoints * steps
    worst = float(np.max(np.abs(got - want)))
    assert worst <= budget * ulp, (
        f"{scheme}/{spec.tag}: max |diff| {worst:.3e} exceeds "
        f"{budget:.0f} ulp ({budget * ulp:.3e}) after {steps} step(s)"
    )


def _differential_case(machine, dtype, spec, steps, seed):
    """Run every scheme for one random case against the reference, on
    all three execution backends.  The interpreter, the batched engine
    and the codegen engine must agree **bitwise** (they execute the same
    instruction stream); only the comparison against the numpy reference
    carries an ulp budget."""
    width = machine.vector_elems
    nx = 6 * width  # divisible by every scheme block (W and 2W)
    shape = (3,) * (spec.ndim - 1) + (nx,)
    reference = None
    for scheme in DIFF_SCHEMES:
        halo = scheme_halo(scheme, spec, machine)
        grid = Grid.random(shape, halo, seed=seed, dtype=dtype)
        if reference is None:
            reference = apply_steps(spec, grid, steps)
        program = generate(scheme, spec, machine, grid)
        got = run_program(program, grid, steps, backend="interp")
        for backend in ("batch", "codegen"):
            other = run_program(program, grid, steps, backend=backend)
            assert np.array_equal(other.data, got.data), (
                f"{scheme}/{spec.tag}: {backend} backend diverged bitwise "
                f"from the interpreter after {steps} step(s)"
            )
        _assert_ulp_close(got.interior, reference.interior, spec=spec,
                          steps=steps, scheme=scheme)


@DIFF_SETTINGS
@given(spec=random_specs, steps=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=2**16))
def test_schemes_match_reference_f64(spec, steps, seed):
    _differential_case(GENERIC_AVX2, np.float64, spec, steps, seed)


@DIFF_SETTINGS
@given(spec=random_specs, steps=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=2**16))
def test_schemes_match_reference_f32(spec, steps, seed):
    _differential_case(GENERIC_AVX2_F32, np.float32, spec, steps, seed)


# -- the new scheme families (temporal fusion + redundancy elimination) -------

#: the related-work scheme families under the same differential contract.
NEW_SCHEMES = ("temporal", "redundancy")


def _new_scheme_case(machine, dtype, spec, sweeps, seed):
    """Temporal fusion and redundancy elimination against the reference,
    bitwise across all three execution backends.  Temporal programs fuse
    ``steps_per_iter`` time steps per sweep, so the step count is a
    multiple of the program's depth and the outer extents are sized to
    the fused halo (periodic refills need ``halo <= interior``)."""
    width = machine.vector_elems
    nx = 6 * width
    for scheme in NEW_SCHEMES:
        halo = scheme_halo(scheme, spec, machine)
        shape = tuple(max(3, h) for h in halo[:-1]) + (nx,)
        grid = Grid.random(shape, halo, seed=seed, dtype=dtype)
        program = generate(scheme, spec, machine, grid)
        steps = sweeps * program.steps_per_iter
        got = run_program(program, grid, steps, backend="interp")
        for backend in ("batch", "codegen"):
            other = run_program(program, grid, steps, backend=backend)
            assert np.array_equal(other.data, got.data), (
                f"{scheme}/{spec.tag}: {backend} backend diverged bitwise "
                f"from the interpreter after {steps} step(s)"
            )
        reference = apply_steps(spec, grid, steps)
        _assert_ulp_close(got.interior, reference.interior, spec=spec,
                          steps=steps, scheme=scheme)


@DIFF_SETTINGS
@given(spec=random_specs, sweeps=st.integers(min_value=1, max_value=2),
       seed=st.integers(min_value=0, max_value=2**16))
def test_new_scheme_families_match_reference_f64(spec, sweeps, seed):
    _new_scheme_case(GENERIC_AVX2, np.float64, spec, sweeps, seed)


@DIFF_SETTINGS
@given(spec=random_specs, sweeps=st.integers(min_value=1, max_value=2),
       seed=st.integers(min_value=0, max_value=2**16))
def test_new_scheme_families_match_reference_f32(spec, sweeps, seed):
    _new_scheme_case(GENERIC_AVX2_F32, np.float32, spec, sweeps, seed)


@pytest.mark.parametrize("kernel",
                         ["star-1d5p", "star-2d13p", "varcoef-2d5p"])
def test_new_scheme_families_on_library_workloads(kernel):
    """The deep-radius star and the variable-coefficient kernel are
    reachable from the differential harness: both new schemes must match
    the reference on them, bitwise across backends."""
    from repro.stencils import library
    spec = library.get(kernel)
    for seed in (0, 1, 2):
        _new_scheme_case(GENERIC_AVX2, np.float64, spec, 2, seed)


def test_budget_meets_acceptance_floor():
    """With the default budget the harness exercises >= 200 spec/scheme
    combinations (2 dtype tests x EXAMPLES x 3 schemes); CI may lower it
    explicitly via REPRO_DIFF_EXAMPLES."""
    combos = 2 * EXAMPLES * len(DIFF_SCHEMES)
    if "REPRO_DIFF_EXAMPLES" in os.environ:
        pytest.skip(f"budget overridden ({combos} combinations)")
    assert combos >= 200


def test_backends_agree_with_prologue_carry():
    """Jigsaw's loop-carried butterfly window (Algorithm 1's v0/vp0,
    seeded in the prologue and slid at the end of each body) must survive
    the batch backend's carried-register peeling bitwise."""
    spec = star(2, 2, center=-3.25, arm=[0.5, 0.125], name="carry-probe")
    halo = scheme_halo("jigsaw", spec, GENERIC_AVX2)
    grid = Grid.random((5, 48), halo, seed=11)
    program = generate("jigsaw", spec, GENERIC_AVX2, grid)
    assert program.prologue, "probe must exercise a prologue"
    for steps in (1, 3):
        interp = run_program(program, grid, steps, backend="interp")
        batch = run_program(program, grid, steps, backend="batch")
        assert np.array_equal(batch.data, interp.data)


def test_backends_agree_on_tail_strip():
    """An interior not divisible by the block leaves a scalar tail strip;
    both backends must produce identical tails and identical vector
    regions."""
    width = GENERIC_AVX2.vector_elems
    spec = star(2, 1, center=-4.0, arm=[1.0], name="tail-probe")
    halo = scheme_halo("jigsaw", spec, GENERIC_AVX2)
    nx = 6 * width + 3  # 3-wide tail for a 2W block
    grid = Grid.random((4, nx), halo, seed=7)
    program = generate("jigsaw", spec, GENERIC_AVX2, grid)
    assert program.loops[-1].trip_count * program.loops[-1].step < nx
    interp = run_program(program, grid, 2, backend="interp")
    batch = run_program(program, grid, 2, backend="batch")
    assert np.array_equal(batch.data, interp.data)


@DIFF_SETTINGS
@given(spec=random_specs, steps=st.integers(min_value=1, max_value=3),
       seed=st.integers(min_value=0, max_value=2**16))
def test_tracing_never_changes_results(spec, steps, seed):
    """The observability axis: with span + metric recording enabled, both
    execution backends must reproduce their untraced output **bitwise**
    (instrumentation reads clocks and bumps counters; it must never touch
    the numerics)."""
    machine = GENERIC_AVX2
    halo = scheme_halo("jigsaw", spec, machine)
    shape = (3,) * (spec.ndim - 1) + (6 * machine.vector_elems,)
    grid = Grid.random(shape, halo, seed=seed)
    program = generate("jigsaw", spec, machine, grid)
    plain = {b: run_program(program, grid, steps, backend=b)
             for b in ("interp", "batch", "codegen")}
    was_enabled = obs.enabled()
    obs.enable(reset=True)
    try:
        for backend, want in plain.items():
            got = run_program(program, grid, steps, backend=backend)
            assert np.array_equal(got.data, want.data), (
                f"{spec.tag}/{backend}: tracing changed the results "
                f"bitwise after {steps} step(s)"
            )
    finally:
        if not was_enabled:
            obs.disable()
    snap = obs.snapshot()
    assert snap["metrics"]["counters"].get("exec.sweeps", 0) >= 3 * steps


# -- the chaos axis ------------------------------------------------------------
#
# Hypothesis-generated fault plans against the hardened layers: any
# faulted-but-recovered run must be bitwise identical to the clean run.
# Chaos examples are capped separately (each one pays for clean+faulted
# runs, and a process pool per example).

CHAOS_SETTINGS = settings(
    max_examples=min(EXAMPLES, 8),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

executor_fault_rules = st.lists(
    st.builds(
        FaultRule,
        site=st.sampled_from(("pool.task_start", "tile.sweep")),
        kind=st.sampled_from(("raise", "delay")),
        after=st.integers(min_value=0, max_value=5),
        times=st.integers(min_value=1, max_value=2),
        delay_s=st.just(0.001),
    ),
    min_size=1, max_size=3)


@CHAOS_SETTINGS
@given(rules=executor_fault_rules,
       seed=st.integers(min_value=0, max_value=2**16))
def test_executor_fault_recovery_never_changes_results(rules, seed):
    """Random fault plans over the parallel executor's sites: both the
    thread and the process backend must recover every injected failure
    and reproduce the clean sweep bitwise."""
    spec = star(2, 1, center=0.5, arm=[0.125], name="chaos-probe")
    grid = Grid.random((24, 32), spec.radius, seed=seed)
    for backend in ("thread", "process"):
        clean = run_parallel(spec, grid, 2, workers=3, backend=backend)
        # retry budget covers the worst case of every fault landing on
        # one tile (3 rules x times<=2 = 6 faults < 7 attempts)
        with inject(FaultPlan(rules=tuple(rules), seed=seed)):
            faulted = run_parallel(spec, grid, 2, workers=3,
                                   backend=backend, retries=6)
        assert np.array_equal(clean.data, faulted.data), (
            f"{backend}: fault recovery diverged bitwise "
            f"(plan: {[r.to_dict() for r in rules]})"
        )


batch_fault_rules = st.lists(
    st.builds(
        FaultRule,
        site=st.just("exec.batch_closure"),
        kind=st.sampled_from(("raise", "delay")),
        after=st.integers(min_value=0, max_value=3),
        times=st.integers(min_value=1, max_value=2),
        delay_s=st.just(0.001),
    ),
    min_size=1, max_size=2)


@CHAOS_SETTINGS
@given(spec=random_specs, rules=batch_fault_rules,
       steps=st.integers(min_value=1, max_value=3),
       seed=st.integers(min_value=0, max_value=2**16))
def test_batch_fault_degrades_to_interp_bitwise(spec, rules, steps, seed):
    """A faulted batch closure must hand the sweep to the interpreter
    mid-run without perturbing a single bit on either backend request."""
    machine = GENERIC_AVX2
    halo = scheme_halo("jigsaw", spec, machine)
    shape = (3,) * (spec.ndim - 1) + (6 * machine.vector_elems,)
    grid = Grid.random(shape, halo, seed=seed)
    program = generate("jigsaw", spec, machine, grid)
    for backend in ("batch", "auto"):
        clean = run_program(program, grid, steps, backend=backend)
        with inject(FaultPlan(rules=tuple(rules), seed=seed)):
            faulted = run_program(program, grid, steps, backend=backend)
        assert np.array_equal(clean.data, faulted.data), (
            f"{spec.tag}/{backend}: batch-closure fault recovery diverged "
            f"bitwise (plan: {[r.to_dict() for r in rules]})"
        )


codegen_fault_rules = st.lists(
    st.builds(
        FaultRule,
        site=st.sampled_from(("compile.kernel", "exec.codegen_kernel")),
        kind=st.sampled_from(("raise", "delay")),
        after=st.integers(min_value=0, max_value=3),
        times=st.integers(min_value=1, max_value=2),
        delay_s=st.just(0.001),
    ),
    min_size=1, max_size=2)


@CHAOS_SETTINGS
@given(spec=random_specs, rules=codegen_fault_rules,
       steps=st.integers(min_value=1, max_value=3),
       seed=st.integers(min_value=0, max_value=2**16))
def test_codegen_fault_degrades_down_ladder_bitwise(spec, rules, steps,
                                                    seed):
    """Random faults over the codegen path — at kernel compilation
    (``compile.kernel``, retried by the service) and at the emitted-source
    sweep (``exec.codegen_kernel``, degraded to the batch engine) — must
    never perturb a bit of the final grid."""
    from repro.service import KernelService
    machine = GENERIC_AVX2
    # non-x extents must fit the fused halo (radius x time_fusion)
    shape = (8,) * (spec.ndim - 1) + (6 * machine.vector_elems,)

    def service():
        # a fresh service per run keeps its kernel cache cold, so the
        # faulted compile actually reaches the compile.kernel site
        return KernelService(machine, exec_backend="codegen",
                             failure_policy="degrade", retries=3,
                             retry_backoff_s=0.0)

    kernel = service().compile(spec, shape)
    grid = kernel.grid_like(shape, seed=seed)
    run_steps = steps * kernel.plan.time_fusion
    clean = kernel.run(grid, run_steps)
    with inject(FaultPlan(rules=tuple(rules), seed=seed)):
        faulted_kernel = service().compile(spec, shape)
        faulted = faulted_kernel.run(grid, run_steps)
    assert np.array_equal(clean.data, faulted.data), (
        f"{spec.tag}: codegen-path fault recovery diverged bitwise "
        f"(plan: {[r.to_dict() for r in rules]})"
    )


@CHAOS_SETTINGS
@given(spec=random_specs,
       shards=st.integers(min_value=1, max_value=3),
       temporal_block=st.integers(min_value=1, max_value=3),
       steps=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=2**16))
def test_sharded_matches_serial_bitwise(spec, shards, temporal_block,
                                        steps, seed):
    """The sharded axis: random stencils, shard counts and temporal
    blocks against the serial reference — the deep-halo schedule must
    reproduce it **bitwise** on the interior (not ulp-close: the workers
    run the identical tap order on identical windows)."""
    from repro.shard import run_sharded
    shape = (7,) * (spec.ndim - 1) + (12,)
    grid = Grid.random(shape, spec.radius, seed=seed)
    reference = apply_steps(spec, grid, steps)
    got = run_sharded(spec, grid, steps, shards=shards,
                      temporal_block=temporal_block)
    assert np.array_equal(reference.interior, got.interior), (
        f"{spec.tag}: sharded run (shards={shards}, s={temporal_block}) "
        f"diverged bitwise after {steps} step(s)"
    )


shard_fault_rules = st.lists(
    st.builds(
        FaultRule,
        site=st.sampled_from(("shard.exchange", "pool.task_start")),
        kind=st.sampled_from(("raise", "delay")),
        after=st.integers(min_value=0, max_value=5),
        times=st.integers(min_value=1, max_value=2),
        delay_s=st.just(0.001),
    ),
    min_size=1, max_size=3)


@CHAOS_SETTINGS
@given(rules=shard_fault_rules,
       seed=st.integers(min_value=0, max_value=2**16))
def test_shard_fault_recovery_never_changes_results(rules, seed):
    """Random fault plans over the shard runner's sites — a lost halo
    exchange (regathered from the superstep checkpoint) or a failed shard
    task (recomputed in the parent) — must leave the sharded sweep
    bitwise identical to the clean run."""
    from repro.shard import run_sharded
    spec = star(2, 1, center=0.5, arm=[0.125], name="shard-chaos-probe")
    grid = Grid.random((18, 24), spec.radius, seed=seed)
    clean = run_sharded(spec, grid, 4, shards=3, temporal_block=2)
    # 3 rules x times<=2 = 6 faults; retries=6 bounds the worst case of
    # every fault landing on one shard's gather or task
    with inject(FaultPlan(rules=tuple(rules), seed=seed)):
        faulted = run_sharded(spec, grid, 4, shards=3, temporal_block=2,
                              retries=6)
    assert np.array_equal(clean.interior, faulted.interior), (
        f"shard fault recovery diverged bitwise "
        f"(plan: {[r.to_dict() for r in rules]})"
    )


def test_known_failure_is_caught():
    """The harness must actually discriminate: a deliberately perturbed
    coefficient fails the ulp budget."""
    spec = star(2, 1, center=-4.0, arm=[1.0], name="canary")
    bad = StencilSpec(name="canary-bad", ndim=2, offsets=spec.offsets,
                      coeffs=tuple(c + (1e-6 if i == 0 else 0.0)
                                   for i, c in enumerate(spec.coeffs)))
    halo = scheme_halo("jigsaw", spec, GENERIC_AVX2)
    grid = Grid.random((3, 24), halo, seed=0)
    reference = apply_steps(bad, grid, 1)
    program = generate("jigsaw", spec, GENERIC_AVX2, grid)
    got = run_program(program, grid, 1)
    with pytest.raises(AssertionError):
        _assert_ulp_close(got.interior, reference.interior, spec=spec,
                          steps=1, scheme="jigsaw")
