"""Unit tests for the vector-program IR and builder."""

import numpy as np
import pytest

from repro.errors import VectorizeError
from repro.machine.isa import Affine, Op
from repro.machine.machine import SimdMachine
from repro.vectorize.program import Loop, ProgramBuilder, VectorProgram


class TestLoop:
    def test_trip_count(self):
        assert Loop("x", 0, 16, 4).trip_count == 4
        assert Loop("x", 2, 10, 8).trip_count == 1
        assert Loop("x", 0, 0, 1).trip_count == 0

    def test_rejects_nonpositive_step(self):
        with pytest.raises(VectorizeError):
            Loop("x", 0, 8, 0)

    def test_rejects_negative_range(self):
        with pytest.raises(VectorizeError):
            Loop("x", 8, 0, 1)

    def test_indices(self):
        assert list(Loop("x", 2, 10, 4).indices()) == [2, 6]


def tiny_program(**overrides):
    b = ProgramBuilder(4)
    v = b.load(b.mem(Affine.var("x")))
    b.store(v, b.mem(Affine.var("x"), array="out"))
    kwargs = dict(name="p", scheme="t", loops=[Loop("x", 0, 8, 4)],
                  vectors_per_iter=1)
    kwargs.update(overrides)
    return b.build(**kwargs)


class TestVectorProgram:
    def test_block_and_trips(self):
        p = tiny_program()
        assert p.block == 4
        assert p.inner_trips == 2
        assert p.total_body_runs() == 2

    def test_iter_outer_no_outer_loops(self):
        assert list(tiny_program().iter_outer()) == [{}]

    def test_iter_outer_product(self):
        p = tiny_program(loops=[Loop("z", 0, 2, 1), Loop("y", 5, 7, 1),
                                Loop("x", 0, 8, 4)])
        envs = list(p.iter_outer())
        assert len(envs) == 4
        assert {"z": 0, "y": 5} in envs
        assert {"z": 1, "y": 6} in envs

    def test_requires_loops(self):
        with pytest.raises(VectorizeError):
            tiny_program(loops=[])

    def test_rejects_bad_width(self):
        b = ProgramBuilder(4)
        v = b.load(b.mem(Affine.var("x")))
        b.store(v, b.mem(Affine.var("x"), array="out"))
        with pytest.raises(VectorizeError):
            VectorProgram(name="p", scheme="t", width=3,
                          loops=(Loop("x", 0, 8, 4),), prologue=(),
                          body=tuple(b._body), vectors_per_iter=1)

    def test_rejects_zero_vectors(self):
        with pytest.raises(VectorizeError):
            tiny_program(vectors_per_iter=0)

    def test_rejects_zero_steps(self):
        with pytest.raises(VectorizeError):
            tiny_program(steps_per_iter=0)

    def test_body_mix(self):
        mix = tiny_program().body_mix()
        assert mix.loads == 1
        assert mix.stores == 1

    def test_registers_used(self):
        assert tiny_program().registers_used() == 1

    def test_listing_contains_loops_and_ops(self):
        text = tiny_program().listing()
        assert "for x in [0, 8) step 4" in text
        assert "vmovupd.load" in text


class TestProgramBuilder:
    def test_fresh_names_unique(self):
        b = ProgramBuilder(4)
        assert b.fresh() != b.fresh()

    def test_broadcast_cached_and_hoisted(self):
        b = ProgramBuilder(4)
        c1 = b.broadcast(0.5)
        c2 = b.broadcast(0.5)
        c3 = b.broadcast(0.25)
        assert c1 == c2 and c1 != c3
        v = b.load(b.mem(Affine.var("x")))
        b.store(b.mul(c1, v), b.mem(Affine.var("x"), array="out"))
        p = b.build(name="p", scheme="t", loops=[Loop("x", 0, 4, 4)],
                    vectors_per_iter=1)
        # broadcasts live in the prologue, not the body
        assert all(i.op is not Op.BROADCAST for i in p.body)
        assert sum(1 for i in p.prologue if i.op is Op.BROADCAST) == 2

    def test_weighted_sum_unit_first_coeff_uses_mov(self):
        b = ProgramBuilder(4)
        r = b.weighted_sum([(1.0, "a"), (0.5, "b")])
        ops = [i.op for i in b._body]
        assert Op.MOV in ops and Op.FMA in ops

    def test_weighted_sum_empty_rejected(self):
        with pytest.raises(VectorizeError):
            ProgramBuilder(4).weighted_sum([])

    def test_weighted_sum_executes_correctly(self):
        b = ProgramBuilder(4)
        va = b.load(b.mem(Affine.var("x")))
        vb = b.load(b.mem(Affine.var("x"), array="b"))
        r = b.weighted_sum([(2.0, va), (3.0, vb)])
        b.store(r, b.mem(Affine.var("x"), array="out"))
        p = b.build(name="p", scheme="t", loops=[Loop("x", 0, 4, 4)],
                    vectors_per_iter=1)
        a = np.arange(4.0)
        bb = np.arange(4.0) + 10
        out = np.zeros(4)
        SimdMachine(4).run(p, {"a": a, "b": bb, "out": out})
        assert np.allclose(out, 2 * a + 3 * bb)

    def test_deinterleave_masks(self):
        b = ProgramBuilder(4)
        lo, hi = b.deinterleave("a", "b")
        imms = [i.imm for i in b._body]
        assert imms == [0, 0b1111]

    def test_named_destinations(self):
        b = ProgramBuilder(4)
        assert b.shufpd("a", "b", 0, dst="named") == "named"
        assert b.mul("a", "b", dst="m") == "m"
        assert b.fma("a", "b", "c", dst="f") == "f"
        assert b.add("a", "b", dst="s") == "s"

    def test_stream_switching(self):
        b = ProgramBuilder(4)
        b.in_prologue()
        b.setzero()
        b.in_body()
        b.setzero()
        p_len, b_len = len(b._prologue), len(b._body)
        assert (p_len, b_len) == (1, 1)
