"""Tests for the roofline analysis."""

import pytest

from repro.config import AMD_EPYC_7V13
from repro.analysis.roofline import (
    flops_of,
    peak_gflops,
    roofline_point,
    roofline_table,
)
from repro.stencils import library


def test_peak_gflops():
    # 2 FMA ports x 4 lanes x 2 FLOPs x 2.45 GHz
    assert peak_gflops(AMD_EPYC_7V13) == pytest.approx(2 * 4 * 2 * 2.45)


def test_flops_of():
    assert flops_of(library.get("heat-1d")) == 5
    assert flops_of(library.get("box-3d27p")) == 53


class TestRooflinePoints:
    @pytest.fixture(scope="class")
    def points(self):
        return {p.scheme: p
                for p in roofline_table(library.get("heat-2d"),
                                        AMD_EPYC_7V13)}

    def test_stencils_sit_left_of_ridge(self, points):
        """At DRAM bandwidth every scheme is memory-bound — the premise of
        the whole optimization space."""
        for p in points.values():
            assert p.memory_bound_at_dram, p.scheme

    def test_itm_moves_right(self, points):
        """Temporal fusion raises operational intensity (fewer bytes per
        step), the only lever that moves the DRAM ceiling."""
        assert points["t-jigsaw"].intensity > points["jigsaw"].intensity
        assert points["t-jigsaw"].bandwidth_ceiling_gflops["DRAM"] > \
            points["jigsaw"].bandwidth_ceiling_gflops["DRAM"]

    def test_jigsaw_achieves_more_than_baselines(self, points):
        assert points["jigsaw"].achieved_gflops > \
            points["auto"].achieved_gflops
        assert points["jigsaw"].achieved_gflops > \
            points["reorg"].achieved_gflops

    def test_achieved_below_compute_ceiling(self, points):
        for p in points.values():
            assert p.achieved_gflops <= p.compute_ceiling_gflops * 1.001

    def test_ceiling_lookup(self, points):
        p = points["jigsaw"]
        assert p.ceiling_at("L1") <= p.compute_ceiling_gflops
        assert p.ceiling_at("DRAM") < p.ceiling_at("L1")


def test_unsupported_schemes_skipped():
    pts = roofline_table(library.get("heat-2d"), AMD_EPYC_7V13,
                         schemes=("jigsaw", "t4-jigsaw"))
    assert [p.scheme for p in pts] == ["jigsaw"]
