"""Tests for topology, the multicore model, and the real executor."""

import multiprocessing

import numpy as np
import pytest

from repro.config import AMD_EPYC_7V13, GENERIC_AVX2, INTEL_XEON_6230R
from repro.errors import ModelError, TilingError
from repro.parallel.executor import pool_context, run_parallel
from repro.parallel.simulator import MulticoreModel, ParallelSetup
from repro.parallel.topology import (allocate_cores, partition_axis,
                                     shard_neighbors)
from repro.schemes import model_cost
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid
from repro.stencils.library import table3_config
from repro.tiling.schedule import build_schedule


class TestTopology:
    def test_alternate_round_robin(self):
        alloc = allocate_cores(INTEL_XEON_6230R, 5, policy="alternate")
        assert alloc.per_socket == (3, 2)
        assert alloc.sockets_used == 2

    def test_compact_fills_first_socket(self):
        alloc = allocate_cores(INTEL_XEON_6230R, 20, policy="compact")
        assert alloc.per_socket == (20, 0)
        assert alloc.remote_fraction == 0.0

    def test_remote_fraction_two_sockets(self):
        alloc = allocate_cores(INTEL_XEON_6230R, 4, policy="alternate")
        assert alloc.remote_fraction == pytest.approx(0.5)

    def test_single_socket_no_remote(self):
        alloc = allocate_cores(AMD_EPYC_7V13, 8)
        assert alloc.remote_fraction == 0.0

    def test_bounds_checked(self):
        with pytest.raises(ModelError):
            allocate_cores(AMD_EPYC_7V13, 0)
        with pytest.raises(ModelError):
            allocate_cores(AMD_EPYC_7V13, 25)

    def test_unknown_policy(self):
        with pytest.raises(ModelError):
            allocate_cores(AMD_EPYC_7V13, 2, policy="nope")


class TestShardTopology:
    def test_even_partition(self):
        slabs = partition_axis(16, 4)
        assert [s.rows for s in slabs] == [4, 4, 4, 4]
        assert [(s.start, s.stop) for s in slabs] == [
            (0, 4), (4, 8), (8, 12), (12, 16)]
        assert [s.index for s in slabs] == [0, 1, 2, 3]

    def test_remainder_spread_over_leading_slabs(self):
        slabs = partition_axis(17, 5)
        assert [s.rows for s in slabs] == [4, 4, 3, 3, 3]
        # contiguous, gap-free cover of [0, extent)
        assert slabs[0].start == 0 and slabs[-1].stop == 17
        for a, b in zip(slabs, slabs[1:]):
            assert a.stop == b.start

    def test_degenerate_single_shard(self):
        (slab,) = partition_axis(9, 1)
        assert (slab.start, slab.stop, slab.rows) == (0, 9, 9)
        assert shard_neighbors(0, 1) == (0, 0)  # its own ring neighbor
        assert shard_neighbors(0, 1, periodic=False) == (None, None)

    def test_one_row_per_shard(self):
        slabs = partition_axis(3, 3)
        assert [s.rows for s in slabs] == [1, 1, 1]

    def test_partition_validation(self):
        with pytest.raises(TilingError):
            partition_axis(8, 0)
        with pytest.raises(TilingError):
            partition_axis(3, 4)  # more shards than rows

    def test_ring_neighbors(self):
        assert shard_neighbors(0, 4) == (3, 1)
        assert shard_neighbors(2, 4) == (1, 3)
        assert shard_neighbors(3, 4) == (2, 0)

    def test_chain_neighbors(self):
        assert shard_neighbors(0, 4, periodic=False) == (None, 1)
        assert shard_neighbors(2, 4, periodic=False) == (1, 3)
        assert shard_neighbors(3, 4, periodic=False) == (2, None)

    def test_neighbor_validation(self):
        with pytest.raises(TilingError):
            shard_neighbors(4, 4)
        with pytest.raises(TilingError):
            shard_neighbors(-1, 4)
        with pytest.raises(TilingError):
            shard_neighbors(0, 0)


class TestPoolContext:
    """The process pool must be pinned to a spawn-safe start method:
    fork copies the parent's locks/injector stack mid-state and is not
    deterministic under threads, so the executor never relies on the
    platform default."""

    def test_default_is_spawn_safe(self, monkeypatch):
        monkeypatch.delenv("REPRO_MP_START", raising=False)
        ctx = pool_context()
        assert ctx.get_start_method() in ("forkserver", "spawn")
        assert ctx.get_start_method() != "fork"

    def test_env_override_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "spawn")
        assert pool_context().get_start_method() == "spawn"

    def test_unsupported_method_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "mpi")
        with pytest.raises(TilingError):
            pool_context()

    def test_fork_allowed_as_explicit_override(self, monkeypatch):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork")
        monkeypatch.setenv("REPRO_MP_START", "fork")
        assert pool_context().get_start_method() == "fork"


class TestMulticoreModel:
    @pytest.fixture
    def setup(self):
        cfg = table3_config("box-2d9p")
        return cfg, model_cost("jigsaw", cfg.spec, AMD_EPYC_7V13)

    def test_scaling_is_monotone(self, setup):
        cfg, cost = setup
        model = MulticoreModel(AMD_EPYC_7V13)
        curve = model.scaling_curve(
            cost, cfg.spec, points=cfg.grid_points(), steps=100,
            core_counts=[1, 2, 4, 8, 16, 24],
            setup=ParallelSetup(tile_shape=cfg.tile_shape,
                                time_depth=cfg.time_depth),
        )
        gs = [r.gstencil_s for r in curve]
        assert all(b >= a for a, b in zip(gs, gs[1:]))

    def test_scaling_at_most_linear(self, setup):
        cfg, cost = setup
        model = MulticoreModel(AMD_EPYC_7V13)
        r1 = model.estimate(cost, cfg.spec, points=cfg.grid_points(),
                            steps=100, cores=1)
        r24 = model.estimate(cost, cfg.spec, points=cfg.grid_points(),
                             steps=100, cores=24)
        assert r24.gstencil_s <= 24 * r1.gstencil_s * 1.001

    def test_3d_saturates_earlier_than_1d(self):
        model = MulticoreModel(AMD_EPYC_7V13)
        effs = {}
        for kernel in ("heat-1d", "heat-3d"):
            cfg = table3_config(kernel)
            cost = model_cost("jigsaw", cfg.spec, AMD_EPYC_7V13)
            setup = ParallelSetup(tile_shape=cfg.tile_shape,
                                  time_depth=cfg.time_depth)
            r1 = model.estimate(cost, cfg.spec, points=cfg.grid_points(),
                                steps=cfg.time_steps, cores=1, setup=setup)
            r24 = model.estimate(cost, cfg.spec, points=cfg.grid_points(),
                                 steps=cfg.time_steps, cores=24, setup=setup)
            effs[kernel] = r24.gstencil_s / (24 * r1.gstencil_s)
        assert effs["heat-3d"] < effs["heat-1d"]

    def test_numa_hurts_intel_dram_runs(self):
        cfg = table3_config("heat-3d")
        cost = model_cost("jigsaw", cfg.spec, INTEL_XEON_6230R)
        model = MulticoreModel(INTEL_XEON_6230R)
        # untiled, memory-bound: alternate placement pays the NUMA penalty
        alt = model.estimate(cost, cfg.spec, points=cfg.grid_points(),
                             steps=10, cores=8,
                             setup=ParallelSetup(placement="alternate"))
        compact = model.estimate(cost, cfg.spec, points=cfg.grid_points(),
                                 steps=10, cores=8,
                                 setup=ParallelSetup(placement="compact"))
        assert alt.gstencil_s <= compact.gstencil_s

    def test_time_depth_amortizes_dram(self, setup):
        cfg, cost = setup
        model = MulticoreModel(AMD_EPYC_7V13)
        shallow = model.estimate(
            cost, cfg.spec, points=cfg.grid_points(), steps=100, cores=24,
            setup=ParallelSetup(tile_shape=cfg.tile_shape, time_depth=1))
        deep = model.estimate(
            cost, cfg.spec, points=cfg.grid_points(), steps=100, cores=24,
            setup=ParallelSetup(tile_shape=cfg.tile_shape, time_depth=50))
        assert deep.gstencil_s >= shallow.gstencil_s

    def test_bad_setup_rejected(self):
        with pytest.raises(ModelError):
            ParallelSetup(time_depth=0)


class TestExecutor:
    @pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d", "box-2d9p",
                                        "heat-3d"])
    def test_matches_reference(self, kernel):
        spec = library.get(kernel)
        shape = (16,) * spec.ndim
        g = Grid.random(shape, spec.radius, seed=1)
        got = run_parallel(spec, g, 3, workers=4,
                           tile_shape=(8,) * spec.ndim)
        ref = apply_steps(spec, g, 3)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12, atol=1e-14)

    def test_dirichlet(self):
        spec = library.get("heat-2d")
        g = Grid.random((16, 16), 1, seed=2)
        got = run_parallel(spec, g, 2, workers=2, tile_shape=(8, 8),
                           boundary="dirichlet", value=0.5)
        ref = apply_steps(spec, g, 2, boundary="dirichlet", value=0.5)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12)

    def test_default_tiling_splits_outer_axis(self):
        spec = library.get("heat-2d")
        g = Grid.random((16, 16), 1, seed=3)
        got = run_parallel(spec, g, 2, workers=4)
        ref = apply_steps(spec, g, 2)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12)

    def test_custom_schedule(self):
        spec = library.get("heat-2d")
        g = Grid.random((16, 16), 1, seed=4)
        sched = build_schedule((16, 16), (8, 8), time_depth=2)
        got = run_parallel(spec, g, 2, workers=2, schedule=sched)
        ref = apply_steps(spec, g, 2)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12)

    def test_input_untouched(self):
        spec = library.get("heat-1d")
        g = Grid.random((32,), 1, seed=5)
        before = g.data.copy()
        run_parallel(spec, g, 2, workers=2)
        assert np.array_equal(g.data, before)

    def test_validation(self):
        spec = library.get("heat-1d")
        g = Grid.random((32,), 1, seed=6)
        with pytest.raises(TilingError):
            run_parallel(spec, g, -1)
        with pytest.raises(TilingError):
            run_parallel(spec, g, 1, workers=0)


class TestExecutorDeterminism:
    """run_parallel must be bitwise deterministic: tiles are independent
    and land in disjoint output slices, so worker count and backend can
    never change a single bit of the result."""

    SPEC = library.get("heat-2d")

    def _grid(self, seed=7):
        return Grid.random((48, 48), 1, seed=seed)

    def test_worker_count_bitwise_identical(self):
        g = self._grid()
        a = run_parallel(self.SPEC, g, 3, workers=1)
        b = run_parallel(self.SPEC, g, 3, workers=8)
        assert np.array_equal(a.data, b.data)

    def test_thread_vs_process_backend_bitwise_identical(self):
        g = self._grid(seed=8)
        a = run_parallel(self.SPEC, g, 2, workers=4, backend="thread")
        b = run_parallel(self.SPEC, g, 2, workers=4, backend="process")
        assert np.array_equal(a.data, b.data)

    def test_process_backend_worker_count_bitwise_identical(self):
        g = self._grid(seed=9)
        a = run_parallel(self.SPEC, g, 2, workers=1, backend="process")
        b = run_parallel(self.SPEC, g, 2, workers=4, backend="process")
        assert np.array_equal(a.data, b.data)

    def test_process_backend_matches_reference(self):
        spec = library.get("box-2d9p")
        g = Grid.random((32, 32), 1, seed=10)
        got = run_parallel(spec, g, 2, workers=3, backend="process")
        ref = apply_steps(spec, g, 2)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12)

    def test_process_backend_input_untouched(self):
        g = self._grid(seed=11)
        before = g.data.copy()
        run_parallel(self.SPEC, g, 2, workers=2, backend="process")
        assert np.array_equal(g.data, before)

    def test_unknown_backend_rejected(self):
        with pytest.raises(TilingError):
            run_parallel(self.SPEC, self._grid(), 1, backend="mpi")

    def test_3d_process_backend(self):
        spec = library.get("heat-3d")
        g = Grid.random((12, 12, 12), 1, seed=12)
        a = run_parallel(spec, g, 2, workers=4, backend="thread",
                         tile_shape=(4, 12, 12))
        b = run_parallel(spec, g, 2, workers=4, backend="process",
                         tile_shape=(4, 12, 12))
        assert np.array_equal(a.data, b.data)
