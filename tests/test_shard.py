"""Tests for sharded execution: plan geometry, bitwise equality against
the serial engines, temporal blocking, fault recovery, and the
service/tune/kernel integration layers.

The whole subsystem's contract is *bitwise* reproduction of the
unsharded engines on the interior (result-grid halos are scratch), so
every equality here is ``np.array_equal`` on ``.interior``, never
``allclose``.
"""

import numpy as np
import pytest

from repro import faults, obs
from repro.config import GENERIC_AVX2
from repro.core import compile_kernel
from repro.core.jigsaw import required_halo
from repro.errors import ReproError, TilingError
from repro.faults.plan import FaultPlan, FaultRule
from repro.parallel.executor import run_parallel
from repro.service import KernelService, SweepJob
from repro.shard import (KernelRecipe, ShardRunner, make_shard_plan,
                         run_sharded)
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid

HEAT2D = library.get("heat-2d")


def _recipe(spec, *, time_fusion=1):
    return KernelRecipe(spec=spec, machine=GENERIC_AVX2,
                        time_fusion=time_fusion, use_sdf=True,
                        exec_backend="auto")


class TestShardPlan:
    def test_pad_is_radius_times_block(self):
        plan = make_shard_plan(HEAT2D, (24, 24), shards=3, temporal_block=4)
        assert plan.pad == HEAT2D.radius[0] * 4

    def test_periodic_bounds_never_clip(self):
        plan = make_shard_plan(HEAT2D, (24, 24), shards=3, temporal_block=2)
        for i in range(3):
            b = plan.bounds(i, 2)
            assert (b.lo_pad, b.hi_pad) == (2, 2)
            assert not b.lo_edge and not b.hi_edge

    def test_dirichlet_bounds_clip_at_domain_edges(self):
        plan = make_shard_plan(HEAT2D, (24, 24), shards=3,
                               temporal_block=2, boundary="dirichlet")
        first, mid, last = (plan.bounds(i, 2) for i in range(3))
        assert first.lo_pad == 0 and first.lo_edge
        assert first.hi_pad == 2 and not first.hi_edge
        assert mid.lo_pad == mid.hi_pad == 2
        assert not mid.lo_edge and not mid.hi_edge
        assert last.hi_pad == 0 and last.hi_edge

    def test_supersteps_cover_steps_exactly(self):
        plan = make_shard_plan(HEAT2D, (24, 24), shards=2, temporal_block=3)
        assert plan.supersteps(9) == (3, 3, 3)
        assert plan.supersteps(7) == (3, 3, 1)
        assert plan.supersteps(2) == (2,)

    def test_remainder_superstep_uses_shallower_pad(self):
        plan = make_shard_plan(HEAT2D, (24, 24), shards=2, temporal_block=3)
        assert plan.bounds(0, 3).lo_pad == 3
        assert plan.bounds(0, 1).lo_pad == 1

    def test_validation(self):
        with pytest.raises(TilingError):
            make_shard_plan(HEAT2D, (24, 24), shards=0)
        with pytest.raises(TilingError):
            make_shard_plan(HEAT2D, (24, 24), shards=2, temporal_block=0)
        with pytest.raises(TilingError):
            make_shard_plan(HEAT2D, (24,), shards=2)  # rank mismatch
        with pytest.raises(TilingError):
            make_shard_plan(HEAT2D, (24, 24), shards=2, boundary="nope")
        with pytest.raises(TilingError):
            make_shard_plan(HEAT2D, (3, 24), shards=4)  # extent < shards


class TestReferenceEngineBitwise:
    """Sharded reference sweeps against the serial reference."""

    @pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d", "box-2d9p",
                                        "heat-3d"])
    def test_matches_reference_bitwise(self, kernel):
        spec = library.get(kernel)
        shape = (17,) * (spec.ndim - 1) + (16,)
        g = Grid.random(shape, spec.radius, seed=1)
        ref = apply_steps(spec, g, 4)
        got = run_sharded(spec, g, 4, shards=3)
        assert np.array_equal(ref.interior, got.interior)

    @pytest.mark.parametrize("boundary,value", [("periodic", 0.0),
                                                ("dirichlet", 1.5)])
    @pytest.mark.parametrize("temporal_block", [1, 2, 3])
    def test_temporal_blocking_bitwise(self, boundary, value, temporal_block):
        g = Grid.random((17, 16), HEAT2D.radius, seed=2)
        ref = apply_steps(HEAT2D, g, 5, boundary=boundary, value=value)
        got = run_sharded(HEAT2D, g, 5, shards=3,
                          temporal_block=temporal_block,
                          boundary=boundary, value=value)
        assert np.array_equal(ref.interior, got.interior)

    def test_shard_count_bitwise_invariant(self):
        g = Grid.random((19, 16), HEAT2D.radius, seed=3)
        base = run_sharded(HEAT2D, g, 4, shards=1)
        for shards in (2, 3, 4):
            got = run_sharded(HEAT2D, g, 4, shards=shards, temporal_block=2)
            assert np.array_equal(base.interior, got.interior)

    def test_worker_count_bitwise_invariant(self):
        g = Grid.random((16, 16), HEAT2D.radius, seed=4)
        a = run_sharded(HEAT2D, g, 4, shards=4, workers=1)
        b = run_sharded(HEAT2D, g, 4, shards=4, workers=4)
        assert np.array_equal(a.interior, b.interior)

    def test_pad_wider_than_slab(self):
        # 8 shards of 2 rows each with a 3-deep pad: windows overlap most
        # of the domain, periodic gathers wrap — must still be exact
        g = Grid.random((16, 12), HEAT2D.radius, seed=5)
        ref = apply_steps(HEAT2D, g, 3)
        got = run_sharded(HEAT2D, g, 3, shards=8, temporal_block=3)
        assert np.array_equal(ref.interior, got.interior)

    def test_zero_steps_copies(self):
        g = Grid.random((16, 16), HEAT2D.radius, seed=6)
        out = run_sharded(HEAT2D, g, 0, shards=2)
        assert np.array_equal(g.data, out.data)
        assert out.data is not g.data

    def test_input_untouched(self):
        g = Grid.random((16, 16), HEAT2D.radius, seed=7)
        before = g.data.copy()
        run_sharded(HEAT2D, g, 3, shards=3, temporal_block=2)
        assert np.array_equal(g.data, before)

    def test_thread_vs_process_bitwise(self):
        g = Grid.random((16, 16), HEAT2D.radius, seed=8)
        a = run_sharded(HEAT2D, g, 2, shards=2, executor="thread")
        b = run_sharded(HEAT2D, g, 2, shards=2, executor="process")
        assert np.array_equal(a.interior, b.interior)


class TestProgramEngineBitwise:
    """Sharded compiled-pipeline sweeps against the unsharded kernel."""

    def _kernel(self, spec, shape, *, time_fusion=1):
        halo = required_halo(spec, GENERIC_AVX2, time_fusion=time_fusion)
        return compile_kernel(spec, GENERIC_AVX2, Grid(shape, halo),
                              time_fusion=time_fusion)

    def test_matches_kernel_run_bitwise(self):
        k = self._kernel(HEAT2D, (19, 64))
        g = k.grid_like((19, 64), seed=10)
        ref = k.run(g, 4)
        got = k.run_sharded(g, 4, shards=3, temporal_block=2,
                            executor="thread")
        assert np.array_equal(ref.interior, got.interior)

    def test_fused_plan_temporal_block_defaults_to_depth(self):
        k = self._kernel(HEAT2D, (20, 64), time_fusion=2)
        g = k.grid_like((20, 64), seed=11)
        ref = k.run(g, 4)
        got = k.run_sharded(g, 4, shards=2, executor="thread")
        assert np.array_equal(ref.interior, got.interior)

    def test_dirichlet_program_mode(self):
        k = self._kernel(HEAT2D, (18, 64))
        g = k.grid_like((18, 64), seed=12)
        ref = k.run(g, 4, boundary="dirichlet", value=0.75)
        got = k.run_sharded(g, 4, shards=3, temporal_block=2,
                            executor="thread", boundary="dirichlet",
                            value=0.75)
        assert np.array_equal(ref.interior, got.interior)

    def test_shape_mismatch_rejected(self):
        k = self._kernel(HEAT2D, (18, 64))
        g = Grid.random((20, 64), k.halo(), seed=13)
        with pytest.raises(ReproError):
            k.run_sharded(g, 2, shards=2, executor="thread")

    def test_block_must_be_multiple_of_fused_depth(self):
        with pytest.raises(TilingError):
            ShardRunner(HEAT2D, shards=2, temporal_block=3,
                        recipe=_recipe(HEAT2D, time_fusion=2))

    def test_program_engine_rejects_1d(self):
        spec = library.get("heat-1d")
        with pytest.raises(TilingError):
            ShardRunner(spec, shards=2, recipe=_recipe(spec))

    def test_fused_dirichlet_rejected(self):
        k = self._kernel(HEAT2D, (20, 64), time_fusion=2)
        g = k.grid_like((20, 64), seed=14)
        with pytest.raises(TilingError):
            k.run_sharded(g, 4, shards=2, executor="thread",
                          boundary="dirichlet")


class TestRunnerValidation:
    def test_constructor_validation(self):
        with pytest.raises(TilingError):
            ShardRunner(HEAT2D, shards=0)
        with pytest.raises(TilingError):
            ShardRunner(HEAT2D, shards=2, temporal_block=0)
        with pytest.raises(TilingError):
            ShardRunner(HEAT2D, shards=2, executor="mpi")
        with pytest.raises(TilingError):
            ShardRunner(HEAT2D, shards=2, workers=0)
        with pytest.raises(TilingError):
            ShardRunner(HEAT2D, shards=2, retries=-1)
        with pytest.raises(TilingError):
            ShardRunner(HEAT2D, shards=2, pool_restarts=-1)

    def test_run_validation(self):
        g = Grid.random((16, 16), HEAT2D.radius, seed=0)
        with ShardRunner(HEAT2D, shards=2) as r:
            with pytest.raises(TilingError):
                r.run(g, -1)

    def test_run_parallel_shards_exclusive_with_tiling(self):
        g = Grid.random((16, 16), HEAT2D.radius, seed=0)
        with pytest.raises(TilingError):
            run_parallel(HEAT2D, g, 2, shards=2, tile_shape=(8, 8))
        with pytest.raises(TilingError):
            run_parallel(HEAT2D, g, 2, temporal_block=2)  # needs shards

    def test_runner_reusable_across_runs(self):
        g = Grid.random((16, 16), HEAT2D.radius, seed=1)
        ref = apply_steps(HEAT2D, g, 2)
        with ShardRunner(HEAT2D, shards=3, temporal_block=2) as r:
            for _ in range(3):
                out = r.run(g, 2)
                assert np.array_equal(ref.interior, out.interior)


class TestRunParallelDelegation:
    def test_shards_kwarg_matches_reference(self):
        g = Grid.random((18, 16), HEAT2D.radius, seed=2)
        ref = apply_steps(HEAT2D, g, 4)
        got = run_parallel(HEAT2D, g, 4, shards=3, temporal_block=2)
        assert np.array_equal(ref.interior, got.interior)

    def test_sharded_matches_tiled_bitwise(self):
        # both paths reproduce the serial reference bit-for-bit, so they
        # must match each other too
        g = Grid.random((16, 16), HEAT2D.radius, seed=3)
        a = run_parallel(HEAT2D, g, 3, shards=2)
        b = run_parallel(HEAT2D, g, 3, tile_shape=(8, 8), workers=2)
        assert np.array_equal(a.interior, b.interior)


class TestServiceIntegration:
    def test_sweepjob_sharded_bitwise(self):
        svc = KernelService(GENERIC_AVX2)
        g = Grid.random((18, 18), HEAT2D.radius, seed=4)
        ref = apply_steps(HEAT2D, g, 4)
        out = svc.run(SweepJob(HEAT2D, g, 4, shards=3, temporal_block=2))
        assert np.array_equal(ref.interior, out.interior)

    def test_sweepjob_validation(self):
        g = Grid.random((16, 16), HEAT2D.radius, seed=5)
        with pytest.raises(ReproError):
            SweepJob(HEAT2D, g, 2, shards=2, tile_shape=(8, 8))
        with pytest.raises(ReproError):
            SweepJob(HEAT2D, g, 2, shards=0)
        with pytest.raises(ReproError):
            SweepJob(HEAT2D, g, 2, temporal_block=2)  # needs shards
        with pytest.raises(ReproError):
            SweepJob(HEAT2D, g, 2, shards=2, temporal_block=0)


class TestObservability:
    def test_exchange_and_redundancy_counters(self):
        g = Grid.random((16, 16), HEAT2D.radius, seed=6)
        obs.enable(reset=True)
        try:
            run_sharded(HEAT2D, g, 4, shards=2, temporal_block=2)
            counters = obs.snapshot()["metrics"]["counters"]
        finally:
            obs.disable()
        assert counters["shard.supersteps"] == 2
        assert counters["shard.exchange_bytes"] > 0
        # temporal blocking recomputes ghost rows: the redundancy meter
        # must show it
        assert counters["shard.redundant_points"] > 0

    def test_no_redundancy_without_temporal_blocking(self):
        g = Grid.random((16, 16), HEAT2D.radius, seed=7)
        obs.enable(reset=True)
        try:
            run_sharded(HEAT2D, g, 2, shards=2, temporal_block=1)
            counters = obs.snapshot()["metrics"]["counters"]
        finally:
            obs.disable()
        assert counters.get("shard.redundant_points", 0) == 0

    def test_superstep_spans_recorded(self):
        g = Grid.random((16, 16), HEAT2D.radius, seed=8)
        obs.enable(reset=True)
        try:
            run_sharded(HEAT2D, g, 2, shards=2)
            spans = obs.snapshot()["spans"]
        finally:
            obs.disable()
        def walk(nodes):
            for n in nodes:
                yield n["name"]
                yield from walk(n.get("children", ()))

        names = list(walk(spans))
        assert "shard.superstep" in names
        assert "shard.exchange" in names


class TestFaultRecovery:
    def test_exchange_fault_retried_bitwise(self):
        g = Grid.random((17, 12), HEAT2D.radius, seed=9)
        ref = apply_steps(HEAT2D, g, 4)
        plan = FaultPlan(rules=(FaultRule(site="shard.exchange",
                                          kind="raise", after=1),), seed=0)
        with faults.inject(plan) as inj:
            out = run_sharded(HEAT2D, g, 4, shards=3, temporal_block=2)
        assert inj.injected_by_site().get("shard.exchange", 0) >= 1
        assert np.array_equal(ref.interior, out.interior)

    def test_exchange_retry_budget_exhausted_raises(self):
        g = Grid.random((16, 12), HEAT2D.radius, seed=10)
        plan = FaultPlan(rules=(FaultRule(site="shard.exchange",
                                          kind="raise", times=99),), seed=0)
        with faults.inject(plan):
            with pytest.raises(faults.FaultInjected):
                run_sharded(HEAT2D, g, 2, shards=2, retries=1)

    def test_thread_task_fault_recomputed_bitwise(self):
        g = Grid.random((17, 12), HEAT2D.radius, seed=11)
        ref = apply_steps(HEAT2D, g, 4)
        plan = FaultPlan(rules=(FaultRule(site="pool.task_start",
                                          kind="raise", after=2),), seed=0)
        with faults.inject(plan) as inj:
            out = run_sharded(HEAT2D, g, 4, shards=3, temporal_block=2)
        assert inj.injected_by_site().get("pool.task_start", 0) >= 1
        assert np.array_equal(ref.interior, out.interior)

    def test_killed_process_shard_restored_bitwise(self):
        g = Grid.random((16, 12), HEAT2D.radius, seed=12)
        ref = apply_steps(HEAT2D, g, 4)
        plan = FaultPlan(rules=(FaultRule(site="pool.task_start",
                                          kind="kill"),), seed=0)
        with faults.inject(plan) as inj:
            out = run_sharded(HEAT2D, g, 4, shards=2, temporal_block=2,
                              executor="process")
        assert inj.injected_by_site().get("pool.task_start", 0) >= 1
        assert np.array_equal(ref.interior, out.interior)

    def test_restart_budget_exhaustion_degrades_to_parent(self):
        g = Grid.random((16, 12), HEAT2D.radius, seed=13)
        ref = apply_steps(HEAT2D, g, 4)
        # kill every task start: the pool breaks repeatedly, the budget
        # runs out, and the parent must finish the run itself
        plan = FaultPlan(rules=(FaultRule(site="pool.task_start",
                                          kind="kill", times=99),), seed=0)
        obs.enable(reset=True)
        try:
            with faults.inject(plan):
                out = run_sharded(HEAT2D, g, 4, shards=2, temporal_block=2,
                                  executor="process", pool_restarts=1)
            counters = obs.snapshot()["metrics"]["counters"]
        finally:
            obs.disable()
        assert np.array_equal(ref.interior, out.interior)
        assert counters["shard.pool_restarts"] >= 1
        assert counters["shard.task_retries"] >= 1
