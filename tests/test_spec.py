"""Unit tests for :mod:`repro.stencils.spec`."""

import numpy as np
import pytest

from repro.errors import SpecError
from repro.stencils.spec import (
    StencilSpec,
    box,
    from_array,
    iter_row_offsets,
    star,
)


class TestValidation:
    def test_minimal_spec(self):
        s = StencilSpec("p", 1, ((0,),), (1.0,))
        assert s.npoints == 1
        assert s.radius == (0,)

    def test_rejects_empty_points(self):
        with pytest.raises(SpecError):
            StencilSpec("e", 1, (), ())

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(SpecError):
            StencilSpec("e", 1, ((0,), (1,)), (1.0,))

    def test_rejects_duplicate_offsets(self):
        with pytest.raises(SpecError):
            StencilSpec("e", 1, ((0,), (0,)), (0.5, 0.5))

    def test_rejects_wrong_offset_rank(self):
        with pytest.raises(SpecError):
            StencilSpec("e", 2, ((0,),), (1.0,))

    def test_rejects_nonfinite_coeffs(self):
        with pytest.raises(SpecError):
            StencilSpec("e", 1, ((0,),), (float("nan"),))

    def test_rejects_zero_ndim(self):
        with pytest.raises(SpecError):
            StencilSpec("e", 0, ((),), (1.0,))

    def test_offsets_normalized_to_ints(self):
        s = StencilSpec("p", 2, ((np.int64(1), np.int64(0)),), (1.0,))
        assert s.offsets == ((1, 0),)
        assert all(isinstance(v, int) for v in s.offsets[0])


class TestShapeQueries:
    def test_radius_per_axis(self):
        s = StencilSpec("p", 2, ((0, 0), (2, 0), (0, 1)), (0.5, 0.25, 0.25))
        assert s.radius == (2, 1)
        assert s.order == 2

    def test_tag(self):
        assert star(2, 1, center=0.5, arm=[0.125]).tag == "2D5P"
        assert box(3, 1).tag == "3D27P"

    def test_star_detection(self):
        assert star(3, 2, center=0.5, arm=[0.2, 0.05]).is_star
        assert not box(2, 1).is_star

    def test_box_detection(self):
        assert box(2, 1).is_box
        assert not star(2, 1, center=0.5, arm=[0.125]).is_box

    def test_1d_star_radius1_is_also_box(self):
        # a 1-D 3-point star fills the whole [-1, 1] box
        assert star(1, 1, center=0.5, arm=[0.25]).is_box

    def test_symmetry_detection(self):
        assert star(2, 1, center=0.5, arm=[0.125]).is_symmetric
        asym = StencilSpec("a", 1, ((-1,), (0,), (1,)), (0.1, 0.5, 0.4))
        assert not asym.is_symmetric

    def test_coefficient_sum(self):
        assert box(2, 1).coefficient_sum() == pytest.approx(1.0)


class TestCoefficientViews:
    def test_coefficient_array_center(self):
        s = star(1, 1, center=0.5, arm=[0.25])
        arr = s.coefficient_array()
        assert arr.shape == (3,)
        assert arr[1] == 0.5
        assert arr[0] == arr[2] == 0.25

    def test_coefficient_array_2d_placement(self):
        s = StencilSpec("p", 2, ((0, 0), (-1, 1)), (0.75, 0.25))
        arr = s.coefficient_array()
        assert arr.shape == (3, 3)
        assert arr[1, 1] == 0.75
        assert arr[0, 2] == 0.25

    def test_coefficient_matrix_requires_2d(self):
        with pytest.raises(SpecError):
            star(1, 1, center=0.5, arm=[0.25]).coefficient_matrix()

    def test_coefficient_table_roundtrip(self):
        s = box(2, 1)
        table = s.coefficient_table()
        assert len(table) == 9
        assert table[(0, 0)] == pytest.approx(1 / 9)

    def test_scaled(self):
        s = star(1, 1, center=0.5, arm=[0.25]).scaled(2.0)
        assert s.coefficient_sum() == pytest.approx(2.0)

    def test_renamed(self):
        assert box(2, 1).renamed("foo").name == "foo"


class TestAxisTaps:
    def test_axis_taps_1d(self):
        taps = star(1, 2, center=0.4, arm=[0.2, 0.1]).axis_taps(0)
        assert taps == {
            -2: pytest.approx(0.1), -1: pytest.approx(0.2),
            0: pytest.approx(0.4), 1: pytest.approx(0.2),
            2: pytest.approx(0.1),
        }

    def test_axis_taps_rejects_off_axis(self):
        with pytest.raises(SpecError):
            box(2, 1).axis_taps(1)


class TestFactories:
    def test_star_point_count(self):
        assert star(3, 2, center=0.5, arm=[0.2, 0.05]).npoints == 13

    def test_star_rejects_bad_radius(self):
        with pytest.raises(SpecError):
            star(1, 0, center=1.0, arm=[])

    def test_star_rejects_arm_length_mismatch(self):
        with pytest.raises(SpecError):
            star(1, 2, center=0.5, arm=[0.25])

    def test_box_uniform_default(self):
        s = box(2, 1)
        assert all(c == pytest.approx(1 / 9) for c in s.coeffs)

    def test_box_rejects_wrong_weight_shape(self):
        with pytest.raises(SpecError):
            box(2, 1, np.ones((3, 5)))

    def test_from_array_drops_zeros(self):
        w = np.zeros((3, 3))
        w[1, 1] = 1.0
        w[0, 1] = 0.5
        s = from_array(w)
        assert s.npoints == 2

    def test_from_array_keep_zeros(self):
        w = np.zeros((3,))
        w[1] = 1.0
        s = from_array(w, keep_zeros=True)
        assert s.npoints == 3

    def test_from_array_rejects_even_sides(self):
        with pytest.raises(SpecError):
            from_array(np.ones((4,)))

    def test_from_array_rejects_all_zero(self):
        with pytest.raises(SpecError):
            from_array(np.zeros((3, 3)))

    def test_from_array_roundtrips_coefficient_array(self):
        s = box(2, 1, np.arange(1, 10, dtype=float).reshape(3, 3))
        s2 = from_array(s.coefficient_array(), name=s.name)
        assert np.allclose(s2.coefficient_array(), s.coefficient_array())


class TestRowGrouping:
    def test_rows_of_2d_star(self):
        s = star(2, 1, center=0.5, arm=[0.125])
        rows = dict(iter_row_offsets(s))
        assert set(rows) == {(-1,), (0,), (1,)}
        assert rows[(0,)] == {
            -1: pytest.approx(0.125), 0: pytest.approx(0.5),
            1: pytest.approx(0.125),
        }
        assert rows[(1,)] == {0: pytest.approx(0.125)}

    def test_rows_of_1d(self):
        rows = list(iter_row_offsets(star(1, 1, center=0.5, arm=[0.25])))
        assert len(rows) == 1
        assert rows[0][0] == ()

    def test_rows_of_3d_box_count(self):
        rows = list(iter_row_offsets(box(3, 1)))
        assert len(rows) == 9  # (z, y) pairs
