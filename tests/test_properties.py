"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config import GENERIC_AVX2
from repro.core.itm import merged_spec
from repro.core.jigsaw import generate_jigsaw, required_halo
from repro.core.lbv import butterfly_requirements
from repro.core.sdf import (
    flatten_terms,
    reconstruction_error,
    structured_terms,
)
from repro.machine.isa import Instr, Op, execute_alu
from repro.stencils import apply_steps
from repro.stencils.boundary import fill_halo
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec
from repro.tiling.blocks import partition
from repro.vectorize.driver import run_program

# -- strategies ---------------------------------------------------------------

coeff = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False,
                  allow_infinity=False).filter(lambda c: abs(c) > 1e-6)


@st.composite
def stencil_1d(draw, max_radius=4):
    r = draw(st.integers(1, max_radius))
    offsets = list(range(-r, r + 1))
    picked = draw(st.lists(st.sampled_from(offsets), min_size=1,
                           max_size=len(offsets), unique=True))
    assume(max(abs(o) for o in picked) == r)  # keep the drawn radius
    coeffs = draw(st.lists(coeff, min_size=len(picked),
                           max_size=len(picked)))
    return StencilSpec("h1", 1, tuple((o,) for o in sorted(picked)),
                       tuple(coeffs))


@st.composite
def stencil_2d(draw):
    ry = draw(st.integers(1, 2))
    rx = draw(st.integers(1, 2))
    cells = [(dy, dx) for dy in range(-ry, ry + 1)
             for dx in range(-rx, rx + 1)]
    picked = draw(st.lists(st.sampled_from(cells), min_size=2,
                           max_size=len(cells), unique=True))
    assume(any(dx != 0 for _, dx in picked))
    coeffs = draw(st.lists(coeff, min_size=len(picked),
                           max_size=len(picked)))
    return StencilSpec("h2", 2, tuple(sorted(picked)), tuple(coeffs))


# -- shuffle round-trips --------------------------------------------------------

@given(st.lists(st.floats(-1e6, 1e6), min_size=8, max_size=8))
def test_butterfly_roundtrip(vals):
    """deinterleave (E/O) then interleave is the identity — the LBV
    swizzle/unswizzle pair."""
    regs = {"a": np.array(vals[:4]), "b": np.array(vals[4:])}
    execute_alu(Instr(Op.SHUFPD, dst="e", srcs=("a", "b"), imm=0), regs, 4)
    execute_alu(Instr(Op.SHUFPD, dst="o", srcs=("a", "b"), imm=0b1111),
                regs, 4)
    execute_alu(Instr(Op.SHUFPD, dst="a2", srcs=("e", "o"), imm=0), regs, 4)
    execute_alu(Instr(Op.SHUFPD, dst="b2", srcs=("e", "o"), imm=0b1111),
                regs, 4)
    assert np.array_equal(regs["a2"], regs["a"])
    assert np.array_equal(regs["b2"], regs["b"])


@given(st.permutations(list(range(4))),
       st.lists(st.floats(-1e3, 1e3), min_size=4, max_size=4))
def test_permpd_inverse(perm, vals):
    regs = {"a": np.array(vals)}
    execute_alu(Instr(Op.PERMPD, dst="p", srcs=("a",), imm=tuple(perm)),
                regs, 4)
    inv = tuple(np.argsort(perm))
    execute_alu(Instr(Op.PERMPD, dst="back", srcs=("p",), imm=inv), regs, 4)
    assert np.array_equal(regs["back"], regs["a"])


# -- scheme correctness on random stencils ---------------------------------------

@settings(max_examples=25, deadline=None)
@given(stencil_1d(), st.integers(0, 1000))
def test_jigsaw_1d_matches_reference(spec, seed):
    g = Grid.random((32,), required_halo(spec, GENERIC_AVX2), seed=seed)
    prog = generate_jigsaw(spec, GENERIC_AVX2, g)
    got = run_program(prog, g, 2)
    ref = apply_steps(spec, g, 2)
    assert np.allclose(got.interior, ref.interior, rtol=1e-10, atol=1e-10)


@settings(max_examples=15, deadline=None)
@given(stencil_2d(), st.integers(0, 1000))
def test_jigsaw_2d_matches_reference(spec, seed):
    g = Grid.random((5, 32), required_halo(spec, GENERIC_AVX2), seed=seed)
    prog = generate_jigsaw(spec, GENERIC_AVX2, g)
    got = run_program(prog, g, 1)
    ref = apply_steps(spec, g, 1)
    assert np.allclose(got.interior, ref.interior, rtol=1e-10, atol=1e-10)


# -- decomposition invariants ------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(stencil_2d())
def test_sdf_reconstruction_exact(spec):
    assert reconstruction_error(spec, flatten_terms(spec)) < 1e-10
    assert reconstruction_error(spec, structured_terms(spec)) < 1e-10


@settings(max_examples=25, deadline=None)
@given(stencil_2d())
def test_structured_butterfly_terms_exclude_center_column(spec):
    terms = structured_terms(spec)
    for t in terms[:-1]:
        if any(d != 0 for d in t.v):
            assert 0 not in t.v


# -- ITM fusion law -----------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(stencil_1d(max_radius=2), st.integers(2, 3), st.integers(0, 100))
def test_itm_fusion_law(spec, s, seed):
    fused = merged_spec(spec, s)
    g = Grid.random((16,), fused.radius, seed=seed)
    one = apply_steps(fused, g, 1)
    many = apply_steps(spec, g, s)
    assert np.allclose(one.interior, many.interior, rtol=1e-9, atol=1e-9)


# -- butterfly working-set invariants --------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(stencil_1d())
def test_butterfly_requirements_invariants(spec):
    taps = spec.axis_taps(0)
    e, o, f = butterfly_requirements(taps, 4)
    fset = set(f)
    assert all(b % 2 == 0 for b in e + o + f)
    # every base's deinterleave pair is materializable
    for b in set(e) | set(o):
        assert b in fset and b + 4 in fset
    # every non-aligned fresh F has aligned parents in the set
    for x in f:
        if x % 4 != 0 and (x + 8) not in fset:
            parent = (x // 4) * 4
            assert parent in fset and parent + 4 in fset


# -- tiling invariants ---------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(1, 30), min_size=1, max_size=3),
       st.lists(st.integers(1, 10), min_size=1, max_size=3))
def test_partition_is_exact(shape, tile):
    assume(len(shape) == len(tile))
    part = partition(shape, tile)
    assert part.covers_exactly
    counts = np.zeros(shape, dtype=int)
    for t in part:
        counts[t.slices()] += 1
    assert np.all(counts == 1)


# -- boundary invariants ----------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.integers(2, 10), st.integers(1, 2), st.integers(0, 10**6))
def test_periodic_fill_idempotent(n, halo, seed):
    assume(halo <= n)
    g = Grid.random((n, n), halo, seed=seed)
    fill_halo(g, "periodic")
    snap = g.data.copy()
    fill_halo(g, "periodic")
    assert np.array_equal(g.data, snap)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6))
def test_periodic_sweep_translation_invariance(seed):
    """Periodic Jacobi commutes with cyclic shifts of the grid."""
    from repro.stencils import library
    spec = library.get("heat-1d")
    rng = np.random.default_rng(seed)
    v = rng.uniform(size=16)
    out = apply_steps(spec, Grid.from_array(v, 1), 1).interior
    shifted = apply_steps(spec, Grid.from_array(np.roll(v, 3), 1),
                          1).interior
    assert np.allclose(np.roll(out, 3), shifted, rtol=1e-12)
