"""Tests for the autotuning subsystem: the empirical tuner
(:mod:`repro.tune` — search-space legality, budget validation, database
robustness, end-to-end search with persistent winners, and the
planner/compile/service integration) and the analytic model-driven tuner
(:mod:`repro.tuning`, the last section)."""

import json
import os

import pytest

from repro.config import GENERIC_AVX2
from repro.core.cache import KernelCache
from repro.core.itm import fusable
from repro.core.planner import auto_fusion, plan
from repro.errors import TuneError
from repro.stencils import library
from repro.tune import (
    ENGINES,
    TuneBudget,
    TuneConfig,
    Tuner,
    TuningDB,
    TuningRecord,
    default_config,
    enumerate_space,
    workload_key,
)
from repro.tune.engine import select_top, trial_steps
from repro.schemes import SCHEMES
from repro.vectorize.redundancy import has_sharing
from repro.vectorize.temporal import legal_fusion

MACHINE = GENERIC_AVX2
HEAT1D = library.get("heat-1d")
HEAT2D = library.get("heat-2d")

#: a tiny budget every empirical test shares: at most a handful of
#: sub-millisecond trials
FAST = TuneBudget(max_trials=2, warmup=0, repeats=1, trial_timeout_s=30.0)


def fast_tuner(db=None):
    return Tuner(MACHINE, cache=KernelCache(None),
                 db=db if db is not None else TuningDB(None), budget=FAST)


class TestTuneConfig:
    def test_default_is_machine_engine(self):
        cfg = TuneConfig()
        assert cfg.engine == "machine" and cfg.is_plan_aware

    def test_rejects_unknown_engine(self):
        with pytest.raises(TuneError):
            TuneConfig(engine="gpu")

    def test_rejects_bad_fields(self):
        with pytest.raises(TuneError):
            TuneConfig(time_fusion=0)
        with pytest.raises(TuneError):
            TuneConfig(exec_backend="cuda")
        with pytest.raises(TuneError):
            TuneConfig(engine="tiled")  # tile_shape required
        with pytest.raises(TuneError):
            TuneConfig(engine="tiled", tile_shape=(0, 8))

    def test_as_dict_drops_irrelevant_fields(self):
        assert "exec_backend" not in TuneConfig(engine="numpy").as_dict()
        assert "tile_shape" not in TuneConfig(engine="machine").as_dict()
        tiled = TuneConfig(engine="tiled", tile_shape=(8, 8)).as_dict()
        assert "time_fusion" not in tiled and "use_sdf" not in tiled

    def test_round_trips_through_dict(self):
        for cfg in (TuneConfig(engine="machine", time_fusion=2,
                               exec_backend="interp"),
                    TuneConfig(engine="numpy", use_sdf=False),
                    TuneConfig(engine="tiled", tile_shape=(16, 16),
                               workers=2)):
            assert TuneConfig.from_dict(cfg.as_dict()) == cfg

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(TuneError):
            TuneConfig.from_dict({"engine": "numpy", "gpu": True})
        with pytest.raises(TuneError):
            TuneConfig.from_dict("numpy")

    def test_plan_kwargs_pin_defaults_for_non_plan_engines(self):
        cfg = TuneConfig(engine="tiled", tile_shape=(8, 8))
        assert cfg.plan_kwargs() == {"time_fusion": 1, "use_sdf": True,
                                     "backend": "auto"}
        assert cfg.plan_backend == "auto"

    def test_default_config_matches_planner_policy(self):
        for name in ("heat-1d", "heat-2d", "box-3d27p"):
            spec = library.get(name)
            cfg = default_config(spec, MACHINE)
            assert cfg.engine == "machine"
            assert cfg.time_fusion == auto_fusion(spec, MACHINE)


class TestTuneBudget:
    def test_validation(self):
        with pytest.raises(TuneError):
            TuneBudget(max_trials=0)
        with pytest.raises(TuneError):
            TuneBudget(max_seconds=0.0)
        with pytest.raises(TuneError):
            TuneBudget(repeats=0)
        with pytest.raises(TuneError):
            TuneBudget(warmup=-1)
        with pytest.raises(TuneError):
            TuneBudget(trial_timeout_s=0.0)
        with pytest.raises(TuneError):
            TuneBudget(patience=0)

    def test_trial_steps_round_up_to_fused_depth(self):
        cfg = TuneConfig(engine="machine", time_fusion=4)
        assert trial_steps(cfg, 3) == 4
        assert trial_steps(cfg, 4) == 4
        assert trial_steps(TuneConfig(engine="tiled", tile_shape=(8,)), 3) == 3


class TestSearchSpace:
    def test_every_point_is_legal(self):
        width = MACHINE.vector_elems
        for cfg in enumerate_space(HEAT2D, MACHINE, (64, 64)):
            if cfg.is_plan_aware:
                assert fusable(HEAT2D, cfg.time_fusion, width=width)
            elif cfg.engine == "shard":
                assert 2 <= cfg.shards <= 64  # partition fits the outer axis
                assert cfg.temporal_block >= 1
            elif cfg.engine == "scheme":
                assert cfg.scheme in SCHEMES
                if cfg.scheme == "temporal":
                    assert legal_fusion(HEAT2D, MACHINE, cfg.scheme_fusion)
                else:
                    assert cfg.scheme_fusion == 1
            else:
                assert all(t <= n for t, n in zip(cfg.tile_shape, (64, 64)))

    def test_space_covers_all_engines(self):
        fams = {c.engine for c in enumerate_space(HEAT2D, MACHINE, (64, 64))}
        assert fams == set(ENGINES)

    def test_narrow_x_drops_the_machine_engine(self):
        # below one 2W block the SIMD machine cannot run a sweep
        narrow = enumerate_space(HEAT2D, MACHINE,
                                 (64, 2 * MACHINE.vector_elems - 1))
        assert all(c.engine != "machine" for c in narrow)

    def test_infeasible_fusion_depths_are_rejected(self):
        star = library.get("star-1d7p")  # radius 3: 4-step ITM overflows W
        depths = {c.time_fusion
                  for c in enumerate_space(star, MACHINE, (4096,))
                  if c.is_plan_aware}
        assert 4 not in depths

    def test_engine_filter_and_validation(self):
        only = enumerate_space(HEAT2D, MACHINE, (64, 64),
                               engines=("numpy",))
        assert {c.engine for c in only} == {"numpy"}
        with pytest.raises(TuneError):
            enumerate_space(HEAT2D, MACHINE, (64, 64), engines=("gpu",))
        with pytest.raises(TuneError):
            enumerate_space(HEAT2D, MACHINE, (64, 64),
                            exec_backends=("cuda",))
        with pytest.raises(TuneError):
            enumerate_space(HEAT2D, MACHINE, (64,))  # rank mismatch

    def test_no_duplicate_configurations(self):
        space = enumerate_space(HEAT2D, MACHINE, (64, 64))
        keys = [repr(sorted(c.as_dict().items())) for c in space]
        assert len(keys) == len(set(keys))

    def test_select_top_stratifies_and_forces_baseline(self):
        space = enumerate_space(HEAT2D, MACHINE, (64, 64))
        ranked = [(c, float(len(space) - i)) for i, c in enumerate(space)]
        baseline = default_config(HEAT2D, MACHINE)
        picked = select_top(ranked, 4, always=[baseline])
        assert picked[0][0].as_dict() == baseline.as_dict()
        # stratified: more than one engine family among the top picks
        assert len({c.engine for c, _ in picked}) > 1


class TestSchemeSpace:
    """Regressions for the scheme-engine slice of the search space."""

    def scheme_configs(self, spec, shape, **kw):
        return [c for c in enumerate_space(spec, MACHINE, shape,
                                           engines=("scheme",), **kw)]

    def test_temporal_depths_bounded_by_radius(self):
        # star-1d7p has radius 3: at W=4 only depth 1 keeps the fused
        # footprint inside one unaligned-load window
        star = library.get("star-1d7p")
        depths = {c.scheme_fusion for c in self.scheme_configs(star, (4096,))
                  if c.scheme == "temporal"}
        assert depths == {1}
        # heat-1d (radius 1) admits the whole ladder
        depths = {c.scheme_fusion
                  for c in self.scheme_configs(HEAT1D, (4096,))
                  if c.scheme == "temporal"}
        assert depths == {1, 2, 4}

    def test_redundancy_skipped_without_sharing(self):
        # heat-2d is a star: no shifted column is shared by two rows, so
        # redundancy elimination cannot beat Reorg and is not enumerated
        assert not has_sharing(HEAT2D)
        assert all(c.scheme != "redundancy"
                   for c in self.scheme_configs(HEAT2D, (64, 64)))
        # a box shares every shifted column across all rows
        box = library.get("box-2d9p")
        assert has_sharing(box)
        assert any(c.scheme == "redundancy"
                   for c in self.scheme_configs(box, (64, 64)))

    def test_temporal_halo_must_fit_the_interior(self):
        # depth 4 needs a halo of 4 on the x axis; an interior of 3 rows
        # cannot source a periodic refill for it
        depths = {c.scheme_fusion
                  for c in self.scheme_configs(HEAT2D, (3, 64))
                  if c.scheme == "temporal"}
        assert 4 not in depths and 1 in depths

    def test_unknown_scheme_name_raises(self):
        with pytest.raises(TuneError, match="schemes"):
            enumerate_space(HEAT2D, MACHINE, (64, 64), schemes=("bogus",))

    def test_config_field_validation(self):
        with pytest.raises(TuneError, match="scheme"):
            TuneConfig(engine="scheme")  # name required
        with pytest.raises(TuneError, match="scheme"):
            TuneConfig(engine="scheme", scheme="warp")
        with pytest.raises(TuneError, match="scheme"):
            TuneConfig(engine="machine", scheme="temporal")
        with pytest.raises(TuneError, match="scheme_fusion"):
            TuneConfig(engine="numpy", scheme_fusion=2)

    def test_round_trip_and_label(self):
        cfg = TuneConfig(engine="scheme", scheme="temporal",
                         scheme_fusion=2, exec_backend="interp")
        assert TuneConfig.from_dict(cfg.as_dict()) == cfg
        assert "temporal" in cfg.label() and "s=2" in cfg.label()

    def test_tune_runs_scheme_trials(self):
        report = fast_tuner().tune(HEAT1D, (256,), steps=2,
                                   engines=("scheme",),
                                   exec_backends=("interp",))
        scheme_trials = [t for t in report.trials
                         if t.config.engine == "scheme"]
        assert scheme_trials and any(t.ok for t in scheme_trials)


class TestWorkloadKey:
    def test_any_input_change_changes_the_key(self):
        base = workload_key(HEAT2D, MACHINE, (64, 64))
        assert workload_key(HEAT2D, MACHINE, (64, 64)) == base
        assert workload_key(HEAT1D, MACHINE, (64,)) != base
        assert workload_key(HEAT2D, MACHINE, (64, 128)) != base
        assert workload_key(HEAT2D, MACHINE, (64, 64),
                            boundary="constant") != base


def make_record(key, **over):
    fields = dict(key=key, config=TuneConfig(engine="numpy"),
                  mstencil_s=10.0, seconds=0.5, steps=2)
    fields.update(over)
    return TuningRecord(**fields)


class TestTuningDB:
    """Robustness mirror of the kernel cache's disk-trust tests: entries
    are never trusted on read — anything corrupted or stale is discarded,
    deleted, and re-tuned."""

    def test_memory_roundtrip(self):
        db = TuningDB(None)
        rec = make_record("k1")
        db.put(rec)
        assert db.get("k1") == rec
        assert db.get("nope") is None
        assert db.stats_dict()["entries"] == 1

    def test_disk_roundtrip_across_instances(self, tmp_path):
        db = TuningDB(str(tmp_path))
        db.put(make_record("k1"))
        assert db.writes == 1
        fresh = TuningDB(str(tmp_path))
        rec = fresh.get("k1")
        assert rec is not None and rec.config.engine == "numpy"
        assert fresh.hits == 1

    def _entry_path(self, tmp_path, key):
        return os.path.join(str(tmp_path), f"{key}.json")

    def test_corrupted_json_discarded_and_deleted(self, tmp_path):
        db = TuningDB(str(tmp_path))
        path = self._entry_path(tmp_path, "k1")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        assert db.get("k1") is None
        assert db.discards == 1
        assert not os.path.exists(path)

    @pytest.mark.parametrize("mutate", [
        lambda d: {**d, "format": 999},          # stale format version
        lambda d: {**d, "key": "someone-else"},  # key does not echo address
        lambda d: {**d, "config": {"engine": "gpu"}},  # malformed config
        lambda d: {**d, "mstencil_s": -1.0},     # non-positive measurement
        lambda d: {**d, "seconds": "fast"},      # wrong type
        lambda d: [d],                           # not an object
    ])
    def test_stale_entries_discarded(self, tmp_path, mutate):
        db = TuningDB(str(tmp_path))
        db.put(make_record("k1"))
        path = self._entry_path(tmp_path, "k1")
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(mutate(payload), fh)
        fresh = TuningDB(str(tmp_path))  # bypass the in-memory copy
        assert fresh.get("k1") is None
        assert fresh.discards == 1
        assert not os.path.exists(path)

    def test_clear_removes_disk_entries(self, tmp_path):
        db = TuningDB(str(tmp_path))
        db.put(make_record("k1"))
        db.put(make_record("k2"))
        assert db.clear() == 2
        assert db.get("k1") is None


class TestTuningDBPromote:
    """The delta-file promotion path: concurrent writers merge instead
    of clobbering (the bug `put()`'s whole-file overwrite had)."""

    def test_promote_keeps_the_better_record(self):
        db = TuningDB(None)
        assert db.promote(make_record("k1", mstencil_s=10.0))
        assert not db.promote(make_record("k1", mstencil_s=5.0))
        assert db.promote(make_record("k1", mstencil_s=20.0))
        assert db.get("k1").mstencil_s == 20.0
        assert db.stats_dict()["promotions"] == 2

    def test_delta_beats_stale_base_and_vice_versa(self, tmp_path):
        db = TuningDB(str(tmp_path))
        db.put(make_record("k1", mstencil_s=10.0))
        db.promote(make_record("k1", mstencil_s=15.0))
        fresh = TuningDB(str(tmp_path))
        assert fresh.get("k1").mstencil_s == 15.0
        # a slower promotion never shadows a faster base
        db2 = TuningDB(str(tmp_path))
        assert not db2.promote(make_record("k1", mstencil_s=12.0))
        assert TuningDB(str(tmp_path)).get("k1").mstencil_s == 15.0

    def test_concurrent_writers_lose_no_updates(self, tmp_path):
        """The regression `put()` could not pass: N writer instances
        (one per simulated process) promoting the same and different
        keys concurrently — a fresh reader must see every key at its
        best-ever throughput."""
        import threading

        def writer(worker: int) -> None:
            mine = TuningDB(str(tmp_path))  # own instance = own process
            for i in range(8):
                mine.promote(make_record(
                    "shared", mstencil_s=1.0 + worker + i / 8.0))
                mine.promote(make_record(
                    f"own-{worker}", mstencil_s=float(worker + 1)))

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        fresh = TuningDB(str(tmp_path))
        assert fresh.get("shared").mstencil_s == 1.0 + 3 + 7 / 8.0
        for w in range(4):
            assert fresh.get(f"own-{w}").mstencil_s == float(w + 1)
        assert fresh.entries() == sorted(
            ["shared"] + [f"own-{w}" for w in range(4)])

    def test_entries_dedupe_deltas(self, tmp_path):
        db = TuningDB(str(tmp_path))
        db.put(make_record("k1", mstencil_s=10.0))
        db.promote(make_record("k1", mstencil_s=11.0))
        db.promote(make_record("k1", mstencil_s=12.0))
        assert db.entries() == ["k1"]
        assert db.clear() >= 3  # base + both deltas removed
        assert TuningDB(str(tmp_path)).get("k1") is None

    def test_corrupted_delta_discarded(self, tmp_path):
        from repro.tune.db import PROMOTE_INFIX
        db = TuningDB(str(tmp_path))
        db.put(make_record("k1", mstencil_s=10.0))
        path = os.path.join(str(tmp_path),
                            f"k1{PROMOTE_INFIX}999-deadbeef.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        fresh = TuningDB(str(tmp_path))
        assert fresh.get("k1").mstencil_s == 10.0
        assert fresh.discards == 1
        assert not os.path.exists(path)


class TestTunerBudgetOverrun:
    """One slow trial must not blow through ``max_seconds``: the tuner
    caps every trial at the *remaining* budget and records the overrun
    as a failed trial instead of hanging."""

    def test_slow_trial_is_cut_at_the_remaining_budget(self, monkeypatch):
        import time

        import repro.tune.tuner as tuner_mod
        from repro.tune.engine import Trial

        calls = {"n": 0}

        def slow_measure(spec, machine, config, shape, **kw):
            calls["n"] += 1
            if calls["n"] == 1:
                return Trial(config=config, seconds=0.01, mstencil_s=5.0,
                             steps=2, repeats=1)
            time.sleep(2.0)  # would overrun the whole budget
            return Trial(config=config, seconds=2.0, mstencil_s=99.0,
                         steps=2, repeats=1)

        monkeypatch.setattr(tuner_mod, "measure", slow_measure)
        tuner = Tuner(MACHINE, cache=KernelCache(None), db=TuningDB(None),
                      budget=TuneBudget(max_trials=4, max_seconds=0.4,
                                        warmup=0, repeats=1))
        t0 = time.perf_counter()
        report = tuner.tune(HEAT1D, (256,), steps=2)
        wall = time.perf_counter() - t0
        assert wall < 1.5  # the 2 s sleeper was abandoned, not awaited
        assert report.stopped == "budget"
        overruns = [t for t in report.trials
                    if t.timed_out and "overran" in (t.error or "")]
        assert overruns, "the overrun trial must be recorded as failed"
        assert not overruns[0].ok
        assert report.best.mstencil_s == 5.0  # sleeper never won


class TestTunerEndToEnd:
    def test_search_then_db_hit_with_zero_trials(self):
        tuner = fast_tuner()
        first = tuner.tune(HEAT1D, (256,), steps=2)
        assert not first.from_db
        assert len(first.trials) >= 1
        assert first.best.ok and first.best.mstencil_s > 0
        assert first.record is not None
        # the acceptance criterion: an identical workload is a database
        # hit and runs zero empirical trials
        second = tuner.tune(HEAT1D, (256,), steps=2)
        assert second.from_db
        assert len(second.trials) == 0
        assert second.best.config == first.best.config
        assert tuner.db.stats_dict()["hits"] == 1

    def test_baseline_always_gets_a_trial(self):
        report = fast_tuner().tune(HEAT1D, (256,), steps=2)
        base = default_config(HEAT1D, MACHINE).as_dict()
        assert any(t.config.as_dict() == base for t in report.trials)

    def test_force_retunes_over_a_stored_winner(self):
        tuner = fast_tuner()
        tuner.tune(HEAT1D, (256,), steps=2)
        again = tuner.tune(HEAT1D, (256,), steps=2, force=True)
        assert not again.from_db and len(again.trials) >= 1

    def test_corrupted_db_entry_triggers_retune(self, tmp_path):
        db = TuningDB(str(tmp_path))
        tuner = fast_tuner(db=db)
        report = tuner.tune(HEAT1D, (256,), steps=2)
        path = os.path.join(str(tmp_path), f"{report.key}.json")
        assert os.path.exists(path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("garbage")
        fresh = fast_tuner(db=TuningDB(str(tmp_path)))
        redo = fresh.tune(HEAT1D, (256,), steps=2)
        assert not redo.from_db and len(redo.trials) >= 1
        assert fresh.db.discards == 1
        # and the re-tuned winner is stored again, valid on disk
        assert TuningDB(str(tmp_path)).get(report.key) is not None

    def test_tuned_config_lookup_without_search(self):
        tuner = fast_tuner()
        assert tuner.tuned_config(HEAT1D, (256,)) is None
        report = tuner.tune(HEAT1D, (256,), steps=2)
        assert tuner.tuned_config(HEAT1D, (256,)) == report.best.config

    def test_boundary_is_part_of_the_workload(self):
        tuner = fast_tuner()
        tuner.tune(HEAT1D, (256,), steps=2)
        assert tuner.tuned_config(HEAT1D, (256,),
                                  boundary="constant") is None

    def test_rejects_bad_requests(self):
        tuner = fast_tuner()
        with pytest.raises(TuneError):
            tuner.tune(HEAT1D, (256,), steps=0)
        with pytest.raises(TuneError):
            tuner.tune(HEAT2D, (64,), steps=2)  # rank mismatch


class TestIntegration:
    def test_planner_applies_tuned_override(self):
        cfg = TuneConfig(engine="machine", time_fusion=2, use_sdf=False,
                         exec_backend="interp")
        p = plan(HEAT1D, MACHINE, tuned=cfg)
        assert p.time_fusion == 2
        assert p.use_sdf is False
        assert p.backend == "interp"

    def test_compile_kernel_applies_tuned_override(self):
        from repro.core import compile_kernel
        from repro.stencils.grid import Grid
        cfg = TuneConfig(engine="numpy", time_fusion=1, use_sdf=False)
        grid = Grid((256,), 16)
        kernel = compile_kernel(HEAT1D, MACHINE, grid, cache=False,
                                tuned=cfg)
        assert kernel.plan.time_fusion == 1
        assert kernel.plan.use_sdf is False

    def test_service_compile_many_tunes_and_reuses(self):
        from repro.service import CompileRequest, KernelService
        svc = KernelService(MACHINE, tune_budget=FAST)
        reqs = [CompileRequest(HEAT1D, (256,))]
        kernels = svc.compile_many(reqs, tune=True)
        assert len(kernels) == 1
        stats = svc.stats()
        assert stats["tuning_entries"] == 1
        assert stats["tuning_misses"] >= 1
        # the second batch is a pure database hit: no new trials, and the
        # tuned plan matches the stored winner
        svc.compile_many(reqs, tune=True)
        stats2 = svc.stats()
        assert stats2["tuning_hits"] >= 1
        assert stats2["tuning_entries"] == 1
        winner = svc.tuning_db.lookup(HEAT1D, MACHINE, (256,))
        assert winner is not None
        if winner.config.is_plan_aware:
            k = kernels[0]
            assert k.plan.time_fusion == winner.config.time_fusion
            assert k.plan.use_sdf == winner.config.use_sdf

    def test_service_untuned_compile_unchanged(self):
        from repro.service import CompileRequest, KernelService
        svc = KernelService(MACHINE)
        k, = svc.compile_many([CompileRequest(HEAT1D, (256,))])
        assert k.plan.time_fusion == auto_fusion(HEAT1D, MACHINE)
        assert svc.stats()["tuning_entries"] == 0


# ---------------------------------------------------------------------------
# the model-driven tuner (repro.tuning) — the analytic counterpart of the
# empirical search above, shared through candidate_tiles/candidate_depths
# (merged from the former tests/test_tuning.py)
# ---------------------------------------------------------------------------

from repro.config import AMD_EPYC_7V13  # noqa: E402
from repro.errors import ModelError  # noqa: E402
from repro.tuning import (  # noqa: E402
    TuneResult,
    autotune,
    candidate_depths,
    candidate_tiles,
)


class TestModelCandidates:
    def test_tiles_cover_axes(self):
        tiles = candidate_tiles((256, 1024))
        assert all(len(t) == 2 for t in tiles)
        assert (256, 1024) in tiles  # the untiled option
        assert all(t[0] <= 256 and t[1] <= 1024 for t in tiles)

    def test_depths_respect_tessellation_bound(self):
        spec = library.get("star-2d9p")  # r=2
        depths = candidate_depths(spec, (64, 64))
        assert depths[0] == 1
        assert max(depths) == 64 // 4
        assert all(2 * 2 * d <= 64 for d in depths)

    def test_depths_for_radius3(self):
        spec = library.get("star-1d7p")
        assert max(candidate_depths(spec, (60,))) == 10


class TestModelAutotune:
    @pytest.fixture(scope="class")
    def tuned(self):
        return autotune(library.get("box-2d9p"), AMD_EPYC_7V13,
                        problem_size=(2048, 2048), steps=100)

    def test_returns_ranked_candidates(self, tuned: TuneResult):
        gs = [c.gstencil_s for c in tuned.ranking]
        assert gs == sorted(gs, reverse=True)
        assert tuned.best is tuned.ranking[0]
        assert tuned.evaluated > 10

    def test_best_beats_untiled(self, tuned: TuneResult):
        untiled = next(c for c in tuned.ranking
                       if c.tile_shape == (2048, 2048) and c.time_depth == 1)
        assert tuned.best.gstencil_s >= untiled.gstencil_s

    def test_best_uses_time_tiling(self, tuned: TuneResult):
        # memory-bound stencils want temporal reuse
        assert tuned.best.time_depth > 1

    def test_summary_text(self, tuned: TuneResult):
        text = tuned.summary()
        assert "GStencil/s" in text and "Tb=" in text

    def test_infeasible_schemes_skipped(self):
        # t4-jigsaw cannot lower 2-D kernels; the tuner must survive
        result = autotune(library.get("heat-2d"), AMD_EPYC_7V13,
                          problem_size=(512, 512), steps=10,
                          schemes=("jigsaw", "t4-jigsaw"))
        assert all(c.scheme == "jigsaw" for c in result.ranking)

    def test_all_schemes_infeasible_raises(self):
        with pytest.raises(ModelError):
            autotune(library.get("heat-2d"), AMD_EPYC_7V13,
                     problem_size=(512, 512), steps=10,
                     schemes=("t4-jigsaw",))

    def test_validation(self):
        with pytest.raises(ModelError):
            autotune(library.get("heat-2d"), AMD_EPYC_7V13,
                     problem_size=(512,), steps=10)
        with pytest.raises(ModelError):
            autotune(library.get("heat-2d"), AMD_EPYC_7V13,
                     problem_size=(512, 512), steps=0)

    def test_top_truncates(self):
        result = autotune(library.get("heat-1d"), AMD_EPYC_7V13,
                          problem_size=(1 << 16,), steps=10, top=3)
        assert result.evaluated == 3

    def test_explicit_tiles(self):
        result = autotune(library.get("heat-1d"), AMD_EPYC_7V13,
                          problem_size=(1 << 16,), steps=10,
                          tiles=[(2048,)])
        assert all(c.tile_shape == (2048,) for c in result.ranking)
