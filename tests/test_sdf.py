"""Unit tests for SVD-based Dimension Flattening."""

import numpy as np
import pytest

from repro.errors import PlanError, SpecError
from repro.core.sdf import (
    Rank1Term,
    effective_rank,
    flatten_terms,
    matricize,
    reconstruct,
    reconstruction_error,
    rows_as_terms,
    shuffle_reduction,
    structured_terms,
)
from repro.stencils import library
from repro.stencils.spec import StencilSpec, box, star


class TestMatricize:
    def test_2d_equals_coefficient_matrix(self):
        spec = library.get("box-2d9p")
        outers, dxs, m = matricize(spec)
        assert np.allclose(m, spec.coefficient_matrix())
        assert dxs == [-1, 0, 1]
        assert outers == [(-1,), (0,), (1,)]

    def test_1d_single_row(self):
        outers, dxs, m = matricize(library.get("heat-1d"))
        assert outers == [()]
        assert m.shape == (1, 3)

    def test_3d_rows_are_zy_pairs(self):
        outers, dxs, m = matricize(library.get("box-3d27p"))
        assert len(outers) == 9
        assert m.shape == (9, 3)

    def test_star_zero_fill(self):
        _, _, m = matricize(library.get("heat-2d"))
        assert m[0, 0] == 0.0  # row (-1,) has no dx=-1 point
        assert m[0, 1] == pytest.approx(0.125)


class TestFlattenTerms:
    @pytest.mark.parametrize("kernel", library.names())
    def test_reconstruction_exact(self, kernel):
        spec = library.get(kernel)
        assert reconstruction_error(spec, flatten_terms(spec)) < 1e-12

    def test_separable_box_is_rank1(self):
        assert effective_rank(library.get("box-2d9p-separable")) == 1
        assert effective_rank(library.get("box-3d27p")) == 1

    def test_box2d9p_rank2(self):
        assert effective_rank(library.get("box-2d9p")) == 2

    def test_star_kernels_rank2(self):
        assert effective_rank(library.get("heat-2d")) == 2
        assert effective_rank(library.get("star-2d9p")) == 2

    def test_max_terms_enforced(self):
        with pytest.raises(PlanError):
            flatten_terms(library.get("box-2d9p"), max_terms=1)

    def test_zero_matrix_rejected(self):
        spec = StencilSpec("z", 2, ((0, 0),), (0.0,))
        with pytest.raises(PlanError):
            flatten_terms(spec)

    def test_terms_sorted_by_sigma(self):
        terms = flatten_terms(library.get("box-2d9p"))
        sigmas = [t.sigma for t in terms]
        assert sigmas == sorted(sigmas, reverse=True)


class TestStructuredTerms:
    @pytest.mark.parametrize("kernel", library.names())
    def test_reconstruction_exact(self, kernel):
        spec = library.get(kernel)
        assert reconstruction_error(spec, structured_terms(spec)) < 1e-12

    def test_box2d9p_matches_figure4(self):
        """Ring (rank-1, ±1 taps) + centre column — the paper's Figure 4."""
        terms = structured_terms(library.get("box-2d9p"))
        assert len(terms) == 2
        ring, column = terms
        assert sorted(ring.v) == [-1, 1]
        assert sorted(column.v) == [0]
        assert len(column.u) == 3

    def test_star_splits_row_and_column(self):
        terms = structured_terms(library.get("heat-2d"))
        assert len(terms) == 2
        row, column = terms
        assert len(row.u) == 1      # only the centre row has x-shifts
        assert sorted(row.v) == [-1, 1]
        assert sorted(column.v) == [0]
        assert len(column.u) == 3   # all three rows contribute at dx=0

    def test_separable_box_single_shifted_term(self):
        terms = structured_terms(library.get("box-3d27p"))
        shifted = [t for t in terms if any(d != 0 for d in t.v)]
        assert len(shifted) == 1

    def test_1d_defers_to_flatten(self):
        spec = library.get("star-1d5p")
        terms = structured_terms(spec)
        assert len(terms) == 1
        assert sorted(terms[0].v) == [-2, -1, 0, 1, 2]

    def test_column_only_stencil(self):
        spec = StencilSpec("col", 2, ((-1, 0), (0, 0), (1, 0)),
                           (0.25, 0.5, 0.25))
        terms = structured_terms(spec)
        assert len(terms) == 1
        assert sorted(terms[0].v) == [0]


class TestRowsAsTerms:
    def test_one_term_per_row(self):
        spec = library.get("heat-2d")
        terms = rows_as_terms(spec)
        assert len(terms) == 3
        assert all(len(t.u) == 1 for t in terms)
        assert reconstruction_error(spec, terms) < 1e-15

    def test_unit_row_weights(self):
        terms = rows_as_terms(library.get("box-2d9p"))
        assert all(list(t.u.values()) == [1.0] for t in terms)


class TestRank1Term:
    def test_dense(self):
        t = Rank1Term(u={(0,): 2.0}, v={-1: 0.5, 1: 0.5}, sigma=1.0)
        d = t.dense([(-1,), (0,), (1,)], [-1, 0, 1])
        assert d[1, 0] == 1.0 and d[1, 2] == 1.0
        assert d[0].sum() == 0.0

    def test_counts(self):
        t = Rank1Term(u={(0,): 1.0, (1,): 1.0}, v={0: 1.0}, sigma=1.0)
        assert t.rows == 2 and t.taps == 1


class TestShuffleReduction:
    def test_box2d9p_two_thirds(self):
        """§3.2: SDF removes 2/3 of the row-gathering shuffle work for
        Box-2D9P (3 shifted rows -> 1 shifted term)."""
        assert shuffle_reduction(library.get("box-2d9p")) == pytest.approx(2 / 3)

    def test_box3d27p_eight_ninths(self):
        """§3.2: 8/9 for Box-3D27P (9 shifted rows -> 1 shifted term)."""
        assert shuffle_reduction(library.get("box-3d27p")) == pytest.approx(8 / 9)

    def test_1d_no_reduction(self):
        assert shuffle_reduction(library.get("heat-1d")) == 0.0
