"""Unit tests for Iteration-based Temporal Merging."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.core.itm import (
    arithmetic_growth,
    convolution_power,
    fusable,
    merged_spec,
    traffic_reduction,
)
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid
from repro.stencils.reference import fill_halo  # re-exported? use boundary
from repro.stencils.spec import StencilSpec


class TestConvolutionPower:
    def test_power_one_identity(self):
        c = np.array([0.25, 0.5, 0.25])
        assert np.array_equal(convolution_power(c, 1), c)

    def test_1d3p_squared_matches_figure6_structure(self):
        """(1/4, 1/2, 1/4)^2 -> 5 taps (binomial over 4 halvings)."""
        c = np.array([0.25, 0.5, 0.25])
        sq = convolution_power(c, 2)
        assert np.allclose(sq, [1, 4, 6, 4, 1] / np.array(16.0))

    def test_figure6_three_step_coefficients(self):
        """Figure 6: 3-step fusion of 1D3P with coefficients (a2, a1, a2)
        gives beta weights: b1 = a1^3 + 6 a1 a2^2, b2 = 3 a1^2 a2 + 3 a2^3,
        b3 = 3 a1 a2^2, b4 = a2^3."""
        a1, a2 = 0.5, 0.25
        c = np.array([a2, a1, a2])
        cube = convolution_power(c, 3)
        assert cube.shape == (7,)
        assert cube[3] == pytest.approx(a1**3 + 6 * a1 * a2**2)  # beta1
        assert cube[2] == pytest.approx(3 * a1**2 * a2 + 3 * a2**3)  # beta2
        assert cube[1] == pytest.approx(3 * a1 * a2**2)  # beta3
        assert cube[0] == pytest.approx(a2**3)  # beta4

    def test_2d5p_squared_is_13_points(self):
        """Figure 5: ITM turns the 2D5P stencil into a 2D13P stencil."""
        spec = library.get("heat-2d")
        fused = merged_spec(spec, 2)
        assert fused.tag == "2D13P"

    def test_rejects_zero_power(self):
        with pytest.raises(PlanError):
            convolution_power(np.ones(3), 0)

    def test_power_associativity(self):
        c = np.array([0.1, 0.8, 0.1])
        p4 = convolution_power(c, 4)
        p22 = convolution_power(convolution_power(c, 2), 2)
        assert np.allclose(p4, p22)


class TestMergedSpec:
    def test_steps_one_returns_same(self):
        spec = library.get("heat-1d")
        assert merged_spec(spec, 1) is spec

    @pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d", "box-2d9p",
                                        "heat-3d"])
    @pytest.mark.parametrize("s", [2, 3])
    def test_radius_scales(self, kernel, s):
        spec = library.get(kernel)
        fused = merged_spec(spec, s)
        assert fused.radius == tuple(r * s for r in spec.radius)

    @pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d", "box-2d9p"])
    def test_symmetry_preserved(self, kernel):
        assert merged_spec(library.get(kernel), 2).is_symmetric

    def test_coefficient_sum_preserved(self):
        fused = merged_spec(library.get("box-2d9p"), 3)
        assert fused.coefficient_sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("kernel", ["heat-1d", "heat-2d", "heat-3d",
                                        "box-2d9p", "star-1d5p"])
    @pytest.mark.parametrize("s", [2, 3])
    def test_fusion_law(self, kernel, s):
        """One fused sweep == s base sweeps (periodic)."""
        spec = library.get(kernel)
        fused = merged_spec(spec, s)
        g = Grid.random((8,) * (spec.ndim - 1) + (16,), fused.radius, seed=s)
        one_fused = apply_steps(fused, g, 1)
        s_base = apply_steps(spec, g, s)
        assert np.allclose(one_fused.interior, s_base.interior, rtol=1e-12)

    def test_asymmetric_kernel_fusion_law(self):
        spec = StencilSpec("adv", 1, ((-1,), (0,), (1,)), (0.6, 0.3, 0.1))
        fused = merged_spec(spec, 2)
        g = Grid.random((16,), fused.radius, seed=9)
        assert np.allclose(
            apply_steps(fused, g, 1).interior,
            apply_steps(spec, g, 2).interior,
            rtol=1e-12,
        )


class TestPolicyHelpers:
    def test_fusable_width_bound(self):
        spec = library.get("star-1d5p")  # r=2
        assert fusable(spec, 2, width=4)
        assert not fusable(spec, 3, width=4)
        assert fusable(spec, 4, width=8)

    def test_fusable_rejects_nonpositive(self):
        assert not fusable(library.get("heat-1d"), 0, width=4)

    def test_traffic_reduction(self):
        assert traffic_reduction(library.get("heat-1d"), 4) == pytest.approx(0.25)
        with pytest.raises(PlanError):
            traffic_reduction(library.get("heat-1d"), 0)

    def test_arithmetic_growth_1d(self):
        """3-step 1D3P: 7 fused points vs 9 base applications -> < 1."""
        g = arithmetic_growth(library.get("heat-1d"), 3)
        assert g == pytest.approx(7 / 9)

    def test_arithmetic_growth_3d_box_exceeds_one(self):
        """The §4.3 effect: fusing the 3-D box grows the work."""
        g = arithmetic_growth(library.get("box-3d27p"), 2)
        assert g > 1.0
