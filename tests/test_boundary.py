"""Unit tests for halo filling."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.stencils.boundary import fill_halo
from repro.stencils.grid import Grid


class TestPeriodic:
    def test_1d_wrap(self):
        g = Grid((4,), 2)
        g.interior[...] = [1, 2, 3, 4]
        fill_halo(g, "periodic")
        assert np.array_equal(g.data, [3, 4, 1, 2, 3, 4, 1, 2])

    def test_2d_corners_composed(self):
        g = Grid((3, 3), 1)
        g.interior[...] = np.arange(9.0).reshape(3, 3)
        fill_halo(g, "periodic")
        # corner ghost = wrap of wrap: data[0,0] should be interior[-1,-1]
        assert g.data[0, 0] == g.interior[-1, -1]
        assert g.data[-1, -1] == g.interior[0, 0]
        assert g.data[0, -1] == g.interior[-1, 0]

    def test_matches_numpy_pad_wrap(self):
        rng = np.random.default_rng(3)
        g = Grid((5, 6), (2, 3))
        g.interior[...] = rng.uniform(size=(5, 6))
        fill_halo(g, "periodic")
        expect = np.pad(g.interior, ((2, 2), (3, 3)), mode="wrap")
        assert np.array_equal(g.data, expect)

    def test_3d_matches_numpy_pad_wrap(self):
        rng = np.random.default_rng(4)
        g = Grid((3, 4, 5), 1)
        g.interior[...] = rng.uniform(size=(3, 4, 5))
        fill_halo(g, "periodic")
        assert np.array_equal(g.data, np.pad(g.interior, 1, mode="wrap"))

    def test_rejects_halo_wider_than_interior(self):
        g = Grid((2,), 3)
        with pytest.raises(GridError):
            fill_halo(g, "periodic")

    def test_zero_halo_noop(self):
        g = Grid.random((4,), 0, seed=0)
        before = g.data.copy()
        fill_halo(g, "periodic")
        assert np.array_equal(g.data, before)

    def test_idempotent(self):
        g = Grid.random((6, 6), 2, seed=5)
        fill_halo(g, "periodic")
        snap = g.data.copy()
        fill_halo(g, "periodic")
        assert np.array_equal(g.data, snap)


class TestDirichlet:
    def test_constant_ghosts(self):
        g = Grid.random((4,), 2, seed=0)
        fill_halo(g, "dirichlet", value=7.0)
        assert np.all(g.data[:2] == 7.0)
        assert np.all(g.data[-2:] == 7.0)

    def test_interior_untouched(self):
        g = Grid.random((4, 4), 1, seed=0)
        before = g.interior.copy()
        fill_halo(g, "dirichlet", value=-1.0)
        assert np.array_equal(g.interior, before)

    def test_2d_entire_border(self):
        g = Grid((2, 2), 1)
        g.interior[...] = 1.0
        fill_halo(g, "dirichlet", value=9.0)
        border = g.data.copy()
        border[1:3, 1:3] = 9.0
        assert np.all(border == 9.0)


def test_unknown_mode_raises():
    with pytest.raises(GridError):
        fill_halo(Grid((4,), 1), "nope")


def test_returns_grid():
    g = Grid((4,), 1)
    assert fill_halo(g) is g
