"""Unit tests for halo filling and program/grid geometry checking."""

import numpy as np
import pytest

from repro.errors import GridError, VectorizeError
from repro.stencils.boundary import fill_halo
from repro.stencils.grid import Grid


class TestPeriodic:
    def test_1d_wrap(self):
        g = Grid((4,), 2)
        g.interior[...] = [1, 2, 3, 4]
        fill_halo(g, "periodic")
        assert np.array_equal(g.data, [3, 4, 1, 2, 3, 4, 1, 2])

    def test_2d_corners_composed(self):
        g = Grid((3, 3), 1)
        g.interior[...] = np.arange(9.0).reshape(3, 3)
        fill_halo(g, "periodic")
        # corner ghost = wrap of wrap: data[0,0] should be interior[-1,-1]
        assert g.data[0, 0] == g.interior[-1, -1]
        assert g.data[-1, -1] == g.interior[0, 0]
        assert g.data[0, -1] == g.interior[-1, 0]

    def test_matches_numpy_pad_wrap(self):
        rng = np.random.default_rng(3)
        g = Grid((5, 6), (2, 3))
        g.interior[...] = rng.uniform(size=(5, 6))
        fill_halo(g, "periodic")
        expect = np.pad(g.interior, ((2, 2), (3, 3)), mode="wrap")
        assert np.array_equal(g.data, expect)

    def test_3d_matches_numpy_pad_wrap(self):
        rng = np.random.default_rng(4)
        g = Grid((3, 4, 5), 1)
        g.interior[...] = rng.uniform(size=(3, 4, 5))
        fill_halo(g, "periodic")
        assert np.array_equal(g.data, np.pad(g.interior, 1, mode="wrap"))

    def test_rejects_halo_wider_than_interior(self):
        g = Grid((2,), 3)
        with pytest.raises(GridError):
            fill_halo(g, "periodic")

    def test_zero_halo_noop(self):
        g = Grid.random((4,), 0, seed=0)
        before = g.data.copy()
        fill_halo(g, "periodic")
        assert np.array_equal(g.data, before)

    def test_idempotent(self):
        g = Grid.random((6, 6), 2, seed=5)
        fill_halo(g, "periodic")
        snap = g.data.copy()
        fill_halo(g, "periodic")
        assert np.array_equal(g.data, snap)


class TestDirichlet:
    def test_constant_ghosts(self):
        g = Grid.random((4,), 2, seed=0)
        fill_halo(g, "dirichlet", value=7.0)
        assert np.all(g.data[:2] == 7.0)
        assert np.all(g.data[-2:] == 7.0)

    def test_interior_untouched(self):
        g = Grid.random((4, 4), 1, seed=0)
        before = g.interior.copy()
        fill_halo(g, "dirichlet", value=-1.0)
        assert np.array_equal(g.interior, before)

    def test_2d_entire_border(self):
        g = Grid((2, 2), 1)
        g.interior[...] = 1.0
        fill_halo(g, "dirichlet", value=9.0)
        border = g.data.copy()
        border[1:3, 1:3] = 9.0
        assert np.all(border == 9.0)


def test_unknown_mode_raises():
    with pytest.raises(GridError):
        fill_halo(Grid((4,), 1), "nope")


def test_returns_grid():
    g = Grid((4,), 1)
    assert fill_halo(g) is g


class TestHigherOrderHalos:
    """Boundary handling at the deep halos the new schemes need:
    temporal fusion multiplies the radius by the fused depth and
    redundancy rounds the x reach up to whole vectors."""

    def test_deep_periodic_wrap_matches_pad(self):
        rng = np.random.default_rng(9)
        g = Grid((6, 8), (4, 8))  # s=2 fused radius-2 star + vector x halo
        g.interior[...] = rng.uniform(size=(6, 8))
        fill_halo(g, "periodic")
        expect = np.pad(g.interior, ((4, 4), (8, 8)), mode="wrap")
        assert np.array_equal(g.data, expect)

    def test_deep_halo_wider_than_interior_rejected_per_axis(self):
        g = Grid((3, 16), (4, 4))  # outer axis: halo 4 > interior 3
        with pytest.raises(GridError):
            fill_halo(g, "periodic")

    def test_temporal_halo_wraps_bitwise_like_two_single_steps(self):
        # a depth-2 temporal sweep under periodic boundaries must see the
        # same ghost values as two single-step refills of the same field
        from repro.config import GENERIC_AVX2
        from repro.schemes import generate, scheme_halo
        from repro.stencils import apply_steps, library
        from repro.vectorize.driver import run_program
        spec = library.get("star-1d5p")  # radius 2, s=2 -> fused halo 4
        halo = scheme_halo("temporal", spec, GENERIC_AVX2, time_fusion=2)
        assert halo == (4,)
        grid = Grid.random((24,), halo, seed=3)
        prog = generate("temporal", spec, GENERIC_AVX2, grid, time_fusion=2)
        got = run_program(prog, grid, 2)
        ref = apply_steps(spec, grid, 2)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12,
                           atol=1e-14)


class TestCheckProgramGrid:
    """The geometry gate names the offending axis in every mismatch."""

    def make(self, kernel="heat-2d", shape=(8, 24)):
        from repro.config import GENERIC_AVX2
        from repro.schemes import generate, scheme_halo
        from repro.stencils import library
        spec = library.get(kernel)
        halo = scheme_halo("reorg", spec, GENERIC_AVX2)
        grid = Grid.random(shape, halo, seed=0)
        return generate("reorg", spec, GENERIC_AVX2, grid), grid, halo

    def test_rank_mismatch_names_missing_axis(self):
        from repro.vectorize.driver import check_program_grid
        prog, grid, halo = self.make()
        flat = Grid.random((24,), (halo[-1],), seed=0)
        with pytest.raises(VectorizeError) as exc:
            check_program_grid(prog, flat)
        msg = str(exc.value)
        assert "grid rank 1" in msg and "2 loop axes" in msg
        assert "missing the outer" in msg and "'y'" in msg

    def test_rank_mismatch_names_extra_axes(self):
        from repro.vectorize.driver import check_program_grid
        prog, grid, halo = self.make(kernel="heat-1d", shape=(24,))
        deep = Grid.random((4, 4, 24), (1, 1, halo[-1]), seed=0)
        with pytest.raises(VectorizeError) as exc:
            check_program_grid(prog, deep)
        assert "2 extra outer axes" in str(exc.value)

    def test_outer_extent_mismatch_names_loop_var(self):
        from repro.vectorize.driver import check_program_grid
        prog, grid, halo = self.make()
        other = Grid.random((10, 24), halo, seed=0)
        with pytest.raises(VectorizeError) as exc:
            check_program_grid(prog, other)
        msg = str(exc.value)
        assert "axis 'y'" in msg and "interior" in msg

    def test_x_halo_mismatch_names_loop_var(self):
        from repro.vectorize.driver import check_program_grid
        prog, grid, halo = self.make()
        other = Grid.random((8, 24), (halo[0], halo[-1] + 4), seed=0)
        with pytest.raises(VectorizeError) as exc:
            check_program_grid(prog, other)
        assert "axis 'x'" in str(exc.value)

    def test_matching_grid_passes(self):
        from repro.vectorize.driver import check_program_grid
        prog, grid, halo = self.make()
        check_program_grid(prog, grid)  # must not raise
