"""Tests for the cache-hierarchy/bandwidth model."""

import pytest

from repro.config import AMD_EPYC_7V13, GENERIC_AVX2, INTEL_XEON_6230R
from repro.errors import ModelError
from repro.machine.memory import (
    PER_CORE_DRAM_SHARE,
    WRITE_ALLOCATE_FACTOR,
    CacheHierarchyModel,
)

KB = 1024
MB = 1024 * KB


@pytest.fixture
def model():
    return CacheHierarchyModel(GENERIC_AVX2)


class TestFeedingLevel:
    def test_tiers(self, model):
        assert model.feeding_level(16 * KB).name == "L1"
        assert model.feeding_level(256 * KB).name == "L2"
        assert model.feeding_level(4 * MB).name == "L3"
        assert model.feeding_level(64 * MB) is None  # DRAM

    def test_global_working_set_divided_among_cores(self, model):
        # 128 KB / 8 cores = 16 KB per core -> L1
        assert model.feeding_level(128 * KB, cores=8).name == "L1"
        assert model.feeding_level(128 * KB, cores=1).name == "L2"

    def test_per_core_tiles_multiply_for_shared_levels(self, model):
        # 4 MB per-core tile x 8 cores = 32 MB > 16 MB L3 -> DRAM
        assert model.feeding_level(4 * MB, cores=8, per_core=True) is None
        assert model.feeding_level(4 * MB, cores=1, per_core=True).name == "L3"

    def test_rejects_nonpositive(self, model):
        with pytest.raises(ModelError):
            model.feeding_level(0)
        with pytest.raises(ModelError):
            model.feeding_level(1024, cores=0)


class TestBandwidth:
    def test_private_levels_scale_linearly(self, model):
        l1 = model.feeding_level(16 * KB)
        assert model.bandwidth(l1, 4) == pytest.approx(4 * l1.bandwidth_gbs)

    def test_shared_level_capped(self, model):
        l3 = model.feeding_level(4 * MB)
        assert model.bandwidth(l3, 8) == pytest.approx(
            min(8 * l3.bandwidth_gbs, l3.total_bandwidth_gbs))

    def test_single_core_dram_share(self, model):
        bw1 = model.bandwidth(None, 1)
        assert bw1 == pytest.approx(
            GENERIC_AVX2.dram_bandwidth_gbs * PER_CORE_DRAM_SHARE)

    def test_dram_saturates(self, model):
        full = model.bandwidth(None, GENERIC_AVX2.total_cores)
        assert full <= GENERIC_AVX2.dram_bandwidth_gbs

    def test_hierarchy_is_monotone_per_core(self):
        """Each deeper level must be slower for one core — otherwise the
        Figure-9 stairs would invert."""
        for m in (GENERIC_AVX2, AMD_EPYC_7V13, INTEL_XEON_6230R):
            model = CacheHierarchyModel(m)
            bws = [model.bandwidth(lvl, 1) for lvl in m.caches]
            bws.append(model.bandwidth(None, 1))
            assert bws == sorted(bws, reverse=True), m.name


class TestSweepTime:
    def test_cached_store_no_write_allocate(self, model):
        est = model.sweep_time(bytes_loaded=1e6, bytes_stored=1e6,
                               working_set_bytes=16 * KB)
        assert est.bytes_moved == pytest.approx(2e6)

    def test_dram_store_pays_write_allocate(self, model):
        est = model.sweep_time(bytes_loaded=1e6, bytes_stored=1e6,
                               working_set_bytes=64 * MB)
        assert est.level == "DRAM"
        assert est.bytes_moved == pytest.approx(
            1e6 + WRITE_ALLOCATE_FACTOR * 1e6)

    def test_numa_penalty_only_on_dram(self):
        model = CacheHierarchyModel(INTEL_XEON_6230R)
        kwargs = dict(bytes_loaded=1e9, bytes_stored=0.0, cores=4)
        near = model.sweep_time(working_set_bytes=16 * KB,
                                numa_remote_fraction=0.5, **kwargs)
        near0 = model.sweep_time(working_set_bytes=16 * KB,
                                 numa_remote_fraction=0.0, **kwargs)
        assert near.time_s == pytest.approx(near0.time_s)
        far = model.sweep_time(working_set_bytes=1e9,
                               numa_remote_fraction=0.5, **kwargs)
        far0 = model.sweep_time(working_set_bytes=1e9,
                                numa_remote_fraction=0.0, **kwargs)
        assert far.time_s > far0.time_s

    def test_more_traffic_more_time(self, model):
        t1 = model.sweep_time(bytes_loaded=1e6, bytes_stored=0,
                              working_set_bytes=16 * KB).time_s
        t2 = model.sweep_time(bytes_loaded=2e6, bytes_stored=0,
                              working_set_bytes=16 * KB).time_s
        assert t2 == pytest.approx(2 * t1)

    def test_negative_traffic_rejected(self, model):
        with pytest.raises(ModelError):
            model.sweep_time(bytes_loaded=-1, bytes_stored=0,
                             working_set_bytes=1024)

    def test_estimate_exposes_level_and_bandwidth(self, model):
        est = model.sweep_time(bytes_loaded=1e6, bytes_stored=0,
                               working_set_bytes=16 * KB)
        assert est.level == "L1"
        assert est.gbs == est.bandwidth_gbs > 0
