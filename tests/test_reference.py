"""Unit tests for the reference implementations (ground truth)."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.stencils import apply_numpy, apply_scalar, apply_steps, library
from repro.stencils.boundary import fill_halo
from repro.stencils.grid import Grid
from repro.stencils.reference import required_halo
from repro.stencils.spec import star


@pytest.mark.parametrize("kernel", library.names())
def test_numpy_matches_scalar(kernel):
    spec = library.get(kernel)
    g = Grid.random((6,) * spec.ndim, spec.radius, seed=2)
    fill_halo(g)
    a = apply_numpy(spec, g)
    b = apply_scalar(spec, g)
    assert np.allclose(a.interior, b.interior, rtol=1e-13)


def test_identity_stencil_is_identity():
    spec = star(1, 1, center=1.0, arm=[0.0])
    g = Grid.random((16,), 1, seed=0)
    fill_halo(g)
    out = apply_numpy(spec, g)
    assert np.allclose(out.interior, g.interior)


def test_shift_stencil_moves_data():
    from repro.stencils.spec import StencilSpec
    spec = StencilSpec("shift", 1, ((1,),), (1.0,))
    g = Grid((4,), 1)
    g.interior[...] = [1, 2, 3, 4]
    fill_halo(g, "periodic")
    out = apply_numpy(spec, g)
    assert np.array_equal(out.interior, [2, 3, 4, 1])


def test_apply_requires_halo():
    spec = library.get("star-1d5p")  # radius 2
    g = Grid((16,), 1)
    with pytest.raises(GridError):
        apply_numpy(spec, g)


def test_apply_requires_matching_ndim():
    spec = library.get("heat-2d")
    with pytest.raises(GridError):
        apply_numpy(spec, Grid((16,), 2))


def test_apply_reuses_out_grid():
    spec = library.get("heat-1d")
    g = Grid.random((8,), 1, seed=1)
    fill_halo(g)
    out = g.like()
    res = apply_numpy(spec, g, out)
    assert res is out


class TestApplySteps:
    def test_zero_steps_copies(self):
        spec = library.get("heat-1d")
        g = Grid.random((8,), 1, seed=1)
        out = apply_steps(spec, g, 0)
        assert out is not g
        assert np.array_equal(out.interior, g.interior)

    def test_negative_steps_rejected(self):
        spec = library.get("heat-1d")
        with pytest.raises(GridError):
            apply_steps(spec, Grid((8,), 1), -1)

    def test_steps_compose(self):
        spec = library.get("heat-2d")
        g = Grid.random((8, 8), 1, seed=3)
        once_then_twice = apply_steps(spec, apply_steps(spec, g, 1), 2)
        three = apply_steps(spec, g, 3)
        assert np.allclose(once_then_twice.interior, three.interior,
                           rtol=1e-13)

    def test_conservation_under_periodic(self):
        # coefficients sum to 1 => periodic sweeps conserve the total
        spec = library.get("box-2d9p")
        g = Grid.random((8, 8), 1, seed=4)
        out = apply_steps(spec, g, 5)
        assert out.interior.sum() == pytest.approx(g.interior.sum())

    def test_smoothing_contracts_range(self):
        spec = library.get("heat-1d")
        g = Grid.random((32,), 1, seed=5)
        out = apply_steps(spec, g, 10)
        assert np.ptp(out.interior) < np.ptp(g.interior)

    def test_dirichlet_differs_from_periodic(self):
        spec = library.get("heat-1d")
        g = Grid.random((8,), 1, seed=6)
        p = apply_steps(spec, g, 3, boundary="periodic")
        d = apply_steps(spec, g, 3, boundary="dirichlet", value=0.0)
        assert not np.allclose(p.interior, d.interior)

    def test_input_not_modified(self):
        spec = library.get("heat-1d")
        g = Grid.random((8,), 1, seed=7)
        before = g.data.copy()
        apply_steps(spec, g, 2)
        assert np.array_equal(g.data, before)


def test_required_halo_is_radius():
    assert required_halo(library.get("star-2d9p")) == (2, 2)
