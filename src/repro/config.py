"""Machine configurations used throughout the reproduction.

The paper evaluates on two machines (§4.1):

* a dual-socket **Intel Xeon Gold 6230R** (2.10 GHz, 52 physical cores,
  32 KB L1 / 1 MB L2 per core, 35.75 MB shared L3, AVX2), and
* an Azure **AMD EPYC 7V13** node (2.45 GHz, 24 physical cores,
  32 KB L1 / 512 KB L2 per core, 96 MB shared L3, AVX2).

The paper's §4.1 quotes the AMD caches as aggregate figures
(768 KB L1 = 24 x 32 KB, 12 MB L2 = 24 x 512 KB); we store per-core sizes.

A :class:`MachineConfig` carries everything the analytic performance model
(:mod:`repro.machine.pipeline`, :mod:`repro.machine.memory`,
:mod:`repro.parallel.simulator`) needs: clock, SIMD geometry, execution-port
counts, the cache hierarchy with per-level bandwidths, and multi-socket /
NUMA parameters.  Bandwidth numbers are representative figures for these
microarchitectures; the reproduction targets *shape* fidelity (which method
wins, where size crossovers fall), not absolute GStencil/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from .errors import ModelError

#: bytes per 128-bit SIMD lane (the finest-grained unit the paper swizzles)
LANE_BYTES = 16


@dataclass(frozen=True)
class CacheLevel:
    """One level of the data-cache hierarchy.

    ``size_bytes`` is the capacity *visible to one core* (private levels) or
    the full shared capacity (``shared=True``).  ``bandwidth_gbs`` is the
    sustainable per-core bandwidth out of this level;
    ``total_bandwidth_gbs`` caps the aggregate draw of all cores for shared
    levels (``None`` means it scales linearly with cores).
    """

    name: str
    size_bytes: int
    bandwidth_gbs: float
    shared: bool = False
    total_bandwidth_gbs: float | None = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ModelError(f"cache level {self.name!r}: size must be positive")
        if self.bandwidth_gbs <= 0:
            raise ModelError(f"cache level {self.name!r}: bandwidth must be positive")

    def aggregate_bandwidth(self, cores: int) -> float:
        """Bandwidth available when ``cores`` cores pull concurrently."""
        linear = self.bandwidth_gbs * cores
        if self.total_bandwidth_gbs is None:
            return linear
        return min(linear, self.total_bandwidth_gbs)


@dataclass(frozen=True)
class MachineConfig:
    """A CPU description sufficient for the Jigsaw cost model."""

    name: str
    isa: str  # "sse" | "avx2" | "avx512"
    freq_ghz: float
    vector_bits: int
    cores_per_socket: int
    sockets: int
    #: execution-port widths (instructions issued per cycle)
    fma_ports: int = 2
    inlane_shuffle_ports: int = 2  # vshufpd sustains 0.5 CPI (Table 1)
    crosslane_shuffle_ports: int = 1  # vpermpd/vperm2f128: 1 CPI (Table 1)
    load_ports: int = 2
    store_ports: int = 1
    #: architectural vector registers (16 for SSE/AVX2 x86-64, 32 for
    #: AVX-512) — the spill model's budget
    vector_registers: int = 16
    #: multi-socket behaviour
    numa_remote_penalty: float = 0.35  # fractional slowdown of remote traffic
    sync_overhead_us: float = 3.0  # per parallel phase barrier
    caches: Tuple[CacheLevel, ...] = field(default_factory=tuple)
    dram_bandwidth_gbs: float = 100.0  # per socket
    element_bytes: int = 8  # float64 throughout, as in the paper

    def __post_init__(self) -> None:
        if self.vector_bits % 128 != 0:
            raise ModelError("vector_bits must be a multiple of the 128-bit lane")
        if self.freq_ghz <= 0:
            raise ModelError("freq_ghz must be positive")
        if self.cores_per_socket <= 0 or self.sockets <= 0:
            raise ModelError("core/socket counts must be positive")

    # -- SIMD geometry -----------------------------------------------------
    @property
    def vector_elems(self) -> int:
        """Elements (float64) per vector register."""
        return self.vector_bits // (8 * self.element_bytes)

    @property
    def lanes(self) -> int:
        """Number of 128-bit lanes per vector register."""
        return self.vector_bits // (8 * LANE_BYTES)

    @property
    def elems_per_lane(self) -> int:
        return LANE_BYTES // self.element_bytes

    @property
    def total_cores(self) -> int:
        return self.cores_per_socket * self.sockets

    @property
    def vector_bytes(self) -> int:
        return self.vector_bits // 8

    def total_dram_bandwidth(self, cores: int | None = None) -> float:
        """Aggregate DRAM bandwidth reachable by ``cores`` cores (GB/s)."""
        cores = self.total_cores if cores is None else cores
        sockets_used = min(self.sockets, max(1, -(-cores // self.cores_per_socket)))
        return self.dram_bandwidth_gbs * sockets_used

    def with_vector_bits(self, bits: int) -> "MachineConfig":
        """A copy of this machine with a different SIMD width (for AVX-512
        what-if studies, §4.6)."""
        return replace(self, vector_bits=bits)


def _intel_xeon_6230r() -> MachineConfig:
    return MachineConfig(
        name="intel-xeon-6230r",
        isa="avx2",
        freq_ghz=2.10,
        vector_bits=256,
        cores_per_socket=26,
        sockets=2,
        numa_remote_penalty=0.35,
        sync_overhead_us=3.0,
        caches=(
            CacheLevel("L1", 32 * 1024, 130.0),
            CacheLevel("L2", 1024 * 1024, 65.0),
            CacheLevel("L3", int(35.75 * 1024 * 1024), 38.0, shared=True,
                       total_bandwidth_gbs=320.0),
        ),
        dram_bandwidth_gbs=105.0,  # six DDR4-2933 channels per socket
    )


def _amd_epyc_7v13() -> MachineConfig:
    return MachineConfig(
        name="amd-epyc-7v13",
        isa="avx2",
        freq_ghz=2.45,
        vector_bits=256,
        cores_per_socket=24,
        sockets=1,
        numa_remote_penalty=0.0,
        sync_overhead_us=2.0,
        caches=(
            CacheLevel("L1", 32 * 1024, 150.0),
            CacheLevel("L2", 512 * 1024, 75.0),
            CacheLevel("L3", 96 * 1024 * 1024, 45.0, shared=True,
                       total_bandwidth_gbs=420.0),
        ),
        dram_bandwidth_gbs=180.0,
    )


def _generic(bits: int, name: str) -> MachineConfig:
    return MachineConfig(
        name=name,
        isa={128: "sse", 256: "avx2", 512: "avx512"}[bits],
        freq_ghz=2.0,
        vector_bits=bits,
        cores_per_socket=8,
        sockets=1,
        vector_registers=32 if bits == 512 else 16,
        caches=(
            CacheLevel("L1", 32 * 1024, 120.0),
            CacheLevel("L2", 512 * 1024, 60.0),
            CacheLevel("L3", 16 * 1024 * 1024, 30.0, shared=True,
                       total_bandwidth_gbs=200.0),
        ),
        dram_bandwidth_gbs=80.0,
    )


INTEL_XEON_6230R = _intel_xeon_6230r()
AMD_EPYC_7V13 = _amd_epyc_7v13()
GENERIC_SSE = _generic(128, "generic-sse")
GENERIC_AVX2 = _generic(256, "generic-avx2")
GENERIC_AVX512 = _generic(512, "generic-avx512")

#: single-precision variants: 4-byte elements, 4 per 128-bit lane.  The
#: ps-family shuffle ISA (vshufps/vpermilps/vunpck*ps) replaces the pd
#: family; the butterfly algebra is identical (DESIGN.md / docs/isa.md).
GENERIC_SSE_F32 = replace(GENERIC_SSE, element_bytes=4,
                          name="generic-sse-f32")
GENERIC_AVX2_F32 = replace(GENERIC_AVX2, element_bytes=4,
                           name="generic-avx2-f32")
GENERIC_AVX512_F32 = replace(GENERIC_AVX512, element_bytes=4,
                             name="generic-avx512-f32")

_REGISTRY: Dict[str, MachineConfig] = {
    m.name: m
    for m in (INTEL_XEON_6230R, AMD_EPYC_7V13, GENERIC_SSE, GENERIC_AVX2,
              GENERIC_AVX512, GENERIC_SSE_F32, GENERIC_AVX2_F32,
              GENERIC_AVX512_F32)
}

#: The two machines the paper evaluates on (§4.1).
PAPER_MACHINES: Tuple[MachineConfig, MachineConfig] = (AMD_EPYC_7V13,
                                                       INTEL_XEON_6230R)


def get_machine(name: str) -> MachineConfig:
    """Look up a machine configuration by name.

    Raises :class:`~repro.errors.ModelError` for unknown names, listing the
    available ones.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ModelError(
            f"unknown machine {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def register_machine(config: MachineConfig, *, overwrite: bool = False) -> None:
    """Register a custom machine so experiment runners can refer to it by
    name."""
    if config.name in _REGISTRY and not overwrite:
        raise ModelError(f"machine {config.name!r} already registered")
    _REGISTRY[config.name] = config
