"""Table 3 — the stencil benchmark configurations.

Re-prints the kernel set with the properties derived from our specs
(points, dimensionality, shape, order) so drift between the library and
the paper's configuration is caught by tests.
"""

from __future__ import annotations

from typing import List

from ..analysis.report import render_table
from ..stencils import library
from ..stencils.library import TABLE3


def data() -> List[dict]:
    rows = []
    for cfg in TABLE3:
        spec = cfg.spec
        rows.append({
            "kernel": cfg.kernel,
            "points": spec.npoints,
            "shape": "star" if spec.is_star else "box",
            "order": spec.order,
            "problem_size": cfg.problem_size,
            "time_steps": cfg.time_steps,
            "tile": cfg.tile_shape,
            "time_depth": cfg.time_depth,
        })
    return rows


def run() -> str:
    rows = [
        [d["kernel"], d["points"], d["shape"], d["order"],
         "x".join(map(str, d["problem_size"])), d["time_steps"],
         "x".join(map(str, d["tile"])), d["time_depth"]]
        for d in data()
    ]
    return render_table(
        ["kernel", "points", "shape", "order", "size", "steps",
         "tile", "Tb"],
        rows,
    )
