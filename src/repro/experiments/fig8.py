"""Figure 8 — the impact of SDF on register data movement vs computation.

Compares the hotspot breakdown (per-vector execution-port time by
category, plus the per-opcode "events" list) of Box-2D9P lowered without
SDF (per-row butterflies) and with SDF.  The paper's VTune measurement
reports SDF cutting shuffle time 61.58% and computation 20.75%; our
simulated counterpart reproduces the direction and rough magnitude.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..analysis.hotspots import sdf_reduction
from ..analysis.report import render_dict, render_table
from ..config import PAPER_MACHINES, MachineConfig
from ..stencils import library

KERNEL = "box-2d9p"
PAPER_SHUFFLE_REDUCTION = 0.6158
PAPER_COMPUTE_REDUCTION = 0.2075


def data(machines: Sequence[MachineConfig] = PAPER_MACHINES) -> Dict[str, dict]:
    spec = library.get(KERNEL)
    out = {}
    for m in machines:
        before, after, red = sdf_reduction(spec, m)
        out[m.name] = {"before": before, "after": after, "reduction": red}
    return out


def run(machines: Sequence[MachineConfig] = PAPER_MACHINES) -> str:
    blocks = []
    for mname, d in data(machines).items():
        before, after, red = d["before"], d["after"], d["reduction"]
        rows = [
            ["shuffle", before.shuffle_cycles, after.shuffle_cycles],
            ["compute", before.compute_cycles, after.compute_cycles],
            ["load", before.load_cycles, after.load_cycles],
            ["store", before.store_cycles, after.store_cycles],
            ["total", before.total_cycles, after.total_cycles],
        ]
        blocks.append(render_table(
            [f"[{mname}] category", "pre-SDF cyc/vec", "post-SDF cyc/vec"],
            rows,
        ))
        blocks.append(render_dict(f"[{mname}] reductions", {
            "shuffle": f"{red['shuffle'] * 100:.1f}% (paper "
                       f"{PAPER_SHUFFLE_REDUCTION * 100:.1f}%)",
            "compute": f"{red['compute'] * 100:.1f}% (paper "
                       f"{PAPER_COMPUTE_REDUCTION * 100:.1f}%)",
        }))
        events = [[op, t] for op, t in after.events]
        blocks.append(render_table(
            [f"[{mname}] post-SDF hotspot events", "cycles/vector"], events,
        ))
    return "\n\n".join(blocks)
