"""Table 1 — latency/throughput of cross-lane vs in-lane shuffles.

Prints the cost-table entries the model uses for the four instructions the
paper measures, per machine.  The asymmetry (cross-lane 3 cycles / 1 CPI
vs in-lane 1 cycle / 0.5-1 CPI) is the architectural fact LBV exploits.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import render_table
from ..config import PAPER_MACHINES, MachineConfig
from ..machine.costs import cost_table_for
from ..machine.isa import Op, classify

INSTRUCTIONS = (Op.PERMPD, Op.PERM2F128, Op.SHUFPD, Op.PERMILPD)

#: the paper's published (latency, CPI) for Alder/Ice Lake
PAPER_TABLE1: Dict[str, tuple] = {
    "vpermpd": (3, 1.0),
    "vperm2f128": (3, 1.0),
    "vshufpd": (1, 0.5),
    "vpermilpd": (1, 1.0),
}


def data(machines=PAPER_MACHINES) -> List[dict]:
    rows = []
    for m in machines:
        table = cost_table_for(m)
        for op in INSTRUCTIONS:
            rows.append({
                "machine": m.name,
                "instruction": op.value,
                "class": classify(op).value,
                "latency": table.latency(op),
                "cpi": table.cpi(op),
                "paper_latency": PAPER_TABLE1[op.value][0],
                "paper_cpi": PAPER_TABLE1[op.value][1],
            })
    return rows


def run(machines=PAPER_MACHINES) -> str:
    rows = [
        [d["machine"], d["instruction"], d["class"], d["latency"], d["cpi"],
         d["paper_latency"], d["paper_cpi"]]
        for d in data(machines)
    ]
    return render_table(
        ["machine", "instruction", "class", "latency", "CPI",
         "paper lat", "paper CPI"],
        rows,
    )
