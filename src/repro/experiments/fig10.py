"""Figure 10 — parallel cache-blocked comparison against SDSL, Pluto,
Tessellation, and Folding.

All eight Table-3 kernels, all cores, Table-3 problem sizes and blocking;
methods: the two DSL baselines (cost-modelled, :mod:`repro.vectorize.dsl`),
Tessellation and Folding (their in-core streams + tessellating tiling),
Jigsaw, T-Jigsaw, and the 4-step "T-4 Jigsaw" on Heat-1D.  Reported like
the paper: absolute GStencil/s (left column) and speedup relative to the
slowest method of each kernel group (right column; SDSL in the paper's
runs and ours).

Headline numbers to compare with §4.4: T-Jigsaw's mean speedup over the
baseline methods ≈ 2.15x (AMD) / 2.47x (Intel); box kernels benefit more
than stars; T-4 Jigsaw ≈ 3x on Heat-1D.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis.metrics import geomean, relative_speedups
from ..analysis.report import render_table
from ..config import PAPER_MACHINES, MachineConfig
from ..parallel.simulator import MulticoreModel, ParallelSetup
from ..schemes import model_cost
from ..stencils import library
from ..stencils.library import TABLE3, KernelConfig
from ..vectorize.dsl import DSL_BASELINES

#: (label, scheme-registry name or dsl name, is_dsl)
METHODS: Tuple[Tuple[str, str, bool], ...] = (
    ("SDSL", "sdsl", True),
    ("Pluto", "pluto", True),
    ("Tessellation", "tess", False),
    ("Folding", "folding", False),
    ("Jigsaw", "jigsaw", False),
    ("T-Jigsaw", "t-jigsaw", False),
)


def _methods_for(cfg: KernelConfig) -> List[Tuple[str, str, bool]]:
    methods = list(METHODS)
    if cfg.kernel == "heat-1d":
        # §4.4: the 4-step fusion is deployed on the 1D-Heat kernel only
        # (deeper fusion exceeds the butterfly window for higher orders).
        methods.append(("T-4 Jigsaw", "t4-jigsaw", False))
    return methods


def data(
    machines: Sequence[MachineConfig] = PAPER_MACHINES,
    configs: Sequence[KernelConfig] = TABLE3,
) -> Dict[str, dict]:
    out: Dict[str, dict] = {}
    for m in machines:
        model = MulticoreModel(m)
        cores = m.total_cores
        per_kernel: Dict[str, Dict[str, float]] = {}
        for cfg in configs:
            spec = cfg.spec
            results: Dict[str, float] = {}
            for label, name, is_dsl in _methods_for(cfg):
                if is_dsl:
                    dsl = next(b for b in DSL_BASELINES if b.name == name)
                    cost = model_cost(dsl.base_scheme, spec, m)
                    setup = ParallelSetup(
                        tile_shape=cfg.tile_shape,
                        time_depth=min(dsl.time_depth, cfg.time_depth),
                    )
                    eff = dsl.efficiency
                else:
                    cost = model_cost(name, spec, m)
                    setup = ParallelSetup(tile_shape=cfg.tile_shape,
                                          time_depth=cfg.time_depth)
                    eff = 1.0
                res = model.estimate(cost, spec, points=cfg.grid_points(),
                                     steps=cfg.time_steps, cores=cores,
                                     setup=setup, efficiency=eff)
                results[label] = res.gstencil_s
            per_kernel[cfg.kernel] = results
        # headline: T-Jigsaw speedup over each baseline, geomean across
        # kernels and baselines (the paper's "average speedup").
        ratios = []
        for results in per_kernel.values():
            best = max(results.get(lab, 0.0)
                       for lab in ("Jigsaw", "T-Jigsaw", "T-4 Jigsaw"))
            for label in ("SDSL", "Pluto", "Tessellation", "Folding"):
                ratios.append(best / results[label])
        out[m.name] = {
            "per_kernel": per_kernel,
            "mean_speedup": geomean(ratios),
        }
    return out


def run(
    machines: Sequence[MachineConfig] = PAPER_MACHINES,
    configs: Sequence[KernelConfig] = TABLE3,
) -> str:
    blocks: List[str] = []
    for mname, d in data(machines, configs).items():
        labels = [lab for lab, _, _ in METHODS] + ["T-4 Jigsaw"]
        rows_abs, rows_rel = [], []
        for kernel, results in d["per_kernel"].items():
            rel = relative_speedups(results)
            rows_abs.append([kernel] + [results.get(lab, "-") for lab in labels])
            rows_rel.append([kernel] + [
                f"{rel[lab]:.2f}x" if lab in rel else "-" for lab in labels
            ])
        blocks.append(render_table([f"[{mname}] GStencil/s"] + labels,
                                   rows_abs))
        blocks.append(render_table(
            [f"[{mname}] speedup vs slowest"] + labels, rows_rel))
        blocks.append(
            f"[{mname}] T-Jigsaw geomean speedup over baselines: "
            f"{d['mean_speedup']:.2f}x "
            f"(paper: 2.148x AMD / 2.466x Intel)"
        )
    return "\n\n".join(blocks)
