"""``python -m repro.experiments [id ...] [--save DIR]`` — run
experiment(s) from the shell.  Without ids, runs every table/figure in
order; ``--save DIR`` additionally writes each artifact to
``DIR/<id>.txt`` for archival/diffing."""

from __future__ import annotations

import os
import sys

from .registry import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    save_dir = None
    if "--save" in args:
        i = args.index("--save")
        try:
            save_dir = args[i + 1]
        except IndexError:
            print("--save requires a directory", file=sys.stderr)
            return 2
        del args[i:i + 2]
    names = args or list(EXPERIMENTS)
    if save_dir:
        os.makedirs(save_dir, exist_ok=True)
    for name in names:
        text = run_experiment(name)
        print(f"==== {name} " + "=" * max(0, 66 - len(name)))
        print(text)
        print()
        if save_dir:
            with open(os.path.join(save_dir, f"{name}.txt"), "w") as fh:
                fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
