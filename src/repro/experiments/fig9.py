"""Figure 9 — sequential, tiling-free absolute performance vs problem
size.

Four representative kernels, one thread, no blocking, sizes swept from
L1-resident to memory-resident; methods Auto (Multiple Loads), Reorg
(Multiple Permutations), Jigsaw (LBV+SDF), and T-Jigsaw (+ITM).  Expected
shapes (§4.3):

* stair-step decline as the working set falls out of L1 → L2 → L3 → DRAM;
* T-Jigsaw on top for 1-D/2-D kernels, Jigsaw ahead of both baselines;
* for Box-3D27P, T-Jigsaw drops *below* Jigsaw (ITM's extra loads);
* convergence of all methods at memory-resident sizes (bandwidth wall).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis.report import render_series
from ..config import PAPER_MACHINES, MachineConfig
from ..machine.perfmodel import PerformanceModel
from ..schemes import model_cost
from ..stencils import library

METHODS: Tuple[str, ...] = ("auto", "reorg", "jigsaw", "t-jigsaw")

#: kernel -> list of interior shapes, small (L1) to huge (DRAM)
SIZES: Dict[str, List[Tuple[int, ...]]] = {
    "heat-1d": [(1 << k,) for k in (10, 12, 14, 16, 18, 20, 22, 24)],
    "heat-2d": [(n, n) for n in (32, 64, 128, 256, 512, 1024, 2048, 4096)],
    "box-2d9p": [(n, n) for n in (32, 64, 128, 256, 512, 1024, 2048, 4096)],
    "box-3d27p": [(n, n, n) for n in (8, 16, 32, 64, 128, 256)],
}
STEPS = 100


def data(
    machines: Sequence[MachineConfig] = PAPER_MACHINES,
    kernels: Sequence[str] = tuple(SIZES),
) -> Dict[str, Dict[str, dict]]:
    out: Dict[str, Dict[str, dict]] = {}
    for m in machines:
        model = PerformanceModel(m)
        per_kernel: Dict[str, dict] = {}
        for kernel in kernels:
            spec = library.get(kernel)
            costs = {meth: model_cost(meth, spec, m) for meth in METHODS}
            series: Dict[str, List[float]] = {meth: [] for meth in METHODS}
            levels: List[str] = []
            for shape in SIZES[kernel]:
                points = 1
                for s in shape:
                    points *= s
                for meth in METHODS:
                    res = model.estimate(costs[meth], points=points,
                                         steps=STEPS, cores=1)
                    series[meth].append(res.gstencil_s)
                levels.append(res.level)
            per_kernel[kernel] = {
                "sizes": SIZES[kernel],
                "series": series,
                "levels": levels,
            }
        out[m.name] = per_kernel
    return out


def run(machines: Sequence[MachineConfig] = PAPER_MACHINES) -> str:
    blocks = []
    for mname, per_kernel in data(machines).items():
        for kernel, d in per_kernel.items():
            xs = ["x".join(map(str, s)) + f" [{lvl}]"
                  for s, lvl in zip(d["sizes"], d["levels"])]
            blocks.append(render_series(
                "size [level]", xs, d["series"],
                title=f"Figure 9 [{mname}] {kernel}: GStencil/s, "
                      f"single thread, no tiling",
            ))
    return "\n\n".join(blocks)
