"""Experiment id → runner registry (the DESIGN.md per-experiment index)."""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import ExperimentError
from . import disc, fig7, fig8, fig9, fig10, fig11, table1, table2, table3

EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "disc": disc.run,
}


def get_experiment(name: str) -> Callable[[], str]:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(name: str) -> str:
    return get_experiment(name)()
