"""§4.6 discussion — Jigsaw across vector instruction sets.

The paper argues LBV generalizes to every lane-based AVX ISA (and the
upcoming AVX10): all AVX registers are physically composed of 128-bit
lanes, so minimizing cross-lane communication pays at every width.  This
experiment lowers Jigsaw at SSE/AVX2/AVX-512 widths on the paper's AMD
machine model, validates each stream on the width-parametric SIMD
interpreter, and reports per-vector shuffle mixes, register pressure
(AVX-512's 32-register file), and modelled throughput.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

from ..analysis.report import render_table
from ..config import AMD_EPYC_7V13, MachineConfig
from ..core.jigsaw import generate_jigsaw, required_halo
from ..machine.perfmodel import PerformanceModel
from ..stencils import apply_steps, library
from ..stencils.grid import Grid
from ..vectorize.driver import run_program

#: (label, vector bits, architectural registers, element bytes) — the
#: f32 rows go beyond the paper's float64 setting (§4.6's generality
#: argument, exercised at both lane layouts).
WIDTHS = (
    ("SSE", 128, 16, 8),
    ("AVX2", 256, 16, 8),
    ("AVX-512", 512, 32, 8),
    ("AVX2 f32", 256, 16, 4),
    ("AVX-512 f32", 512, 32, 4),
)
KERNELS = ("heat-1d", "box-2d9p", "heat-3d")


def data(base: MachineConfig = AMD_EPYC_7V13,
         kernels: Sequence[str] = KERNELS) -> Dict[str, List[dict]]:
    out: Dict[str, List[dict]] = {}
    for kernel in kernels:
        spec = library.get(kernel)
        rows: List[dict] = []
        for label, bits, regs, ebytes in WIDTHS:
            machine = dataclasses.replace(
                base.with_vector_bits(bits), vector_registers=regs,
                element_bytes=ebytes,
            )
            w = machine.vector_elems
            dtype = np.float32 if ebytes == 4 else np.float64
            rtol = 2e-4 if ebytes == 4 else 1e-12
            shape = (4,) * (spec.ndim - 1) + (12 * w,)
            grid = Grid.random(shape, required_halo(spec, machine), seed=3,
                               dtype=dtype)
            prog = generate_jigsaw(spec, machine, grid)
            got = run_program(prog, grid, 1)
            ref = apply_steps(spec, grid, 1)
            correct = bool(np.allclose(got.interior, ref.interior,
                                       rtol=rtol, atol=1e-6))
            pv = prog.per_vector_mix()
            model = PerformanceModel(machine)
            est = model.estimate(model.kernel_cost(prog),
                                 points=10**8, steps=100)
            rows.append({
                "isa": label,
                "elems": w,
                "lanes": machine.lanes,
                "correct": correct,
                "cross_per_vec": pv["C"],
                "inlane_per_vec": pv["I"],
                "max_live": prog.max_live_registers(),
                "registers": regs,
                "gstencil_s": est.gstencil_s,
            })
        out[kernel] = rows
    return out


def run(base: MachineConfig = AMD_EPYC_7V13) -> str:
    blocks = []
    for kernel, rows in data(base).items():
        table = [
            [d["isa"], d["elems"], d["lanes"],
             "yes" if d["correct"] else "NO",
             d["cross_per_vec"], d["inlane_per_vec"],
             f"{d['max_live']}/{d['registers']}", d["gstencil_s"]]
            for d in rows
        ]
        blocks.append(render_table(
            [f"§4.6 [{kernel}] ISA", "elems/reg", "lanes", "correct",
             "C/vec", "I/vec", "live/regs", "GStencil/s"],
            table,
        ))
    blocks.append(
        "LBV stays correct and conflict-reduced at every lane count; "
        "cross-lane work per vector grows only with the lane count, never "
        "with the stencil radius (the §4.6 AVX10 outlook)."
    )
    return "\n\n".join(blocks)
