"""Figure 7 — performance breakdown (ablation) of Jigsaw on Box-2D9P.

Subfigure (a): GStencil/s per ladder rung vs problem size at fixed time
iterations; (b): vs time iterations at fixed size; both machines, with the
tessellating-tiling setup the paper pairs every rung with.  Expected
shapes: each rung contributes (LBV the largest single jump, SDF a further
substantial one — bigger on AMD — and ITM a final single-digit-percent
gain), stabilizing as size/steps grow.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis.ablation import LADDER, ablation_study, ablation_vs_steps
from ..analysis.report import render_series
from ..config import PAPER_MACHINES, MachineConfig
from ..stencils import library

KERNEL = "box-2d9p"
SIZES: Tuple[Tuple[int, int], ...] = (
    (512, 512), (1024, 1024), (2048, 2048), (4096, 4096), (8192, 8192),
)
STEPS_LIST: Tuple[int, ...] = (5, 10, 20, 50, 100)
FIXED_STEPS = 50
FIXED_SIZE = (2048, 2048)
TILE = (200, 200)


def data(machines: Sequence[MachineConfig] = PAPER_MACHINES) -> Dict[str, dict]:
    spec = library.get(KERNEL)
    out: Dict[str, dict] = {}
    for m in machines:
        by_size = ablation_study(spec, m, sizes=SIZES, steps=FIXED_STEPS,
                                 tile_shape=TILE)
        by_steps = ablation_vs_steps(spec, m, size=FIXED_SIZE,
                                     steps_list=STEPS_LIST, tile_shape=TILE)
        out[m.name] = {"by_size": by_size, "by_steps": by_steps}
    return out


def run(machines: Sequence[MachineConfig] = PAPER_MACHINES) -> str:
    blocks: List[str] = []
    results = data(machines)
    rungs = [r for r, _ in LADDER]
    for mname, res in results.items():
        series = {r: [p.gstencil[r] for p in res["by_size"]] for r in rungs}
        blocks.append(render_series(
            "size", ["x".join(map(str, p.size)) for p in res["by_size"]],
            series,
            title=f"Figure 7(a) [{mname}] GStencil/s vs problem size "
                  f"(T={FIXED_STEPS})",
        ))
        series = {r: [p.gstencil[r] for p in res["by_steps"]] for r in rungs}
        blocks.append(render_series(
            "steps", [p.steps for p in res["by_steps"]], series,
            title=f"Figure 7(b) [{mname}] GStencil/s vs time iterations "
                  f"(size={'x'.join(map(str, FIXED_SIZE))})",
        ))
        last = res["by_size"][-1]
        contrib = ", ".join(f"{k}: {v * 100:.1f}%"
                            for k, v in last.contribution.items())
        blocks.append(
            f"[{mname}] total +ITM/base speedup {last.total_speedup:.2f}x; "
            f"contribution split: {contrib}"
        )
    return "\n\n".join(blocks)
