"""Figure 11 — multicore scalability of Jigsaw and T-Jigsaw.

Three kernel groups — 1-D by order (Heat-1D, 1D5P, 1D7P), 2-D by shape
(Heat-2D, Star-2D9P, Box-2D9P), 3-D (Heat-3D, Box-3D27P) — from one core
to every core, both machines, alternate-socket placement on Intel (§4.5).

Expected shapes: near-linear 1-D/2-D scaling, 3-D roll-off as shared
bandwidth saturates, and T-Jigsaw losing its edge over Jigsaw in 3-D
(extra loads per vector).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis.report import render_series
from ..config import PAPER_MACHINES, MachineConfig
from ..parallel.simulator import MulticoreModel, ParallelSetup
from ..schemes import model_cost
from ..stencils import library
from ..stencils.library import table3_config

GROUPS: Dict[str, Tuple[str, ...]] = {
    "1D": ("heat-1d", "star-1d5p", "star-1d7p"),
    "2D": ("heat-2d", "star-2d9p", "box-2d9p"),
    "3D": ("heat-3d", "box-3d27p"),
}
SCHEMES = ("jigsaw", "t-jigsaw")


def core_counts(machine: MachineConfig) -> List[int]:
    counts = [1]
    c = 2
    while c < machine.total_cores:
        counts.append(c)
        c *= 2
    counts.append(machine.total_cores)
    return counts


def data(
    machines: Sequence[MachineConfig] = PAPER_MACHINES,
    groups: Dict[str, Tuple[str, ...]] = GROUPS,
) -> Dict[str, dict]:
    out: Dict[str, dict] = {}
    for m in machines:
        model = MulticoreModel(m)
        cores = core_counts(m)
        per_group: Dict[str, dict] = {}
        for gname, kernels in groups.items():
            series: Dict[str, List[float]] = {}
            for kernel in kernels:
                spec = library.get(kernel)
                cfg = table3_config(kernel)
                setup = ParallelSetup(tile_shape=cfg.tile_shape,
                                      time_depth=cfg.time_depth)
                for scheme in SCHEMES:
                    cost = model_cost(scheme, spec, m)
                    curve = model.scaling_curve(
                        cost, spec, points=cfg.grid_points(),
                        steps=cfg.time_steps, core_counts=cores, setup=setup,
                    )
                    series[f"{kernel}/{scheme}"] = [r.gstencil_s
                                                    for r in curve]
            per_group[gname] = {"cores": cores, "series": series}
        out[m.name] = per_group
    return out


def run(machines: Sequence[MachineConfig] = PAPER_MACHINES) -> str:
    blocks = []
    for mname, per_group in data(machines).items():
        for gname, d in per_group.items():
            blocks.append(render_series(
                "cores", d["cores"], d["series"],
                title=f"Figure 11 [{mname}] {gname} kernels: GStencil/s vs cores",
            ))
    return "\n\n".join(blocks)
