"""Experiment runners — one module per table/figure of the paper's
evaluation (§4).  Each module exposes ``data(...)`` returning structured
results and ``run(...)`` returning the rendered rows/series the paper
reports.  ``python -m repro.experiments <id>`` runs one from the shell.
"""

from .registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]
