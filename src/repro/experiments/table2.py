"""Table 2 — analytical vector instructions per vector.

For each kernel and method, prints the paper's published (L, S, C, I)
against the counts measured from the instruction streams this repository
generates.  Deviations are expected and documented (EXPERIMENTS.md): the
paper bills some shared shuffles per neighbour while our generators share
them, and its in-lane column excludes the butterfly deinterleaves our
accounting includes.
"""

from __future__ import annotations

from typing import List

from ..analysis.instruction_count import (
    PAPER_TABLE2,
    TABLE2_KERNELS,
    TABLE2_METHODS,
    analytic_table2_row,
    measured_table2_row,
)
from ..analysis.report import render_table
from ..config import AMD_EPYC_7V13, MachineConfig
from ..stencils import library


def data(machine: MachineConfig = AMD_EPYC_7V13) -> List[dict]:
    rows = []
    for kernel in TABLE2_KERNELS:
        spec = library.get(kernel)
        for method in TABLE2_METHODS:
            # the paper publishes auto/reorg/jigsaw only; the added
            # scheme families carry no paper cell
            paper = PAPER_TABLE2[kernel].get(method)
            measured = measured_table2_row(method, spec, machine)
            analytic = analytic_table2_row(method, spec)
            rows.append({
                "kernel": kernel,
                "method": method,
                "paper": paper,
                "analytic": analytic,
                "measured": measured,
            })
    return rows


def run(machine: MachineConfig = AMD_EPYC_7V13) -> str:
    table_rows = []
    for d in data(machine):
        cells = [d["kernel"], d["method"]]
        for i in range(4):
            paper = "-" if d["paper"] is None else f"{d['paper'][i]:g}"
            cells.append(f"{paper} / {d['measured'][i]:.3g}")
        table_rows.append(cells)
    return render_table(
        ["kernel", "method", "L (paper/ours)", "S (paper/ours)",
         "C (paper/ours)", "I (paper/ours)"],
        table_rows,
    )
