"""``repro chaos``: randomized fault plans + bitwise-equality checking.

Chaos testing closes the loop on the failure model: generate a seeded
random :class:`~repro.faults.plan.FaultPlan` covering **every** site in
the catalogue, run the full compile-and-sweep workload twice — once
clean, once under injection — and verify

* every site class actually took at least one injected fault,
* the faulted run's results are **bitwise identical** to the clean
  run's (every recovery path — retry, quarantine + recompile,
  batch→interp, process→thread→serial — preserves exact results), and
* every injected fault is visible in the observability taxonomy.

This module imports the service layer, so it is *not* re-exported from
:mod:`repro.faults` (that would cycle through the kernel cache's import
of the injector); the CLI imports it lazily.
"""

from __future__ import annotations

import os
import random
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..config import GENERIC_AVX2, MachineConfig
from ..errors import ReproError
from ..service import KernelService, SweepJob
from ..stencils import library
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from .injector import SITES, inject
from .plan import FaultPlan, FaultRule

#: fault kinds chaos may draw per site.  ``corrupt`` only where a byte
#: payload exists; ``kill`` only where a process-pool worker might run it.
CHAOS_SITE_KINDS: Dict[str, Tuple[str, ...]] = {
    "cache.disk_read": ("raise", "corrupt", "delay"),
    "cache.disk_write": ("raise", "corrupt", "delay"),
    "compile.kernel": ("raise", "delay"),
    "exec.batch_closure": ("raise", "delay"),
    "exec.codegen_kernel": ("raise", "delay"),
    "pool.task_start": ("raise", "delay", "kill"),
    "server.batch_flush": ("raise", "delay"),
    "server.enqueue": ("raise", "delay"),
    "shard.exchange": ("raise", "delay"),
    "tile.sweep": ("raise", "delay"),
}

#: sites whose rules must fire on the very first hit: the workload only
#: guarantees a small number of hits there (and a ``raise`` at
#: ``exec.batch_closure`` / ``exec.codegen_kernel`` disables that engine
#: for the rest of the call, so only hit 0 is reachable).  The server
#: sites join because the serving stage only guarantees a handful of
#: enqueues/flushes.
_FIRST_HIT_SITES = ("cache.disk_read", "cache.disk_write",
                    "compile.kernel", "exec.batch_closure",
                    "exec.codegen_kernel", "server.batch_flush",
                    "server.enqueue")

#: the workload stages ``run_chaos`` can execute, and the catalogue
#: sites each one guarantees to hit at least once (the coverage check
#: only requires the union over the selected stages).
STAGES: Tuple[str, ...] = ("pipeline", "server")
_STAGE_SITES: Dict[str, Tuple[str, ...]] = {
    "pipeline": ("cache.disk_read", "cache.disk_write", "compile.kernel",
                 "exec.batch_closure", "exec.codegen_kernel",
                 "pool.task_start", "shard.exchange", "tile.sweep"),
    "server": ("server.batch_flush", "server.enqueue", "compile.kernel",
               "cache.disk_write", "pool.task_start", "tile.sweep"),
}


def chaos_plan(seed: int) -> FaultPlan:
    """A seeded random plan with exactly one rule per catalogue site."""
    rng = random.Random(seed)
    rules = []
    for site in SITES:
        kind = rng.choice(CHAOS_SITE_KINDS[site])
        after = 0 if site in _FIRST_HIT_SITES else rng.randrange(0, 4)
        rules.append(FaultRule(site=site, kind=kind, after=after,
                               delay_s=0.01 if kind == "delay" else 0.0))
    return FaultPlan(rules=tuple(rules), seed=seed,
                     name=f"chaos-{seed}")


@dataclass
class ChaosReport:
    """The outcome of one chaos run (see :func:`run_chaos`)."""

    kernel: str
    size: Tuple[int, ...]
    steps: int
    seed: int
    backends: Tuple[str, ...]
    plan: FaultPlan
    stages: Tuple[str, ...] = STAGES
    injected: Dict[str, int] = field(default_factory=dict)
    sites_missing: List[str] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)
    taxonomy: Dict[str, int] = field(default_factory=dict)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def ok(self) -> bool:
        """Every site faulted at least once and results stayed bitwise
        identical to the clean run."""
        return not self.sites_missing and not self.mismatches

    def to_dict(self) -> Dict:
        return {
            "kernel": self.kernel,
            "size": list(self.size),
            "steps": self.steps,
            "seed": self.seed,
            "backends": list(self.backends),
            "stages": list(self.stages),
            "plan": self.plan.to_dict(),
            "injected": dict(sorted(self.injected.items())),
            "total_injected": self.total_injected,
            "sites_missing": list(self.sites_missing),
            "mismatches": list(self.mismatches),
            "taxonomy": dict(sorted(self.taxonomy.items())),
            "ok": self.ok,
        }

    def summary(self) -> str:
        lines = [f"chaos seed={self.seed} kernel={self.kernel} "
                 f"size={'x'.join(map(str, self.size))} steps={self.steps} "
                 f"backends={','.join(self.backends)} "
                 f"stages={','.join(self.stages)}"]
        lines.append(f"  injected faults: {self.total_injected}")
        for site in SITES:
            lines.append(f"    {site:<20} {self.injected.get(site, 0)}")
        if self.taxonomy:
            lines.append("  failure/fallback taxonomy:")
            for name, v in sorted(self.taxonomy.items()):
                lines.append(f"    {name:<40} {v}")
        if self.sites_missing:
            lines.append(f"  MISSING sites: {', '.join(self.sites_missing)}")
        if self.mismatches:
            lines.append(f"  BITWISE MISMATCH: {', '.join(self.mismatches)}")
        lines.append("  result: " + ("OK — faulted run bitwise-identical "
                                     "to clean run" if self.ok else "FAILED"))
        return "\n".join(lines)


#: counter prefixes that make up the failure/fallback taxonomy slice of
#: an obs snapshot (shown by ``repro chaos`` and ``repro stats``).
TAXONOMY_PREFIXES = (
    "faults.injected",
    "service.failures",
    "service.fallback",
    "parallel.task_retries",
    "parallel.pool_restarts",
    "parallel.fallback",
    "shard.exchange_retries",
    "shard.task_retries",
    "shard.pool_restarts",
    "cache.disk_quarantined",
    "cache.disk_write_faults",
    "exec.batch_fallback",
    "server.admission.rejected",
    "server.batch.failures",
    "server.deadline_missed",
    "server.faults",
    "server.overload",
    "tune.trial_failures",
)


def taxonomy_slice(counters: Dict[str, int]) -> Dict[str, int]:
    """The failure-taxonomy subset of an obs counter snapshot."""
    return {k: v for k, v in counters.items()
            if any(k == p or k.startswith(p + ".")
                   for p in TAXONOMY_PREFIXES)}


def _workload(spec: StencilSpec, machine: MachineConfig, cache_dir: str,
              *, size: Tuple[int, ...], steps: int,
              backends: Sequence[str], data_seed: int,
              stages: Sequence[str] = STAGES) -> Dict[str, np.ndarray]:
    """The canonical chaos workload: compile through three cache
    generations (miss → store → disk load), execute on the SIMD machine
    (once on the default codegen→batch→interp ladder, once pinned to the
    batch engine so ``exec.batch_closure`` stays reachable even when the
    codegen engine absorbs its fault without degrading), then sweep on
    each parallel backend — and, in the ``server`` stage, drive the
    async serving layer with a small mixed-tenant load.  Returns
    labelled result arrays for bitwise comparison."""

    def service(**kw) -> KernelService:
        return KernelService(machine, cache_dir=cache_dir,
                             failure_policy="degrade", retries=3,
                             run_workers=4, **kw)

    results: Dict[str, np.ndarray] = {}
    if "pipeline" in stages:
        # generation 0 compiles (and stores); generations 1 and 2 use
        # fresh in-memory caches over the same directory, so the disk
        # write path and then the disk read path are guaranteed to be
        # exercised even when a write fault suppressed the first store.
        kernel = service().compile(spec, size)
        for _ in range(2):
            kernel = service().compile(spec, size)
        grid = kernel.grid_like(size, seed=data_seed)
        results["machine"] = kernel.run(grid, steps).interior.copy()
        results["machine.batch"] = kernel.run(
            grid, steps, backend="batch").interior.copy()
        for backend in backends:
            svc = service(run_backend=backend)
            g = Grid.random(size, spec.radius, seed=data_seed)
            out = svc.run(SweepJob(spec, g, steps))
            results[f"sweep.{backend}"] = out.interior.copy()
            # the sharded path: 2 slabs with deep halos.  Gathers fire
            # once per shard per superstep, and randomized rules may
            # skip up to 3 hits (after < 4), so the block size is
            # dropped to 1 when the step count is too small to reach 4
            # supersteps-worth of hits.
            tb = 2 if steps >= 4 else 1
            out = svc.run(SweepJob(spec, g, steps, shards=2,
                                   temporal_block=tb))
            results[f"shard.{backend}"] = out.interior.copy()
    if "server" in stages:
        results.update(_server_stage(spec, machine, cache_dir,
                                     size=size, steps=steps))
    return results


def _server_stage(spec: StencilSpec, machine: MachineConfig,
                  cache_dir: str, *, size: Tuple[int, ...],
                  steps: int) -> Dict[str, np.ndarray]:
    """A small mixed-tenant load through the async serving layer: every
    response's interior is returned under a ``server.<label>`` key, and
    a request that failed (rejections included — admission is generous
    here, so a clean run never rejects) simply leaves its label out,
    which the caller's clean-vs-faulted comparison flags."""
    from ..server import LoadConfig, run_load_sync
    cfg = LoadConfig(requests=12, tenants=3, kernels=(spec.name,),
                     shape=size, steps=steps, seeds=2, keep_results=True)
    report = run_load_sync(
        cfg, machine=machine, cache_dir=cache_dir,
        max_queue_depth=64, max_batch=4, batch_window_s=0.002,
        executor_workers=2, run_workers=2, retries=3)
    return {f"server.{label}": arr
            for label, arr in report.results.items()}


def required_sites(stages: Sequence[str]) -> Tuple[str, ...]:
    """The catalogue sites the selected workload ``stages`` guarantee to
    hit (the coverage check only demands these)."""
    wanted = set()
    for stage in stages:
        if stage not in _STAGE_SITES:
            raise ReproError(
                f"unknown chaos stage {stage!r}; known: {STAGES}")
        wanted.update(_STAGE_SITES[stage])
    return tuple(s for s in SITES if s in wanted)


def run_chaos(
    *,
    kernel: str = "heat-2d",
    size: Sequence[int] = (48, 48),
    steps: int = 4,
    seed: int = 0,
    backends: Sequence[str] = ("thread", "process"),
    machine: Optional[MachineConfig] = None,
    plan: Optional[FaultPlan] = None,
    stages: Sequence[str] = STAGES,
) -> ChaosReport:
    """Run the chaos workload clean and faulted; compare bitwise.

    ``plan`` overrides the seeded random plan (used by tests to pin a
    scenario); ``stages`` selects workload stages (``pipeline`` — the
    compile/execute/sweep/shard path — and ``server`` — the async
    serving layer under load).  Observability is enabled (reset) for
    the whole run so the report can include the failure taxonomy."""
    machine = machine or GENERIC_AVX2
    spec = library.get(kernel)
    size = tuple(int(n) for n in size)
    backends = tuple(backends)
    stages = tuple(stages)
    required = required_sites(stages)
    plan = plan or chaos_plan(seed)
    obs.enable(reset=True)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        clean = _workload(spec, machine, os.path.join(tmp, "clean"),
                          size=size, steps=steps, backends=backends,
                          data_seed=seed + 1, stages=stages)
        with inject(plan) as inj:
            faulted = _workload(spec, machine, os.path.join(tmp, "faulted"),
                                size=size, steps=steps, backends=backends,
                                data_seed=seed + 1, stages=stages)
    injected = inj.injected_by_site()
    mismatches = [label for label in clean
                  if label not in faulted
                  or clean[label].dtype != faulted[label].dtype
                  or not np.array_equal(clean[label], faulted[label])]
    mismatches += [label for label in faulted if label not in clean]
    counters = obs.snapshot()["metrics"]["counters"]
    return ChaosReport(
        kernel=kernel, size=size, steps=steps, seed=seed, backends=backends,
        plan=plan, stages=stages,
        injected=injected,
        sites_missing=[s for s in required if injected.get(s, 0) < 1],
        mismatches=mismatches,
        taxonomy=taxonomy_slice(counters),
    )


__all__ = [
    "CHAOS_SITE_KINDS",
    "ChaosReport",
    "STAGES",
    "TAXONOMY_PREFIXES",
    "chaos_plan",
    "required_sites",
    "run_chaos",
    "taxonomy_slice",
]
