"""The fault-injection runtime: named sites, hit counting, actions.

Production code is instrumented with **named sites** — one call to
:func:`fault_point` per site, costing a single module-global ``None``
check when no plan is active (no monkeypatching, no test-only code
paths).  Activating a plan is scoped and nestable::

    with faults.inject(FaultPlan(rules=(FaultRule("cache.disk_read"),))):
        ...   # the first disk read raises FaultInjected

Only the innermost active injector sees hits, so nested plans compose
the way context managers do.  Hit counters are per concrete site name
and shared by every rule matching that site, which makes "the Nth disk
read" mean the same thing no matter how many rules watch it.

Process-pool workers cannot see the parent's injector, so the executor
*decides* faults in the parent (consuming hits deterministically, in
submission order) and ships the resulting picklable
:class:`FaultAction` tokens with the task; the worker replays them with
:func:`perform_shipped` — the only place a ``kill`` fault actually
terminates a process.
"""

from __future__ import annotations

import fnmatch
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from .. import obs
from ..errors import ReproError
from .plan import FaultPlan

#: the instrumented site catalogue.  Rules may glob over these
#: (``"cache.*"``), and new sites only need a ``fault_point`` call.
SITES = (
    "cache.disk_read",     #: KernelCache loading a persisted entry
    "cache.disk_write",    #: KernelCache persisting an entry
    "compile.kernel",      #: vector-program generation (cache miss path)
    "exec.batch_closure",  #: one batched sweep on the SIMD machine
    "exec.codegen_kernel",  #: one emitted-source sweep (codegen engine)
    "pool.task_start",     #: a parallel-executor task beginning
    "server.batch_flush",  #: a server micro-batch leaving the queue
    "server.enqueue",      #: an admitted server request entering the queue
    "shard.exchange",      #: one shard's halo-window gather
    "tile.sweep",          #: one tile's Jacobi sweep
)

#: exit status a ``kill`` fault terminates a pool worker with.
KILL_EXIT_CODE = 87


class FaultInjected(ReproError):
    """An injected fault (a :class:`ReproError` so every library-level
    degradation/retry path treats it like a real failure)."""

    def __init__(self, message: str = "injected fault", *,
                 site: str = "", kind: str = "raise", hit: int = -1) -> None:
        super().__init__(message)
        self.site = site
        self.kind = kind
        self.hit = hit

    def __reduce__(self):  # keep site/kind/hit across process pickling
        return (type(self), (str(self),),
                {"site": self.site, "kind": self.kind, "hit": self.hit})


@dataclass(frozen=True)
class FaultAction:
    """One concrete triggered fault (picklable, shippable to workers)."""

    site: str
    kind: str
    hit: int              #: the site hit index that triggered
    rule: int             #: index of the triggering rule in the plan
    delay_s: float = 0.0
    message: str = ""

    def to_fault(self) -> FaultInjected:
        return FaultInjected(
            self.message or f"injected {self.kind} at {self.site} "
                            f"(hit {self.hit})",
            site=self.site, kind=self.kind, hit=self.hit)


class FaultInjector:
    """Interprets one :class:`~repro.faults.plan.FaultPlan` (thread-safe).

    :meth:`decide` consumes one hit of a site and returns the triggered
    :class:`FaultAction` (or ``None``); :meth:`perform` executes an
    action in-process.  ``log`` records every triggered action in order.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._fired = [0] * len(plan.rules)
        self.log: List[FaultAction] = []

    # -- hit bookkeeping -------------------------------------------------------
    def decide(self, site: str) -> Optional[FaultAction]:
        """Count one hit of ``site``; return the action it triggers."""
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
            action = None
            for i, rule in enumerate(self.plan.rules):
                if self._fired[i] >= rule.times:
                    continue
                if not fnmatch.fnmatchcase(site, rule.site):
                    continue
                if hit < rule.after or (hit - rule.after) % rule.every:
                    continue
                self._fired[i] += 1
                action = FaultAction(site=site, kind=rule.kind, hit=hit,
                                     rule=i, delay_s=rule.delay_s,
                                     message=rule.message)
                self.log.append(action)
                break
        if action is not None and obs.enabled():
            obs.counter("faults.injected").inc()
            obs.counter(f"faults.injected.site.{site}").inc()
            obs.counter(f"faults.injected.kind.{action.kind}").inc()
        return action

    def hits(self, site: str) -> int:
        with self._lock:
            return self._hits.get(site, 0)

    def injected_by_site(self) -> Dict[str, int]:
        """Triggered-fault counts per concrete site."""
        with self._lock:
            out: Dict[str, int] = {}
            for a in self.log:
                out[a.site] = out.get(a.site, 0) + 1
            return out

    # -- executing actions -----------------------------------------------------
    def corrupt(self, payload: Union[str, bytes],
                action: FaultAction) -> Union[str, bytes]:
        """Deterministically mangle ``payload``.  The corruption either
        truncates the tail or splices raw control bytes into the middle —
        both guarantee a JSON consumer fails to parse (control characters
        are illegal anywhere in JSON), so corruption is always *detectable*
        rather than silently semantic."""
        rng = random.Random(f"{self.plan.seed}:{action.site}:{action.hit}")
        garbage = "\x00\x01\x02corrupt"
        if isinstance(payload, bytes):
            garbage_b = garbage.encode("latin-1")
            if len(payload) < 4 or rng.random() < 0.5:
                return payload[: max(0, len(payload) - 2)]  # truncate
            pos = rng.randrange(1, len(payload) - 1)
            return payload[:pos] + garbage_b + payload[pos + 1:]
        if len(payload) < 4 or rng.random() < 0.5:
            return payload[: max(0, len(payload) - 2)]
        pos = rng.randrange(1, len(payload) - 1)
        return payload[:pos] + garbage + payload[pos + 1:]

    def perform(self, action: FaultAction, payload=None):
        """Execute ``action`` in the current (non-worker) process: sleep,
        corrupt the payload, or raise.  ``kill`` degrades to ``raise``
        here — only :func:`perform_shipped` inside a pool worker actually
        terminates a process."""
        if action.kind == "delay":
            time.sleep(action.delay_s)
            return payload
        if action.kind == "corrupt" and payload is not None:
            return self.corrupt(payload, action)
        raise action.to_fault()


# -- the active-injector stack -------------------------------------------------

_stack: List[FaultInjector] = []
_stack_lock = threading.Lock()


def active() -> Optional[FaultInjector]:
    """The innermost active injector, or ``None`` (the common case)."""
    stack = _stack
    return stack[-1] if stack else None


@contextmanager
def inject(plan: Union[FaultPlan, FaultInjector]):
    """Activate ``plan`` for the dynamic extent of the ``with`` block
    (yields the :class:`FaultInjector` so callers can read its log)."""
    inj = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    with _stack_lock:
        _stack.append(inj)
    try:
        yield inj
    finally:
        with _stack_lock:
            # remove *this* injector even under exotic nesting
            for i in range(len(_stack) - 1, -1, -1):
                if _stack[i] is inj:
                    del _stack[i]
                    break


def fault_point(site: str, payload=None):
    """The instrumentation hook production code calls at a named site.

    Returns ``payload`` (possibly corrupted), sleeps, or raises
    :class:`FaultInjected` — and is a near-free no-op when no plan is
    active."""
    inj = active()
    if inj is None:
        return payload
    action = inj.decide(site)
    if action is None:
        return payload
    return inj.perform(action, payload)


def perform_shipped(action: FaultAction) -> None:
    """Replay a parent-decided action inside a process-pool worker.
    This is the only place ``kill`` really exits a process."""
    if action.kind == "delay":
        time.sleep(action.delay_s)
        return
    if action.kind == "kill":
        os._exit(KILL_EXIT_CODE)
    raise action.to_fault()


__all__ = [
    "FaultAction",
    "FaultInjected",
    "FaultInjector",
    "KILL_EXIT_CODE",
    "SITES",
    "active",
    "fault_point",
    "inject",
    "perform_shipped",
]
