"""Failure policies shared by the hardened service/executor layers.

Three reactions to a failed task, in escalating order of tolerance:

* ``"raise"``   — propagate the first failure (the pre-hardening
  behavior, and the default);
* ``"retry"``   — retry the same task up to the retry budget with
  exponential backoff, then propagate;
* ``"degrade"`` — retry first, then walk a degradation ladder
  (batch→interp for compiles, process→thread→serial for sweeps) before
  giving up.

:func:`call_with_timeout` bounds one blocking call by running it on a
private daemon thread; a timed-out callee keeps running in the
background (Python threads cannot be killed) but the caller gets a
:class:`TaskTimeout` promptly and can retry or degrade.
:func:`failure_reason` maps an exception onto the observability
fallback-reason taxonomy (``fault | timeout | worker_lost | error``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Tuple, TypeVar

from .. import obs
from ..errors import ReproError
from .injector import FaultInjected

#: the failure policies the service layer accepts.
POLICIES: Tuple[str, ...] = ("raise", "retry", "degrade")

T = TypeVar("T")


class TaskTimeout(ReproError):
    """A guarded task exceeded its per-task timeout."""


def failure_reason(exc: BaseException) -> str:
    """The taxonomy bucket for one failure (``fault`` | ``timeout`` |
    ``worker_lost`` | ``error``)."""
    if isinstance(exc, FaultInjected):
        return "fault"
    if isinstance(exc, TaskTimeout):
        return "timeout"
    if isinstance(exc, BrokenProcessPool):
        return "worker_lost"
    return "error"


def call_with_timeout(fn: Callable[[], T],
                      timeout_s: Optional[float]) -> T:
    """``fn()`` bounded by ``timeout_s`` (``None`` = call directly).

    The call runs on a one-shot worker thread with the caller's span
    context propagated, so observability nesting survives the hop."""
    if timeout_s is None:
        return fn()
    pool = ThreadPoolExecutor(max_workers=1,
                              thread_name_prefix="repro-timeout")
    future = pool.submit(obs.propagate(fn))
    try:
        return future.result(timeout=timeout_s)
    except FuturesTimeout:
        raise TaskTimeout(
            f"task exceeded its {timeout_s:g}s timeout") from None
    finally:
        # never join the (possibly still running) worker thread
        pool.shutdown(wait=False, cancel_futures=True)


__all__ = [
    "POLICIES",
    "TaskTimeout",
    "call_with_timeout",
    "failure_reason",
]
