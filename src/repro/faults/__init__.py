"""Deterministic, seedable fault injection for the whole stack.

The framework has three pieces:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultRule`,
  pure-data JSON-serializable descriptions of what to break and when;
* :mod:`repro.faults.injector` — the runtime: the named-site catalogue
  (:data:`SITES`), the :func:`inject` context manager, and the
  :func:`fault_point` hook production code calls (a near-free no-op
  when no plan is active — no monkeypatching anywhere);
* :mod:`repro.faults.policy` — the failure policies
  (``raise | retry | degrade``), per-task timeouts and the
  fallback-reason taxonomy the hardened service/executor layers share.

``repro chaos`` (:mod:`repro.faults.chaos`, imported lazily to avoid a
cycle with the service layer) runs a full compile-and-sweep workload
under a randomized plan and verifies bitwise equality with the clean
run.
"""

from .injector import (
    KILL_EXIT_CODE,
    SITES,
    FaultAction,
    FaultInjected,
    FaultInjector,
    active,
    fault_point,
    inject,
    perform_shipped,
)
from .plan import FAULT_KINDS, FaultPlan, FaultRule
from .policy import POLICIES, TaskTimeout, call_with_timeout, failure_reason

__all__ = [
    "FAULT_KINDS",
    "FaultAction",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "KILL_EXIT_CODE",
    "POLICIES",
    "SITES",
    "TaskTimeout",
    "active",
    "call_with_timeout",
    "failure_reason",
    "fault_point",
    "inject",
    "perform_shipped",
]
