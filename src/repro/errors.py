"""Exception hierarchy for the Jigsaw reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors (``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SpecError(ReproError):
    """A stencil specification is malformed or unsupported."""


class GridError(ReproError):
    """A grid allocation/shape/halo request is invalid."""


class IsaError(ReproError):
    """An instruction is malformed or its operands are incompatible."""


class MachineError(ReproError):
    """The SIMD machine was driven into an invalid state (bad register
    index, out-of-bounds memory access, unbound loop variable, ...)."""


class VectorizeError(ReproError):
    """A vectorization scheme cannot be generated for the given stencil
    and machine configuration."""


class PlanError(ReproError):
    """The Jigsaw planner could not build a valid plan (e.g. SVD rank
    tolerance leaves no terms, or an ITM fusion depth is infeasible)."""


class TilingError(ReproError):
    """A tiling request does not partition the iteration space."""


class ModelError(ReproError):
    """A performance-model query is inconsistent (unknown machine, zero
    bandwidth, negative sizes, ...)."""


class ExperimentError(ReproError):
    """An experiment runner was configured with unknown ids/parameters."""


class TuneError(ReproError):
    """An autotuning request is invalid (empty search space, bad budget,
    workload/spec rank mismatch, ...)."""
