"""The analytic multicore model behind Figures 10 and 11.

Composes the single-core roofline (:class:`~repro.machine.perfmodel.PerformanceModel`)
with:

* **core placement** — the paper's alternate-socket policy and its NUMA
  remote-traffic share (:mod:`repro.parallel.topology`);
* **cache blocking** — the working set handed to the cache model is the
  tile's, not the grid's, so blocked runs are fed from cache
  (:func:`repro.tiling.blocks.tile_working_set`);
* **time tiling** — tessellated time blocks divide DRAM traffic by the
  depth ``Tb`` and charge ``2^d`` phase barriers per block
  (:class:`repro.tiling.tessellate.TessellationPlan`).

The emergent behaviour reproduces §4.5: near-linear 1-D/2-D scaling until
shared bandwidth saturates, earlier roll-off for 3-D (bigger per-point
traffic, worse locality), and the NUMA wobble on the dual-socket Intel
machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import MachineConfig
from ..errors import ModelError
from ..machine.perfmodel import KernelCost, PerfResult, PerformanceModel
from ..stencils.spec import StencilSpec
from ..tiling.blocks import tile_working_set
from ..tiling.tessellate import tessellation_plan
from .topology import allocate_cores


@dataclass(frozen=True)
class ParallelSetup:
    """The blocking/tiling context of a parallel run."""

    tile_shape: Optional[Sequence[int]] = None
    time_depth: int = 1
    placement: str = "alternate"

    def __post_init__(self) -> None:
        if self.time_depth < 1:
            raise ModelError("time_depth must be >= 1")


class MulticoreModel:
    """GStencil/s for (kernel cost, problem, cores) on one machine."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        self.single = PerformanceModel(machine)

    def estimate(
        self,
        cost: KernelCost,
        spec: StencilSpec,
        *,
        points: int,
        steps: int,
        cores: int,
        setup: ParallelSetup = ParallelSetup(),
        efficiency: float = 1.0,
    ) -> PerfResult:
        alloc = allocate_cores(self.machine, cores, policy=setup.placement)
        elem = self.machine.element_bytes
        hierarchy = self.single.memory

        if setup.tile_shape is not None:
            # Tessellating tiling is non-redundant: a phase's live data is
            # the tile plus a one-radius band (no trapezoid halo growth),
            # regardless of the time depth.
            ws = float(tile_working_set(
                setup.tile_shape, spec, element_bytes=elem, time_depth=1,
            ))
            ws_per_core = True
            plan = tessellation_plan(spec, setup.tile_shape, setup.time_depth) \
                if setup.time_depth > 1 else None
        else:
            ws = 2.0 * points * elem
            ws_per_core = False
            plan = None

        # Phase barriers: one per dependence-free phase per time block.
        if setup.time_depth > 1 and plan is not None:
            blocks = max(1, steps // setup.time_depth)
            sync_phases = plan.phases * blocks
        else:
            sync_phases = steps if cores > 1 else 0

        base = self.single.estimate(
            cost,
            points=points,
            steps=steps,
            working_set_bytes=ws,
            cores=cores,
            numa_remote_fraction=alloc.remote_fraction,
            sync_phases=sync_phases,
            efficiency=efficiency,
            working_set_per_core=ws_per_core,
        )
        # ``base.memory_time_s`` is the *near* term: every sweep pulls the
        # (tile-resident) data through the level the working set sits in.
        # Blocked runs also pay the *far* term — the whole grid must stream
        # from its home level once per time block (spatial blocking cannot
        # remove compulsory traffic; only time-tiling depth amortizes it).
        sweeps = steps / cost.steps_per_iter
        depth = max(setup.time_depth / cost.steps_per_iter, 1.0)
        far = hierarchy.sweep_time(
            bytes_loaded=points * elem * sweeps / depth,
            bytes_stored=points * elem * sweeps / depth,
            working_set_bytes=2.0 * points * elem,
            cores=cores,
            numa_remote_fraction=alloc.remote_fraction,
        )
        mem = max(base.memory_time_s, far.time_s)
        time_s = max(base.compute_time_s, mem)
        time_s += sync_phases * self.machine.sync_overhead_us * 1e-6
        level = far.level if far.time_s >= base.memory_time_s else base.level
        return PerfResult(
            gstencil_s=points * steps / time_s / 1e9,
            time_s=time_s,
            compute_time_s=base.compute_time_s,
            memory_time_s=mem,
            level=level,
            bottleneck="compute" if base.compute_time_s >= mem else "memory",
        )

    def scaling_curve(
        self,
        cost: KernelCost,
        spec: StencilSpec,
        *,
        points: int,
        steps: int,
        core_counts: Sequence[int],
        setup: ParallelSetup = ParallelSetup(),
        efficiency: float = 1.0,
    ) -> List[PerfResult]:
        """GStencil/s at each core count (Figure 11's series)."""
        return [
            self.estimate(cost, spec, points=points, steps=steps, cores=c,
                          setup=setup, efficiency=efficiency)
            for c in core_counts
        ]
