"""Multicore substrate: topology description, the analytic multicore
performance model (bandwidth sharing, NUMA, phase barriers — §4.4/§4.5),
and a real shared-memory thread-pool executor for the numpy path.
"""

from .topology import CoreAllocation, allocate_cores
from .simulator import MulticoreModel
from .executor import BACKENDS, run_parallel, apply_tile

__all__ = [
    "CoreAllocation",
    "allocate_cores",
    "MulticoreModel",
    "BACKENDS",
    "run_parallel",
    "apply_tile",
]
