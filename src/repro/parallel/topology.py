"""Core placement across sockets.

The paper's Intel scalability runs alternate cores between the two NUMA
domains to average out remote-access latency (§4.5); the resulting remote
traffic share is what the multicore model charges the NUMA penalty on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..config import MachineConfig
from ..errors import ModelError


@dataclass(frozen=True)
class CoreAllocation:
    machine: MachineConfig
    cores: int
    per_socket: Tuple[int, ...]

    @property
    def sockets_used(self) -> int:
        return sum(1 for c in self.per_socket if c > 0)

    @property
    def remote_fraction(self) -> float:
        """Expected share of memory traffic served by a remote socket.

        With pages interleaved over the used sockets, a core finds
        ``1/sockets_used`` of its data local; the rest is remote.
        """
        s = self.sockets_used
        return 0.0 if s <= 1 else 1.0 - 1.0 / s


def allocate_cores(machine: MachineConfig, cores: int,
                   *, policy: str = "alternate") -> CoreAllocation:
    """Distribute ``cores`` over sockets.

    ``alternate`` round-robins sockets (the paper's §4.5 setup);
    ``compact`` fills one socket before the next.
    """
    if not 1 <= cores <= machine.total_cores:
        raise ModelError(
            f"cores must be in [1, {machine.total_cores}], got {cores}"
        )
    per = [0] * machine.sockets
    if policy == "alternate":
        for i in range(cores):
            per[i % machine.sockets] += 1
    elif policy == "compact":
        left = cores
        for s in range(machine.sockets):
            take = min(left, machine.cores_per_socket)
            per[s] = take
            left -= take
    else:
        raise ModelError(f"unknown placement policy {policy!r}")
    if any(c > machine.cores_per_socket for c in per):
        raise ModelError("allocation exceeds per-socket core count")
    return CoreAllocation(machine=machine, cores=cores, per_socket=tuple(per))
