"""Core placement across sockets, and outer-axis shard topology.

The paper's Intel scalability runs alternate cores between the two NUMA
domains to average out remote-access latency (§4.5); the resulting remote
traffic share is what the multicore model charges the NUMA penalty on.

:func:`partition_axis` / :func:`shard_neighbors` are the integer geometry
behind :mod:`repro.shard`: contiguous slabs along the outermost axis with
the remainder spread over the leading slabs, and the ring (periodic) or
chain (dirichlet) neighbor relation the halo exchange follows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..config import MachineConfig
from ..errors import ModelError, TilingError


@dataclass(frozen=True)
class CoreAllocation:
    machine: MachineConfig
    cores: int
    per_socket: Tuple[int, ...]

    @property
    def sockets_used(self) -> int:
        return sum(1 for c in self.per_socket if c > 0)

    @property
    def remote_fraction(self) -> float:
        """Expected share of memory traffic served by a remote socket.

        With pages interleaved over the used sockets, a core finds
        ``1/sockets_used`` of its data local; the rest is remote.
        """
        s = self.sockets_used
        return 0.0 if s <= 1 else 1.0 - 1.0 / s


def allocate_cores(machine: MachineConfig, cores: int,
                   *, policy: str = "alternate") -> CoreAllocation:
    """Distribute ``cores`` over sockets.

    ``alternate`` round-robins sockets (the paper's §4.5 setup);
    ``compact`` fills one socket before the next.
    """
    if not 1 <= cores <= machine.total_cores:
        raise ModelError(
            f"cores must be in [1, {machine.total_cores}], got {cores}"
        )
    per = [0] * machine.sockets
    if policy == "alternate":
        for i in range(cores):
            per[i % machine.sockets] += 1
    elif policy == "compact":
        left = cores
        for s in range(machine.sockets):
            take = min(left, machine.cores_per_socket)
            per[s] = take
            left -= take
    else:
        raise ModelError(f"unknown placement policy {policy!r}")
    if any(c > machine.cores_per_socket for c in per):
        raise ModelError("allocation exceeds per-socket core count")
    return CoreAllocation(machine=machine, cores=cores, per_socket=tuple(per))


@dataclass(frozen=True)
class ShardSlab:
    """One contiguous outer-axis slab ``[start, stop)`` of a partition."""

    index: int
    start: int
    stop: int

    @property
    def rows(self) -> int:
        return self.stop - self.start


def partition_axis(extent: int, shards: int) -> Tuple[ShardSlab, ...]:
    """Split ``extent`` rows into ``shards`` contiguous slabs.

    The remainder is spread over the leading slabs (the first
    ``extent % shards`` slabs get one extra row), so slab sizes differ by
    at most one and the partition is deterministic.
    """
    if shards < 1:
        raise TilingError("shards must be >= 1")
    if extent < shards:
        raise TilingError(
            f"cannot split {extent} rows into {shards} shards "
            "(every shard needs at least one row)"
        )
    base, rem = divmod(extent, shards)
    slabs = []
    start = 0
    for i in range(shards):
        rows = base + (1 if i < rem else 0)
        slabs.append(ShardSlab(index=i, start=start, stop=start + rows))
        start += rows
    return tuple(slabs)


def shard_neighbors(index: int, shards: int, *,
                    periodic: bool = True
                    ) -> Tuple[Optional[int], Optional[int]]:
    """The ``(low, high)`` neighbor indices of shard ``index``.

    Periodic partitions form a ring (a single shard is its own neighbor);
    non-periodic ones form a chain with ``None`` past the domain edges.
    """
    if shards < 1:
        raise TilingError("shards must be >= 1")
    if not 0 <= index < shards:
        raise TilingError(f"shard index {index} outside [0, {shards})")
    if periodic:
        return ((index - 1) % shards, (index + 1) % shards)
    lo = index - 1 if index > 0 else None
    hi = index + 1 if index + 1 < shards else None
    return (lo, hi)
