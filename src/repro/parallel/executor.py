"""Real shared-memory parallel execution of stencil sweeps.

Runs each phase of a :class:`~repro.tiling.schedule.TileSchedule`
concurrently, with a barrier between phases — the OpenMP structure the
paper's runs use, in Python form.  Jacobi sweeps with distinct in/out
buffers make every tile of a sweep independent, so the default schedule is
a single phase.

Two backends:

* ``"thread"`` (default) — a :class:`~concurrent.futures.ThreadPoolExecutor`
  writing tiles directly into the shared output buffer (numpy ufuncs
  release the GIL, so tiles genuinely overlap);
* ``"process"`` (opt-in) — a
  :class:`~concurrent.futures.ProcessPoolExecutor`: each worker computes
  its tile on a pickled copy of the input grid and returns the tile patch,
  which the parent writes back.  Heavier per-sweep traffic, but immune to
  GIL-bound tile kernels (pure-Python inner work) and a building block for
  multi-node dispatch.

Both backends are bitwise deterministic: a tile's result depends only on
the input grid, never on scheduling, and patches land in disjoint output
slices — so any worker count, and either backend, produces identical
grids from the same inputs (guarded by ``tests/test_parallel.py``).

Failure model (see ``docs/architecture.md``): a tile task that fails with
a :class:`~repro.errors.ReproError` (which includes injected faults) is
recomputed serially in the parent — :func:`apply_tile` zeroes its output
slice first, so recomputation is idempotent and bitwise identical.  A
crashed process pool (``BrokenProcessPool``, e.g. a killed worker) is
restarted up to ``pool_restarts`` times with the phase's unfinished tiles
resubmitted; past that budget the parent computes the stragglers itself.
Phases completed before a crash are never redone — the per-phase barrier
doubles as a recovery checkpoint.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import faults, obs
from ..errors import ReproError, TilingError
from ..stencils.boundary import fill_halo
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from ..tiling.blocks import Tile
from ..tiling.schedule import TileSchedule, build_schedule

#: executor backends accepted by :func:`run_parallel`.
BACKENDS: Tuple[str, ...] = ("thread", "process")


def pool_context() -> multiprocessing.context.BaseContext:
    """The pinned multiprocessing context every process pool uses.

    Defaults to ``forkserver`` where available, else ``spawn`` — both are
    spawn-safe: workers start from a fresh interpreter, so nothing leaks
    in by fork (an inherited fault injector, a half-held lock) and tasks
    must be picklable, which is exactly the contract the fault-shipping
    protocol and the shard runner rely on.  ``fork`` made all of that
    platform-dependent (macOS/Windows never had it for pools).

    ``REPRO_MP_START`` overrides the method (``fork`` included, for
    benchmarking against the cheaper-but-unsafe default).
    """
    method = os.environ.get("REPRO_MP_START")
    if not method:
        method = ("forkserver"
                  if "forkserver" in multiprocessing.get_all_start_methods()
                  else "spawn")
    if method not in multiprocessing.get_all_start_methods():
        raise TilingError(
            f"unsupported start method {method!r} (REPRO_MP_START); "
            f"available: {multiprocessing.get_all_start_methods()}"
        )
    return multiprocessing.get_context(method)


def apply_tile(spec: StencilSpec, grid: Grid, out: Grid, tile: Tile) -> None:
    """One Jacobi sweep restricted to ``tile`` (halo must be filled).
    Zeroes the output slice first, so a retried tile is idempotent."""
    faults.fault_point("tile.sweep")
    dst = out.data[tile.slices(out.halo)]
    dst.fill(0.0)
    for off, c in zip(spec.offsets, spec.coeffs):
        sl = tuple(
            slice(h + a + o, h + b + o)
            for h, a, b, o in zip(grid.halo, tile.start, tile.stop, off)
        )
        np.add(dst, c * grid.data[sl], out=dst)


def _sweep_tile_patch(args) -> np.ndarray:
    """Process-pool worker: compute one tile's sweep on a private copy of
    the grid and return the dense patch (module-level for picklability).

    ``actions`` are faults the *parent* decided at submission time —
    workers cannot see the parent's injector, so triggered actions ride
    along with the task and are replayed here (the only place a ``kill``
    fault really exits)."""
    spec, grid, tile, actions = args
    for action in actions:
        faults.perform_shipped(action)
    out = grid.like()
    apply_tile(spec, grid, out, tile)
    return np.ascontiguousarray(out.data[tile.slices(out.halo)])


def _retry_tile(spec: StencilSpec, grid: Grid, out: Grid, tile: Tile,
                retries: int) -> None:
    """Serial in-parent recomputation of a failed tile, with a bounded
    retry budget (later attempts count fresh fault-site hits, so a rule
    with a finite ``times`` eventually lets the tile through)."""
    obs.counter("parallel.task_retries").inc()
    last: Optional[ReproError] = None
    for _ in range(retries + 1):
        try:
            apply_tile(spec, grid, out, tile)
            return
        except ReproError as exc:
            last = exc
    raise last  # retry budget exhausted: surface the final failure


class _PoolBox:
    """Holder for a restartable process pool (a crashed
    ``ProcessPoolExecutor`` is unusable; recovery needs a fresh one)."""

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self.pool = ProcessPoolExecutor(max_workers=workers,
                                        mp_context=pool_context())

    def restart(self) -> None:
        self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = ProcessPoolExecutor(max_workers=self.workers,
                                        mp_context=pool_context())

    def shutdown(self) -> None:
        self.pool.shutdown()


def _decide_task_faults(inj) -> Tuple[faults.FaultAction, ...]:
    """Consume this task's fault-site hits in the parent, in submission
    order — the deterministic stand-in for worker-side ``fault_point``
    calls the injector cannot observe across the process boundary."""
    if inj is None:
        return ()
    actions = []
    for site in ("pool.task_start", "tile.sweep"):
        action = inj.decide(site)
        if action is not None:
            actions.append(action)
    return tuple(actions)


def _run_phase_process(box: _PoolBox, spec: StencilSpec, cur: Grid,
                       nxt: Grid, phase: Sequence[Tile], retries: int,
                       restarts_left: int) -> int:
    """One phase on the process pool; returns the remaining restart
    budget (negative = degraded to in-parent execution for the rest of
    the run).  Loops until every tile of the phase has landed."""
    if restarts_left < 0:
        for tile in phase:
            _retry_tile(spec, cur, nxt, tile, retries)
        return restarts_left
    pending: List[Tile] = list(phase)
    while pending:
        inj = faults.active()
        futures: List[Tuple] = []
        unsubmitted: List[Tile] = []
        try:
            for tile in pending:
                futures.append((box.pool.submit(
                    _sweep_tile_patch,
                    (spec, cur, tile, _decide_task_faults(inj))), tile))
        except BrokenProcessPool:
            # the pool died before this phase's submissions finished
            unsubmitted = pending[len(futures):]
        still_pending: List[Tile] = list(unsubmitted)
        broken = bool(unsubmitted)
        for fut, tile in futures:
            try:
                patch = fut.result()
            except faults.FaultInjected:
                # the worker replayed a raise-style fault: recompute here
                _retry_tile(spec, cur, nxt, tile, retries)
            except BrokenProcessPool:
                broken = True
                still_pending.append(tile)
            else:
                nxt.data[tile.slices(nxt.halo)] = patch
        pending = still_pending
        if broken and pending:
            obs.counter("parallel.pool_restarts").inc()
            obs.counter("parallel.fallback.reason.worker_lost").inc()
            if restarts_left > 0:
                restarts_left -= 1
                box.restart()
            else:
                # restart budget exhausted: degrade to the parent for
                # this phase and every later one
                restarts_left = -1
                for tile in pending:
                    _retry_tile(spec, cur, nxt, tile, retries)
                pending = []
    return restarts_left


def _run_phase_thread(pool: ThreadPoolExecutor, spec: StencilSpec,
                      cur: Grid, nxt: Grid, phase: Sequence[Tile],
                      retries: int) -> None:
    """One phase on the thread pool; failed tiles are recomputed
    serially in the caller after the barrier."""

    def task(tile: Tile) -> None:
        faults.fault_point("pool.task_start")
        apply_tile(spec, cur, nxt, tile)

    futures = [(pool.submit(task, tile), tile) for tile in phase]
    failed: List[Tile] = []
    for fut, tile in futures:
        try:
            fut.result()
        except ReproError:
            failed.append(tile)
    for tile in failed:
        _retry_tile(spec, cur, nxt, tile, retries)


def run_parallel(
    spec: StencilSpec,
    grid: Grid,
    steps: int,
    *,
    tile_shape: Optional[Sequence[int]] = None,
    workers: int = 4,
    boundary: str = "periodic",
    value: float = 0.0,
    schedule: Optional[TileSchedule] = None,
    backend: str = "thread",
    retries: int = 2,
    pool_restarts: int = 2,
    shards: Optional[int] = None,
    temporal_block: int = 1,
) -> Grid:
    """``steps`` parallel Jacobi sweeps; returns a new grid.

    ``tile_shape`` defaults to splitting the outermost axis across
    ``workers``.  A custom ``schedule`` overrides the default
    single-phase blocking.  ``backend`` selects the executor (see the
    module docstring); results are bitwise identical across backends and
    worker counts.  ``retries`` bounds in-parent recomputations of a
    failed tile; ``pool_restarts`` bounds process-pool resurrections
    after a worker loss (past it, the parent computes remaining tiles
    itself).  Every recovery path is bitwise identical to a clean run.

    ``shards=N`` switches to the halo-exchange shard runner
    (:mod:`repro.shard`): the grid is partitioned into N outer-axis
    slabs, each swept privately with ghost rows exchanged at every
    synchronization point; ``temporal_block=s`` widens the exchanged
    halo to ``radius*s`` so ``s`` sweeps run per exchange.  Interiors
    stay bitwise identical to the unsharded path.
    """
    if steps < 0:
        raise TilingError("steps must be non-negative")
    if shards is None and temporal_block != 1:
        raise TilingError("temporal_block requires shards=N")
    if shards is not None:
        if tile_shape is not None or schedule is not None:
            raise TilingError(
                "shards= is mutually exclusive with tile_shape/schedule "
                "(shards partition the outer axis themselves)"
            )
        from ..shard.runner import run_sharded  # lazy: avoids an import cycle
        return run_sharded(
            spec, grid, steps, shards=shards,
            temporal_block=temporal_block, executor=backend,
            workers=workers, boundary=boundary, value=value,
            retries=retries, pool_restarts=pool_restarts,
        )
    if workers < 1:
        raise TilingError("workers must be >= 1")
    if backend not in BACKENDS:
        raise TilingError(
            f"unknown executor backend {backend!r}; known: {BACKENDS}"
        )
    if retries < 0:
        raise TilingError("retries must be >= 0")
    if pool_restarts < 0:
        raise TilingError("pool_restarts must be >= 0")
    if schedule is None:
        if tile_shape is None:
            chunk = max(1, -(-grid.shape[0] // max(1, workers)))
            tile_shape = (chunk,) + grid.shape[1:]
        schedule = build_schedule(grid.shape, tile_shape)
    cur = grid.copy()
    nxt = grid.like()
    if backend == "process":
        box = _PoolBox(workers)
        restarts_left = pool_restarts
        try:
            for _ in range(steps):
                fill_halo(cur, boundary, value=value)
                for phase in schedule.phases:
                    # barrier per phase: every tile lands before the next
                    # phase starts, and a completed phase is never redone.
                    restarts_left = _run_phase_process(
                        box, spec, cur, nxt, phase, retries, restarts_left)
                cur, nxt = nxt, cur
        finally:
            box.shutdown()
        return cur
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for _ in range(steps):
            fill_halo(cur, boundary, value=value)
            for phase in schedule.phases:
                _run_phase_thread(pool, spec, cur, nxt, phase, retries)
            cur, nxt = nxt, cur
    return cur
