"""Real shared-memory parallel execution of stencil sweeps.

Runs each phase of a :class:`~repro.tiling.schedule.TileSchedule`
concurrently on a thread pool (numpy ufuncs release the GIL, so tiles
genuinely overlap), with a barrier between phases — the OpenMP structure
the paper's runs use, in Python form.  Jacobi sweeps with distinct in/out
buffers make every tile of a sweep independent, so the default schedule is
a single phase.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

import numpy as np

from ..errors import TilingError
from ..stencils.boundary import fill_halo
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from ..tiling.blocks import Tile
from ..tiling.schedule import TileSchedule, build_schedule


def apply_tile(spec: StencilSpec, grid: Grid, out: Grid, tile: Tile) -> None:
    """One Jacobi sweep restricted to ``tile`` (halo must be filled)."""
    dst = out.data[tile.slices(out.halo)]
    dst.fill(0.0)
    for off, c in zip(spec.offsets, spec.coeffs):
        sl = tuple(
            slice(h + a + o, h + b + o)
            for h, a, b, o in zip(grid.halo, tile.start, tile.stop, off)
        )
        np.add(dst, c * grid.data[sl], out=dst)


def run_parallel(
    spec: StencilSpec,
    grid: Grid,
    steps: int,
    *,
    tile_shape: Optional[Sequence[int]] = None,
    workers: int = 4,
    boundary: str = "periodic",
    value: float = 0.0,
    schedule: Optional[TileSchedule] = None,
) -> Grid:
    """``steps`` parallel Jacobi sweeps; returns a new grid.

    ``tile_shape`` defaults to splitting the outermost axis across
    ``workers``.  A custom ``schedule`` overrides the default
    single-phase blocking.
    """
    if steps < 0:
        raise TilingError("steps must be non-negative")
    if workers < 1:
        raise TilingError("workers must be >= 1")
    if schedule is None:
        if tile_shape is None:
            chunk = max(1, -(-grid.shape[0] // max(1, workers)))
            tile_shape = (chunk,) + grid.shape[1:]
        schedule = build_schedule(grid.shape, tile_shape)
    cur = grid.copy()
    nxt = grid.like()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for _ in range(steps):
            fill_halo(cur, boundary, value=value)
            for phase in schedule.phases:
                # barrier per phase: list() waits for every tile.
                list(pool.map(lambda t: apply_tile(spec, cur, nxt, t), phase))
            cur, nxt = nxt, cur
    return cur
