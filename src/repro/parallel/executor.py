"""Real shared-memory parallel execution of stencil sweeps.

Runs each phase of a :class:`~repro.tiling.schedule.TileSchedule`
concurrently, with a barrier between phases — the OpenMP structure the
paper's runs use, in Python form.  Jacobi sweeps with distinct in/out
buffers make every tile of a sweep independent, so the default schedule is
a single phase.

Two backends:

* ``"thread"`` (default) — a :class:`~concurrent.futures.ThreadPoolExecutor`
  writing tiles directly into the shared output buffer (numpy ufuncs
  release the GIL, so tiles genuinely overlap);
* ``"process"`` (opt-in) — a
  :class:`~concurrent.futures.ProcessPoolExecutor`: each worker computes
  its tile on a pickled copy of the input grid and returns the tile patch,
  which the parent writes back.  Heavier per-sweep traffic, but immune to
  GIL-bound tile kernels (pure-Python inner work) and a building block for
  multi-node dispatch.

Both backends are bitwise deterministic: a tile's result depends only on
the input grid, never on scheduling, and patches land in disjoint output
slices — so any worker count, and either backend, produces identical
grids from the same inputs (guarded by ``tests/test_parallel.py``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import TilingError
from ..stencils.boundary import fill_halo
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from ..tiling.blocks import Tile
from ..tiling.schedule import TileSchedule, build_schedule

#: executor backends accepted by :func:`run_parallel`.
BACKENDS: Tuple[str, ...] = ("thread", "process")


def apply_tile(spec: StencilSpec, grid: Grid, out: Grid, tile: Tile) -> None:
    """One Jacobi sweep restricted to ``tile`` (halo must be filled)."""
    dst = out.data[tile.slices(out.halo)]
    dst.fill(0.0)
    for off, c in zip(spec.offsets, spec.coeffs):
        sl = tuple(
            slice(h + a + o, h + b + o)
            for h, a, b, o in zip(grid.halo, tile.start, tile.stop, off)
        )
        np.add(dst, c * grid.data[sl], out=dst)


def _sweep_tile_patch(args) -> np.ndarray:
    """Process-pool worker: compute one tile's sweep on a private copy of
    the grid and return the dense patch (module-level for picklability)."""
    spec, grid, tile = args
    out = grid.like()
    apply_tile(spec, grid, out, tile)
    return np.ascontiguousarray(out.data[tile.slices(out.halo)])


def run_parallel(
    spec: StencilSpec,
    grid: Grid,
    steps: int,
    *,
    tile_shape: Optional[Sequence[int]] = None,
    workers: int = 4,
    boundary: str = "periodic",
    value: float = 0.0,
    schedule: Optional[TileSchedule] = None,
    backend: str = "thread",
) -> Grid:
    """``steps`` parallel Jacobi sweeps; returns a new grid.

    ``tile_shape`` defaults to splitting the outermost axis across
    ``workers``.  A custom ``schedule`` overrides the default
    single-phase blocking.  ``backend`` selects the executor (see the
    module docstring); results are bitwise identical across backends and
    worker counts.
    """
    if steps < 0:
        raise TilingError("steps must be non-negative")
    if workers < 1:
        raise TilingError("workers must be >= 1")
    if backend not in BACKENDS:
        raise TilingError(
            f"unknown executor backend {backend!r}; known: {BACKENDS}"
        )
    if schedule is None:
        if tile_shape is None:
            chunk = max(1, -(-grid.shape[0] // max(1, workers)))
            tile_shape = (chunk,) + grid.shape[1:]
        schedule = build_schedule(grid.shape, tile_shape)
    cur = grid.copy()
    nxt = grid.like()
    if backend == "process":
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for _ in range(steps):
                fill_halo(cur, boundary, value=value)
                for phase in schedule.phases:
                    # barrier per phase: zip over map waits for every tile;
                    # the parent owns all writes, in tile order.
                    tasks = [(spec, cur, t) for t in phase]
                    for tile, patch in zip(phase,
                                           pool.map(_sweep_tile_patch, tasks)):
                        nxt.data[tile.slices(nxt.halo)] = patch
                cur, nxt = nxt, cur
        return cur
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for _ in range(steps):
            fill_halo(cur, boundary, value=value)
            for phase in schedule.phases:
                # barrier per phase: list() waits for every tile.
                list(pool.map(lambda t: apply_tile(spec, cur, nxt, t), phase))
            cur, nxt = nxt, cur
    return cur
