"""Figure 8 — shuffle vs computation time, before/after SDF.

The paper profiles the Box-2D9P run with VTune and shows SDF cutting
shuffle time by 61.58% and computation by 20.75%.  Our substitute is the
simulated equivalent: classify each instruction of the generated stream by
category, weight by its reciprocal throughput (the time the execution
ports spend on it), and compare the LBV-only stream against the LBV+SDF
stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..config import MachineConfig
from ..machine.costs import CostTable, cost_table_for
from ..machine.isa import InstrClass
from ..schemes import model_program
from ..stencils.spec import StencilSpec
from ..vectorize.program import VectorProgram


@dataclass(frozen=True)
class HotspotBreakdown:
    """Per-vector port-time by category (the Figure-8 horizontal bars)."""

    scheme: str
    shuffle_cycles: float
    compute_cycles: float
    load_cycles: float
    store_cycles: float
    other_cycles: float
    events: Tuple[Tuple[str, float], ...]  #: per-opcode (the vertical bars)

    @property
    def total_cycles(self) -> float:
        return (self.shuffle_cycles + self.compute_cycles + self.load_cycles
                + self.store_cycles + self.other_cycles)

    @property
    def shuffle_share(self) -> float:
        return self.shuffle_cycles / self.total_cycles if self.total_cycles else 0.0


def hotspot_breakdown(program: VectorProgram, machine: MachineConfig,
                      table: CostTable | None = None) -> HotspotBreakdown:
    """Classify one body execution's port time, normalized per output
    vector per fused step."""
    table = table or cost_table_for(machine)
    denom = program.vectors_per_iter * program.steps_per_iter
    buckets: Dict[InstrClass, float] = {}
    per_op: Dict[str, float] = {}
    for instr in program.body:
        t = table.cpi(instr.op) / denom
        buckets[instr.klass] = buckets.get(instr.klass, 0.0) + t
        per_op[instr.op.value] = per_op.get(instr.op.value, 0.0) + t
    events = tuple(sorted(per_op.items(), key=lambda kv: -kv[1]))
    return HotspotBreakdown(
        scheme=program.scheme,
        shuffle_cycles=buckets.get(InstrClass.CROSS_LANE, 0.0)
        + buckets.get(InstrClass.IN_LANE, 0.0),
        compute_cycles=buckets.get(InstrClass.ARITH, 0.0),
        load_cycles=buckets.get(InstrClass.LOAD, 0.0),
        store_cycles=buckets.get(InstrClass.STORE, 0.0),
        other_cycles=buckets.get(InstrClass.OTHER, 0.0),
        events=events,
    )


def sdf_reduction(
    spec: StencilSpec, machine: MachineConfig
) -> Tuple[HotspotBreakdown, HotspotBreakdown, Dict[str, float]]:
    """(before, after, reductions) for the Figure-8 experiment: the same
    kernel lowered without SDF (per-row butterflies) and with SDF.

    ``reductions`` holds the fractional drop in shuffle and compute time —
    the paper's 61.6% / 20.8% figures for Box-2D9P."""
    before = hotspot_breakdown(model_program("lbv", spec, machine), machine)
    after = hotspot_breakdown(model_program("jigsaw", spec, machine), machine)
    red = {
        "shuffle": 1.0 - after.shuffle_cycles / before.shuffle_cycles
        if before.shuffle_cycles else 0.0,
        "compute": 1.0 - after.compute_cycles / before.compute_cycles
        if before.compute_cycles else 0.0,
        "total": 1.0 - after.total_cycles / before.total_cycles
        if before.total_cycles else 0.0,
    }
    return before, after, red
