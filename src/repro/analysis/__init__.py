"""Analysis utilities: the paper's instruction accounting (Table 2), the
GStencil/s metric (Eq. 3), the Figure-8 hotspot breakdown, and the
Figure-7 ablation ladder.
"""

from .metrics import gstencil_per_s, speedup, geomean
from .instruction_count import (
    PAPER_TABLE2,
    measured_table2_row,
    analytic_table2_row,
)
from .hotspots import HotspotBreakdown, hotspot_breakdown, sdf_reduction
from .ablation import AblationPoint, ablation_study
from .report import render_table, render_series
from .roofline import RooflinePoint, roofline_point, roofline_table

__all__ = [
    "gstencil_per_s",
    "speedup",
    "geomean",
    "PAPER_TABLE2",
    "measured_table2_row",
    "analytic_table2_row",
    "HotspotBreakdown",
    "hotspot_breakdown",
    "sdf_reduction",
    "AblationPoint",
    "ablation_study",
    "render_table",
    "render_series",
    "RooflinePoint",
    "roofline_point",
    "roofline_table",
]
