"""Roofline analysis of generated kernels.

Places each (scheme, kernel) on the classical roofline: operational
intensity (FLOPs per byte of compulsory traffic) against the machine's
compute ceiling and per-level bandwidth ceilings.  This explains *why*
the Figure-9 curves look the way they do — stencils sit far left of the
ridge point, so everything above the active bandwidth ceiling is wasted
compute capability, and Jigsaw's gains come from raising the achieved
fraction of that ceiling (fewer non-compute instructions), while ITM's
come from moving the kernel *rightwards* (more steps per byte).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import MachineConfig
from ..errors import ModelError
from ..machine.perfmodel import PerformanceModel
from ..schemes import model_cost, model_program
from ..stencils.spec import StencilSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel/scheme placed on the roofline."""

    scheme: str
    kernel: str
    flops_per_point: float
    bytes_per_point: float          #: compulsory traffic per point per step
    intensity: float                #: FLOP / byte
    achieved_gflops: float          #: from the pipeline model
    compute_ceiling_gflops: float
    bandwidth_ceiling_gflops: Dict[str, float]  #: per memory level

    def ceiling_at(self, level: str) -> float:
        """The roofline height at this point's intensity for ``level``."""
        return min(self.compute_ceiling_gflops,
                   self.bandwidth_ceiling_gflops[level])

    @property
    def memory_bound_at_dram(self) -> bool:
        return self.bandwidth_ceiling_gflops["DRAM"] \
            < self.compute_ceiling_gflops


def peak_gflops(machine: MachineConfig) -> float:
    """Compute ceiling: FMA throughput x width x 2 FLOPs, one core."""
    return (machine.fma_ports * machine.vector_elems * 2.0
            * machine.freq_ghz)


def flops_of(spec: StencilSpec) -> float:
    """FLOPs per point per step of the *mathematical* kernel: one multiply
    per tap plus the accumulating adds."""
    return 2.0 * spec.npoints - 1.0


def roofline_point(
    scheme: str,
    spec: StencilSpec,
    machine: MachineConfig,
    *,
    steps_per_byte_bonus: Optional[float] = None,
) -> RooflinePoint:
    """Place one scheme/kernel pair on ``machine``'s roofline."""
    cost = model_cost(scheme, spec, machine)
    program = model_program(scheme, spec, machine)
    elem = machine.element_bytes
    # compulsory traffic: read + write each point once per fused sweep
    bytes_pp = 2.0 * elem / cost.steps_per_iter
    if steps_per_byte_bonus:
        bytes_pp /= steps_per_byte_bonus
    flops_pp = flops_of(spec)
    intensity = flops_pp / bytes_pp
    # achieved compute rate from the pipeline model
    points_per_cycle = cost.elems_per_iter * cost.steps_per_iter \
        / cost.cycles_per_iter
    achieved = points_per_cycle * flops_pp * machine.freq_ghz
    bw_ceilings: Dict[str, float] = {}
    model = PerformanceModel(machine)
    for level in machine.caches:
        bw_ceilings[level.name] = intensity * \
            model.memory.bandwidth(level, 1)
    bw_ceilings["DRAM"] = intensity * model.memory.bandwidth(None, 1)
    return RooflinePoint(
        scheme=scheme,
        kernel=spec.name,
        flops_per_point=flops_pp,
        bytes_per_point=bytes_pp,
        intensity=intensity,
        achieved_gflops=achieved,
        compute_ceiling_gflops=peak_gflops(machine),
        bandwidth_ceiling_gflops=bw_ceilings,
    )


def roofline_table(
    spec: StencilSpec,
    machine: MachineConfig,
    *,
    schemes: Tuple[str, ...] = ("auto", "reorg", "jigsaw", "t-jigsaw"),
) -> List[RooflinePoint]:
    """Roofline placement of several schemes for one kernel."""
    points = []
    for scheme in schemes:
        try:
            points.append(roofline_point(scheme, spec, machine))
        except Exception as exc:  # scheme unsupported for this kernel
            from ..errors import ReproError
            if not isinstance(exc, ReproError):
                raise
    if not points:
        raise ModelError(f"no scheme produced a roofline point for {spec.name}")
    return points
