"""Figure 7 — the Jigsaw optimization ladder.

Starting from the Tessellating-Tiling base (Reorg in-core scheme + tiling)
and adding LBV, then SDF, then ITM, the study reports absolute GStencil/s
and each rung's contribution, as a function of problem size (fixed time
iterations) and of time iterations (fixed problem size) on both machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import MachineConfig
from ..parallel.simulator import MulticoreModel, ParallelSetup
from ..schemes import model_cost
from ..stencils.spec import StencilSpec

#: ladder rung -> scheme-registry name
LADDER: Tuple[Tuple[str, str], ...] = (
    ("base", "reorg"),
    ("+LBV", "lbv"),
    ("+SDF", "jigsaw"),
    ("+ITM", "t-jigsaw"),
)


@dataclass(frozen=True)
class AblationPoint:
    machine: str
    size: Tuple[int, ...]
    steps: int
    gstencil: Dict[str, float]       #: rung -> absolute GStencil/s
    contribution: Dict[str, float]   #: rung -> fraction of the full gain

    @property
    def total_speedup(self) -> float:
        return self.gstencil["+ITM"] / self.gstencil["base"]


def ablation_study(
    spec: StencilSpec,
    machine: MachineConfig,
    *,
    sizes: Sequence[Tuple[int, ...]],
    steps: int,
    tile_shape: Optional[Sequence[int]] = None,
    cores: int = 1,
) -> List[AblationPoint]:
    """One ablation curve: each rung's modelled GStencil/s per size."""
    model = MulticoreModel(machine)
    costs = {rung: model_cost(scheme, spec, machine)
             for rung, scheme in LADDER}
    points_list: List[AblationPoint] = []
    for size in sizes:
        n = 1
        for s in size:
            n *= s
        setup = ParallelSetup(tile_shape=tile_shape,
                              time_depth=2 if tile_shape else 1)
        gs: Dict[str, float] = {}
        for rung, _ in LADDER:
            res = model.estimate(costs[rung], spec, points=n, steps=steps,
                                 cores=cores, setup=setup)
            gs[rung] = res.gstencil_s
        gain = gs["+ITM"] - gs["base"]
        contrib: Dict[str, float] = {}
        prev = gs["base"]
        for rung, _ in LADDER[1:]:
            contrib[rung] = (gs[rung] - prev) / gain if gain > 0 else 0.0
            prev = gs[rung]
        points_list.append(AblationPoint(
            machine=machine.name,
            size=tuple(size),
            steps=steps,
            gstencil=gs,
            contribution=contrib,
        ))
    return points_list


def ablation_vs_steps(
    spec: StencilSpec,
    machine: MachineConfig,
    *,
    size: Tuple[int, ...],
    steps_list: Sequence[int],
    tile_shape: Optional[Sequence[int]] = None,
    cores: int = 1,
) -> List[AblationPoint]:
    """The Figure-7(b) companion: fixed size, varying time iterations."""
    out = []
    for steps in steps_list:
        out.extend(ablation_study(
            spec, machine, sizes=[size], steps=steps,
            tile_shape=tile_shape, cores=cores,
        ))
    return out
