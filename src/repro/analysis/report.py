"""Plain-text rendering of tables and figure series.

The benchmark harness is terminal-based; each experiment prints the same
rows/series the paper's tables and figures report, via these helpers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A fixed-width ASCII table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_series(
    x_label: str,
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
) -> str:
    """A figure rendered as one table: x column + one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    body = render_table(headers, rows)
    return f"{title}\n{body}" if title else body


def render_dict(title: str, data: Dict[str, object]) -> str:
    lines = [title]
    width = max((len(k) for k in data), default=0)
    for k, v in data.items():
        lines.append(f"  {k.ljust(width)} : {_fmt(v)}")
    return "\n".join(lines)
