"""Table 2 — analytical vector instructions per vector.

Three sources are compared:

* :data:`PAPER_TABLE2` — the paper's published numbers, verbatim;
* :func:`analytic_table2_row` — closed-form counts from the kernel's
  structure (the formulas behind the paper's accounting);
* :func:`measured_table2_row` — counts measured from the instruction
  streams this repository actually generates (body mix per output vector
  per fused step).

Measured Jigsaw counts can deviate from the paper's by fractions of an
instruction (see EXPERIMENTS.md): the paper amortizes its two-step ITM
into the Jigsaw row and counts some shared shuffles differently; our
Reorg implementation also shares cross-lane intermediates that the
paper's accounting bills per neighbour (Star-1D5P: C=2 measured vs 3
printed).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..config import MachineConfig
from ..schemes import model_program
from ..stencils.spec import StencilSpec, iter_row_offsets

#: kernel -> method -> (L, S, C, I), verbatim from the paper's Table 2.
#: Methods: "auto" (Multiple Loads), "reorg" (Data Reorganization),
#: "jigsaw" (full Jigsaw with its amortized ITM).
PAPER_TABLE2: Dict[str, Dict[str, Tuple[float, float, float, float]]] = {
    "star-1d5p": {
        "auto": (5, 1, 0, 0),
        "reorg": (1, 1, 3, 3),
        "jigsaw": (0.5, 0.5, 0.5, 2),
    },
    "box-2d9p": {
        "auto": (9, 1, 0, 0),
        "reorg": (3, 1, 6, 6),
        "jigsaw": (2.5, 0.5, 0.5, 1),
    },
    "box-3d27p": {
        "auto": (27, 1, 0, 0),
        "reorg": (9, 1, 18, 18),
        "jigsaw": (12.5, 0.5, 0.5, 1),
    },
    "heat-1d": {
        "auto": (3, 1, 0, 0),
        "reorg": (1, 1, 2, 2),
        "jigsaw": (0.5, 0.5, 0.5, 1.5),
    },
    "heat-2d": {
        "auto": (5, 1, 0, 0),
        "reorg": (3, 1, 2, 2),
        "jigsaw": (2.5, 0.5, 0.5, 1),
    },
    "heat-3d": {
        "auto": (7, 1, 0, 0),
        "reorg": (5, 1, 2, 2),
        "jigsaw": (6.5, 0.5, 0.5, 1),
    },
}

TABLE2_KERNELS: Tuple[str, ...] = tuple(PAPER_TABLE2)
#: methods the tooling accounts for.  The paper publishes numbers for the
#: first three only; ``temporal`` (vertical time fusion) and
#: ``redundancy`` (column-sum hoisting) are related-work families this
#: repository adds — their paper cells render as "-".
TABLE2_METHODS: Tuple[str, ...] = ("auto", "reorg", "jigsaw",
                                   "temporal", "redundancy")


def analytic_table2_row(
    method: str, spec: StencilSpec, *, fused_steps: int = 2
) -> Tuple[float, float, float, float]:
    """Closed-form (L, S, C, I) per output vector.

    * ``auto`` — one load per stencil point, one store, no shuffles.
    * ``reorg`` — one load per row, one store; each row whose taps include
      a shifted neighbour pays 2 cross-lane and 2 in-lane shuffles (the
      prev/cur/next lane-concat pair plus the two odd-shift ``vshufpd``).
    * ``jigsaw`` — rows of the ``fused_steps``-merged kernel loaded once
      per ``2W`` block and fused step (``rows/steps`` loads per vector),
      ``1/steps`` stores, ``1/steps`` cross-lane, and the butterfly
      deinterleave/interleave in-lane work.
    * ``temporal`` — vertical fusion resolves every tap of the
      ``fused_steps``-merged footprint with one unaligned load, so one
      load per merged point and one store, both amortized over the fused
      steps; no shuffles at all.
    * ``redundancy`` — one aligned load per row, one store; each nonzero
      column offset pays exactly one cross-lane lane-concat (the odd
      shifts' even neighbours fall on the aligned registers) plus one
      in-lane ``vshufpd`` when the offset is odd (the same W=4 float64
      lane convention as the ``reorg`` accounting).
    """
    rows = list(iter_row_offsets(spec))
    if method == "auto":
        return (float(spec.npoints), 1.0, 0.0, 0.0)
    if method == "reorg":
        shifted = sum(1 for _, taps in rows if any(d != 0 for d in taps))
        return (float(len(rows)), 1.0, 2.0 * shifted, 2.0 * shifted)
    if method == "jigsaw":
        from ..core.itm import merged_spec
        s = fused_steps
        if spec.ndim == 3 and spec.is_box:
            s = 1  # the paper does not fuse 3-D boxes (§4.3)
        fused = merged_spec(spec, s)
        fused_rows = len(list(iter_row_offsets(fused)))
        loads = fused_rows / s
        # one cross-lane per output vector per fused sweep
        cross = 1.0 / s
        # deinterleaves (~2 per tap parity class) + 2 interleaves per 2 vecs
        rx = fused.radius[-1]
        inlane = (2.0 * (rx + 1) + 2.0) / 2.0 / s
        return (loads, 1.0 / s, cross, inlane)
    if method == "temporal":
        from ..core.itm import merged_spec
        s = fused_steps
        merged = merged_spec(spec, s)
        return (merged.npoints / s, 1.0 / s, 0.0, 0.0)
    if method == "redundancy":
        columns = sorted({off[-1] for off in spec.offsets})
        shifted = [dx for dx in columns if dx != 0]
        odd = [dx for dx in shifted if dx % 2]
        return (float(len(rows)), 1.0, float(len(shifted)),
                float(len(odd)))
    raise KeyError(f"unknown Table-2 method {method!r}")


def measured_table2_row(
    method: str, spec: StencilSpec, machine: MachineConfig
) -> Tuple[float, float, float, float]:
    """(L, S, C, I) per output vector per fused step, measured from the
    generated instruction stream's body mix.

    The paper's Table 2 amortizes a uniform two-step ITM into its Jigsaw
    row (that is what makes its L/S/C values halves); we lower with
    ``time_fusion=2`` to measure like for like."""
    if method == "jigsaw":
        from ..core.jigsaw import generate_jigsaw, required_halo
        from ..stencils.grid import Grid
        nx = 6 * machine.vector_elems
        shape = (4,) * (spec.ndim - 1) + (nx,)
        grid = Grid(shape, required_halo(spec, machine, time_fusion=2))
        program = generate_jigsaw(spec, machine, grid, time_fusion=2)
    else:
        program = model_program(method, spec, machine)
    pv = program.per_vector_mix()
    return (pv["L"], pv["S"], pv["C"], pv["I"])
