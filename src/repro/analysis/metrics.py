"""Performance metrics.

The paper measures GStencil/s (Eq. 3): grid-point updates per second in
billions.  Speedup comparisons in Figure 10 are taken relative to the
slowest method of each kernel group (SDSL in the paper's runs).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

from ..errors import ModelError


def gstencil_per_s(points: int, steps: int, seconds: float) -> float:
    """Equation 3: ``T * prod(N_i) / (t * 1e9)``."""
    if seconds <= 0:
        raise ModelError("elapsed time must be positive")
    if points <= 0 or steps <= 0:
        raise ModelError("points and steps must be positive")
    return points * steps / seconds / 1e9


def speedup(value: float, baseline: float) -> float:
    if baseline <= 0:
        raise ModelError("baseline must be positive")
    return value / baseline


def geomean(values: Iterable[float]) -> float:
    vals = [float(v) for v in values]
    if not vals:
        raise ModelError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ModelError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def relative_speedups(results: Dict[str, float],
                      *, baseline: str | None = None) -> Dict[str, float]:
    """Speedup of every method relative to ``baseline`` (default: the
    slowest method, the paper's Figure-10 convention)."""
    if not results:
        raise ModelError("no results to compare")
    if baseline is None:
        baseline = min(results, key=lambda k: results[k])
    base = results[baseline]
    return {k: speedup(v, base) for k, v in results.items()}


def amortized(value: float, steps: int) -> float:
    if steps < 1:
        raise ModelError("steps must be >= 1")
    return value / steps
