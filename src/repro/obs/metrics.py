"""The metrics registry: counters, gauges, histograms with JSON export.

Instruments are created on first use (``registry.counter("cache.hits")``)
and are process-wide aggregates — no per-label cardinality machinery;
call sites that need a breakdown (e.g. the batch-fallback reason
taxonomy) encode it in the instrument name
(``exec.batch_fallback.reason.mem_hook``).

Histograms keep exact ``count``/``sum``/``min``/``max`` plus power-of-two
buckets (keyed ``"<=2^e"`` by the exponent of the upper bound), so the
export is small, deterministic, and mergeable across snapshots.

All updates are guarded by one registry-wide lock; every instrumented
site is at sweep/request granularity (never per instruction), so
contention is negligible next to the work being measured.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """A distribution summary (see module docstring)."""

    __slots__ = ("_lock", "count", "total", "min", "max", "buckets")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            e = _bucket_exponent(value)
            self.buckets[e] = self.buckets.get(e, 0) + 1

    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def as_dict(self) -> Dict[str, Any]:
        """A point-in-time copy — taken under the lock so a concurrent
        ``observe`` can neither tear the summary nor mutate the returned
        buckets, and the export never aliases live registry state."""
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.mean(),
                "buckets": {f"<=2^{e}": n
                            for e, n in sorted(self.buckets.items())},
            }


def _bucket_exponent(value: float) -> int:
    """Exponent ``e`` of the smallest power-of-two upper bound
    ``2^e >= value`` (clamped to [-40, 40]; <= 0 falls in the lowest)."""
    if value <= 0 or not math.isfinite(value):
        return -40
    return max(-40, min(40, math.ceil(math.log2(value))))


class NullMetric:
    """Inert counter/gauge/histogram used while observability is off."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = NullMetric()


class MetricsRegistry:
    """Name -> instrument map with a JSON-compatible snapshot."""

    def __init__(self) -> None:
        # reentrant: snapshot() holds it while each histogram's as_dict
        # re-acquires it (instruments share the registry lock)
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            m = self._counters.get(name)
            if m is None:
                m = self._counters[name] = Counter(self._lock)
            return m

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            m = self._gauges.get(name)
            if m is None:
                m = self._gauges[name] = Gauge(self._lock)
            return m

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            m = self._histograms.get(name)
            if m is None:
                m = self._histograms[name] = Histogram(self._lock)
            return m

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "counters": {k: c.value
                             for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value
                           for k, g in sorted(self._gauges.items())},
                "histograms": {k: h.as_dict()
                               for k, h in sorted(self._histograms.items())},
            }


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NULL_METRIC", "NullMetric"]
