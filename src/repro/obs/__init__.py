"""Structured observability: spans, metrics, and a process-wide switch.

The rest of the stack is instrumented against *this module's* functions,
never against a concrete tracer — so the default state (disabled) costs
one module-global boolean check per instrumented site and allocates
nothing:

* :func:`span` returns a shared no-op context manager while disabled;
* :func:`counter` / :func:`gauge` / :func:`histogram` return a shared
  inert instrument while disabled;
* hot loops additionally guard with :func:`enabled` so they skip even
  the timestamp reads feeding a histogram.

``repro run --profile`` and the benchmarks call :func:`enable` /
:func:`snapshot`; tests drive :func:`enable(reset=True)` around the code
under measurement.  Span stages and metric names are catalogued in
``docs/architecture.md`` (Observability).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Union

from .metrics import (
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetric,
)
from .tracer import NULL_SPAN, NullSpan, Span, Tracer, propagate

_lock = threading.Lock()
_enabled = False
_tracer = Tracer()
_registry = MetricsRegistry()


def enabled() -> bool:
    """True when spans and metrics are being recorded."""
    return _enabled


def enable(*, reset: bool = True) -> None:
    """Turn recording on (optionally clearing prior spans/metrics)."""
    global _enabled
    with _lock:
        if reset:
            _tracer.reset()
            _registry.reset()
        _enabled = True


def disable() -> None:
    global _enabled
    with _lock:
        _enabled = False


def reset() -> None:
    """Drop recorded spans and metrics (the enabled flag is unchanged)."""
    with _lock:
        _tracer.reset()
        _registry.reset()


def tracer() -> Tracer:
    return _tracer


def registry() -> MetricsRegistry:
    return _registry


# -- recording front-ends (no-ops while disabled) ------------------------------

def span(name: str, **attrs: Any):
    """``with obs.span("stage", key=...):`` — a timed nested span, or a
    shared no-op while disabled."""
    if not _enabled:
        return NULL_SPAN
    return _tracer.span(name, **attrs)


def counter(name: str) -> Union[Counter, NullMetric]:
    return _registry.counter(name) if _enabled else NULL_METRIC


def gauge(name: str) -> Union[Gauge, NullMetric]:
    return _registry.gauge(name) if _enabled else NULL_METRIC


def histogram(name: str) -> Union[Histogram, NullMetric]:
    return _registry.histogram(name) if _enabled else NULL_METRIC


# -- export --------------------------------------------------------------------

def snapshot() -> Dict[str, Any]:
    """Everything recorded so far: span trees plus the metric values."""
    return {"spans": _tracer.to_list(), "metrics": _registry.snapshot()}


def render() -> str:
    """Human-readable span tree (for ``repro run --profile``)."""
    return _tracer.render()


__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullMetric",
    "NullSpan", "Span", "Tracer",
    "counter", "disable", "enable", "enabled", "gauge", "histogram",
    "propagate", "registry", "render", "reset", "snapshot", "span",
    "tracer",
]
