"""Span-based tracing: nested, thread-aware wall-clock timers.

A :class:`Span` is one timed region with a name, free-form attributes,
and children.  The *current* span is tracked in a
:class:`contextvars.ContextVar`, so nesting follows lexical ``with``
scope within a thread and worker threads — which start from an empty
context — open their own root spans (stamped with the thread name, so a
compile pool's spans stay attributable).  To make a worker's spans nest
under the submitting thread's current span instead, wrap the callable
with :func:`propagate` before handing it to the pool.

The tracer never raises out of instrumentation paths and holds a bounded
number of finished root spans (oldest dropped first), so leaving tracing
on for a long-lived service cannot grow memory without bound.
"""

from __future__ import annotations

import contextvars
import threading
import time
from typing import Any, Dict, List, Optional

#: finished root spans retained per tracer; oldest are dropped first.
MAX_ROOTS = 512


class Span:
    """One timed region.  ``duration_s`` is ``None`` while open."""

    __slots__ = ("name", "attrs", "wall_time", "duration_s", "thread",
                 "children", "_t0")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.wall_time = time.time()
        self.duration_s: Optional[float] = None
        self.thread = threading.current_thread().name
        self.children: List["Span"] = []
        self._t0 = time.perf_counter()

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to an open span (chainable)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": (None if self.duration_s is None
                            else self.duration_s * 1e3),
            "thread": self.thread,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class _SpanScope:
    """The context manager :meth:`Tracer.span` returns."""

    __slots__ = ("_tracer", "span", "_token", "_parent")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.span = Span(name, attrs)

    def __enter__(self) -> Span:
        self._parent = self._tracer._current.get()
        self._token = self._tracer._current.set(self.span)
        self.span._t0 = time.perf_counter()
        return self.span

    def __exit__(self, *exc) -> bool:
        self.span.duration_s = time.perf_counter() - self.span._t0
        try:
            self._tracer._current.reset(self._token)
        except ValueError:
            # reset from a different context (e.g. a generator resumed on
            # another thread) — drop the stack entry instead of raising
            self._tracer._current.set(self._parent)
        if self._parent is None:
            self._tracer._add_root(self.span)
        else:
            self._parent.children.append(self.span)
        return False


class NullSpan:
    """No-op stand-in used while observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Any) -> "NullSpan":
        return self


NULL_SPAN = NullSpan()


class Tracer:
    """Collects finished root spans (see module docstring)."""

    def __init__(self, max_roots: int = MAX_ROOTS) -> None:
        self.max_roots = max_roots
        self._lock = threading.Lock()
        self._roots: List[Span] = []
        self._current: "contextvars.ContextVar[Optional[Span]]" = \
            contextvars.ContextVar("repro_obs_current_span", default=None)

    def span(self, name: str, **attrs: Any) -> _SpanScope:
        """``with tracer.span("stage", key=value) as s:`` — times the
        block and files the span under the current span (or as a root)."""
        return _SpanScope(self, name, attrs)

    def current(self) -> Optional[Span]:
        return self._current.get()

    def _add_root(self, span: Span) -> None:
        with self._lock:
            self._roots.append(span)
            if len(self._roots) > self.max_roots:
                del self._roots[:len(self._roots) - self.max_roots]

    def roots(self) -> List[Span]:
        with self._lock:
            return list(self._roots)

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()

    # -- export ----------------------------------------------------------------
    def to_list(self) -> List[Dict[str, Any]]:
        return [s.to_dict() for s in self.roots()]

    def render(self) -> str:
        """The finished spans as an indented ascii tree with durations."""
        lines: List[str] = []
        for root in self.roots():
            _render_span(root, "", True, lines, top=True)
        return "\n".join(lines)


def _render_span(span: Span, prefix: str, last: bool,
                 lines: List[str], *, top: bool = False) -> None:
    dur = ("   ...open" if span.duration_s is None
           else f"{span.duration_s * 1e3:10.3f} ms")
    attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
    label = f"{span.name}" + (f"  [{attrs}]" if attrs else "")
    if top:
        lines.append(f"{label:<56} {dur}")
        child_prefix = ""
    else:
        branch = "`- " if last else "|- "
        lines.append(f"{prefix}{branch}{label:<{max(1, 53 - len(prefix))}} {dur}")
        child_prefix = prefix + ("   " if last else "|  ")
    for i, child in enumerate(span.children):
        _render_span(child, child_prefix, i == len(span.children) - 1, lines)


def propagate(fn):
    """Wrap ``fn`` so it runs in the submitting thread's context —
    spans opened inside nest under the caller's current span even when
    ``fn`` executes on a pool thread."""
    ctx = contextvars.copy_context()

    def wrapped(*args, **kwargs):
        return ctx.run(fn, *args, **kwargs)

    return wrapped


__all__ = ["MAX_ROOTS", "NULL_SPAN", "NullSpan", "Span", "Tracer",
           "propagate"]
