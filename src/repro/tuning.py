"""Model-driven autotuning of blocking parameters.

The stencil autotuning literature the paper cites (PATUS, MODESTO, ...)
searches tile shapes and time depths per kernel and machine; the paper
itself fine-tunes Table 3's blocking "based on relevant work to guarantee
peak performance".  This module automates that step against our analytic
multicore model: enumerate candidate spatial tiles and tessellation
depths, estimate each with :class:`~repro.parallel.simulator.MulticoreModel`,
and return the best configuration.

The search is exhaustive over a small structured candidate set (the model
is cheap), deterministic, and returns the full ranking so callers can
inspect the trade-off surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .config import MachineConfig
from .errors import ModelError
from .machine.perfmodel import PerfResult
from .parallel.simulator import MulticoreModel, ParallelSetup
from .schemes import model_cost
from .stencils.spec import StencilSpec


@dataclass(frozen=True)
class TuneCandidate:
    scheme: str
    tile_shape: Tuple[int, ...]
    time_depth: int
    result: PerfResult

    @property
    def gstencil_s(self) -> float:
        return self.result.gstencil_s


@dataclass(frozen=True)
class TuneResult:
    best: TuneCandidate
    ranking: Tuple[TuneCandidate, ...]  #: all candidates, best first

    @property
    def evaluated(self) -> int:
        return len(self.ranking)

    def summary(self) -> str:
        b = self.best
        return (
            f"{b.scheme}: tile {'x'.join(map(str, b.tile_shape))}, "
            f"Tb={b.time_depth} -> {b.gstencil_s:.2f} GStencil/s "
            f"({b.result.bottleneck}-bound, {self.evaluated} candidates)"
        )


def _axis_candidates(extent: int, *, smallest: int = 8) -> List[int]:
    """Power-of-two-ish tile extents dividing... clipping to the axis."""
    out = []
    t = smallest
    while t < extent:
        out.append(t)
        t *= 2
    out.append(extent)
    return out


def candidate_tiles(problem_size: Sequence[int],
                    *, per_axis_limit: int = 6) -> List[Tuple[int, ...]]:
    """The structured spatial-tile candidate set: per-axis geometric
    ladders, combined."""
    axes = []
    for n in problem_size:
        ladder = _axis_candidates(int(n))
        if len(ladder) > per_axis_limit:
            # subsample evenly across the ladder, always keeping the
            # smallest (cache-sized) and the untiled full extent
            idx = [round(i * (len(ladder) - 1) / (per_axis_limit - 1))
                   for i in range(per_axis_limit)]
            ladder = [ladder[i] for i in sorted(set(idx))]
        axes.append(ladder)
    tiles: List[Tuple[int, ...]] = [()]
    for cands in axes:
        tiles = [t + (c,) for t in tiles for c in cands]
    return tiles


def candidate_depths(spec: StencilSpec, tile: Sequence[int]) -> List[int]:
    """Legal tessellation depths for ``tile``: 1, 2, 4, ... up to the
    ``2 r Tb <= min extent`` bound."""
    r = max(spec.radius)
    cap = min(int(t) for t in tile) // (2 * r) if r else min(tile)
    depths = [1]
    d = 2
    while d <= cap:
        depths.append(d)
        d *= 2
    if cap > 1 and cap not in depths:
        depths.append(cap)
    return depths


def autotune(
    spec: StencilSpec,
    machine: MachineConfig,
    *,
    problem_size: Sequence[int],
    steps: int,
    cores: Optional[int] = None,
    schemes: Sequence[str] = ("jigsaw", "t-jigsaw"),
    tiles: Optional[Sequence[Tuple[int, ...]]] = None,
    top: Optional[int] = None,
) -> TuneResult:
    """Search (scheme, tile, time depth) for the best modelled GStencil/s.

    ``problem_size`` is the interior extent per axis; ``cores`` defaults
    to the whole machine.  Schemes that cannot lower for this kernel
    (e.g. ``t4-jigsaw`` beyond 1-D) are skipped silently.
    """
    problem_size = tuple(int(n) for n in problem_size)
    if len(problem_size) != spec.ndim:
        raise ModelError(
            f"problem rank {len(problem_size)} != stencil ndim {spec.ndim}"
        )
    if steps < 1:
        raise ModelError("steps must be >= 1")
    cores = machine.total_cores if cores is None else cores
    points = 1
    for n in problem_size:
        points *= n
    model = MulticoreModel(machine)
    tiles = list(tiles) if tiles is not None else candidate_tiles(problem_size)

    costs: Dict[str, object] = {}
    for scheme in schemes:
        try:
            costs[scheme] = model_cost(scheme, spec, machine)
        except Exception:
            continue
    if not costs:
        raise ModelError(f"no scheme in {schemes} lowers for {spec.name}")

    candidates: List[TuneCandidate] = []
    for tile in tiles:
        for depth in candidate_depths(spec, tile):
            setup = ParallelSetup(tile_shape=tile, time_depth=depth)
            for scheme, cost in costs.items():
                try:
                    res = model.estimate(cost, spec, points=points,
                                         steps=steps, cores=cores,
                                         setup=setup)
                except ModelError:
                    continue
                candidates.append(TuneCandidate(
                    scheme=scheme, tile_shape=tile, time_depth=depth,
                    result=res,
                ))
    if not candidates:
        raise ModelError("no feasible (tile, depth) candidate")
    ranking = tuple(sorted(candidates, key=lambda c: -c.gstencil_s))
    if top is not None:
        ranking = ranking[:top]
    return TuneResult(best=ranking[0], ranking=ranking)
