"""The batched kernel service: compile many, run many.

:class:`KernelService` is the production-facing front-end the ROADMAP's
scale goal asks for.  It owns one machine model, one
:class:`~repro.core.cache.KernelCache` (shared by every compile, so
repeated and concurrent requests for the same kernel pay for compilation
once), and an execution configuration for the tiled numpy path:

* :meth:`compile_many` — deduplicates a batch of compile requests by
  content key and compiles the distinct ones concurrently on a thread
  pool (the SVD and numpy work release the GIL);
* :meth:`run_many` — dispatches a batch of sweep jobs through
  :func:`repro.parallel.executor.run_parallel`, each job tiled across the
  service's workers on the configured backend (thread pool by default,
  the opt-in process pool for GIL-heavy tiles).

Usage::

    svc = KernelService(GENERIC_AVX2, cache_dir="~/.cache/repro/kernels")
    kernels = svc.compile_many([
        CompileRequest(library.get("heat-2d"), (512, 512)),
        CompileRequest(library.get("box-2d9p"), (512, 512)),
    ])
    grids = svc.run_many([SweepJob(k.plan.spec, k.grid_like(k.grid.shape,
                                                            seed=0), steps=4)
                          for k in kernels])
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from . import obs
from .config import MachineConfig
from .core.cache import KernelCache, plan_key
from .core.jigsaw import required_halo
from .core.kernel import CompiledKernel
from .errors import ReproError
from .faults import POLICIES, call_with_timeout, failure_reason
from .parallel.executor import BACKENDS, run_parallel
from .stencils.grid import Grid
from .stencils.spec import StencilSpec
from .tune.db import TuningDB
from .tune.engine import TuneBudget
from .tune.tuner import TuneReport, Tuner
from .vectorize.driver import EXEC_BACKENDS

#: the deliberately small search budget ``compile_many(tune=True)`` uses
#: when a workload has no stored winner yet: enough to compare the plan
#: variants and the default, cheap enough for a compile path.  Explicit
#: ``tune_budget=`` overrides it.
DEFAULT_SERVICE_BUDGET = TuneBudget(max_trials=4, warmup=0, repeats=1,
                                    trial_timeout_s=30.0, patience=3)


def _require_int(name: str, value, minimum: int) -> None:
    """Reject non-integers (bools included) and out-of-range counts with
    a message that names the offending parameter."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ReproError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ReproError(f"{name} must be >= {minimum}, got {value}")


def _require_finite(name: str, value, *, minimum: float,
                    exclusive: bool = False) -> None:
    """Reject NaN/inf/non-numeric durations (bools included)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ReproError(f"{name} must be a number, got {value!r}")
    if value != value or value in (float("inf"), float("-inf")):
        raise ReproError(f"{name} must be finite, got {value!r}")
    if (value <= minimum) if exclusive else (value < minimum):
        bound = f"> {minimum:g}" if exclusive else f">= {minimum:g}"
        raise ReproError(f"{name} must be {bound}, got {value!r}")


@dataclass(frozen=True)
class CompileRequest:
    """One kernel to compile: a spec plus the interior shape it will run
    on (the halo is derived from the plan)."""

    spec: StencilSpec
    shape: Tuple[int, ...]
    time_fusion: Union[int, str] = "auto"
    use_sdf: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape",
                           tuple(int(s) for s in self.shape))


@dataclass(frozen=True)
class SweepJob:
    """One batch-execution job: ``steps`` Jacobi sweeps of ``spec`` over
    ``grid`` — tiled across the executor by default, or sharded along the
    outer axis (``shards=N``) with halo exchange every ``temporal_block``
    sub-steps."""

    spec: StencilSpec
    grid: Grid
    steps: int
    boundary: str = "periodic"
    value: float = 0.0
    tile_shape: Optional[Tuple[int, ...]] = field(default=None)
    shards: Optional[int] = field(default=None)
    temporal_block: int = 1

    def __post_init__(self) -> None:
        if self.shards is not None and self.tile_shape is not None:
            raise ReproError(
                "shards= is mutually exclusive with tile_shape=")
        if self.shards is not None and self.shards < 1:
            raise ReproError("shards must be >= 1")
        if self.temporal_block < 1:
            raise ReproError("temporal_block must be >= 1")
        if self.shards is None and self.temporal_block != 1:
            raise ReproError("temporal_block requires shards=N")


class KernelService:
    """Batch compile-and-run front-end (see module docstring)."""

    def __init__(
        self,
        machine: MachineConfig,
        *,
        cache: Optional[KernelCache] = None,
        cache_dir: Optional[str] = None,
        compile_workers: int = 4,
        run_workers: int = 4,
        run_backend: str = "thread",
        exec_backend: str = "auto",
        tuning_db: Optional[TuningDB] = None,
        tune_budget: Optional[TuneBudget] = None,
        task_timeout_s: Optional[float] = None,
        retries: int = 0,
        retry_backoff_s: float = 0.05,
        failure_policy: str = "raise",
    ) -> None:
        if cache is not None and cache_dir is not None:
            raise ReproError("pass either cache or cache_dir, not both")
        if run_backend not in BACKENDS:
            raise ReproError(
                f"unknown run backend {run_backend!r}; known: {BACKENDS}"
            )
        if exec_backend not in EXEC_BACKENDS:
            raise ReproError(
                f"unknown exec backend {exec_backend!r}; "
                f"known: {EXEC_BACKENDS}"
            )
        _require_int("compile_workers", compile_workers, 1)
        _require_int("run_workers", run_workers, 1)
        if task_timeout_s is not None:
            _require_finite("task_timeout_s", task_timeout_s,
                            minimum=0.0, exclusive=True)
        _require_int("retries", retries, 0)
        _require_finite("retry_backoff_s", retry_backoff_s, minimum=0.0)
        if tune_budget is not None and not isinstance(tune_budget,
                                                     TuneBudget):
            raise ReproError(
                f"tune_budget must be a TuneBudget, got {tune_budget!r}")
        if failure_policy not in POLICIES:
            raise ReproError(
                f"unknown failure policy {failure_policy!r}; "
                f"known: {POLICIES}"
            )
        if cache is None:
            cache = KernelCache(
                os.path.expanduser(cache_dir) if cache_dir else None
            )
        self.machine = machine
        self.cache = cache
        self.compile_workers = compile_workers
        self.run_workers = run_workers
        self.run_backend = run_backend
        #: SIMD-machine execution backend stamped on every compiled
        #: kernel (see :data:`repro.vectorize.driver.EXEC_BACKENDS`);
        #: ``auto`` degrades codegen -> batch -> interp at run time
        self.exec_backend = exec_backend
        if tuning_db is None:
            # disk-backed caches get a disk-backed tuning DB next to the
            # kernel entries; memory-only caches tune in memory
            tuning_db = TuningDB(
                os.path.join(cache.cache_dir, "tuning")
                if cache.cache_dir else None)
        #: persistent winner store consulted by ``compile_many(tune=True)``
        self.tuning_db = tuning_db
        self.tune_budget = tune_budget or DEFAULT_SERVICE_BUDGET
        #: per-task wall-clock bound for guarded compiles/runs (None = off)
        self.task_timeout_s = task_timeout_s
        #: bounded retry budget consumed before degrading or raising
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        #: ``raise`` | ``retry`` | ``degrade`` (see :mod:`repro.faults.policy`)
        self.failure_policy = failure_policy

    # -- failure handling ------------------------------------------------------
    def _guarded(self, what: str, primary: Callable[[], "T"],
                 degraded: Sequence[Tuple[str, Callable[[], "T"]]] = ()):
        """Run ``primary`` under the per-task timeout with the service's
        retry budget (exponential backoff between attempts); once the
        budget is spent, the ``degrade`` policy walks ``degraded`` — an
        ordered ladder of ``(label, fn)`` alternatives — before the final
        failure propagates.  Every failure and fallback lands in the obs
        taxonomy (``fault | timeout | worker_lost | error``)."""
        attempts = 1
        if self.failure_policy in ("retry", "degrade"):
            attempts += self.retries
        last: Optional[BaseException] = None
        for attempt in range(attempts):
            try:
                return call_with_timeout(primary, self.task_timeout_s)
            except (ReproError, BrokenProcessPool) as exc:
                last = exc
                reason = failure_reason(exc)
                obs.counter("service.failures").inc()
                obs.counter(f"service.failures.reason.{reason}").inc()
                if attempt + 1 < attempts and self.retry_backoff_s:
                    time.sleep(self.retry_backoff_s * (2 ** attempt))
        if self.failure_policy == "degrade":
            for label, fn in degraded:
                obs.counter("service.fallback").inc()
                obs.counter(
                    f"service.fallback.reason.{failure_reason(last)}").inc()
                obs.counter(f"service.fallback.to.{label}").inc()
                try:
                    return call_with_timeout(fn, self.task_timeout_s)
                except (ReproError, BrokenProcessPool) as exc:
                    last = exc
                    obs.counter("service.failures").inc()
                    obs.counter(
                        f"service.failures.reason.{failure_reason(exc)}"
                    ).inc()
        raise last

    # -- compilation -----------------------------------------------------------
    def compile(self, spec: StencilSpec, shape: Sequence[int], *,
                time_fusion: Union[int, str] = "auto",
                use_sdf: bool = True,
                backend: Optional[str] = None) -> CompiledKernel:
        """Compile one kernel through the service cache.

        The program is lowered eagerly so the returned kernel is
        ready-to-run (and the expensive work is behind the cache).
        ``backend`` overrides the service-wide execution backend for this
        kernel (used by tuned compiles).

        The compile is guarded: retried/backed-off per the failure
        policy, and under ``degrade`` a final attempt pins the
        interpreter backend on a *private in-memory cache* — a wedged
        shared cache (e.g. an in-flight compile stuck past its timeout
        still holding the key lock) cannot block it, and interp is
        bitwise identical to the batch engine, so degrading never
        changes results."""
        backend = backend or self.exec_backend
        degraded = [("interp", lambda: self._compile_once(
            spec, shape, time_fusion=time_fusion, use_sdf=use_sdf,
            backend="interp", cache=KernelCache(None)))]
        return self._guarded(
            "compile",
            lambda: self._compile_once(spec, shape, time_fusion=time_fusion,
                                       use_sdf=use_sdf, backend=backend),
            degraded)

    def _compile_once(self, spec: StencilSpec, shape: Sequence[int], *,
                      time_fusion: Union[int, str], use_sdf: bool,
                      backend: str,
                      cache: Optional[KernelCache] = None) -> CompiledKernel:
        """One unguarded compile attempt through ``cache`` (the service
        cache unless the degraded path supplies a private one)."""
        cache = cache if cache is not None else self.cache
        t0 = time.perf_counter()
        with obs.span("service.compile", kernel=spec.name):
            plan = cache.plan(spec, self.machine,
                              time_fusion=time_fusion, use_sdf=use_sdf,
                              backend=backend)
            halo = required_halo(spec, self.machine,
                                 time_fusion=plan.time_fusion)
            grid = Grid(tuple(shape), halo)
            kernel = CompiledKernel(plan=plan, machine=self.machine,
                                    grid=grid, cache=cache,
                                    backend=backend)
            kernel.program  # force lowering through the cache
        if obs.enabled():
            obs.histogram("service.compile_ms").observe(
                (time.perf_counter() - t0) * 1e3)
        return kernel

    def compile_many(
        self,
        requests: Sequence[Union[CompileRequest, Tuple]],
        *,
        tune: Union[bool, str] = False,
    ) -> List[CompiledKernel]:
        """Compile a batch, deduplicating identical requests and lowering
        the distinct ones concurrently.  Results are returned in request
        order; duplicate requests share one compiled kernel.

        With ``tune=True`` each request's plan options are replaced by the
        autotuned winner for its workload: a :class:`~repro.tune.TuningDB`
        hit applies instantly (zero trials), a miss runs the tuner under
        the service's ``tune_budget`` first and stores the winner for next
        time.  ``tune="db"`` applies stored winners *only* — a miss keeps
        the request's own plan options and never runs a trial (the
        serving path: the online tuner fills the database from idle
        slots instead).  Tuned winners on a non-plan engine (pure
        numpy/tiled execution) only pin plan options, not the executor."""
        reqs = [r if isinstance(r, CompileRequest) else CompileRequest(*r)
                for r in requests]
        with obs.span("service.compile_many", requests=len(reqs)) as s:
            obs.histogram("service.compile_batch_size").observe(len(reqs))
            resolved = [self._resolve(r, tune=tune) for r in reqs]
            distinct: Dict[Tuple, Tuple[CompileRequest, Dict]] = {}
            for r, (key, kwargs) in zip(reqs, resolved):
                distinct.setdefault(key, (r, kwargs))
            s.set(distinct=len(distinct))
            compiled: Dict[Tuple, CompiledKernel] = {}
            if distinct:
                workers = min(self.compile_workers, len(distinct))
                # obs.propagate keeps pool-thread spans nested under this
                # compile_many span instead of opening new roots
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        k: pool.submit(obs.propagate(self.compile),
                                       r.spec, r.shape, **kwargs)
                        for k, (r, kwargs) in distinct.items()
                    }
                    compiled = {k: f.result() for k, f in futures.items()}
            return [compiled[key] for key, _ in resolved]

    def _resolve(self, r: CompileRequest, *,
                 tune: Union[bool, str]) -> Tuple[Tuple, Dict]:
        """The deduplication key and effective compile kwargs for one
        request (tuned overrides already applied)."""
        if tune not in (False, True, "db"):
            raise ReproError(
                f"tune must be False, True or 'db', got {tune!r}")
        kwargs: Dict = {"time_fusion": r.time_fusion, "use_sdf": r.use_sdf,
                        "backend": self.exec_backend}
        if tune:
            if tune == "db":
                cfg = self.tuned_config(r.spec, r.shape)
            else:
                cfg = self.tuner().tune(r.spec, r.shape,
                                        budget=self.tune_budget).best.config
            if cfg is not None and cfg.is_plan_aware:
                kwargs = {"time_fusion": cfg.time_fusion,
                          "use_sdf": cfg.use_sdf,
                          "backend": cfg.plan_backend}
        key = (plan_key(r.spec, self.machine,
                        time_fusion=kwargs["time_fusion"],
                        use_sdf=kwargs["use_sdf"],
                        backend=kwargs["backend"]),
               r.shape)
        return key, kwargs

    # -- tuning ----------------------------------------------------------------
    def tuner(self) -> Tuner:
        """A :class:`~repro.tune.Tuner` sharing this service's machine,
        kernel cache and tuning database."""
        return Tuner(self.machine, cache=self.cache, db=self.tuning_db,
                     budget=self.tune_budget)

    def tune(self, spec: StencilSpec, shape: Sequence[int],
             **kwargs) -> TuneReport:
        """Autotune one workload through the service's database (see
        :meth:`repro.tune.Tuner.tune` for keywords)."""
        return self.tuner().tune(spec, tuple(shape), **kwargs)

    def tuned_config(self, spec: StencilSpec, shape: Sequence[int], *,
                     boundary: str = "periodic"):
        """The stored winner for this workload, or ``None`` — a pure
        database lookup, zero trials (the serving hot path)."""
        rec = self.tuning_db.lookup(spec, self.machine,
                                    tuple(int(n) for n in shape),
                                    boundary=boundary)
        return rec.config if rec is not None else None

    def online_tuner(self, *, config=None, idle=None):
        """An :class:`~repro.tune.online.OnlineTuner` exploring this
        service's workloads: shares the machine, kernel cache and tuning
        database, so promotions are visible to every consumer."""
        from .tune.online import OnlineTuner
        return OnlineTuner(self, config=config, idle=idle)

    # -- execution -------------------------------------------------------------
    def run(self, job: SweepJob) -> Grid:
        """Execute one sweep job on the tiled parallel executor.

        The run is guarded: retried/backed-off per the failure policy,
        and under ``degrade`` it walks the process → thread → serial
        ladder (``serial`` = one thread-backend worker).  Tiling is
        bitwise deterministic across backends and worker counts, so the
        ladder never changes results."""
        degraded: List[Tuple[str, Callable[[], Grid]]] = []
        if self.run_backend == "process":
            degraded.append(
                ("thread", lambda: self._run_once(job, backend="thread")))
        degraded.append(
            ("serial", lambda: self._run_once(job, backend="thread",
                                              workers=1)))
        return self._guarded(
            "run", lambda: self._run_once(job, backend=self.run_backend),
            degraded)

    def _run_once(self, job: SweepJob, *, backend: str,
                  workers: Optional[int] = None) -> Grid:
        """One unguarded sweep-job execution."""
        t0 = time.perf_counter()
        with obs.span("service.run", kernel=job.spec.name, steps=job.steps):
            result = run_parallel(
                job.spec, job.grid, job.steps,
                tile_shape=job.tile_shape,
                shards=job.shards,
                temporal_block=job.temporal_block,
                workers=self.run_workers if workers is None else workers,
                boundary=job.boundary,
                value=job.value,
                backend=backend,
            )
        if obs.enabled():
            obs.histogram("service.run_ms").observe(
                (time.perf_counter() - t0) * 1e3)
        return result

    def run_many(self, jobs: Sequence[Union[SweepJob, Tuple]]) -> List[Grid]:
        """Execute a batch of sweep jobs.  Jobs run one after another,
        each internally tiled across the service's workers (a job already
        saturates them; overlapping jobs would just thrash the pool)."""
        jobs = [j if isinstance(j, SweepJob) else SweepJob(*j) for j in jobs]
        with obs.span("service.run_many", jobs=len(jobs)):
            obs.histogram("service.run_batch_size").observe(len(jobs))
            return [self.run(j) for j in jobs]

    # -- introspection -----------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """The service cache's hit/miss/evict counters + disk occupancy,
        plus the tuning database's counters (``tuning_`` prefix)."""
        out = self.cache.stats_dict()
        for k, v in self.tuning_db.stats_dict().items():
            out[f"tuning_{k}"] = v
        return out


__all__ = ["CompileRequest", "SweepJob", "KernelService"]
