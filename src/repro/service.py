"""The batched kernel service: compile many, run many.

:class:`KernelService` is the production-facing front-end the ROADMAP's
scale goal asks for.  It owns one machine model, one
:class:`~repro.core.cache.KernelCache` (shared by every compile, so
repeated and concurrent requests for the same kernel pay for compilation
once), and an execution configuration for the tiled numpy path:

* :meth:`compile_many` — deduplicates a batch of compile requests by
  content key and compiles the distinct ones concurrently on a thread
  pool (the SVD and numpy work release the GIL);
* :meth:`run_many` — dispatches a batch of sweep jobs through
  :func:`repro.parallel.executor.run_parallel`, each job tiled across the
  service's workers on the configured backend (thread pool by default,
  the opt-in process pool for GIL-heavy tiles).

Usage::

    svc = KernelService(GENERIC_AVX2, cache_dir="~/.cache/repro/kernels")
    kernels = svc.compile_many([
        CompileRequest(library.get("heat-2d"), (512, 512)),
        CompileRequest(library.get("box-2d9p"), (512, 512)),
    ])
    grids = svc.run_many([SweepJob(k.plan.spec, k.grid_like(k.grid.shape,
                                                            seed=0), steps=4)
                          for k in kernels])
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .config import MachineConfig
from .core.cache import KernelCache, plan_key
from .core.jigsaw import required_halo
from .core.kernel import CompiledKernel
from .errors import ReproError
from .parallel.executor import BACKENDS, run_parallel
from .stencils.grid import Grid
from .stencils.spec import StencilSpec
from .vectorize.driver import EXEC_BACKENDS


@dataclass(frozen=True)
class CompileRequest:
    """One kernel to compile: a spec plus the interior shape it will run
    on (the halo is derived from the plan)."""

    spec: StencilSpec
    shape: Tuple[int, ...]
    time_fusion: Union[int, str] = "auto"
    use_sdf: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape",
                           tuple(int(s) for s in self.shape))


@dataclass(frozen=True)
class SweepJob:
    """One batch-execution job: ``steps`` Jacobi sweeps of ``spec`` over
    ``grid`` on the tiled executor."""

    spec: StencilSpec
    grid: Grid
    steps: int
    boundary: str = "periodic"
    value: float = 0.0
    tile_shape: Optional[Tuple[int, ...]] = field(default=None)


class KernelService:
    """Batch compile-and-run front-end (see module docstring)."""

    def __init__(
        self,
        machine: MachineConfig,
        *,
        cache: Optional[KernelCache] = None,
        cache_dir: Optional[str] = None,
        compile_workers: int = 4,
        run_workers: int = 4,
        run_backend: str = "thread",
        exec_backend: str = "auto",
    ) -> None:
        if cache is not None and cache_dir is not None:
            raise ReproError("pass either cache or cache_dir, not both")
        if run_backend not in BACKENDS:
            raise ReproError(
                f"unknown run backend {run_backend!r}; known: {BACKENDS}"
            )
        if exec_backend not in EXEC_BACKENDS:
            raise ReproError(
                f"unknown exec backend {exec_backend!r}; "
                f"known: {EXEC_BACKENDS}"
            )
        if compile_workers < 1 or run_workers < 1:
            raise ReproError("worker counts must be >= 1")
        if cache is None:
            cache = KernelCache(
                os.path.expanduser(cache_dir) if cache_dir else None
            )
        self.machine = machine
        self.cache = cache
        self.compile_workers = compile_workers
        self.run_workers = run_workers
        self.run_backend = run_backend
        #: SIMD-machine execution backend stamped on every compiled
        #: kernel (see :data:`repro.vectorize.driver.EXEC_BACKENDS`)
        self.exec_backend = exec_backend

    # -- compilation -----------------------------------------------------------
    def compile(self, spec: StencilSpec, shape: Sequence[int], *,
                time_fusion: Union[int, str] = "auto",
                use_sdf: bool = True) -> CompiledKernel:
        """Compile one kernel through the service cache.

        The program is lowered eagerly so the returned kernel is
        ready-to-run (and the expensive work is behind the cache)."""
        plan = self.cache.plan(spec, self.machine,
                               time_fusion=time_fusion, use_sdf=use_sdf,
                               backend=self.exec_backend)
        halo = required_halo(spec, self.machine,
                             time_fusion=plan.time_fusion)
        grid = Grid(tuple(shape), halo)
        kernel = CompiledKernel(plan=plan, machine=self.machine, grid=grid,
                                cache=self.cache,
                                backend=self.exec_backend)
        kernel.program  # force lowering through the cache
        return kernel

    def compile_many(
        self,
        requests: Sequence[Union[CompileRequest, Tuple]],
    ) -> List[CompiledKernel]:
        """Compile a batch, deduplicating identical requests and lowering
        the distinct ones concurrently.  Results are returned in request
        order; duplicate requests share one compiled kernel."""
        reqs = [r if isinstance(r, CompileRequest) else CompileRequest(*r)
                for r in requests]
        distinct: Dict[Tuple[str, Tuple[int, ...]], CompileRequest] = {}
        for r in reqs:
            k = self._request_key(r)
            distinct.setdefault(k, r)
        compiled: Dict[Tuple[str, Tuple[int, ...]], CompiledKernel] = {}
        if distinct:
            workers = min(self.compile_workers, len(distinct))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = {
                    k: pool.submit(self.compile, r.spec, r.shape,
                                   time_fusion=r.time_fusion,
                                   use_sdf=r.use_sdf)
                    for k, r in distinct.items()
                }
                compiled = {k: f.result() for k, f in futures.items()}
        return [compiled[self._request_key(r)] for r in reqs]

    def _request_key(self, r: CompileRequest) -> Tuple[str, Tuple[int, ...]]:
        return (plan_key(r.spec, self.machine, time_fusion=r.time_fusion,
                         use_sdf=r.use_sdf, backend=self.exec_backend),
                r.shape)

    # -- execution -------------------------------------------------------------
    def run(self, job: SweepJob) -> Grid:
        """Execute one sweep job on the tiled parallel executor."""
        return run_parallel(
            job.spec, job.grid, job.steps,
            tile_shape=job.tile_shape,
            workers=self.run_workers,
            boundary=job.boundary,
            value=job.value,
            backend=self.run_backend,
        )

    def run_many(self, jobs: Sequence[Union[SweepJob, Tuple]]) -> List[Grid]:
        """Execute a batch of sweep jobs.  Jobs run one after another,
        each internally tiled across the service's workers (a job already
        saturates them; overlapping jobs would just thrash the pool)."""
        jobs = [j if isinstance(j, SweepJob) else SweepJob(*j) for j in jobs]
        return [self.run(j) for j in jobs]

    # -- introspection -----------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """The service cache's hit/miss/evict counters + disk occupancy."""
        return self.cache.stats_dict()


__all__ = ["CompileRequest", "SweepJob", "KernelService"]
