"""Tessellation — the ICPP'19 star-stencil baseline (Yuan et al. [60]).

The tessellation line of work reduces *arithmetic* redundancy for
symmetric star stencils by pre-adding the symmetric neighbour pairs
(``c_d * (a[x-d] + a[x+d])``) before multiplying, and pairs this in-core
scheme with tessellating cache tiling (:mod:`repro.tiling.tessellate`).
Its register-level data organization is the Multiple-Permutations window,
so it inherits Reorg's shuffle pressure — the gap Jigsaw's LBV closes.

This generator produces the in-core instruction stream: Reorg-style
loads/shuffles with symmetric pre-addition.  It accepts any kernel whose
coefficients are centro-symmetric (all the paper's kernels are).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import MachineConfig
from ..errors import VectorizeError
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec, iter_row_offsets
from .common import check_geometry, loop_nest, out_addr, point_addr
from .multiple_perms import required_halo
from .program import ProgramBuilder, VectorProgram
from .multiple_perms import _row_window_name
from .shifts import RowShifter, window_offsets


def generate_tessellation(
    spec: StencilSpec,
    machine: MachineConfig,
    grid: Grid,
) -> VectorProgram:
    """Lower one Jacobi sweep with the tessellation in-core scheme."""
    if not spec.is_symmetric:
        raise VectorizeError(
            f"tessellation baseline requires centro-symmetric coefficients; "
            f"{spec.name} is not"
        )
    width = machine.vector_elems
    check_geometry(spec, grid, block=width,
                   halo_needed=required_halo(spec, machine))
    b = ProgramBuilder(width, elem_bytes=machine.element_bytes)

    rows = list(iter_row_offsets(spec))
    carried: List[Tuple[str, str]] = []
    windows: List[Tuple[Dict[int, str], List[int]]] = []

    b.in_prologue()
    for rid, (outer, taps) in enumerate(rows):
        offsets = window_offsets(taps.keys(), width)
        regs = {o: _row_window_name(rid, o) for o in offsets}
        off0 = outer + (0,)
        for o in offsets[:-1]:
            b.load_to(regs[o], point_addr(grid, off0, array=b.input_array,
                                          x_extra=o),
                      comment=f"row {outer}: window [{o}]")
        windows.append((regs, offsets))

    b.in_body()
    # Build every neighbour register first (Reorg data organization).
    point_reg: Dict[Tuple[Tuple[int, ...], int], str] = {}
    coeff_of: Dict[Tuple[Tuple[int, ...], int], float] = {}
    for rid, (outer, taps) in enumerate(rows):
        regs, offsets = windows[rid]
        off0 = outer + (0,)
        top = offsets[-1]
        b.load_to(regs[top], point_addr(grid, off0, array=b.input_array,
                                        x_extra=top),
                  comment=f"row {outer}: window [{top}]")
        shifter = RowShifter.from_window(b, regs)
        for dx in sorted(taps):
            point_reg[(outer, dx)] = shifter.at(dx)
            coeff_of[(outer, dx)] = taps[dx]
        for o in offsets[:-1]:
            carried.append((regs[o], regs[o + width]))

    # Symmetric pre-addition: pair each point with its centro-symmetric
    # partner, adding the registers before the multiply.
    terms: List[Tuple[float, str]] = []
    done: set = set()
    for key in sorted(point_reg):
        if key in done:
            continue
        outer, dx = key
        mirror = (tuple(-o for o in outer), -dx)
        done.add(key)
        if mirror != key and mirror in point_reg and mirror not in done:
            done.add(mirror)
            paired = b.add(point_reg[key], point_reg[mirror],
                           comment=f"symmetric pair {key}/{mirror}")
            terms.append((coeff_of[key], paired))
        else:
            terms.append((coeff_of[key], point_reg[key]))

    acc = b.weighted_sum(terms, comment="accumulate pre-added taps")
    b.store(acc, out_addr(grid), comment="store result vector")
    for dst, src in carried:
        b.mov_to(dst, src, comment="slide window")

    return b.build(
        name=f"tessellation/{spec.name}",
        scheme="tessellation",
        loops=loop_nest(grid, block=width),
        vectors_per_iter=1,
        overlapped=False,
        tail_spec=spec,
        notes="Reorg window + symmetric pre-addition (arithmetic halved)",
    )
