"""DSL baselines (SDSL, Pluto) as documented cost models.

The paper's Figure 10 compares against two stencil DSL compilers:

* **SDSL** [Henretty et al., ICS'13] — split-tiling + its own short-vector
  code generation (DLT-based, which §5 notes forgoes tiling-friendly
  layouts);
* **Pluto** [Bondhugula et al., PLDI'08] — diamond tiling + compiler
  auto-vectorization.

Reimplementing two polyhedral compilers is out of scope (DESIGN.md §2);
their role in Figure 10 is an end-to-end reference line.  Each baseline is
modelled as: an in-core instruction stream it is known to generate
(Multiple-Loads for Pluto's auto-vec, Multiple-Permutations-like for
SDSL), a tiling time depth, and a documented end-to-end efficiency
derating calibrated once against the paper's relative results (SDSL is the
consistently lowest line in Figure 10; Pluto sits between SDSL and the
tessellation-based schemes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class DslBaseline:
    """An end-to-end DSL baseline for the Figure-10 harness."""

    name: str
    base_scheme: str      #: in-core stream: "auto" or "reorg"
    efficiency: float     #: end-to-end compute derating (documented knob)
    time_depth: int       #: time-tiling depth its tiling achieves
    notes: str

    def __post_init__(self) -> None:
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        if self.time_depth < 1:
            raise ValueError("time_depth must be >= 1")


SDSL = DslBaseline(
    name="sdsl",
    base_scheme="reorg",
    efficiency=0.45,
    time_depth=2,
    notes=(
        "split tiling + DLT vectorization; transpose layout blocks deeper "
        "temporal reuse (the paper's consistently lowest baseline)"
    ),
)

PLUTO = DslBaseline(
    name="pluto",
    base_scheme="auto",
    efficiency=0.75,
    time_depth=4,
    notes="diamond tiling + compiler auto-vectorization (Multiple Loads)",
)

DSL_BASELINES: Tuple[DslBaseline, ...] = (SDSL, PLUTO)


def get_dsl(name: str) -> DslBaseline:
    for b in DSL_BASELINES:
        if b.name == name:
            return b
    raise KeyError(f"unknown DSL baseline {name!r}")
