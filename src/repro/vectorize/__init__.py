"""Vectorization schemes as instruction-stream generators.

Each generator lowers a :class:`~repro.stencils.spec.StencilSpec` to a
:class:`~repro.vectorize.program.VectorProgram` that (a) executes correctly
on the :class:`~repro.machine.machine.SimdMachine` interpreter and (b)
carries the instruction mix the analytic performance model costs.

Baselines reproduced from the paper's evaluation:

* :mod:`multiple_loads` — the compiler auto-vectorization strategy
  ("Auto" in Table 2): one unaligned load per neighbour.
* :mod:`multiple_perms` — Multiple Permutations / Data Reorganization
  ("Reorg"): one load per row, shuffles to build every shifted vector.
* :mod:`folding` — the SC'21 Folding technique (in-register transpose).
* :mod:`tessellation` — the ICPP'19 Tessellation star-stencil baseline.
* :mod:`dsl` — SDSL- and Pluto-like end-to-end baseline cost models.

Related-work scheme families beyond the paper's baselines:

* :mod:`temporal` — vertical time fusion in registers (Yuan et al.):
  ``s`` Jacobi steps per iteration with intermediates held in registers.
* :mod:`redundancy` — data-reorganization redundancy elimination
  (Li et al., arXiv 2103.09235): column sums hoisted and slid so shared
  shifted subexpressions are built once.

Jigsaw's own generators live in :mod:`repro.core`.
"""

from .program import Loop, VectorProgram, ProgramBuilder
from .multiple_loads import generate_multiple_loads
from .multiple_perms import generate_multiple_perms
from .folding import generate_folding
from .tessellation import generate_tessellation
from .temporal import generate_temporal
from .redundancy import generate_redundancy_elim

__all__ = [
    "Loop",
    "VectorProgram",
    "ProgramBuilder",
    "generate_multiple_loads",
    "generate_multiple_perms",
    "generate_folding",
    "generate_tessellation",
    "generate_temporal",
    "generate_redundancy_elim",
]
