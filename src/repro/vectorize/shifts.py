"""Shifted-vector construction — the Multiple-Permutations toolkit.

Given two adjacent aligned registers ``u = a[x .. x+W-1]`` and
``v = a[x+W .. x+2W-1]``, the vector shifted by ``d`` elements
(``0 < d < W``) is built from the 128-bit-lane structure:

* **even d** — one cross-lane lane-concat (``vperm2f128``): destination
  lane ``j`` is lane ``j + d/2`` of ``u‖v``;
* **odd d = 2m+1** — one in-lane ``vshufpd`` over the two even shifts
  ``2m`` and ``2m+2`` (each element pairs the high half of one lane with
  the low half of the next).

:class:`ShiftCache` memoizes the intermediate even shifts, so e.g. shifts
{-1, +1} for a 3-point row cost exactly 2 cross-lane + 2 in-lane
instructions — the paper's Table-2 "Reorg" accounting for the heat
kernels.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import VectorizeError
from .program import ProgramBuilder


def _odd_imm(width: int) -> int:
    """SHUFPD mask selecting (high of src1, low of src2) in every lane."""
    imm = 0
    for lane in range(width // 2):
        imm |= 1 << (2 * lane)  # element 2k: high half of src1's lane
    return imm


#: vshufps control shifting a 4-element lane pair by two: (A2, A3, B0, B1)
_PS_SHIFT2 = 0x4E
#: vshufps control picking elements (1, 2) of each source's lane
_PS_PICK12 = 0x99


class ShiftCache:
    """Builds ``a[x+d .. x+d+W-1]`` registers from a pair of aligned
    registers, memoizing shared intermediates.

    One cache instance covers one aligned pair ``(u, v)`` = elements
    ``[base, base+2W)``; shifts ``d`` in ``[0, W]`` are supported
    (``d = 0`` is ``u``, ``d = W`` is ``v``).  Works at both lane
    granularities: float64 lanes (2 elements — one ``vshufpd`` per odd
    shift) and float32 lanes (4 elements — ``vshufps`` chains for the
    three sub-lane remainders).
    """

    def __init__(self, builder: ProgramBuilder, u: str, v: str) -> None:
        self.b = builder
        self.width = builder.width
        self.epl = getattr(builder, "elems_per_lane", 2)
        self._lane: Dict[int, str] = {0: u, self.width: v}
        self._shifted: Dict[int, str] = {0: u, self.width: v}
        self._mid: Dict[int, str] = {}

    def even_shift(self, d: int) -> str:
        """The lane-concat register for a lane-aligned shift (one
        cross-lane instruction; ``d`` must be a multiple of the
        elements-per-lane)."""
        if d % self.epl or not 0 <= d <= self.width:
            raise VectorizeError(
                f"even_shift: distance {d} is not lane-aligned for "
                f"W={self.width}, {self.epl} elems/lane"
            )
        if d not in self._lane:
            lanes = self.width // self.epl
            u = self._lane[0]
            v = self._lane[self.width]
            q = d // self.epl
            selectors = tuple(range(q, q + lanes))
            self._lane[d] = self.b.lane_concat(
                u, v, selectors, comment=f"lane concat shift {d}"
            )
        return self._lane[d]

    def _ps_mid(self, base: int) -> str:
        """The shift-by-two intermediate over the lane pair at ``base``
        (float32 lanes)."""
        if base not in self._mid:
            a = self.even_shift(base)
            b_ = self.even_shift(base + self.epl)
            self._mid[base] = self.b.shufps(
                a, b_, _PS_SHIFT2, comment=f"ps shift {base + 2}"
            )
        return self._mid[base]

    def shift(self, d: int) -> str:
        """The register holding elements ``[base+d, base+d+W)``."""
        if not 0 <= d <= self.width:
            raise VectorizeError(
                f"shift distance {d} outside [0, {self.width}]"
            )
        if d in self._shifted:
            return self._shifted[d]
        rem = d % self.epl
        if rem == 0:
            reg = self.even_shift(d)
        elif self.epl == 2:
            lo = self.even_shift(d - 1)
            hi = self.even_shift(d + 1)
            reg = self.b.shufpd(lo, hi, _odd_imm(self.width),
                                comment=f"odd shift {d}")
        else:  # float32 lanes: 4 elements, three sub-lane remainders
            base = d - rem
            if rem == 2:
                reg = self._ps_mid(base)
            elif rem == 1:
                a = self.even_shift(base)
                reg = self.b.shufps(a, self._ps_mid(base), _PS_PICK12,
                                    comment=f"ps shift {d}")
            else:  # rem == 3
                b_ = self.even_shift(base + self.epl)
                reg = self.b.shufps(self._ps_mid(base), b_, _PS_PICK12,
                                    comment=f"ps shift {d}")
        self._shifted[d] = reg
        return reg


class RowShifter:
    """Shift access for a full row over a sliding window of aligned
    registers at consecutive multiples of ``W``.

    The classic three-register form (``prev = a[x-W]``, ``cur = a[x]``,
    ``next = a[x+W]``) covers deltas in ``[-W, W]``; wider windows (deep
    radii or narrow SSE registers) are built with
    :meth:`from_window`, mapping any delta onto the adjacent aligned pair.
    """

    def __init__(self, builder: ProgramBuilder, prev: str, cur: str,
                 next_: str) -> None:
        w = builder.width
        self.width = w
        self.builder = builder
        self._regs = {-w: prev, 0: cur, w: next_}
        self._caches: Dict[int, ShiftCache] = {}

    @classmethod
    def from_window(cls, builder: ProgramBuilder,
                    regs: Dict[int, str]) -> "RowShifter":
        """A shifter over registers at aligned offsets ``{k*W: reg}``;
        the offsets must be consecutive multiples of ``W``."""
        w = builder.width
        offs = sorted(regs)
        if not offs:
            raise VectorizeError("window needs at least one register")
        if any(o % w for o in offs):
            raise VectorizeError(f"window offsets {offs} must be W-aligned")
        if any(b - a != w for a, b in zip(offs, offs[1:])):
            raise VectorizeError(f"window offsets {offs} must be consecutive")
        self = cls.__new__(cls)
        self.width = w
        self.builder = builder
        self._regs = dict(regs)
        self._caches = {}
        return self

    def at(self, delta: int) -> str:
        """Register holding ``a[x+delta .. x+delta+W-1]``."""
        w = self.width
        if delta % w == 0 and delta in self._regs:
            return self._regs[delta]
        base = (delta // w) * w  # floor to the aligned pair below
        if base not in self._regs or base + w not in self._regs:
            lo, hi = min(self._regs), max(self._regs)
            raise VectorizeError(
                f"row shift {delta} outside [{lo}, {hi}]; widen the window"
            )
        if base not in self._caches:
            self._caches[base] = ShiftCache(
                self.builder, self._regs[base], self._regs[base + w]
            )
        return self._caches[base].shift(delta - base)


def window_offsets(deltas, width: int) -> list:
    """The aligned register offsets a sliding window must hold to serve
    every delta in ``deltas``: consecutive multiples of ``W`` from the
    floor of the minimum to one past the ceiling of the maximum."""
    deltas = list(deltas)
    if not deltas:
        raise VectorizeError("window_offsets needs at least one delta")
    lo = (min(min(deltas), 0) // width) * width
    hi = ((max(max(deltas), 0) + width - 1) // width) * width
    hi = max(hi, lo + width)
    return list(range(lo, hi + width, width))
