"""Multiple Permutations — the Data Reorganization baseline ("Reorg").

Each grid element is loaded exactly once (one aligned load per stencil
*row* per iteration, slid through a loop-carried ``prev/cur/next``
window); every shifted neighbour vector is assembled with
inter/intra-register shuffles (:mod:`repro.vectorize.shifts`).  This trades
the Multiple-Loads memory traffic for shuffle-port pressure and
data-preparation latency — the "massive non-compute bubbles" of §2.1.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import MachineConfig
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec, iter_row_offsets
from .common import check_geometry, loop_nest, out_addr, point_addr
from .program import ProgramBuilder, VectorProgram
from .shifts import RowShifter, window_offsets


def required_halo(spec: StencilSpec, machine: MachineConfig) -> Tuple[int, ...]:
    """Reorg slides a window of aligned registers, so the x halo must
    admit aligned loads covering the widest tap rounded up to vectors."""
    r = spec.radius
    w = machine.vector_elems
    span = -(-r[-1] // w) * w  # radius rounded up to whole vectors
    return r[:-1] + (max(span, w),)


def _row_window_name(rid: int, offset: int) -> str:
    return f"w{rid}_{'m' if offset < 0 else ''}{abs(offset)}"


def generate_multiple_perms(
    spec: StencilSpec,
    machine: MachineConfig,
    grid: Grid,
) -> VectorProgram:
    """Lower one Jacobi sweep of ``spec`` with Multiple Permutations."""
    width = machine.vector_elems
    check_geometry(spec, grid, block=width,
                   halo_needed=required_halo(spec, machine))
    b = ProgramBuilder(width, elem_bytes=machine.element_bytes)

    rows = list(iter_row_offsets(spec))
    terms: List[Tuple[float, str]] = []
    carried: List[Tuple[str, str]] = []  # (dst, src) end-of-body moves
    windows: List[Tuple[Tuple[int, ...], Dict[int, str], List[int]]] = []

    # One sliding window of aligned registers per row, sized to cover the
    # row's widest tap (arbitrary radius / SSE widths included).
    b.in_prologue()
    for rid, (outer, taps) in enumerate(rows):
        offsets = window_offsets(taps.keys(), width)
        regs = {o: _row_window_name(rid, o) for o in offsets}
        off0 = outer + (0,)
        for o in offsets[:-1]:  # the topmost register is loaded per-iter
            b.load_to(regs[o], point_addr(grid, off0, array=b.input_array,
                                          x_extra=o),
                      comment=f"row {outer}: window [{o}]")
        windows.append((outer, regs, offsets))

    b.in_body()
    for rid, (outer, taps) in enumerate(rows):
        _, regs, offsets = windows[rid]
        off0 = outer + (0,)
        top = offsets[-1]
        b.load_to(regs[top], point_addr(grid, off0, array=b.input_array,
                                        x_extra=top),
                  comment=f"row {outer}: window [{top}]")
        shifter = RowShifter.from_window(b, regs)
        for dx in sorted(taps):
            terms.append((taps[dx], shifter.at(dx)))
        for o in offsets[:-1]:
            carried.append((regs[o], regs[o + width]))

    acc = b.weighted_sum(terms, comment="accumulate taps")
    b.store(acc, out_addr(grid), comment="store result vector")
    for dst, src in carried:
        b.mov_to(dst, src, comment="slide window")

    return b.build(
        name=f"multiple-perms/{spec.name}",
        scheme="multiple-perms",
        loops=loop_nest(grid, block=width),
        vectors_per_iter=1,
        overlapped=False,
        tail_spec=spec,
        notes="one load per row; shuffles build every shifted vector",
    )
