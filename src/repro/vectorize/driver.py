"""Execute a vector program over time steps on the SIMD machine.

The driver owns what real stencil codes put around the vector kernel:
halo refills between sweeps and the in/out buffer swap.  A program fusing
``s`` time steps (ITM) advances ``s`` steps per sweep; its halo must be
``s`` times the base radius and, because the fused coefficients assume the
ghost values evolve with the field, exact multi-step fusion requires
periodic boundaries (see DESIGN.md §7).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import VectorizeError
from ..machine.machine import SimdMachine
from ..machine.trace import TraceCounter
from ..stencils.boundary import fill_halo
from ..stencils.grid import Grid
from .program import VectorProgram


def check_program_grid(program: VectorProgram, grid: Grid) -> None:
    """Raise :class:`~repro.errors.VectorizeError` unless ``grid`` can
    drive ``program``: matching element width, and either a block-aligned
    x extent or a ``tail_spec`` for the scalar epilogue.

    Shared by :func:`run_program` and the kernel cache
    (:mod:`repro.core.cache`), which uses it to reject stale or corrupted
    on-disk entries before they reach execution.
    """
    if grid.data.itemsize != program.elem_bytes:
        raise VectorizeError(
            f"grid dtype {grid.data.dtype} ({grid.data.itemsize}B) does not "
            f"match the program's {program.elem_bytes}B elements"
        )
    nx = grid.shape[-1]
    covered = program.x_loop.trip_count * program.block
    if covered > nx:
        raise VectorizeError(
            f"program covers {covered} x elements but the grid has {nx}"
        )
    if nx - covered and program.tail_spec is None:
        raise VectorizeError(
            f"x extent {nx} leaves a {nx - covered}-element remainder but "
            f"the program carries no tail_spec for the scalar epilogue"
        )


def run_program(
    program: VectorProgram,
    grid: Grid,
    steps: int,
    *,
    boundary: str = "periodic",
    value: float = 0.0,
    counter: Optional[TraceCounter] = None,
    mem_hook=None,
) -> Grid:
    """Run ``steps`` time steps of ``program`` starting from ``grid``.

    Returns a new grid; ``grid`` is unchanged.  ``steps`` must be a
    multiple of the program's fused step count.
    """
    s = program.steps_per_iter
    if steps < 0:
        raise VectorizeError("steps must be non-negative")
    if steps % s:
        raise VectorizeError(
            f"steps={steps} not a multiple of the program's fused steps {s}"
        )
    if s > 1 and boundary != "periodic":
        raise VectorizeError(
            "temporally merged programs are exact only with periodic boundaries"
        )
    check_program_grid(program, grid)
    machine = SimdMachine(program.width, elem_bytes=program.elem_bytes,
                          mem_hook=mem_hook)
    nx = grid.shape[-1]
    covered = program.x_loop.trip_count * program.block
    tail = nx - covered
    cur = grid.copy()
    nxt = grid.like()
    for _ in range(steps // s):
        fill_halo(cur, boundary, value=value)
        machine.run(
            program,
            {program.input_array: cur.data, program.output_array: nxt.data},
            counter=counter,
        )
        if tail:
            _apply_tail(program.tail_spec, cur, nxt, covered)
        cur, nxt = nxt, cur
    return cur


def _apply_tail(spec, cur: Grid, nxt: Grid, covered: int) -> None:
    """Scalar epilogue: complete the non-block-aligned x strip
    ``[covered, nx)`` of one sweep with shifted-view accumulation."""
    nx = cur.shape[-1]
    strip = slice(covered, nx)
    dst = nxt.interior[..., strip]
    dst.fill(0.0)
    for off, c in zip(spec.offsets, spec.coeffs):
        src = cur.shifted_interior(off)[..., strip]
        np.add(dst, c * src, out=dst)


def measure_trace(program: VectorProgram, grid: Grid,
                  *, boundary: str = "periodic") -> TraceCounter:
    """One sweep's executed-instruction counts (Table-2 measurements)."""
    counter = TraceCounter()
    run_program(program, grid, program.steps_per_iter,
                boundary=boundary, counter=counter)
    return counter
