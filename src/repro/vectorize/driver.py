"""Execute a vector program over time steps on the SIMD machine.

The driver owns what real stencil codes put around the vector kernel:
halo refills between sweeps and the in/out buffer swap.  A program fusing
``s`` time steps (ITM) advances ``s`` steps per sweep; its halo must be
``s`` times the base radius and, because the fused coefficients assume the
ghost values evolve with the field, exact multi-step fusion requires
periodic boundaries (see DESIGN.md §7).
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from .. import faults, obs
from ..errors import VectorizeError
from ..machine.batch import BatchFallback, analytic_trace, get_batched
from ..machine.codegen import CodegenFallback, get_codegen
from ..machine.machine import SimdMachine
from ..machine.trace import TraceCounter
from ..stencils.boundary import fill_halo
from ..stencils.grid import Grid
from .program import VectorProgram

#: execution backends accepted by :func:`run_program`:
#: ``"auto"``/``"codegen"`` (emitted-source engine with automatic
#: degradation codegen -> batch -> interp — the fallbacks are a
#: correctness guarantee, not an option), ``"batch"`` (whole-row tensor
#: closures, degrading to the interpreter), ``"interp"`` (force the
#: per-instruction interpreter).
EXEC_BACKENDS: Tuple[str, ...] = ("auto", "codegen", "batch", "interp")


def check_program_grid(program: VectorProgram, grid: Grid) -> None:
    """Raise :class:`~repro.errors.VectorizeError` unless ``grid`` can
    drive ``program``: matching rank and element width, outer loops that
    walk exactly this grid's interior, and either a block-aligned x extent
    or a ``tail_spec`` for the scalar epilogue.  Every mismatch message
    names the offending axis (by its loop variable) so rank/halo mix-ups
    on deep-radius specs are diagnosable.

    Shared by :func:`run_program` and the kernel cache
    (:mod:`repro.core.cache`), which uses it to reject stale or corrupted
    on-disk entries before they reach execution.
    """
    if grid.data.itemsize != program.elem_bytes:
        raise VectorizeError(
            f"grid dtype {grid.data.dtype} ({grid.data.itemsize}B) does not "
            f"match the program's {program.elem_bytes}B elements"
        )
    axes = tuple(l.var for l in program.loops)
    if grid.ndim != len(axes):
        missing = axes[:max(0, len(axes) - grid.ndim)]
        detail = (f"grid is missing the outer {missing} ax"
                  f"{'es' if len(missing) > 1 else 'is'}" if missing
                  else f"grid has {grid.ndim - len(axes)} extra outer "
                       f"ax{'es' if grid.ndim - len(axes) > 1 else 'is'}")
        raise VectorizeError(
            f"grid rank {grid.ndim} does not match the program's "
            f"{len(axes)} loop axes {axes}; {detail}"
        )
    # outer loops walk one point per interior index: [halo, halo + n)
    for axis, loop in enumerate(program.loops[:-1]):
        h, n = grid.halo[axis], grid.shape[axis]
        if loop.start != h or loop.stop != h + n:
            raise VectorizeError(
                f"axis {loop.var!r}: program loop [{loop.start}, {loop.stop}) "
                f"does not walk the grid interior [{h}, {h + n}) "
                f"(halo {h}, extent {n}); the program was lowered for a "
                f"different geometry"
            )
    x = program.x_loop
    nx = grid.shape[-1]
    if x.start != grid.halo[-1]:
        raise VectorizeError(
            f"axis {x.var!r}: program loop starts at {x.start} but the grid "
            f"halo is {grid.halo[-1]}; the program was lowered for a "
            f"different geometry"
        )
    covered = x.trip_count * program.block
    if covered > nx:
        raise VectorizeError(
            f"axis {x.var!r}: program covers {covered} elements but the "
            f"grid has {nx}"
        )
    if nx - covered and program.tail_spec is None:
        raise VectorizeError(
            f"axis {x.var!r}: extent {nx} leaves a {nx - covered}-element "
            f"remainder but the program carries no tail_spec for the "
            f"scalar epilogue"
        )


def run_program(
    program: VectorProgram,
    grid: Grid,
    steps: int,
    *,
    boundary: str = "periodic",
    value: float = 0.0,
    counter: Optional[TraceCounter] = None,
    mem_hook=None,
    backend: str = "auto",
) -> Grid:
    """Run ``steps`` time steps of ``program`` starting from ``grid``.

    Returns a new grid; ``grid`` is unchanged.  ``steps`` must be a
    multiple of the program's fused step count.

    ``backend`` selects the execution engine (:data:`EXEC_BACKENDS`).
    The default emits one specialized straight-line source function per
    program (:mod:`repro.machine.codegen`) and degrades codegen ->
    batch -> interp whenever an engine cannot apply: a per-access
    ``mem_hook`` is attached (the cache simulator needs ordered
    accesses), the layout defeats flattening, or a loop-carried
    recurrence fails to peel.  All engines produce bitwise-identical
    grids; with a ``counter``, codegen/batch sweeps are tallied
    analytically (exactly matching the interpreter's executed counts).
    """
    s = program.steps_per_iter
    if steps < 0:
        raise VectorizeError("steps must be non-negative")
    if steps % s:
        raise VectorizeError(
            f"steps={steps} not a multiple of the program's fused steps {s}"
        )
    if s > 1 and boundary != "periodic":
        raise VectorizeError(
            "temporally merged programs are exact only with periodic boundaries"
        )
    if backend not in EXEC_BACKENDS:
        raise VectorizeError(
            f"unknown execution backend {backend!r}; known: {EXEC_BACKENDS}"
        )
    check_program_grid(program, grid)
    if steps == 0:
        return grid.copy()
    codegen = None
    batched = None
    if backend != "interp":
        if mem_hook is not None:
            # per-access hooks need ordered accesses; a gather has none
            _count_fallback(
                "codegen" if backend in ("auto", "codegen") else "batch",
                "mem_hook")
        else:
            if backend in ("auto", "codegen"):
                try:
                    codegen = get_codegen(program)
                except CodegenFallback as exc:
                    _count_fallback("codegen", exc.reason)
            if codegen is None:
                try:
                    batched = get_batched(program)
                except BatchFallback:
                    _count_fallback("batch", "compile")
    machine = None
    nx = grid.shape[-1]
    covered = program.x_loop.trip_count * program.block
    tail = nx - covered
    cur = grid.copy()
    nxt = grid.like()
    scratch = (np.empty_like(nxt.interior[..., covered:nx]) if tail
               else None)
    observing = obs.enabled()
    with obs.span("execute", kernel=program.name, backend=backend,
                  steps=steps) as espan:
        for _ in range(steps // s):
            t0 = time.perf_counter() if observing else 0.0
            fill_halo(cur, boundary, value=value)
            arrays = {program.input_array: cur.data,
                      program.output_array: nxt.data}
            if codegen is not None:
                try:
                    faults.fault_point("exec.codegen_kernel")
                    codegen.run(arrays)
                    if counter is not None:
                        analytic_trace(program, counter)
                except CodegenFallback as exc:
                    # layout/memory/recurrence: degrade to the batch
                    # engine for this and later sweeps (deferred stores
                    # make the failed attempt harmless)
                    codegen = None
                    _count_fallback("codegen", exc.reason)
                except faults.FaultInjected:
                    # injected fault before the kernel touched arrays:
                    # finish on the next engine, which is bitwise
                    # identical to this one.
                    codegen = None
                    _count_fallback("codegen", "fault")
                if codegen is None:
                    try:
                        batched = get_batched(program)
                    except BatchFallback:
                        _count_fallback("batch", "compile")
            if codegen is None and batched is not None:
                try:
                    faults.fault_point("exec.batch_closure")
                    batched.run(arrays)
                    if counter is not None:
                        analytic_trace(program, counter)
                except BatchFallback:
                    batched = None  # a true recurrence; stay on interp
                    _count_fallback("batch", "recurrence")
                except faults.FaultInjected:
                    # injected fault before the closure touched arrays:
                    # finish this (and later) sweeps on the interpreter,
                    # which is bitwise identical to the batch engine.
                    batched = None
                    _count_fallback("batch", "fault")
            if codegen is None and batched is None:
                if machine is None:
                    machine = SimdMachine(program.width,
                                          elem_bytes=program.elem_bytes,
                                          mem_hook=mem_hook)
                machine.run(program, arrays, counter=counter)
            if tail:
                _apply_tail(program.tail_spec, cur, nxt, covered, scratch)
            cur, nxt = nxt, cur
            if observing:
                obs.counter("exec.sweeps").inc()
                obs.histogram("exec.sweep_ms").observe(
                    (time.perf_counter() - t0) * 1e3)
        if observing:
            espan.set(engine="codegen" if codegen is not None
                      else "batch" if batched is not None else "interp")
    return cur


def _count_fallback(engine: str, reason: str) -> None:
    """Tally one degradation out of ``engine`` under its reason.  The
    taxonomy (``mem_hook`` | ``compile`` | ``layout`` | ``memory`` |
    ``recurrence`` | ``fault``) is documented in docs/architecture.md;
    silent fallbacks were invisible before."""
    if obs.enabled():
        obs.counter(f"exec.{engine}_fallback").inc()
        obs.counter(f"exec.{engine}_fallback.reason.{reason}").inc()


def _apply_tail(spec, cur: Grid, nxt: Grid, covered: int,
                scratch: Optional[np.ndarray] = None) -> None:
    """Scalar epilogue: complete the non-block-aligned x strip
    ``[covered, nx)`` of one sweep with shifted-view accumulation.

    ``scratch`` is a preallocated strip-shaped buffer for the per-tap
    product (the driver reuses one across the whole sweep loop)."""
    nx = cur.shape[-1]
    strip = slice(covered, nx)
    dst = nxt.interior[..., strip]
    dst.fill(0.0)
    if scratch is None:
        scratch = np.empty_like(dst)
    for off, c in zip(spec.offsets, spec.coeffs):
        src = cur.shifted_interior(off)[..., strip]
        np.multiply(src, c, out=scratch)
        np.add(dst, scratch, out=dst)


def measure_trace(program: VectorProgram, grid: Grid,
                  *, boundary: str = "periodic",
                  backend: str = "auto") -> TraceCounter:
    """One sweep's executed-instruction counts (Table-2 measurements)."""
    counter = TraceCounter()
    run_program(program, grid, program.steps_per_iter,
                boundary=boundary, counter=counter, backend=backend)
    return counter
