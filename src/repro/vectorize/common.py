"""Shared lowering helpers for scheme generators.

All generators lower against a concrete grid geometry (interior shape +
halo) because vector addresses are absolute within the padded buffer.  The
iteration-space convention:

* outer loops walk axes ``0 .. d-2`` over the interior, one point per trip;
* the innermost loop walks the unit-stride x axis in steps of ``block``
  elements (``block`` is scheme-specific, e.g. ``2*W`` for LBV).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import VectorizeError
from ..machine.isa import Affine, MemRef
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from .program import Loop

#: loop variable names by axis depth (outermost first); x is always last.
AXIS_VARS = ("z", "y", "x")


def axis_vars(ndim: int) -> Tuple[str, ...]:
    """Loop variable names for ``ndim`` spatial axes, innermost last."""
    if not 1 <= ndim <= len(AXIS_VARS):
        raise VectorizeError(f"supported dims are 1..{len(AXIS_VARS)}, got {ndim}")
    return AXIS_VARS[-ndim:]


def check_geometry(spec: StencilSpec, grid: Grid, block: int,
                   halo_needed: Sequence[int] | None = None) -> None:
    """Validate grid vs stencil and block divisibility."""
    need = tuple(halo_needed) if halo_needed is not None else spec.radius
    if grid.ndim != spec.ndim:
        raise VectorizeError(
            f"grid ndim {grid.ndim} != stencil ndim {spec.ndim} ({spec.tag})"
        )
    if any(h < r for h, r in zip(grid.halo, need)):
        raise VectorizeError(
            f"grid halo {grid.halo} too small for {spec.tag} (needs {need})"
        )
    nx = grid.shape[-1]
    if nx < block:
        raise VectorizeError(
            f"x extent {nx} shorter than one scheme block ({block}); "
            f"no vector iteration fits"
        )


def loop_nest(grid: Grid, block: int) -> Tuple[Loop, ...]:
    """The interior loop nest: one trip per outer-axis point, ``block``
    elements per x trip.  Loop variables hold *padded-buffer* indices (the
    halo offset is the loop start)."""
    loops = []
    vars_ = axis_vars(grid.ndim)
    for axis, var in enumerate(vars_):
        h, n = grid.halo[axis], grid.shape[axis]
        if axis == grid.ndim - 1:
            # the vector loop covers the largest block-aligned prefix;
            # the driver completes the remainder strip with a scalar
            # epilogue (VectorProgram.x_tail)
            loops.append(Loop(var=var, start=h, stop=h + (n // block) * block,
                              step=block))
        else:
            loops.append(Loop(var=var, start=h, stop=h + n, step=1))
    return tuple(loops)


def point_addr(grid: Grid, offset: Sequence[int], *, array: str,
               x_extra: int = 0) -> MemRef:
    """Address of the vector starting at loop point + ``offset`` (+
    ``x_extra`` along x).  Offsets index neighbours, so they are added to
    the loop variables directly (loop vars already include the halo)."""
    vars_ = axis_vars(grid.ndim)
    index = []
    for axis, var in enumerate(vars_):
        delta = int(offset[axis]) + (x_extra if axis == grid.ndim - 1 else 0)
        index.append(Affine.var(var, 1, delta))
    return MemRef(array, tuple(index))


def out_addr(grid: Grid, *, array: str = "out", x_extra: int = 0) -> MemRef:
    return point_addr(grid, (0,) * grid.ndim, array=array, x_extra=x_extra)
