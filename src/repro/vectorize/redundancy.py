"""Redundancy elimination — the data-reorganization reuse scheme.

The scheme of Li et al. (arXiv 2103.09235): neighbouring output vectors
share most of their shifted operands, so the generator hoists the common
subexpressions instead of rebuilding them.  Taps are grouped by x-offset
into *columns*; each column's weighted row sum

    ``S_dx[x] = sum_rows coeff[row, dx] * a[row, x]``

is computed once per aligned vector position and slid through a
loop-carried window, exactly like Reorg slides raw row registers.  The
output vector is then just the sum of each column's shifted ``S_dx`` —
every multiply that Reorg repeats per shifted operand is paid once per
*column* instead of once per *tap*, and the shuffles that build shifted
vectors act on the pre-reduced sums.

Instruction shape per output vector (vs Reorg on the same spec):

* loads — one aligned load per stencil row (same as Reorg);
* arithmetic — one MUL/FMA per tap to build the fresh column sums, plus
  ``#columns - 1`` ADDs to combine them (Reorg pays one MUL/FMA per tap
  *after* shuffling, so the counts match on stars but the shuffles don't);
* shuffles — one shift per nonzero column offset, regardless of how many
  rows share it (Reorg shifts every row at every offset: a ``(2r+1)^2``
  box pays ``2r`` shifted columns here vs ``(2r+1) * 2r`` shifted row
  accesses there).

The scheme degenerates gracefully on specs with no sharing (1-D rows,
stars): it becomes Reorg with the multiply hoisted before the shuffle.
:func:`has_sharing` reports whether any shifted column is shared by
several rows — the tuner uses it to skip the scheme where it cannot win.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import MachineConfig
from ..stencils.grid import Grid
from ..stencils.spec import Offset, StencilSpec, iter_row_offsets
from .common import check_geometry, loop_nest, out_addr, point_addr
from .multiple_perms import required_halo as _perms_halo
from .program import ProgramBuilder, VectorProgram
from .shifts import RowShifter, window_offsets


def required_halo(spec: StencilSpec, machine: MachineConfig) -> Tuple[int, ...]:
    """Identical to Reorg: aligned loads/column sums reach the widest tap
    rounded up to whole vectors along x, the spec radius elsewhere."""
    return _perms_halo(spec, machine)


def _columns(spec: StencilSpec) -> Dict[int, List[Tuple[Offset, float]]]:
    """Taps grouped by x-offset: ``{dx: [(outer_row, coeff), ...]}``,
    deterministically ordered (columns by dx, rows by outer offset)."""
    cols: Dict[int, List[Tuple[Offset, float]]] = {}
    for outer, taps in iter_row_offsets(spec):
        for dx in sorted(taps):
            cols.setdefault(dx, []).append((outer, taps[dx]))
    return {dx: cols[dx] for dx in sorted(cols)}


def has_sharing(spec: StencilSpec) -> bool:
    """True when some *shifted* column (dx != 0) is shared by >= 2 rows —
    the case where hoisting the column sum saves shuffles over Reorg."""
    return any(dx != 0 and len(entries) >= 2
               for dx, entries in _columns(spec).items())


def _fmt(offset: int) -> str:
    return f"{'m' if offset < 0 else ''}{abs(offset)}"


def generate_redundancy_elim(
    spec: StencilSpec,
    machine: MachineConfig,
    grid: Grid,
) -> VectorProgram:
    """Lower one Jacobi sweep of ``spec`` with column-sum hoisting."""
    width = machine.vector_elems
    check_geometry(spec, grid, block=width,
                   halo_needed=required_halo(spec, machine))
    b = ProgramBuilder(width, elem_bytes=machine.element_bytes)

    rows = list(iter_row_offsets(spec))
    cols = _columns(spec)
    col_window = {dx: window_offsets([dx], width) for dx in cols}
    col_top = {dx: col_window[dx][-1] for dx in cols}

    # Each row needs fresh aligned loads only at the tops of the columns it
    # participates in; a row window spans those tops (consecutive multiples
    # of W), sliding like Reorg's.
    row_window: List[List[int]] = []
    for outer, taps in rows:
        tops = sorted({col_top[dx] for dx in taps})
        row_window.append(list(range(tops[0], tops[-1] + width, width)))

    def weighted_to(dst: str, terms: List[Tuple[float, str]],
                    comment: str) -> str:
        """MUL + FMA chain into a *named* register (window names must be
        stable across iterations, so no coefficient-1.0 MOV shortcut)."""
        acc = None
        for i, (coeff, reg) in enumerate(terms):
            c = b.broadcast(coeff)
            d = dst if i == len(terms) - 1 else None
            if acc is None:
                acc = b.mul(c, reg, dst=d, comment=comment)
            else:
                acc = b.fma(c, reg, acc, dst=d, comment=comment)
        return acc

    # (outer_row, aligned x offset) -> register holding that row vector.
    row_regs: Dict[Tuple[Offset, int], str] = {}

    # -- prologue: seed the loop-carried row and column-sum windows --------
    b.in_prologue()
    for rid, (outer, taps) in enumerate(rows):
        for o in row_window[rid][:-1]:  # the top register is loaded per-iter
            name = f"rw{rid}_{_fmt(o)}"
            b.load_to(name, point_addr(grid, outer + (0,),
                                       array=b.input_array, x_extra=o),
                      comment=f"row {outer}: aligned [{o}]")
            row_regs[(outer, o)] = name
    for cid, (dx, entries) in enumerate(cols.items()):
        for o in col_window[dx][:-1]:
            terms = []
            for outer, coeff in entries:
                if (outer, o) not in row_regs:
                    # one-shot seed load outside any carried row window
                    row_regs[(outer, o)] = b.load(
                        point_addr(grid, outer + (0,), array=b.input_array,
                                   x_extra=o),
                        hint="pl",
                        comment=f"row {outer}: aligned [{o}] (column seed)",
                    )
                terms.append((coeff, row_regs[(outer, o)]))
            weighted_to(f"cs{cid}_{_fmt(o)}", terms,
                        comment=f"column x{dx:+d}: sum @ [{o}]")

    # -- body --------------------------------------------------------------
    b.in_body()
    for rid, (outer, taps) in enumerate(rows):
        top = row_window[rid][-1]
        b.load_to(f"rw{rid}_{_fmt(top)}",
                  point_addr(grid, outer + (0,), array=b.input_array,
                             x_extra=top),
                  comment=f"row {outer}: aligned [{top}]")
        row_regs[(outer, top)] = f"rw{rid}_{_fmt(top)}"
    for cid, (dx, entries) in enumerate(cols.items()):
        top = col_top[dx]
        terms = [(coeff, row_regs[(outer, top)]) for outer, coeff in entries]
        weighted_to(f"cs{cid}_{_fmt(top)}", terms,
                    comment=f"column x{dx:+d}: sum @ [{top}]")

    acc = None
    for cid, (dx, entries) in enumerate(cols.items()):
        regs = {o: f"cs{cid}_{_fmt(o)}" for o in col_window[dx]}
        shifted = RowShifter.from_window(b, regs).at(dx)
        acc = shifted if acc is None else b.add(
            acc, shifted, comment="combine column sums")
    b.store(acc, out_addr(grid), comment="store result vector")

    for rid, (outer, taps) in enumerate(rows):
        for o in row_window[rid][:-1]:
            b.mov_to(f"rw{rid}_{_fmt(o)}", f"rw{rid}_{_fmt(o + width)}",
                     comment="slide row window")
    for cid, (dx, entries) in enumerate(cols.items()):
        for o in col_window[dx][:-1]:
            b.mov_to(f"cs{cid}_{_fmt(o)}", f"cs{cid}_{_fmt(o + width)}",
                     comment="slide column-sum window")

    return b.build(
        name=f"redundancy-elim/{spec.name}",
        scheme="redundancy-elim",
        loops=loop_nest(grid, block=width),
        vectors_per_iter=1,
        overlapped=False,
        tail_spec=spec,
        notes="column sums hoisted and slid; one shift per shifted column",
    )
