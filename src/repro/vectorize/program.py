"""The vector-program IR.

A :class:`VectorProgram` is a symbolic loop nest whose innermost body is a
straight-line vector instruction sequence with affine memory operands.  It
is the common artifact all vectorization schemes produce:

* the :class:`~repro.machine.machine.SimdMachine` interprets it (semantic
  validation against the numpy reference),
* :meth:`VectorProgram.body_mix` / :meth:`per_vector_mix` feed the paper's
  Table-2 instruction accounting, and
* :mod:`repro.machine.pipeline` costs it.

Convention: the innermost loop variable is the unit-stride ``x`` axis and
advances by :attr:`VectorProgram.block` elements per body execution; the
body produces :attr:`vectors_per_iter` output vectors covering those
elements, advancing :attr:`steps_per_iter` time steps (>1 under ITM).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import VectorizeError
from ..machine.isa import Affine, Instr, MemRef, Op
from ..machine.trace import TraceCounter, mix_of


@dataclass(frozen=True)
class Loop:
    """One loop level: ``for var in range(start, stop, step)``."""

    var: str
    start: int
    stop: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise VectorizeError(f"loop {self.var}: step must be positive")
        if self.stop < self.start:
            raise VectorizeError(f"loop {self.var}: empty/negative range")

    @property
    def trip_count(self) -> int:
        return max(0, -(-(self.stop - self.start) // self.step))

    def indices(self) -> range:
        return range(self.start, self.stop, self.step)


@dataclass(frozen=True)
class VectorProgram:
    """A lowered stencil sweep (see module docstring)."""

    name: str
    scheme: str
    width: int                      #: elements per vector register
    loops: Tuple[Loop, ...]         #: outer -> inner; last is the x loop
    prologue: Tuple[Instr, ...]     #: run at each innermost-loop entry
    body: Tuple[Instr, ...]         #: run per innermost iteration
    vectors_per_iter: int           #: output vectors stored per body run
    steps_per_iter: int = 1         #: time steps advanced per sweep (ITM)
    overlapped: bool = False        #: shuffles overlap arithmetic (LBV)
    elem_bytes: int = 8             #: 8 = float64, 4 = float32 lanes
    input_array: str = "a"
    output_array: str = "out"
    #: the (possibly fused) stencil this program computes — used by the
    #: driver's scalar epilogue for non-block-divisible x extents
    tail_spec: object = field(default=None, compare=False)
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.loops:
            raise VectorizeError("a program needs at least the x loop")
        if self.width < 2 or self.width % 2:
            raise VectorizeError(f"width must be an even number of f64 elements, got {self.width}")
        if self.vectors_per_iter < 1:
            raise VectorizeError("vectors_per_iter must be >= 1")
        if self.steps_per_iter < 1:
            raise VectorizeError("steps_per_iter must be >= 1")

    # -- geometry -------------------------------------------------------------
    @property
    def x_loop(self) -> Loop:
        return self.loops[-1]

    @property
    def block(self) -> int:
        """Elements of the x axis covered per body execution."""
        return self.x_loop.step

    @property
    def inner_trips(self) -> int:
        return self.x_loop.trip_count

    def total_body_runs(self) -> int:
        total = 1
        for loop in self.loops:
            total *= loop.trip_count
        return total

    def iter_outer(self) -> Iterable[Dict[str, int]]:
        """Environments for every combination of outer-loop indices."""
        outer = self.loops[:-1]
        if not outer:
            yield {}
            return
        for combo in itertools.product(*(l.indices() for l in outer)):
            yield dict(zip((l.var for l in outer), combo))

    # -- accounting -----------------------------------------------------------
    def body_mix(self) -> TraceCounter:
        tc = mix_of(self.body)
        tc.vectors = self.vectors_per_iter
        tc.steps = self.steps_per_iter
        return tc

    def per_vector_mix(self) -> Dict[str, float]:
        """Instruction counts per output vector per time step (Table 2)."""
        return self.body_mix().per_vector()

    def registers_used(self) -> int:
        """Distinct virtual registers in prologue+body — a register-pressure
        proxy (spilling concerns, §3.1/§4.4)."""
        names = set()
        for instr in self.prologue + self.body:
            if instr.dst:
                names.add(instr.dst)
            names.update(instr.srcs)
        return len(names)

    def constant_registers(self) -> set:
        """Registers holding hoisted broadcast constants.  On x86 these are
        rematerializable (or foldable into FMA memory operands), so the
        spill model excludes them from register pressure."""
        return {
            i.dst for i in self.prologue
            if i.op is Op.BROADCAST and i.dst
        }

    def max_live_registers(self) -> int:
        """Peak simultaneously-live vector registers across one
        steady-state body iteration (backward liveness scan; loop-carried
        registers are live out of the body).  Constants are excluded (see
        :meth:`constant_registers`).  This is the pressure the spill model
        compares against the architectural register count."""
        constants = self.constant_registers()
        written: set = set()
        carried: set = set()
        for instr in self.body:
            for src in instr.srcs:
                if src not in written and src not in constants:
                    carried.add(src)  # read before any write: loop-carried
            if instr.dst:
                written.add(instr.dst)
        live = set(carried)
        peak = len(live)
        for instr in reversed(self.body):
            if instr.dst:
                live.discard(instr.dst)
            for src in instr.srcs:
                if src not in constants:
                    live.add(src)
            peak = max(peak, len(live))
        return peak

    def listing(self) -> str:
        """Human-readable assembly-like listing."""
        lines: List[str] = [f"; {self.name} [{self.scheme}] width={self.width}"]
        indent = ""
        for loop in self.loops:
            lines.append(
                f"{indent}for {loop.var} in [{loop.start}, {loop.stop}) step {loop.step}:"
            )
            indent += "  "
        if self.prologue:
            lines.append(f"{indent}; prologue (per x-loop entry)")
            lines.extend(f"{indent}{i}" for i in self.prologue)
        lines.append(f"{indent}; body")
        lines.extend(f"{indent}{i}" for i in self.body)
        return "\n".join(lines)


class ProgramBuilder:
    """Typed emission helper used by every scheme generator.

    Keeps a fresh-name supply, a broadcast-constant cache (coefficient
    registers are hoisted, as a compiler would), and separate prologue/body
    streams.
    """

    def __init__(self, width: int, *, elem_bytes: int = 8,
                 input_array: str = "a", output_array: str = "out") -> None:
        self.width = width
        self.elem_bytes = elem_bytes
        #: elements per 128-bit lane (2 for f64, 4 for f32)
        self.elems_per_lane = 16 // elem_bytes
        self.input_array = input_array
        self.output_array = output_array
        self._counter = itertools.count()
        self._prologue: List[Instr] = []
        self._body: List[Instr] = []
        self._stream = self._body
        self._const_cache: Dict[float, str] = {}
        self._const_instrs: List[Instr] = []

    # -- stream control --------------------------------------------------------
    def in_prologue(self) -> "ProgramBuilder":
        self._stream = self._prologue
        return self

    def in_body(self) -> "ProgramBuilder":
        self._stream = self._body
        return self

    def fresh(self, hint: str = "v") -> str:
        return f"{hint}{next(self._counter)}"

    def emit(self, instr: Instr) -> Optional[str]:
        self._stream.append(instr)
        return instr.dst

    # -- memory -----------------------------------------------------------------
    def mem(self, *index: Affine | int, array: Optional[str] = None) -> MemRef:
        idx = tuple(ix if isinstance(ix, Affine) else Affine.of(ix) for ix in index)
        return MemRef(array or self.input_array, idx)

    def load(self, mem: MemRef, hint: str = "v", comment: str = "",
             unaligned: bool = False) -> str:
        dst = self.fresh(hint)
        self.emit(Instr(Op.LOAD, dst=dst, mem=mem, unaligned=unaligned,
                        comment=comment))
        return dst

    def load_to(self, dst: str, mem: MemRef, comment: str = "",
                unaligned: bool = False) -> str:
        """Load into a *named* register — for loop-carried windows whose
        names must be stable across iterations."""
        self.emit(Instr(Op.LOAD, dst=dst, mem=mem, unaligned=unaligned,
                        comment=comment))
        return dst

    def store(self, src: str, mem: MemRef, comment: str = "") -> None:
        self.emit(Instr(Op.STORE, srcs=(src,), mem=mem, comment=comment))

    # -- shuffles ----------------------------------------------------------------
    def shufpd(self, a: str, b: str, imm: int, comment: str = "",
               dst: Optional[str] = None) -> str:
        dst = dst or self.fresh("s")
        self.emit(Instr(Op.SHUFPD, dst=dst, srcs=(a, b), imm=imm, comment=comment))
        return dst

    def permilpd(self, a: str, imm: int, comment: str = "") -> str:
        dst = self.fresh("s")
        self.emit(Instr(Op.PERMILPD, dst=dst, srcs=(a,), imm=imm, comment=comment))
        return dst

    def shufps(self, a: str, b: str, imm: int, comment: str = "",
               dst: Optional[str] = None) -> str:
        dst = dst or self.fresh("s")
        self.emit(Instr(Op.SHUFPS, dst=dst, srcs=(a, b), imm=imm,
                        comment=comment))
        return dst

    def unpcklps(self, a: str, b: str, comment: str = "",
                 dst: Optional[str] = None) -> str:
        dst = dst or self.fresh("s")
        self.emit(Instr(Op.UNPCKLPS, dst=dst, srcs=(a, b), comment=comment))
        return dst

    def unpckhps(self, a: str, b: str, comment: str = "",
                 dst: Optional[str] = None) -> str:
        dst = dst or self.fresh("s")
        self.emit(Instr(Op.UNPCKHPS, dst=dst, srcs=(a, b), comment=comment))
        return dst

    def lane_concat(self, a: str, b: str, selectors: Sequence[int],
                    comment: str = "", dst: Optional[str] = None) -> str:
        """Cross-lane concatenation (vperm2f128 / vshufi64x2)."""
        dst = dst or self.fresh("p")
        self.emit(Instr(Op.PERM2F128, dst=dst, srcs=(a, b),
                        imm=tuple(selectors), comment=comment))
        return dst

    def permpd(self, a: str, selectors: Sequence[int], comment: str = "") -> str:
        dst = self.fresh("p")
        self.emit(Instr(Op.PERMPD, dst=dst, srcs=(a,),
                        imm=tuple(int(s) for s in selectors), comment=comment))
        return dst

    def deinterleave(self, a: str, b: str, comment: str = "") -> Tuple[str, str]:
        """The LBV butterfly pair — even and odd elements of the
        concatenated block, with an identical internal permutation at
        every base offset.  In-lane at both element widths:
        ``vshufpd`` masks 0/1s for f64 lanes, ``vshufps`` 0x88/0xDD for
        f32 lanes."""
        if self.elems_per_lane == 4:
            lo = self.shufps(a, b, 0x88, comment=comment or "butterfly evens")
            hi = self.shufps(a, b, 0xDD, comment=comment or "butterfly odds")
            return lo, hi
        lo = self.shufpd(a, b, 0, comment=comment or "butterfly evens")
        hi = self.shufpd(a, b, (1 << self.width) - 1,
                         comment=comment or "butterfly odds")
        return lo, hi

    def interleave(self, e: str, o: str, comment: str = "") -> Tuple[str, str]:
        """Re-interleave the butterfly result pair into the two output
        vectors (the inverse of :meth:`deinterleave`)."""
        if self.elems_per_lane == 4:
            out0 = self.unpcklps(e, o, comment=comment or "interleave lo")
            out1 = self.unpckhps(e, o, comment=comment or "interleave hi")
            return out0, out1
        out0 = self.shufpd(e, o, 0, comment=comment or "interleave lo")
        out1 = self.shufpd(e, o, (1 << self.width) - 1,
                           comment=comment or "interleave hi")
        return out0, out1

    # -- arithmetic ----------------------------------------------------------------
    def broadcast(self, value: float, comment: str = "") -> str:
        """Coefficient broadcast, cached and hoisted before the loop nest
        (constants live in registers across the sweep)."""
        value = float(value)
        if value not in self._const_cache:
            dst = self.fresh("c")
            self._const_instrs.append(
                Instr(Op.BROADCAST, dst=dst, imm=value,
                      comment=comment or f"coeff {value:g}")
            )
            self._const_cache[value] = dst
        return self._const_cache[value]

    def setzero(self, comment: str = "") -> str:
        dst = self.fresh("z")
        self.emit(Instr(Op.SETZERO, dst=dst, comment=comment))
        return dst

    def add(self, a: str, b: str, comment: str = "",
            dst: Optional[str] = None) -> str:
        dst = dst or self.fresh("r")
        self.emit(Instr(Op.ADD, dst=dst, srcs=(a, b), comment=comment))
        return dst

    def mul(self, a: str, b: str, comment: str = "",
            dst: Optional[str] = None) -> str:
        dst = dst or self.fresh("r")
        self.emit(Instr(Op.MUL, dst=dst, srcs=(a, b), comment=comment))
        return dst

    def fma(self, a: str, b: str, c: str, comment: str = "",
            dst: Optional[str] = None) -> str:
        """dst = a*b + c."""
        dst = dst or self.fresh("r")
        self.emit(Instr(Op.FMA, dst=dst, srcs=(a, b, c), comment=comment))
        return dst

    def mov(self, a: str, comment: str = "") -> str:
        dst = self.fresh("m")
        self.emit(Instr(Op.MOV, dst=dst, srcs=(a,), comment=comment))
        return dst

    def mov_to(self, dst: str, a: str, comment: str = "") -> str:
        self.emit(Instr(Op.MOV, dst=dst, srcs=(a,), comment=comment))
        return dst

    def weighted_sum(self, terms: Sequence[Tuple[float, str]],
                     comment: str = "") -> str:
        """``sum(c_i * reg_i)`` as MUL + FMA chain; coefficient 1.0 uses the
        register directly where possible."""
        if not terms:
            raise VectorizeError("weighted_sum needs at least one term")
        acc: Optional[str] = None
        for coeff, reg in terms:
            if acc is None:
                if coeff == 1.0:
                    acc = self.mov(reg, comment=comment)
                else:
                    acc = self.mul(self.broadcast(coeff), reg, comment=comment)
            else:
                acc = self.fma(self.broadcast(coeff), reg, acc, comment=comment)
        return acc

    # -- assembly --------------------------------------------------------------
    def build(
        self,
        *,
        name: str,
        scheme: str,
        loops: Sequence[Loop],
        vectors_per_iter: int,
        steps_per_iter: int = 1,
        overlapped: bool = False,
        tail_spec: object = None,
        notes: str = "",
    ) -> VectorProgram:
        # Hoisted constants execute once per x-loop entry (prologue head);
        # they are excluded from the body mix like real hoisted broadcasts.
        prologue = tuple(self._const_instrs) + tuple(self._prologue)
        return VectorProgram(
            name=name,
            scheme=scheme,
            width=self.width,
            loops=tuple(loops),
            prologue=prologue,
            body=tuple(self._body),
            vectors_per_iter=vectors_per_iter,
            steps_per_iter=steps_per_iter,
            overlapped=overlapped,
            elem_bytes=self.elem_bytes,
            input_array=self.input_array,
            output_array=self.output_array,
            tail_spec=tail_spec,
            notes=notes,
        )
