"""Temporal vectorization — vertical time fusion in registers.

The scheme from Yuan et al. ("Temporal Vectorization for Stencils"): one
body iteration advances the *same* output vector through ``s`` consecutive
Jacobi steps, keeping every partially-updated intermediate vector in
registers.  Level ``t`` of the in-register dataflow holds step-``t`` values
at the offsets still needed by the remaining ``s - t`` steps; only level 0
touches memory (unaligned neighbour loads, Multiple-Loads style), and only
the final level stores.

Compared with ITM (:mod:`repro.core.itm`), which *merges* ``s`` sweeps into
one wider stencil before lowering, temporal vectorization evaluates the
original stencil ``s`` times per iteration and shares the step-``t``
intermediates between the fused applications — the classic
loads-versus-arithmetic trade rotated into the time dimension.

Legality: the live intermediate set at level ``t`` spans a box of radius
``(s - t) * r`` around the output vector, so the fusion depth is bounded by
the vector width over the stencil radius (``s * max(r) <= W``) — the same
shape of bound as :func:`repro.core.itm.fusable`, applied on every axis so
the register working set and the halo both stay within one vector window
per fused step.  Depth 1 is always legal (a plain sweep).

Exactness caveat (same as ITM): fused programs require periodic halos —
with Dirichlet ghosts the intermediate steps would need refreshed boundary
values mid-iteration.  The driver enforces this.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..config import MachineConfig
from ..core.itm import merged_spec
from ..errors import VectorizeError
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from .common import check_geometry, loop_nest, out_addr, point_addr
from .program import ProgramBuilder, VectorProgram


def max_fusion(spec: StencilSpec, machine: MachineConfig) -> int:
    """The deepest legal fusion for ``spec`` on ``machine``:
    ``max(1, W // max(radius))``.  Depth 1 (no fusion) is always legal."""
    r = max(spec.radius)
    if r == 0:
        return machine.vector_elems
    return max(1, machine.vector_elems // r)


def legal_fusion(spec: StencilSpec, machine: MachineConfig, depth: int) -> bool:
    """Whether ``depth`` fused steps fit the register working set."""
    return 1 <= depth <= max_fusion(spec, machine)


def default_fusion(spec: StencilSpec, machine: MachineConfig) -> int:
    """The registry default: two fused steps when legal, else one."""
    return min(2, max_fusion(spec, machine))


def required_halo(spec: StencilSpec, machine: MachineConfig, *,
                  time_fusion: int = 1) -> Tuple[int, ...]:
    """Unaligned loads reach ``s * r`` on every axis (the fused stencil's
    dependency footprint); no rounding to vector multiples is needed."""
    return tuple(time_fusion * r for r in spec.radius)


def generate_temporal(
    spec: StencilSpec,
    machine: MachineConfig,
    grid: Grid,
    *,
    time_fusion: Optional[int] = None,
) -> VectorProgram:
    """Lower ``time_fusion`` fused Jacobi steps of ``spec`` (default:
    :func:`default_fusion`) as one vertical in-register dataflow."""
    width = machine.vector_elems
    s = default_fusion(spec, machine) if time_fusion is None else int(time_fusion)
    if not legal_fusion(spec, machine, s):
        raise VectorizeError(
            f"temporal fusion depth {s} illegal for {spec.tag}: radius "
            f"{max(spec.radius)} at W={width} admits depths "
            f"1..{max_fusion(spec, machine)}"
        )
    check_geometry(spec, grid, block=width,
                   halo_needed=required_halo(spec, machine, time_fusion=s))
    b = ProgramBuilder(width, elem_bytes=machine.element_bytes)
    b.in_body()

    # value(t, outer, e) = the vector of step-t values at loop point +
    # outer (outer axes) + e (x axis), memoized so intermediates shared by
    # neighbouring applications of the stencil are computed once.
    memo: Dict[Tuple[int, Tuple[int, ...], int], str] = {}

    def value(t: int, outer: Tuple[int, ...], e: int) -> str:
        key = (t, outer, e)
        if key in memo:
            return memo[key]
        at = outer + (e,)
        if t == 0:
            reg = b.load(
                point_addr(grid, outer + (0,), array=b.input_array, x_extra=e),
                hint="t",
                unaligned=True,
                comment=f"step 0 @ {at}",
            )
        else:
            acc: Optional[str] = None
            for off, coeff in zip(spec.offsets, spec.coeffs):
                src = value(
                    t - 1,
                    tuple(a + d for a, d in zip(outer, off[:-1])),
                    e + off[-1],
                )
                c = b.broadcast(coeff)
                if acc is None:
                    acc = b.mul(c, src, comment=f"step {t} @ {at}")
                else:
                    acc = b.fma(c, src, acc, comment=f"step {t} @ {at}")
            reg = acc
        memo[key] = reg
        return reg

    result = value(s, (0,) * (spec.ndim - 1), 0)
    b.store(result, out_addr(grid), comment=f"store step {s} vector")

    return b.build(
        name=f"temporal/{spec.name}",
        scheme="temporal",
        loops=loop_nest(grid, block=width),
        vectors_per_iter=1,
        steps_per_iter=s,
        tail_spec=merged_spec(spec, s),
        notes=f"vertical time fusion, depth {s}; "
              f"intermediate steps live in registers",
    )
