"""Folding — the SC'21 in-register transpose baseline (Li et al. [37]).

Folding vectorizes by transposing a ``W x W`` element block inside the
registers: in the transposed domain a stencil tap at x-offset ``d`` simply
reads another register (same position), so the tap gathering itself is
conflict-free.  The price is the transpose network before *and* after the
arithmetic — for AVX2's 4x4 float64 transpose, 4 ``vshufpd`` + 4
``vperm2f128`` each way — plus rotation registers at block seams.  That is
exactly the critique §3.1 levels at it: about **2 cross-lane shuffles per
output vector** (double LBV's single one) and no shuffle/compute overlap
(the transpose phases serialize against the arithmetic).

This implementation executes correctly on the SIMD machine for any kernel
with x-radius ``<= W``; multi-row (2-D/3-D) kernels keep one transposed
window per stencil row.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import MachineConfig
from ..errors import VectorizeError
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec, iter_row_offsets
from .common import check_geometry, loop_nest, out_addr, point_addr
from .program import ProgramBuilder, VectorProgram


def required_halo(spec: StencilSpec, machine: MachineConfig) -> Tuple[int, ...]:
    """Folding's windows span one whole transposed block (W^2 elements)
    on each side of the current block along x."""
    r = spec.radius
    w = machine.vector_elems
    return r[:-1] + (max(r[-1], w * w),)


def _transpose4(b: ProgramBuilder, regs: List[str], tag: str) -> List[str]:
    """The standard AVX2 4x4 float64 in-register transpose
    (4 in-lane ``vshufpd`` + 4 cross-lane ``vperm2f128``)."""
    r0, r1, r2, r3 = regs
    lo01 = b.shufpd(r0, r1, 0b0000, comment=f"{tag} interleave lo 01")
    hi01 = b.shufpd(r0, r1, 0b1111, comment=f"{tag} interleave hi 01")
    lo23 = b.shufpd(r2, r3, 0b0000, comment=f"{tag} interleave lo 23")
    hi23 = b.shufpd(r2, r3, 0b1111, comment=f"{tag} interleave hi 23")
    t0 = b.lane_concat(lo01, lo23, (0, 2), comment=f"{tag} gather col 0")
    t1 = b.lane_concat(hi01, hi23, (0, 2), comment=f"{tag} gather col 1")
    t2 = b.lane_concat(lo01, lo23, (1, 3), comment=f"{tag} gather col 2")
    t3 = b.lane_concat(hi01, hi23, (1, 3), comment=f"{tag} gather col 3")
    return [t0, t1, t2, t3]


class _TransposedWindow:
    """Loop-carried transposed registers of the previous/current block of
    one stencil row, with memoized seam rotations.

    Register ``T[j]`` of the block at ``x`` holds elements
    ``a[x + W*i + j]`` for ``i = 0..W-1``; the tap at transposed column
    ``q = j + d`` resolves to ``T_cur[q]`` or a one-position rotation
    across the block seam.
    """

    def __init__(self, b: ProgramBuilder, rid: int) -> None:
        self.b = b
        self.w = b.width
        self.rid = rid
        self.prev = [f"fold_p{rid}_{j}" for j in range(self.w)]
        self.cur = [f"fold_c{rid}_{j}" for j in range(self.w)]
        self._rot: Dict[int, str] = {}

    def column(self, next_regs: List[str], q: int) -> str:
        """Register for transposed column ``q`` in ``[-W, 2W)``."""
        b, w = self.b, self.w
        if 0 <= q < w:
            return self.cur[q]
        if q in self._rot:
            return self._rot[q]
        if -w <= q < 0:
            # rotate right: (prev[q+W][W-1], cur[q+W][0..W-2])
            p, c = self.prev[q + w], self.cur[q + w]
            mid = b.lane_concat(p, c, (w // 2 - 1, w // 2),
                                comment=f"row{self.rid} seam q={q}")
            reg = b.shufpd(mid, c, 0b0101, comment=f"row{self.rid} rot-right q={q}")
        elif w <= q < 2 * w:
            # rotate left: (cur[q-W][1..W-1], next[q-W][0])
            c, n = self.cur[q - w], next_regs[q - w]
            mid = b.lane_concat(c, n, (1, 2),
                                comment=f"row{self.rid} seam q={q}")
            reg = b.shufpd(c, mid, 0b0101, comment=f"row{self.rid} rot-left q={q}")
        else:
            raise VectorizeError(f"transposed column {q} outside [-W, 2W)")
        self._rot[q] = reg
        return reg


def generate_folding(
    spec: StencilSpec,
    machine: MachineConfig,
    grid: Grid,
) -> VectorProgram:
    """Lower one Jacobi sweep of ``spec`` with the Folding strategy.

    AVX2-only (the transpose network is the 4x4 float64 one) and requires
    x-radius ``<= W`` (one-position seam rotations)."""
    width = machine.vector_elems
    if width != 4 or machine.element_bytes != 8:
        raise VectorizeError(
            f"folding baseline implements the AVX2 4x4 float64 transpose; "
            f"got width={width}, {machine.element_bytes}B elements"
        )
    rx = spec.radius[-1]
    if rx > width:
        raise VectorizeError(
            f"folding seam rotation supports x-radius <= {width}, got {rx}"
        )
    block = width * width  # one transposed block per iteration
    check_geometry(spec, grid, block=block,
                   halo_needed=required_halo(spec, machine))
    b = ProgramBuilder(width, elem_bytes=machine.element_bytes)

    rows = list(iter_row_offsets(spec))
    windows: List[_TransposedWindow] = []

    # prologue: transpose the previous and current block of every row
    b.in_prologue()
    for rid, (outer, _taps) in enumerate(rows):
        win = _TransposedWindow(b, rid)
        off0 = outer + (0,)
        for base, names in ((-block, win.prev), (0, win.cur)):
            raw = [
                b.load(point_addr(grid, off0, array=b.input_array,
                                  x_extra=base + j * width),
                       comment=f"row {outer}: block load")
                for j in range(width)
            ]
            cols = _transpose4(b, raw, tag=f"row{rid} in")
            for name, col in zip(names, cols):
                b.mov_to(name, col, comment="pin transposed column")
        windows.append(win)

    # body
    b.in_body()
    carried: List[Tuple[str, str]] = []
    next_cols: List[List[str]] = []
    for rid, (outer, _taps) in enumerate(rows):
        off0 = outer + (0,)
        raw = [
            b.load(point_addr(grid, off0, array=b.input_array,
                              x_extra=block + j * width),
                   comment=f"row {outer}: next block load")
            for j in range(width)
        ]
        next_cols.append(_transpose4(b, raw, tag=f"row{rid} in"))

    results: List[str] = []
    for j in range(width):
        acc = None
        for rid, (outer, taps) in enumerate(rows):
            win = windows[rid]
            for dx in sorted(taps):
                reg = win.column(next_cols[rid], j + dx)
                c = b.broadcast(taps[dx])
                if acc is None:
                    acc = b.mul(c, reg, comment=f"col {j} first tap")
                else:
                    acc = b.fma(c, reg, acc, comment=f"col {j} tap {outer}+{dx}")
        results.append(acc)

    outs = _transpose4(b, results, tag="out")
    for j, reg in enumerate(outs):
        b.store(reg, out_addr(grid, x_extra=j * width),
                comment=f"store output vector {j}")

    for win, cols in zip(windows, next_cols):
        for p, c in zip(win.prev, win.cur):
            carried.append((p, c))
        for c, n in zip(win.cur, cols):
            carried.append((c, n))
    for dst, src in carried:
        b.mov_to(dst, src, comment="slide transposed window")

    return b.build(
        name=f"folding/{spec.name}",
        scheme="folding",
        loops=loop_nest(grid, block=block),
        vectors_per_iter=width,
        overlapped=False,
        tail_spec=spec,
        notes="in-register 4x4 transpose in/out; seam rotations at block edges",
    )
