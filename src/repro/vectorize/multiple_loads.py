"""Multiple Loads — the compiler auto-vectorization baseline ("Auto").

For every neighbour offset the scheme issues one (generally unaligned)
vector load and accumulates with an FMA: ``k`` loads and one store per
output vector, zero shuffles (paper Table 2, "Auto" row).  The data-transfer
volume multiplies with the stencil size and the unaligned accesses make the
pipeline load-port bound — the weakness §2.1 describes.
"""

from __future__ import annotations

from ..config import MachineConfig
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from .common import check_geometry, loop_nest, out_addr, point_addr
from .program import ProgramBuilder, VectorProgram


def generate_multiple_loads(
    spec: StencilSpec,
    machine: MachineConfig,
    grid: Grid,
) -> VectorProgram:
    """Lower one Jacobi sweep of ``spec`` with the Multiple-Loads strategy."""
    width = machine.vector_elems
    check_geometry(spec, grid, block=width)
    b = ProgramBuilder(width, elem_bytes=machine.element_bytes)

    acc = None
    for off, coeff in zip(spec.offsets, spec.coeffs):
        v = b.load(point_addr(grid, off, array=b.input_array),
                   comment=f"neighbour {off}",
                   unaligned=off[-1] % width != 0)
        c = b.broadcast(coeff)
        if acc is None:
            acc = b.mul(c, v, comment="first tap")
        else:
            acc = b.fma(c, v, acc, comment=f"tap {off}")
    b.store(acc, out_addr(grid), comment="store result vector")

    return b.build(
        name=f"multiple-loads/{spec.name}",
        scheme="multiple-loads",
        loops=loop_nest(grid, block=width),
        vectors_per_iter=1,
        overlapped=False,
        tail_spec=spec,
        notes="one unaligned load per neighbour; no shuffles",
    )
