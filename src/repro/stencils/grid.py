"""Grids with halo (ghost) regions.

Vector kernels only ever touch aligned interior data; boundary conditions
are realised by filling the halo (:mod:`repro.stencils.boundary`) before a
sweep, exactly like the ghost-region practice in the stencil codes the
paper builds on.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import GridError


class Grid:
    """A d-dimensional float64 grid with a per-axis halo.

    ``data`` has shape ``interior + 2*halo`` per axis; :attr:`interior`
    is the writable view without ghosts.
    """

    __slots__ = ("halo", "shape", "data")

    def __init__(
        self,
        shape: Sequence[int],
        halo: int | Sequence[int],
        *,
        dtype=np.float64,
    ) -> None:
        shape = tuple(int(s) for s in shape)
        if not shape or any(s <= 0 for s in shape):
            raise GridError(f"interior shape must be positive, got {shape}")
        if isinstance(halo, int):
            halo = (halo,) * len(shape)
        halo = tuple(int(h) for h in halo)
        if len(halo) != len(shape):
            raise GridError(f"halo {halo} does not match ndim {len(shape)}")
        if any(h < 0 for h in halo):
            raise GridError(f"halo must be non-negative, got {halo}")
        self.shape: Tuple[int, ...] = shape
        self.halo: Tuple[int, ...] = halo
        self.data = np.zeros(
            tuple(s + 2 * h for s, h in zip(shape, halo)), dtype=dtype
        )

    # -- construction --------------------------------------------------------
    @classmethod
    def from_array(cls, array: np.ndarray, halo: int | Sequence[int]) -> "Grid":
        """A grid whose interior is a copy of ``array``."""
        g = cls(array.shape, halo, dtype=array.dtype)
        g.interior[...] = array
        return g

    @classmethod
    def random(
        cls,
        shape: Sequence[int],
        halo: int | Sequence[int],
        *,
        seed: int = 0,
        low: float = 0.0,
        high: float = 1.0,
        dtype=np.float64,
    ) -> "Grid":
        """A grid with reproducible uniform-random interior values."""
        g = cls(shape, halo, dtype=dtype)
        rng = np.random.default_rng(seed)
        g.interior[...] = rng.uniform(low, high, size=g.shape).astype(dtype)
        return g

    # -- views ---------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def interior(self) -> np.ndarray:
        """Writable view of the interior (no ghosts)."""
        sl = tuple(
            slice(h, h + s) if h else slice(None)
            for s, h in zip(self.shape, self.halo)
        )
        return self.data[sl]

    def shifted_interior(self, offset: Sequence[int]) -> np.ndarray:
        """Interior-shaped view shifted by ``offset`` (may read the halo).

        This is how the numpy reference gathers a neighbour field: the view
        at offset ``o`` aligned against the interior gives ``in[p + o]`` for
        every interior point ``p``.
        """
        offset = tuple(int(o) for o in offset)
        if len(offset) != self.ndim:
            raise GridError(f"offset {offset} does not match ndim {self.ndim}")
        sl = []
        for o, s, h in zip(offset, self.shape, self.halo):
            if abs(o) > h:
                raise GridError(f"offset {offset} exceeds halo {self.halo}")
            sl.append(slice(h + o, h + o + s))
        return self.data[tuple(sl)]

    # -- misc ----------------------------------------------------------------
    def like(self) -> "Grid":
        """A zeroed grid with the same geometry."""
        return Grid(self.shape, self.halo, dtype=self.data.dtype)

    def copy(self) -> "Grid":
        g = self.like()
        g.data[...] = self.data
        return g

    def npoints(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def nbytes(self) -> int:
        return self.data.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Grid shape={self.shape} halo={self.halo}>"
