"""Halo (ghost region) filling.

Two boundary conditions cover the paper's evaluation needs:

* ``periodic`` — wrap-around copies, which make every vectorization scheme
  exactly comparable against :func:`numpy`-based references on all grid
  points (used by the test suite), and
* ``dirichlet`` — a constant value outside the domain (the common physical
  setting for the heat kernels).

Halo filling is done axis by axis so that corner ghosts are composed
correctly (a corner is the wrap of a wrap).
"""

from __future__ import annotations

from ..errors import GridError
from .grid import Grid

MODES = ("periodic", "dirichlet")


def fill_halo(grid: Grid, mode: str = "periodic", *, value: float = 0.0) -> Grid:
    """Fill ``grid``'s halo in place and return the grid.

    ``mode`` is ``"periodic"`` or ``"dirichlet"`` (constant ``value``).
    """
    if mode not in MODES:
        raise GridError(f"unknown boundary mode {mode!r}; known: {MODES}")
    data = grid.data
    for axis, (n, h) in enumerate(zip(grid.shape, grid.halo)):
        if h == 0:
            continue
        if mode == "periodic" and h > n:
            raise GridError(
                f"periodic halo {h} wider than interior extent {n} on axis {axis}"
            )
        # Build slices that select the halo bands on this axis while taking
        # *all* indices on other axes (so earlier-axis halos propagate).
        def band(sl: slice) -> tuple:
            out = [slice(None)] * grid.ndim
            out[axis] = sl
            return tuple(out)

        lo_ghost = band(slice(0, h))
        hi_ghost = band(slice(n + h, n + 2 * h))
        if mode == "periodic":
            data[lo_ghost] = data[band(slice(n, n + h))]
            data[hi_ghost] = data[band(slice(h, 2 * h))]
        else:
            data[lo_ghost] = value
            data[hi_ghost] = value
    return grid
