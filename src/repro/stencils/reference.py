"""Ground-truth stencil implementations.

:func:`apply_numpy` (shift-and-accumulate on halo grids) defines the
semantics every vectorization scheme in this repository must reproduce
bit-for-bit up to floating-point reassociation.  :func:`apply_scalar` is a
deliberately naive triple loop used to validate ``apply_numpy`` itself on
tiny grids.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import GridError
from .boundary import fill_halo
from .grid import Grid
from .spec import StencilSpec


def required_halo(spec: StencilSpec) -> tuple:
    """The minimum per-axis halo one sweep of ``spec`` reads."""
    return spec.radius


def _check_halo(spec: StencilSpec, grid: Grid) -> None:
    need = required_halo(spec)
    if grid.ndim != spec.ndim:
        raise GridError(
            f"grid ndim {grid.ndim} != stencil ndim {spec.ndim} ({spec.tag})"
        )
    if any(h < r for h, r in zip(grid.halo, need)):
        raise GridError(
            f"grid halo {grid.halo} too small for {spec.tag} (needs {need})"
        )


def apply_numpy(spec: StencilSpec, grid: Grid, out: Optional[Grid] = None) -> Grid:
    """One Jacobi sweep using numpy shifted views.

    The halo must already be filled.  Writes the updated interior into
    ``out`` (allocated if ``None``) and returns it.
    """
    _check_halo(spec, grid)
    if out is None:
        out = grid.like()
    acc = out.interior
    acc.fill(0.0)
    for off, c in zip(spec.offsets, spec.coeffs):
        # acc += c * in[p + off]; shifted_interior reads the halo as needed.
        np.add(acc, c * grid.shifted_interior(off), out=acc)
    return out


def apply_scalar(spec: StencilSpec, grid: Grid, out: Optional[Grid] = None) -> Grid:
    """One Jacobi sweep with explicit Python loops (tiny grids only)."""
    _check_halo(spec, grid)
    if out is None:
        out = grid.like()
    halo = grid.halo
    table = list(zip(spec.offsets, spec.coeffs))
    for idx in np.ndindex(*grid.shape):
        s = 0.0
        for off, c in table:
            src = tuple(i + h + o for i, h, o in zip(idx, halo, off))
            s += c * float(grid.data[src])
        out.data[tuple(i + h for i, h in zip(idx, halo))] = s
    return out


def apply_steps(
    spec: StencilSpec,
    grid: Grid,
    steps: int,
    *,
    boundary: str = "periodic",
    value: float = 0.0,
) -> Grid:
    """``steps`` Jacobi sweeps with halo refills between them.

    Returns a new grid; ``grid`` is not modified.  This is the semantic
    yardstick for ITM: fusing ``s`` steps must equal ``apply_steps(...,
    steps=s)``.
    """
    if steps < 0:
        raise GridError("steps must be non-negative")
    cur = grid.copy()
    nxt = grid.like()
    for _ in range(steps):
        fill_halo(cur, boundary, value=value)
        apply_numpy(spec, cur, nxt)
        cur, nxt = nxt, cur
    return cur
