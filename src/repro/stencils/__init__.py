"""Stencil specifications, the standard kernel library, grids with halos,
boundary handling, and ground-truth reference implementations.

This package is the substrate every vectorization scheme is validated
against: :func:`repro.stencils.reference.apply_numpy` defines the semantics
of one Jacobi sweep, and :class:`repro.stencils.spec.StencilSpec` is the
single source of truth for a kernel's offsets and coefficients.
"""

from .spec import StencilSpec, star, box, from_array
from .grid import Grid
from .boundary import fill_halo
from .reference import apply_numpy, apply_scalar, apply_steps
from . import library

__all__ = [
    "StencilSpec",
    "star",
    "box",
    "from_array",
    "Grid",
    "fill_halo",
    "apply_numpy",
    "apply_scalar",
    "apply_steps",
    "library",
]
