"""The paper's kernel library (Table 3) plus a few extras.

All eight Table-3 kernels are provided with the same points counts the
paper lists:

======== ========== ======= ==============================
kernel    shape      points  spec factory
======== ========== ======= ==============================
Heat-1D   star 1-D    3      :func:`heat1d`
1D5P      star 1-D    5      :func:`star1d5p`
1D7P      star 1-D    7      :func:`star1d7p`
Heat-2D   star 2-D    5      :func:`heat2d`
Box-2D9P  box 2-D     9      :func:`box2d9p`
Star-2D9P star 2-D    9      :func:`star2d9p`
Heat-3D   star 3-D    7      :func:`heat3d`
Box-3D27P box 3-D     27     :func:`box3d27p`
======== ========== ======= ==============================

Coefficients are symmetric and sum to 1 (Jacobi smoothing weights), the
standard choice in the stencil literature the paper cites; symmetry is what
gives the coefficient matrices their low rank (§3.2 "Coefficient
Symmetry").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..errors import SpecError
from .spec import StencilSpec, box, star


def heat1d() -> StencilSpec:
    """1D3P heat/Jacobi kernel: ``(1/4, 1/2, 1/4)``."""
    return star(1, 1, center=0.5, arm=[0.25], name="heat-1d")


def star1d5p() -> StencilSpec:
    """1D5P star; binomial weights ``(1,4,6,4,1)/16``."""
    return star(1, 2, center=6 / 16, arm=[4 / 16, 1 / 16], name="star-1d5p")


def star1d7p() -> StencilSpec:
    """1D7P star; binomial weights ``(1,6,15,20,15,6,1)/64``."""
    return star(1, 3, center=20 / 64, arm=[15 / 64, 6 / 64, 1 / 64],
                name="star-1d7p")


def heat2d() -> StencilSpec:
    """2D5P heat kernel: centre 1/2, four neighbours 1/8."""
    return star(2, 1, center=0.5, arm=[0.125], name="heat-2d")


def box2d9p() -> StencilSpec:
    """Box-2D9P: uniform ring 1/12 with a heavier centre 1/3.

    This is exactly the paper's Figure-4 case: the coefficient matrix is a
    rank-1 all-ones matrix plus a single centre point, so SDF decomposes it
    into one rank-1 flattening term plus one FMA (rank 2 overall).
    """
    w = np.full((3, 3), 1 / 12)
    w[1, 1] = 1 / 3
    return box(2, 1, w, name="box-2d9p")


def box2d9p_separable() -> StencilSpec:
    """A rank-1 Box-2D9P variant: outer product of ``(1/4,1/2,1/4)``.

    Used by tests and the ablation study to exercise the pure rank-1 SDF
    path (no residual point)."""
    b = np.array([0.25, 0.5, 0.25])
    return box(2, 1, np.outer(b, b), name="box-2d9p-separable")


def star2d9p() -> StencilSpec:
    """Star-2D9P: radius-2 star (order 2), centre 1/2, arms (1/10, 1/40)."""
    return star(2, 2, center=0.5, arm=[0.1, 0.025], name="star-2d9p")


def heat3d() -> StencilSpec:
    """3D7P heat kernel: centre 2/5, six neighbours 1/10."""
    return star(3, 1, center=0.4, arm=[0.1], name="heat-3d")


def box3d27p() -> StencilSpec:
    """Box-3D27P: separable ``(1/4,1/2,1/4)`` in all three axes.

    Fully separable ⇒ each z-plane matrix is rank 1; SDF removes 8/9 of the
    shuffle work (§3.2 Redundancy Reduction Analysis)."""
    b = np.array([0.25, 0.5, 0.25])
    w = b[:, None, None] * b[None, :, None] * b[None, None, :]
    return box(3, 1, w, name="box-3d27p")


def box2d25p() -> StencilSpec:
    """Box-2D25P: separable radius-2 binomial box ``(1,4,6,4,1)/16 ⊗``.

    Beyond the paper's Table 3; exercises the radius-2 box path (rank-1
    under SDF)."""
    b = np.array([1, 4, 6, 4, 1]) / 16
    return box(2, 2, np.outer(b, b), name="box-2d25p")


def star3d13p() -> StencilSpec:
    """Star-3D13P: radius-2 3-D star (order 2), centre 0.4, arms
    (0.08, 0.02).  Beyond Table 3; exercises high-order 3-D flattening."""
    return star(3, 2, center=0.4, arm=[0.08, 0.02], name="star-3d13p")


def star2d13p() -> StencilSpec:
    """Star-2D13P: radius-3 2-D star (order 3), centre 1/4, arms
    (1/8, 1/20, 1/80).  Beyond Table 3; the higher-order star the scheme
    conformance matrix exercises (deep sliding windows on narrow
    registers, fusion-depth clamping for temporal vectorization)."""
    return star(2, 3, center=0.25, arm=[0.125, 0.05, 0.0125],
                name="star-2d13p")


def varcoef2d5p() -> StencilSpec:
    """A direction-dependent ("variable-coefficient") 2D5P operator:
    every tap carries a distinct weight, as in discretized
    advection-diffusion with a non-axis-aligned velocity.  Nothing about
    it is symmetric or separable, so it defeats every symmetry-based
    optimization (SDF low rank, folding's centro-symmetry, tessellation)
    and keeps the generic scheme paths honest."""
    return StencilSpec(
        name="varcoef-2d5p", ndim=2,
        offsets=((0, 0), (0, -1), (0, 1), (-1, 0), (1, 0)),
        coeffs=(0.35, 0.05, 0.3, 0.1, 0.2),
    )


def advection1d() -> StencilSpec:
    """An *asymmetric* upwind advection-diffusion kernel
    ``(0.6, 0.3, 0.1)``.  Coefficient symmetry is an optimization in
    Jigsaw, not a requirement; this kernel keeps the asymmetric paths
    honest (the tessellation baseline rejects it by design)."""
    return StencilSpec(
        name="advection-1d", ndim=1,
        offsets=((-1,), (0,), (1,)),
        coeffs=(0.6, 0.3, 0.1),
    )


_FACTORIES: Dict[str, Callable[[], StencilSpec]] = {
    "heat-1d": heat1d,
    "star-1d5p": star1d5p,
    "star-1d7p": star1d7p,
    "heat-2d": heat2d,
    "box-2d9p": box2d9p,
    "box-2d9p-separable": box2d9p_separable,
    "star-2d9p": star2d9p,
    "heat-3d": heat3d,
    "box-3d27p": box3d27p,
    "box-2d25p": box2d25p,
    "star-3d13p": star3d13p,
    "star-2d13p": star2d13p,
    "varcoef-2d5p": varcoef2d5p,
    "advection-1d": advection1d,
}


def get(name: str) -> StencilSpec:
    """Fetch a library kernel by name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise SpecError(f"unknown kernel {name!r}; known: {sorted(_FACTORIES)}") from None


def names() -> Tuple[str, ...]:
    return tuple(sorted(_FACTORIES))


@dataclass(frozen=True)
class KernelConfig:
    """One row of the paper's Table 3: a kernel with its evaluation problem
    size (spatial extents), time steps, and cache-blocking tile."""

    kernel: str
    problem_size: Tuple[int, ...]
    time_steps: int
    blocking: Tuple[int, ...]

    @property
    def spec(self) -> StencilSpec:
        return get(self.kernel)

    @property
    def points(self) -> int:
        return self.spec.npoints

    def grid_points(self) -> int:
        n = 1
        for s in self.problem_size:
            n *= s
        return n

    @property
    def tile_shape(self) -> Tuple[int, ...]:
        """The spatial part of the Table-3 blocking column."""
        ndim = len(self.problem_size)
        return self.blocking[:ndim]

    @property
    def time_depth(self) -> int:
        """The temporal part of the blocking column.

        1-D/2-D rows carry an explicit trailing time-tile depth, and the
        paper's values satisfy the tessellation constraint
        ``2 r Tb <= tile`` exactly.  3-D rows list spatial extents only;
        tessellating tiling is inherently temporal, so we use the maximum
        depth the constraint allows for the listed tile (documented
        interpretation, EXPERIMENTS.md)."""
        ndim = len(self.problem_size)
        extra = self.blocking[ndim:]
        if extra:
            return extra[0]
        r = max(self.spec.radius)
        return max(1, min(self.blocking[:ndim]) // (2 * r))


#: Table 3 verbatim.  1-D rows list "size x T"; 2-D rows "N x N x T"
#: (the paper writes Heat-2D as 10000^2 spatial with 10000 steps);
#: 3-D rows "256^3 x 1000".
TABLE3: Tuple[KernelConfig, ...] = (
    KernelConfig("heat-1d", (10_240_000,), 10_000, (2000, 1000)),
    KernelConfig("star-1d5p", (10_240_000,), 10_000, (2000, 500)),
    KernelConfig("star-1d7p", (10_240_000,), 10_000, (2000, 300)),
    KernelConfig("heat-2d", (10_000, 10_000), 10_000, (200, 200, 50)),
    KernelConfig("star-2d9p", (10_000, 10_000), 10_000, (200, 200, 25)),
    KernelConfig("box-2d9p", (10_000, 10_000), 10_000, (200, 200, 50)),
    KernelConfig("heat-3d", (256, 256, 256), 1000, (20, 20, 10)),
    KernelConfig("box-3d27p", (256, 256, 256), 1000, (20, 20, 10)),
)


def table3_config(kernel: str) -> KernelConfig:
    for cfg in TABLE3:
        if cfg.kernel == kernel:
            return cfg
    raise SpecError(f"kernel {kernel!r} is not in Table 3")
