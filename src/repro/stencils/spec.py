"""Stencil specifications.

A :class:`StencilSpec` is an immutable description of a Jacobi stencil: a
set of integer neighbour offsets and one coefficient per offset.  The paper
names kernels ``nDkP`` (dimensions / points); :attr:`StencilSpec.tag`
reproduces that naming.

Axis convention
---------------
Offsets are ``(axis_0, ..., axis_{d-1})`` with the **last axis being the
unit-stride x dimension** — the one vectorized by LBV.  For 2-D that is
``(y, x)``, for 3-D ``(z, y, x)``, matching C row-major layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from ..errors import SpecError

Offset = Tuple[int, ...]


def _as_offset(off: Sequence[int], ndim: int) -> Offset:
    off = tuple(int(o) for o in off)
    if len(off) != ndim:
        raise SpecError(f"offset {off} has {len(off)} axes, expected {ndim}")
    return off


@dataclass(frozen=True)
class StencilSpec:
    """An immutable Jacobi stencil: ``out[p] = sum_o coeff[o] * in[p + o]``.

    Use the factory helpers :func:`star`, :func:`box`, :func:`from_array`
    for the common shapes; the constructor validates arbitrary point sets.
    """

    name: str
    ndim: int
    offsets: Tuple[Offset, ...]
    coeffs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.ndim < 1:
            raise SpecError("ndim must be >= 1")
        if not self.offsets:
            raise SpecError("a stencil needs at least one point")
        if len(self.offsets) != len(self.coeffs):
            raise SpecError(
                f"{len(self.offsets)} offsets but {len(self.coeffs)} coefficients"
            )
        seen: set[Offset] = set()
        norm = []
        for off in self.offsets:
            off = _as_offset(off, self.ndim)
            if off in seen:
                raise SpecError(f"duplicate offset {off}")
            seen.add(off)
            norm.append(off)
        object.__setattr__(self, "offsets", tuple(norm))
        object.__setattr__(self, "coeffs", tuple(float(c) for c in self.coeffs))
        if not all(np.isfinite(self.coeffs)):
            raise SpecError("coefficients must be finite")

    # -- basic shape queries ------------------------------------------------
    @property
    def npoints(self) -> int:
        return len(self.offsets)

    @property
    def radius(self) -> Tuple[int, ...]:
        """Per-axis radius (max abs offset)."""
        return tuple(
            max(abs(o[a]) for o in self.offsets) for a in range(self.ndim)
        )

    @property
    def order(self) -> int:
        """The paper's 'order': the maximum per-axis radius."""
        return max(self.radius)

    @property
    def tag(self) -> str:
        """The paper's ``nDkP`` naming, e.g. ``2D9P``."""
        return f"{self.ndim}D{self.npoints}P"

    @property
    def is_star(self) -> bool:
        """True if every non-centre offset lies on a coordinate axis."""
        return all(sum(1 for c in off if c != 0) <= 1 for off in self.offsets)

    @property
    def is_box(self) -> bool:
        """True if the points fill the whole ``(2r+1)^d`` box."""
        r = self.radius
        expect = 1
        for ra in r:
            expect *= 2 * ra + 1
        return self.npoints == expect

    @property
    def is_symmetric(self) -> bool:
        """Centro-symmetric coefficients (c[o] == c[-o]), §3.2."""
        table = self.coefficient_table()
        return all(
            np.isclose(c, table.get(tuple(-x for x in off), np.nan))
            for off, c in table.items()
        )

    # -- coefficient views ---------------------------------------------------
    def coefficient_table(self) -> Dict[Offset, float]:
        return dict(zip(self.offsets, self.coeffs))

    def coefficient_array(self) -> np.ndarray:
        """Dense ``(2r_0+1, ..., 2r_{d-1}+1)`` array of coefficients, centre
        at index ``r``.  This is the matrix `W` that SDF decomposes (2-D) and
        the array ITM convolves with itself."""
        r = self.radius
        arr = np.zeros(tuple(2 * ra + 1 for ra in r), dtype=np.float64)
        for off, c in zip(self.offsets, self.coeffs):
            arr[tuple(o + ra for o, ra in zip(off, r))] = c
        return arr

    def coefficient_matrix(self) -> np.ndarray:
        """The 2-D coefficient matrix ``W`` of §3.2 (requires ndim == 2)."""
        if self.ndim != 2:
            raise SpecError(
                f"coefficient_matrix is 2-D only; {self.tag} has ndim={self.ndim}"
            )
        return self.coefficient_array()

    def coefficient_sum(self) -> float:
        return float(sum(self.coeffs))

    # -- derived stencils ----------------------------------------------------
    def scaled(self, factor: float) -> "StencilSpec":
        return StencilSpec(
            name=f"{self.name}*{factor:g}",
            ndim=self.ndim,
            offsets=self.offsets,
            coeffs=tuple(c * factor for c in self.coeffs),
        )

    def renamed(self, name: str) -> "StencilSpec":
        return StencilSpec(name=name, ndim=self.ndim, offsets=self.offsets,
                           coeffs=self.coeffs)

    def axis_taps(self, axis: int) -> Dict[int, float]:
        """Taps along one axis for 1-D-separable uses; only valid when all
        offsets are on that axis (star 1-D views)."""
        taps: Dict[int, float] = {}
        for off, c in zip(self.offsets, self.coeffs):
            if any(off[a] != 0 for a in range(self.ndim) if a != axis):
                raise SpecError(
                    f"{self.tag} has off-axis points; axis_taps needs a 1-D line"
                )
            taps[off[axis]] = taps.get(off[axis], 0.0) + c
        return taps

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StencilSpec {self.name} {self.tag} r={self.radius}>"


# -- factories ----------------------------------------------------------------

def star(
    ndim: int,
    radius: int,
    *,
    center: float,
    arm: Sequence[float],
    name: str | None = None,
) -> StencilSpec:
    """A star (axis-aligned cross) stencil.

    ``arm[k-1]`` is the coefficient of the neighbours at distance ``k``
    along every axis in both directions (the symmetric case the paper
    evaluates).
    """
    if radius < 1:
        raise SpecError("star radius must be >= 1")
    if len(arm) != radius:
        raise SpecError(f"need {radius} arm coefficients, got {len(arm)}")
    offsets: list[Offset] = [(0,) * ndim]
    coeffs: list[float] = [center]
    for axis in range(ndim):
        for k in range(1, radius + 1):
            for sign in (-1, 1):
                off = [0] * ndim
                off[axis] = sign * k
                offsets.append(tuple(off))
                coeffs.append(float(arm[k - 1]))
    npoints = 1 + 2 * ndim * radius
    spec = StencilSpec(
        name=name or f"star-{ndim}d{npoints}p",
        ndim=ndim,
        offsets=tuple(offsets),
        coeffs=tuple(coeffs),
    )
    return spec


def box(
    ndim: int,
    radius: int,
    weights: np.ndarray | None = None,
    *,
    name: str | None = None,
) -> StencilSpec:
    """A dense box stencil over the full ``(2r+1)^d`` neighbourhood.

    ``weights`` must have shape ``(2r+1,)*ndim``; ``None`` gives the uniform
    average.  Zero weights are kept (a box is a box); use
    :func:`from_array` to drop structural zeros.
    """
    side = 2 * radius + 1
    shape = (side,) * ndim
    if weights is None:
        weights = np.full(shape, 1.0 / side**ndim)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != shape:
        raise SpecError(f"weights shape {weights.shape} != {shape}")
    offsets = []
    coeffs = []
    for idx in np.ndindex(*shape):
        offsets.append(tuple(i - radius for i in idx))
        coeffs.append(float(weights[idx]))
    return StencilSpec(
        name=name or f"box-{ndim}d{side**ndim}p",
        ndim=ndim,
        offsets=tuple(offsets),
        coeffs=tuple(coeffs),
    )


def from_array(
    weights: np.ndarray,
    *,
    name: str = "custom",
    keep_zeros: bool = False,
    tol: float = 0.0,
) -> StencilSpec:
    """Build a spec from a dense odd-sided coefficient array (centre at the
    middle index).  Entries with ``|w| <= tol`` are dropped unless
    ``keep_zeros``."""
    weights = np.asarray(weights, dtype=np.float64)
    if any(s % 2 == 0 for s in weights.shape):
        raise SpecError(f"coefficient array sides must be odd, got {weights.shape}")
    r = tuple(s // 2 for s in weights.shape)
    offsets = []
    coeffs = []
    for idx in np.ndindex(*weights.shape):
        w = float(weights[idx])
        if not keep_zeros and abs(w) <= tol:
            continue
        offsets.append(tuple(i - ra for i, ra in zip(idx, r)))
        coeffs.append(w)
    if not offsets:
        raise SpecError("coefficient array is entirely zero")
    return StencilSpec(name=name, ndim=weights.ndim, offsets=tuple(offsets),
                       coeffs=tuple(coeffs))


def iter_row_offsets(spec: StencilSpec) -> Iterable[Tuple[Offset, Dict[int, float]]]:
    """Group a spec's points by their outer-axes coordinates.

    Yields ``(outer_offset, {x_offset: coeff})`` pairs — the "rows" the
    Multiple-Permutations and SDF schemes load.  For 1-D the single outer
    offset is ``()``.
    """
    rows: Dict[Offset, Dict[int, float]] = {}
    for off, c in zip(spec.offsets, spec.coeffs):
        outer, x = off[:-1], off[-1]
        rows.setdefault(outer, {})[x] = rows.get(outer, {}).get(x, 0.0) + c
    for outer in sorted(rows):
        yield outer, rows[outer]
