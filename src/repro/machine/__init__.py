"""The SIMD register-machine substrate.

Python has no register-level control, so the paper's hardware target is
substituted by this package (see DESIGN.md §2): an instruction-set
interpreter with AVX2-faithful shuffle semantics (:mod:`repro.machine.isa`,
:mod:`repro.machine.machine`), per-instruction cost tables mirroring the
paper's Table 1 (:mod:`repro.machine.costs`), a port-pressure/critical-path
pipeline model (:mod:`repro.machine.pipeline`), and a cache-hierarchy
bandwidth model (:mod:`repro.machine.memory`), combined into GStencil/s
estimates by :mod:`repro.machine.perfmodel`.
"""

from .isa import (
    Affine,
    Instr,
    InstrClass,
    MemRef,
    Op,
    classify,
)
from .machine import SimdMachine
from .batch import BatchedProgram, BatchFallback, analytic_trace
from .codegen import CodegenFallback, CodegenProgram, emitted_source, get_codegen
from .trace import TraceCounter
from .costs import CostTable, cost_table_for
from .pipeline import PipelineModel, PipelineEstimate
from .memory import CacheHierarchyModel, MemoryEstimate
from .perfmodel import PerformanceModel, PerfResult, KernelCost
from .cachesim import (
    CacheHierarchySim,
    CacheLevelSim,
    CacheStats,
    MemoryTraceRecorder,
    simulate_program_cache,
)
from . import serialize

__all__ = [
    "Affine",
    "Instr",
    "InstrClass",
    "MemRef",
    "Op",
    "classify",
    "SimdMachine",
    "BatchedProgram",
    "BatchFallback",
    "CodegenFallback",
    "CodegenProgram",
    "analytic_trace",
    "emitted_source",
    "get_codegen",
    "TraceCounter",
    "CostTable",
    "cost_table_for",
    "PipelineModel",
    "PipelineEstimate",
    "CacheHierarchyModel",
    "MemoryEstimate",
    "PerformanceModel",
    "PerfResult",
    "KernelCost",
    "CacheHierarchySim",
    "CacheLevelSim",
    "CacheStats",
    "MemoryTraceRecorder",
    "simulate_program_cache",
    "serialize",
]
