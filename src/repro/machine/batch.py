"""Batched row-tensor execution backend for vector programs.

The interpreter (:class:`~repro.machine.machine.SimdMachine`) executes the
body of a :class:`~repro.vectorize.program.VectorProgram` once per
x-iteration in pure Python — for a 512x512 grid that is hundreds of
thousands of per-instruction dispatches per sweep.  But a vector program's
body is *static*: the same straight-line instruction sequence runs at
every x offset, only the memory addresses advance by a fixed stride.  This
module exploits that regularity by compiling the body once into a
sequence of closures operating on a register file of shape
``(trip_count, width)`` — one row per x-iteration:

* **LOAD** becomes a single strided gather of every x-offset at once;
* every **ALU/shuffle** op gets a batched twin vectorized over axis 0
  (shuffles are pure index selections on the last axis, so they batch as
  one fancy-indexing gather whose index vector is *derived from the
  scalar semantics themselves* — see :func:`_probe_shuffle`);
* **STORE** scatters all rows back in one assignment (falling back to an
  in-order per-row loop only when row extents overlap, so later
  iterations overwrite earlier ones exactly as the interpreter does).

Elementwise IEEE arithmetic is independent across rows, and shuffles and
memory ops are exact copies, so the batched execution is **bitwise
identical** to the interpreter (the differential harness asserts this for
every scheme, dtype, and random spec).

Loop-carried registers (Algorithm 1's ``v0``/``vp0`` reuse, the sliding
windows of Reorg/Folding/LBV) are handled by *peeling them into shifted
batches*: the value entering row ``i`` is the value leaving row ``i-1``
(row 0 comes from the prologue).  Since every scheme's carry chains are
finite renames of freshly loaded values (``mov`` slides ending in a
load), iterating "execute the batched body, then shift the carried
end-of-body values down one row" reaches a bitwise fixed point in
``depth`` rounds, where ``depth`` is the longest carry chain.  A true
recurrence (an accumulator carried across x) never converges; after
``len(carried) + 2`` rounds the backend raises :class:`BatchFallback`
and the driver reruns the sweep on the interpreter — correctness never
depends on the batch backend succeeding.

Per-access ``mem_hook`` consumers (the trace-driven cache simulator) are
incompatible with batching by construction — one gather has no per-access
order — so the driver falls back to the interpreter whenever a hook is
attached.  Executed-instruction *counts*, by contrast, are a static
function of the program geometry; :func:`analytic_trace` computes them
exactly (tests cross-check against the interpreter for every scheme).
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import IsaError, MachineError
from .isa import Affine, Instr, Op, execute_alu
from .machine import SimdMachine
from .trace import TraceCounter


class BatchFallback(Exception):
    """The program (or one sweep of it) cannot run on the batch backend;
    the caller should fall back to the interpreter."""


# ---------------------------------------------------------------------------
# analytic trace counts
# ---------------------------------------------------------------------------

def analytic_trace(program, counter: Optional[TraceCounter] = None) -> TraceCounter:
    """Executed-instruction counts of one full sweep, computed statically.

    Exactly reproduces what :meth:`SimdMachine.run` tallies: the prologue
    executes once per outer-loop entry, the body once per x-iteration,
    and ``vectors``/``steps`` follow the program geometry.
    """
    counter = counter if counter is not None else TraceCounter()
    n_outer = 1
    for loop in program.loops[:-1]:
        n_outer *= loop.trip_count
    body_runs = program.total_body_runs()
    for instr in program.prologue:
        counter.add(instr, times=n_outer)
    for instr in program.body:
        counter.add(instr, times=body_runs)
    counter.vectors += program.vectors_per_iter * body_runs
    counter.steps = program.steps_per_iter
    return counter


# ---------------------------------------------------------------------------
# compile-time helpers
# ---------------------------------------------------------------------------

def _split_affine(aff: Affine, x_var: str) -> Tuple[int, int, Tuple[Tuple[str, int], ...]]:
    """``(const, x_coefficient, outer_terms)`` of one address expression."""
    coeff = 0
    rest = []
    for var, c in aff.terms:
        if var == x_var:
            coeff += c
        else:
            rest.append((var, c))
    return aff.const, coeff, tuple(rest)


def _probe_shuffle(instr: Instr, width: int, epl: int):
    """Derive a shuffle's batched gather from its scalar semantics.

    The scalar executor is run once on *index-valued* registers (source
    ``k`` holds ``k*width+1 .. (k+1)*width``); the output spells out, per
    destination element, which source element it selects (0 marks a
    zeroed lane, e.g. PERM2F128's zero bit).  The batched execution is
    then a single fancy-index gather — exact by construction, for any
    opcode and any immediate.
    """
    n = len(instr.srcs)
    names = tuple(f"__s{k}" for k in range(n))
    probe = dataclasses.replace(instr, srcs=names)
    regs = {
        name: np.arange(k * width + 1, (k + 1) * width + 1, dtype=np.float64)
        for k, name in enumerate(names)
    }
    execute_alu(probe, regs, width, epl=epl, dtype=np.float64)
    codes = regs[instr.dst].astype(np.int64)
    zero_cols = np.nonzero(codes == 0)[0]
    gather = np.clip(codes - 1, 0, n * width - 1)
    src_of = gather // width        # which source each element reads
    col_of = gather % width         # which element of that source
    return src_of, col_of, zero_cols


# ---------------------------------------------------------------------------
# the compiled program
# ---------------------------------------------------------------------------

class _Ctx:
    """Per-(outer-env, round) execution state."""

    __slots__ = ("regs", "stores")

    def __init__(self) -> None:
        self.regs: Dict[str, np.ndarray] = {}
        self.stores: List[Tuple[Callable, np.ndarray]] = []


class BatchedProgram:
    """A :class:`~repro.vectorize.program.VectorProgram` compiled into
    whole-row closures (see module docstring).  Stateless across runs;
    safe to cache and share."""

    def __init__(self, program) -> None:
        self.program = program
        self.width = program.width
        self.elem_bytes = program.elem_bytes
        self.dtype = np.float32 if program.elem_bytes == 4 else np.float64
        self.epl = 16 // program.elem_bytes
        x_loop = program.x_loop
        self.x_var = x_loop.var
        self.trips = x_loop.trip_count
        self.x_start = x_loop.start
        self.x_step = x_loop.step
        #: x value per row, shape (trips,)
        self._xs = (np.arange(self.trips, dtype=np.int64) * x_loop.step
                    + x_loop.start)
        self._carried = self._find_carried(program)
        self._max_rounds = len(self._carried) + 2
        self._body_ops = [self._compile(i) for i in program.body]

    # -- analysis ---------------------------------------------------------------
    @staticmethod
    def _find_carried(program) -> Tuple[str, ...]:
        """Registers read before their first body write *and* written in
        the body — their value crosses x-iterations."""
        written: set = set()
        early: List[str] = []
        for instr in program.body:
            for src in instr.srcs:
                if src not in written and src not in early:
                    early.append(src)
            if instr.dst:
                written.add(instr.dst)
        return tuple(r for r in early if r in written)

    # -- instruction compilation ------------------------------------------------
    def _compile(self, instr: Instr) -> Callable[[_Ctx, Mapping, Mapping], None]:
        op = instr.op
        if op is Op.LOAD:
            return self._compile_load(instr)
        if op is Op.STORE:
            return self._compile_store(instr)
        if op is Op.BROADCAST:
            value = np.full((1, self.width), instr.imm, dtype=self.dtype)
            dst = instr.dst

            def do_broadcast(ctx, arrays, env, value=value, dst=dst):
                ctx.regs[dst] = value
            return do_broadcast
        if op is Op.SETZERO:
            zero = np.zeros((1, self.width), dtype=self.dtype)
            dst = instr.dst

            def do_setzero(ctx, arrays, env, zero=zero, dst=dst):
                ctx.regs[dst] = zero
            return do_setzero
        if op is Op.MOV:
            dst, src = instr.dst, instr.srcs[0]

            def do_mov(ctx, arrays, env, dst=dst, src=src):
                ctx.regs[dst] = self._get(ctx, src)
            return do_mov
        if op in (Op.ADD, Op.SUB, Op.MUL):
            ufunc = {Op.ADD: np.add, Op.SUB: np.subtract,
                     Op.MUL: np.multiply}[op]
            dst, (a, b) = instr.dst, instr.srcs

            def do_arith(ctx, arrays, env, ufunc=ufunc, dst=dst, a=a, b=b):
                ctx.regs[dst] = ufunc(self._get(ctx, a), self._get(ctx, b))
            return do_arith
        if op is Op.FMA:
            dst, (a, b, c) = instr.dst, instr.srcs

            def do_fma(ctx, arrays, env, dst=dst, a=a, b=b, c=c):
                # same evaluation as the interpreter: a*b + c, unfused
                ctx.regs[dst] = (self._get(ctx, a) * self._get(ctx, b)
                                 + self._get(ctx, c))
            return do_fma
        # every remaining opcode is a pure element shuffle
        return self._compile_shuffle(instr)

    def _compile_shuffle(self, instr: Instr) -> Callable:
        src_of, col_of, zero_cols = _probe_shuffle(instr, self.width, self.epl)
        dst, srcs, width = instr.dst, instr.srcs, self.width
        # group destination columns by originating source for one gather each
        groups = []
        for k in range(len(srcs)):
            cols = np.nonzero(src_of == k)[0]
            cols = cols[~np.isin(cols, zero_cols)] if len(zero_cols) else cols
            if len(cols):
                groups.append((srcs[k], cols, col_of[cols]))
        single = (len(groups) == 1 and len(zero_cols) == 0
                  and len(groups[0][1]) == width)

        if single:
            name, _, take = groups[0]

            def do_shuffle1(ctx, arrays, env, name=name, take=take, dst=dst):
                ctx.regs[dst] = self._get(ctx, name)[:, take]
            return do_shuffle1

        def do_shuffle(ctx, arrays, env, groups=groups, zero_cols=zero_cols,
                       dst=dst, width=width):
            sources = [(cols, self._get(ctx, name)[:, take])
                       for name, cols, take in groups]
            rows = max((s.shape[0] for _, s in sources), default=1)
            out = np.empty((rows, width), dtype=self.dtype)
            for cols, vals in sources:
                out[:, cols] = vals
            if len(zero_cols):
                out[:, zero_cols] = 0.0
            ctx.regs[dst] = out
        return do_shuffle

    # -- memory -----------------------------------------------------------------
    def _compile_addr(self, instr: Instr):
        """Split the memory operand into per-axis closures; returns
        ``(name, outer_axes, (const, coeff_x, terms))`` where the last
        tuple describes the unit-stride axis."""
        mem = instr.mem
        outer = []
        for aff in mem.index[:-1]:
            const, coeff_x, terms = _split_affine(aff, self.x_var)
            if coeff_x:
                raise BatchFallback(
                    f"{instr}: non-unit-stride axis depends on the x "
                    f"variable; batch lowering only handles x on the last axis"
                )
            outer.append((const, terms))
        last = _split_affine(mem.index[-1], self.x_var)
        return mem.array, tuple(outer), last

    @staticmethod
    def _eval_outer(const: int, terms, env) -> int:
        total = const
        for var, c in terms:
            try:
                total += c * env[var]
            except KeyError:
                raise IsaError(
                    f"unbound loop variable {var!r} in address") from None
        return total

    def _locate(self, instr, arrays, env, outer, last):
        """Resolve and bounds-check one batched memory operand; returns
        ``(row_view, positions)`` with ``positions`` shape (trips,)."""
        name = instr.mem.array
        if name not in arrays:
            raise MachineError(f"unknown array {name!r} in {instr}")
        arr = arrays[name]
        if len(outer) + 1 != arr.ndim:
            raise MachineError(
                f"{instr}: address has {len(outer) + 1} axes, array has "
                f"{arr.ndim}"
            )
        idx = []
        for axis, ((const, terms), n) in enumerate(zip(outer, arr.shape[:-1])):
            i = self._eval_outer(const, terms, env)
            if not 0 <= i < n:
                raise MachineError(
                    f"{instr}: axis {axis} index {i} out of bounds [0, {n}) "
                    f"with env {dict(env)}"
                )
            idx.append(i)
        const, coeff_x, terms = last
        base = self._eval_outer(const, terms, env)
        positions = base + coeff_x * self._xs
        if len(positions):
            lo = int(positions.min())
            hi = int(positions.max())
            n = arr.shape[-1]
            if lo < 0 or hi + self.width > n:
                raise MachineError(
                    f"{instr}: x range [{lo}, {hi + self.width}) out of "
                    f"bounds [0, {n}) with env {dict(env)}"
                )
        row = arr[tuple(idx)]
        return row, positions

    def _compile_load(self, instr: Instr) -> Callable:
        name, outer, last = self._compile_addr(instr)
        dst = instr.dst
        cols = np.arange(self.width, dtype=np.int64)

        def do_load(ctx, arrays, env, instr=instr, outer=outer, last=last,
                    dst=dst, cols=cols):
            row, positions = self._locate(instr, arrays, env, outer, last)
            reg = row[positions[:, None] + cols]
            if reg.dtype != self.dtype:
                reg = reg.astype(self.dtype)
            ctx.regs[dst] = reg
        return do_load

    def _compile_store(self, instr: Instr) -> Callable:
        name, outer, last = self._compile_addr(instr)
        src = instr.srcs[0]
        cols = np.arange(self.width, dtype=np.int64)
        # consecutive rows overlap (or alias) when the store stride is
        # shorter than a register: scatter in row order so later
        # iterations win, exactly like the interpreter
        delta = last[1] * self.x_step
        overlapping = self.trips > 1 and abs(delta) < self.width

        def do_store(ctx, arrays, env, instr=instr, outer=outer, last=last,
                     src=src, cols=cols, overlapping=overlapping):
            value = ctx.regs.get(src)
            if value is None:
                raise MachineError(f"{instr}: store of undefined register")
            row, positions = self._locate(instr, arrays, env, outer, last)

            if overlapping:
                def commit(row=row, positions=positions, value=value):
                    rows = value.shape[0]
                    for i, p in enumerate(positions):
                        row[p:p + self.width] = value[min(i, rows - 1)]
            else:
                def commit(row=row, positions=positions, value=value):
                    row[positions[:, None] + cols] = value
            ctx.stores.append(commit)
        return do_store

    # -- execution ----------------------------------------------------------------
    def _get(self, ctx: _Ctx, name: str) -> np.ndarray:
        try:
            return ctx.regs[name]
        except KeyError:
            raise IsaError(f"read of undefined register {name!r}") from None

    def run(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Execute the full loop nest against ``arrays`` (padded buffers).

        Raises :class:`BatchFallback` if a loop-carried recurrence fails
        to converge — the caller must then rerun the sweep on the
        interpreter (deferred stores make the partial attempt harmless).
        """
        program = self.program
        scalar = SimdMachine(self.width, elem_bytes=self.elem_bytes)
        for env in program.iter_outer():
            env = dict(env)
            self._run_env(arrays, env, scalar)

    def _run_env(self, arrays: Mapping[str, np.ndarray], env: Dict,
                 scalar: SimdMachine) -> None:
        # Prologue: straight-line scalar execution at x = x_start (the
        # interpreter's own _exec keeps the semantics authoritative).
        env[self.x_var] = self.x_start
        scalar.regs = {}
        for instr in self.program.prologue:
            scalar._exec(instr, arrays, env, None)
        prologue_regs = scalar.regs

        base: Dict[str, np.ndarray] = {}
        carry: Dict[str, np.ndarray] = {}
        head: Dict[str, np.ndarray] = {}
        for name, value in prologue_regs.items():
            if name in self._carried:
                head[name] = value
                init = np.zeros((self.trips, self.width), dtype=self.dtype)
                init[0] = value
                carry[name] = init
            else:
                base[name] = value.reshape(1, self.width)
        for name in self._carried:
            if name not in carry:
                # the interpreter would fault on the first body read; keep
                # that behaviour instead of silently reading zeros
                raise IsaError(f"read of undefined register {name!r}")

        if self.trips == 0:
            return

        ctx = _Ctx()
        for _ in range(self._max_rounds if self._carried else 1):
            ctx.regs = dict(base)
            ctx.regs.update(carry)
            ctx.stores = []
            for op in self._body_ops:
                op(ctx, arrays, env)
            if not self._carried:
                break
            converged = True
            shifted: Dict[str, np.ndarray] = {}
            for name in self._carried:
                out = ctx.regs[name]
                nxt = np.empty((self.trips, self.width), dtype=self.dtype)
                nxt[0] = head[name]
                nxt[1:] = out[:-1] if out.shape[0] == self.trips else out[0]
                if nxt.tobytes() != carry[name].tobytes():
                    converged = False
                shifted[name] = nxt
            if converged:
                break
            carry = shifted
        else:
            raise BatchFallback(
                f"{self.program.name}: loop-carried registers "
                f"{self._carried} did not reach a fixed point in "
                f"{self._max_rounds} rounds (true recurrence)"
            )
        for commit in ctx.stores:
            commit()


# ---------------------------------------------------------------------------
# compile cache
# ---------------------------------------------------------------------------

@lru_cache(maxsize=128)
def get_batched(program) -> BatchedProgram:
    """Compile (memoized) — raises :class:`BatchFallback` for programs the
    batch backend cannot lower."""
    return BatchedProgram(program)


__all__ = ["BatchFallback", "BatchedProgram", "analytic_trace", "get_batched"]
