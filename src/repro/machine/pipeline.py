"""Dependency-aware cycle estimation for one loop body.

The steady-state cycles per innermost iteration are modelled as

``cycles = max(port-pressure bounds, issue-width bound, critical-path / ILP)``

* **Port pressure** — per execution-resource sum of reciprocal throughputs
  (Table 1 CPIs): the shuffle resource serializes cross-lane permutes
  (1 CPI) while dual-issuing ``vshufpd`` (0.5 CPI); FMA, load and store
  resources likewise.  This is the classical throughput bound and is what
  makes Multiple Loads load-port-bound and Multiple Permutations
  shuffle-port-bound, exactly the contrast §2.1 draws.
* **Stall penalty** — schemes that *phase* data reorganization before the
  arithmetic (Multiple Permutations, Folding's transpose-in/compute/
  transpose-out) leave shuffle→FMA latency exposed in the dependency
  chain; the model charges them a fractional stall surcharge
  (:data:`PHASED_STALL_PENALTY`).  LBV interleaves shuffles with
  arithmetic (§3.1 step 2) and is exempt — the "pipeline bubble" effect
  the paper attributes to prior work.

The critical path through one body execution is still computed and
reported (it feeds the Figure-8 analysis), but steady-state throughput of
a Jacobi loop is resource-bound: iterations are independent, so latency
only surfaces through the stall surcharge above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..config import MachineConfig
from ..errors import ModelError
from .costs import CostTable, cost_table_for
from .isa import Instr, InstrClass, Op

#: fractional cycle surcharge for schemes whose data preparation
#: (shuffles or unaligned gather loads) is phased before the arithmetic —
#: exposed data-preparation latency (§2.1/§3.1).
PHASED_STALL_PENALTY = 0.30
#: throughput multiplier for unaligned vector loads (split-line accesses,
#: the §2.1 "unaligned data access degrades performance considerably")
UNALIGNED_LOAD_FACTOR = 2.0
ISSUE_WIDTH = 4.0  # uops issued per cycle
#: per-iteration port cost of one spilled register (an L1 store + reload
#: pair; the §3.1/§4.4 register-spilling effect for transpose-heavy and
#: deeply fused kernels)
SPILL_LOAD_CPI = 0.5
SPILL_STORE_CPI = 0.5


@dataclass(frozen=True)
class PipelineEstimate:
    cycles_per_iter: float
    port_cycles: Dict[str, float]
    critical_path: float
    stall_penalty: float
    spills: int
    bound: str  # which term dominated

    @property
    def throughput_bound(self) -> float:
        return max(self.port_cycles.values())


def critical_path_cycles(body: Sequence[Instr], table: CostTable) -> float:
    """Longest register-dependency chain through one body execution.

    Loads start chains at their own latency; loop-carried inputs (registers
    read before being written in this body) start at zero — steady-state,
    they were produced in earlier iterations.
    """
    finish: Dict[str, float] = {}
    longest = 0.0
    for instr in body:
        start = 0.0
        for src in instr.srcs:
            start = max(start, finish.get(src, 0.0))
        end = start + table.latency(instr.op)
        if instr.dst:
            finish[instr.dst] = end
        longest = max(longest, end)
    return longest


class PipelineModel:
    """Estimates steady-state cycles per innermost iteration of a
    :class:`~repro.vectorize.program.VectorProgram`."""

    def __init__(self, machine: MachineConfig,
                 table: CostTable | None = None) -> None:
        self.machine = machine
        self.table = table or cost_table_for(machine)

    def port_pressure(self, body: Sequence[Instr]) -> Dict[str, float]:
        """Cycles demanded from each execution resource by one body run."""
        cycles = {"load": 0.0, "store": 0.0, "shuffle": 0.0, "fma": 0.0,
                  "other": 0.0}
        for instr in body:
            cpi = self.table.cpi(instr.op)
            klass = instr.klass
            if klass is InstrClass.LOAD or instr.op is Op.BROADCAST:
                if getattr(instr, "unaligned", False):
                    cpi *= UNALIGNED_LOAD_FACTOR
                cycles["load"] += cpi
            elif klass is InstrClass.STORE:
                cycles["store"] += cpi
            elif klass in (InstrClass.IN_LANE, InstrClass.CROSS_LANE):
                cycles["shuffle"] += cpi
            elif klass is InstrClass.ARITH:
                cycles["fma"] += cpi
            else:
                cycles["other"] += cpi
        return cycles

    def estimate(self, program) -> PipelineEstimate:
        body = program.body
        if not body:
            raise ModelError(f"program {program.name!r} has an empty body")
        ports = dict(self.port_pressure(body))
        issue = len(body) / ISSUE_WIDTH
        cp = critical_path_cycles(body, self.table)
        spills = max(0, program.max_live_registers()
                     - self.machine.vector_registers)
        if spills:
            ports["load"] += spills * SPILL_LOAD_CPI
            ports["store"] += spills * SPILL_STORE_CPI
            issue += spills * 2 / ISSUE_WIDTH
        candidates = {
            **{f"port:{k}": v for k, v in ports.items()},
            "issue": issue,
        }
        bound = max(candidates, key=lambda k: candidates[k])
        stall = 0.0
        has_unaligned = any(
            getattr(i, "unaligned", False) for i in body
        )
        if not program.overlapped and (ports["shuffle"] > 0 or has_unaligned):
            stall = PHASED_STALL_PENALTY
        return PipelineEstimate(
            cycles_per_iter=candidates[bound] * (1.0 + stall),
            port_cycles=ports,
            critical_path=cp,
            stall_penalty=stall,
            spills=spills,
            bound=bound,
        )

    def cycles_per_vector(self, program) -> float:
        """Cycles per output vector per time step."""
        est = self.estimate(program)
        return est.cycles_per_iter / (
            program.vectors_per_iter * program.steps_per_iter
        )
