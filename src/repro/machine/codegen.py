"""Source-level code generation backend for vector programs.

The batch backend (:mod:`repro.machine.batch`) already collapses the
x loop into whole-row tensors, but it still dispatches one Python
closure per instruction per outer-loop environment — for a 512x512
grid that is hundreds of thousands of closure calls per sweep, and the
numpy fixed cost on its small ``(trips, width)`` operands dominates.
This module removes both overheads by *emitting source*:

* the whole loop nest is flattened — every register becomes one tensor
  of shape ``(*outer_trips, trips, width)``, so a single numpy op per
  instruction covers the entire sweep;
* every LOAD/STORE address is resolved at specialization time into
  either a zero-copy strided view of the flat array (the affine index
  lattice *is* an `as_strided` pattern whenever all strides are
  non-negative) or a hoisted flat int64 gather-index constant;
* every shuffle is lowered to a precomputed last-axis gather whose
  index vector is derived from the scalar semantics themselves
  (:func:`repro.machine.batch._probe_shuffle`);
* single-use arithmetic values are inlined into their consumer, so
  MUL+FMA chains fold back into ``c0*v0 + (c1*v1 + ...)`` expressions
  exactly as the paper's C codegen would write them;
* stores are deferred and committed after the body: one scatter (or
  strided-view assignment) when the written rows are provably
  disjoint, an in-order loop otherwise — the interpreter's
  last-writer-wins order, vectorized.

The emitted text is ``compile()``d + ``exec()``d once per (program,
array shapes) pair and cached; each sweep is then a single call into
specialized straight-line code.

**Bitwise identity.**  Gathers, strided views and shuffles are exact
element copies; ADD/SUB/MUL/FMA are the same IEEE ops applied to the
same operand values (inlining only substitutes a pure expression for
its value, and the flattened tensors hold, per (env, x) coordinate,
exactly the values the interpreter's registers hold at that
iteration).  Loop-carried registers reuse the batch backend's peeling
scheme verbatim — shifted rows, bytes-exact convergence, fallback on a
true recurrence — emitted as a rounds loop in the generated source.
The differential harness asserts interp == batch == codegen bitwise
for every scheme, dtype and random spec.

**Fallback taxonomy.**  :class:`CodegenFallback` carries a ``reason``
the driver feeds into ``exec.codegen_fallback.reason.*`` counters:

* ``compile``    — the program shape cannot be flattened (x-dependent
  non-last-axis address, prologue store, load/store array aliasing);
* ``layout``     — the concrete arrays defeat flattening (wrong dtype,
  non-contiguous, stores that interleave between instructions);
* ``memory``     — hoisted index constants would exceed
  :data:`MEMORY_GUARD` elements;
* ``recurrence`` — a loop-carried register never reaches a fixed
  point (the scan/prefix case, exactly as in the batch backend).

On any of these the driver degrades codegen -> batch -> interp;
correctness never depends on this backend succeeding.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import IsaError, MachineError
from .batch import BatchedProgram, _probe_shuffle, _split_affine
from .isa import Op

#: cap on the total number of hoisted gather-index elements per
#: specialization; beyond this the int64 constants would rival the
#: grids themselves and the batch backend is the better engine
MEMORY_GUARD = 1 << 24


class CodegenFallback(Exception):
    """The program (or these concrete arrays) cannot run on the codegen
    backend; the caller should degrade to the batch backend.  ``reason``
    is one of ``compile | layout | memory | recurrence``."""

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


def _as_view(flat: np.ndarray, offset: int, shape: Tuple[int, ...],
             strides: Tuple[int, ...]) -> np.ndarray:
    """Zero-copy view of ``flat`` (1-D) at an affine index lattice.
    ``strides`` are in elements; bounds were proven at specialization."""
    itemsize = flat.itemsize
    return np.lib.stride_tricks.as_strided(
        flat[offset:], shape=shape,
        strides=tuple(s * itemsize for s in strides))


# ---------------------------------------------------------------------------
# the value graph
# ---------------------------------------------------------------------------

class _Node:
    """One SSA value: a load, shuffle, constant, arithmetic op, or the
    per-round carry of a loop-carried register."""

    __slots__ = ("vid", "kind", "op", "args", "shape", "section",
                 "uses", "pinned", "data", "instr", "text")

    def __init__(self, vid, kind, op, args, shape, section, data, instr):
        self.vid = vid
        self.kind = kind        # load | shuffle | const | arith | carry
        self.op = op
        self.args = args        # operand vids
        self.shape = shape      # static tensor shape
        self.section = section  # "pro" | "body"
        self.uses = 0
        self.pinned = False     # must be materialized into a variable
        self.data = data        # kind-specific payload
        self.instr = instr
        self.text = None        # expression text, set during emission


@dataclass
class _MemRef:
    """One LOAD/STORE site, split for lattice addressing."""

    instr: object
    array: str
    outer: Tuple[Tuple[int, Tuple[Tuple[str, int], ...]], ...]
    last: Tuple[int, int, Tuple[Tuple[str, int], ...]]
    rows: int                 # trips for body refs, 1 for prologue refs
    is_store: bool
    vid: int                  # load: produced value; store: stored value
    order: int                # program order among stores


@dataclass
class _Specialized:
    """One compiled specialization: the callable, its source text, and
    the array-shape key it was emitted for."""

    key: tuple
    fn: object
    source: str


class CodegenProgram:
    """A :class:`~repro.vectorize.program.VectorProgram` lowered to
    emitted straight-line numpy source (see module docstring).

    Construction performs the shape-independent analysis and raises
    :class:`CodegenFallback` (reason ``compile``) for programs that
    cannot be flattened; concrete array layouts are handled lazily by
    :meth:`specialize`.
    """

    def __init__(self, program) -> None:
        self.program = program
        self.width = program.width
        self.dtype = np.float32 if program.elem_bytes == 4 else np.float64
        self.epl = 16 // program.elem_bytes
        x_loop = program.x_loop
        self.x_var = x_loop.var
        self.trips = x_loop.trip_count
        self.x_start = x_loop.start
        self.x_step = x_loop.step
        self.outer_loops = program.loops[:-1]
        self.outer_dims = tuple(l.trip_count for l in self.outer_loops)
        self._loop_pos = {l.var: j for j, l in enumerate(self.outer_loops)}
        self._xs = (np.arange(self.trips, dtype=np.int64) * self.x_step
                    + self.x_start)
        self.carried = BatchedProgram._find_carried(program)
        self._max_rounds = len(self.carried) + 2
        self.nodes: List[_Node] = []
        self.refs: List[_MemRef] = []
        self._heads: Dict[str, int] = {}    # carried reg -> prologue vid
        self._finals: Dict[str, int] = {}   # carried reg -> end-of-body vid
        self._carry_vid: Dict[str, int] = {}
        self._undefined_carry: Optional[str] = None
        self._build()
        self._count_uses()
        self._specs: Dict[tuple, _Specialized] = {}

    # -- static analysis ---------------------------------------------------

    def _new(self, kind, op, args, shape, section, data=None, instr=None):
        node = _Node(len(self.nodes), kind, op, tuple(args), tuple(shape),
                     section, data, instr)
        self.nodes.append(node)
        return node.vid

    def _split_mem(self, instr):
        """Static split of a memory operand; rejects x-dependence off
        the unit-stride axis (same condition as the batch backend)."""
        mem = instr.mem
        outer = []
        for aff in mem.index[:-1]:
            const, coeff_x, terms = _split_affine(aff, self.x_var)
            if coeff_x:
                raise CodegenFallback(
                    "compile",
                    f"{instr}: non-unit-stride axis depends on the x "
                    f"variable; codegen lowering only handles x on the "
                    f"last axis")
            outer.append((const, terms))
        last = _split_affine(mem.index[-1], self.x_var)
        return mem.array, tuple(outer), last

    def _build(self) -> None:
        program = self.program
        D = len(self.outer_dims) + 2
        const_shape = (1,) * (D - 1) + (self.width,)
        pro_shape = self.outer_dims + (1, self.width)
        body_shape = self.outer_dims + (self.trips, self.width)
        loaded, stored = set(), set()
        regmap: Dict[str, int] = {}
        store_order = itertools.count()

        def emit_instr(instr, section):
            op = instr.op
            row_shape = pro_shape if section == "pro" else body_shape
            rows = 1 if section == "pro" else self.trips
            if op is Op.LOAD:
                name, outer, last = self._split_mem(instr)
                loaded.add(name)
                vid = self._new("load", op, (), row_shape, section,
                                instr=instr)
                self.refs.append(_MemRef(instr, name, outer, last, rows,
                                         False, vid, -1))
                regmap[instr.dst] = vid
                return
            if op is Op.STORE:
                if section == "pro":
                    raise CodegenFallback(
                        "compile",
                        f"{instr}: stores in the prologue have ordered "
                        f"side effects codegen does not flatten")
                name, outer, last = self._split_mem(instr)
                stored.add(name)
                src = instr.srcs[0]
                if src not in regmap:
                    # mirror the interpreter: fault at execution time
                    raise MachineError(
                        f"{instr}: store of undefined register")
                vid = regmap[src]
                self.nodes[vid].pinned = True
                self.refs.append(_MemRef(instr, name, outer, last, rows,
                                         True, vid, next(store_order)))
                return
            if op is Op.BROADCAST:
                regmap[instr.dst] = self._new(
                    "const", op, (), const_shape, section,
                    data=float(instr.imm), instr=instr)
                return
            if op is Op.SETZERO:
                regmap[instr.dst] = self._new(
                    "const", op, (), const_shape, section, data=0.0,
                    instr=instr)
                return
            if op is Op.MOV:
                src = instr.srcs[0]
                if src not in regmap:
                    raise IsaError(f"read of undefined register {src!r}")
                regmap[instr.dst] = regmap[src]
                return
            try:
                args = tuple(regmap[s] for s in instr.srcs)
            except KeyError as exc:
                raise IsaError(
                    f"read of undefined register {exc.args[0]!r}") from None
            if op in (Op.ADD, Op.SUB, Op.MUL, Op.FMA):
                shape = np.broadcast_shapes(
                    *(self.nodes[a].shape for a in args))
                regmap[instr.dst] = self._new("arith", op, args, shape,
                                              section, instr=instr)
                return
            # every remaining opcode is a pure element shuffle
            src_of, col_of, zero_cols = _probe_shuffle(
                instr, self.width, self.epl)
            groups = []
            for k in range(len(args)):
                cols = np.nonzero(src_of == k)[0]
                if len(zero_cols):
                    cols = cols[~np.isin(cols, zero_cols)]
                if len(cols):
                    groups.append((args[k], cols, col_of[cols]))
            if groups:
                shape = np.broadcast_shapes(
                    *(self.nodes[g[0]].shape for g in groups))
            else:
                shape = const_shape
            regmap[instr.dst] = self._new(
                "shuffle", op, tuple(g[0] for g in groups), shape, section,
                data=(groups, zero_cols), instr=instr)

        for instr in program.prologue:
            emit_instr(instr, "pro")

        for name in self.carried:
            if name in regmap:
                self._heads[name] = regmap[name]
                self.nodes[regmap[name]].pinned = True
            else:
                # the interpreter would fault on the first body read;
                # surface that at run time, not silently read zeros
                self._undefined_carry = name
            self._carry_vid[name] = self._new(
                "carry", None, (), body_shape, "body",
                data=len(self._carry_vid))
            regmap[name] = self._carry_vid[name]

        for instr in program.body:
            emit_instr(instr, "body")

        for name in self.carried:
            self._finals[name] = regmap[name]
            self.nodes[regmap[name]].pinned = True

        if loaded & stored:
            raise CodegenFallback(
                "compile",
                f"arrays {sorted(loaded & stored)} are both loaded and "
                f"stored; flattening would reorder the interpreter's "
                f"read-after-write sequence")

    def _count_uses(self) -> None:
        for node in self.nodes:
            for a in node.args:
                arg = self.nodes[a]
                arg.uses += 1
                if arg.section != node.section:
                    arg.pinned = True

    # -- specialization ----------------------------------------------------

    def _grid(self, const: int, terms) -> np.ndarray:
        """Evaluate ``const + sum(coeff*var)`` over the whole outer
        iteration lattice; shape ``outer_dims`` (0-d when no outer loops)."""
        n = len(self.outer_dims)
        g = np.full((1,) * n, const, dtype=np.int64) if n else \
            np.int64(const)
        for var, c in terms:
            if var not in self._loop_pos:
                raise IsaError(
                    f"unbound loop variable {var!r} in address")
            j = self._loop_pos[var]
            loop = self.outer_loops[j]
            vals = np.arange(loop.start, loop.stop, loop.step,
                             dtype=np.int64)
            shape = [1] * n
            shape[j] = len(vals)
            g = g + c * vals.reshape(shape)
        return np.broadcast_to(g, self.outer_dims)

    def _env_at(self, flat_index: int) -> dict:
        """Reconstruct the loop environment of one flattened outer index
        (for error messages that mirror the batch backend's)."""
        if not self.outer_dims:
            return {}
        multi = np.unravel_index(flat_index, self.outer_dims)
        return {l.var: l.start + int(i) * l.step
                for l, i in zip(self.outer_loops, multi)}

    def _resolve_ref(self, ref: _MemRef, arrays) -> dict:
        """Bounds-check one memory site against concrete arrays and
        compute its flat-index lattice.  Returns a dict with the row
        starts, the strided-view description (or None), and the array."""
        if ref.array not in arrays:
            raise MachineError(f"unknown array {ref.array!r} in {ref.instr}")
        arr = arrays[ref.array]
        if len(ref.outer) + 1 != arr.ndim:
            raise MachineError(
                f"{ref.instr}: address has {len(ref.outer) + 1} axes, "
                f"array has {arr.ndim}")
        strides = tuple(s // arr.itemsize for s in arr.strides)
        flat_base = np.zeros(self.outer_dims, dtype=np.int64)
        for axis, ((const, terms), n) in enumerate(
                zip(ref.outer, arr.shape[:-1])):
            idx = self._grid(const, terms)
            if idx.size:
                bad = (idx < 0) | (idx >= n)
                if bad.any():
                    e = int(np.argmax(bad.reshape(-1)))
                    raise MachineError(
                        f"{ref.instr}: axis {axis} index "
                        f"{int(idx.reshape(-1)[e])} out of bounds [0, {n}) "
                        f"with env {self._env_at(e)}")
            flat_base = flat_base + idx * strides[axis]
        const, coeff_x, terms = ref.last
        last = self._grid(const, terms)
        xs = self._xs if ref.rows != 1 else \
            np.array([self.x_start], dtype=np.int64)
        last_rows = last[..., None] + coeff_x * xs
        n_last = arr.shape[-1]
        if last_rows.size:
            lo = int(last_rows.min())
            hi = int(last_rows.max())
            if lo < 0 or hi + self.width > n_last:
                bad = (last_rows < 0) | (last_rows + self.width > n_last)
                e = int(np.argmax(bad.any(axis=-1).reshape(-1)))
                raise MachineError(
                    f"{ref.instr}: x range [{lo}, {hi + self.width}) out "
                    f"of bounds [0, {n_last}) with env {self._env_at(e)}")
        starts = flat_base[..., None] + last_rows
        # strided-view eligibility: one uniform non-negative stride per
        # lattice dimension (true by affine construction; the sign check
        # keeps `flat[offset:]` anchored at the smallest element)
        dim_strides = []
        for j, loop in enumerate(self.outer_loops):
            per = sum(c * strides[a]
                      for a, (_, ts) in enumerate(ref.outer)
                      for v, c in ts if v == loop.var)
            per += sum(c for v, c in terms if v == loop.var)
            dim_strides.append(per * loop.step)
        dim_strides.append(coeff_x * self.x_step)
        dim_strides.append(1)
        viewable = all(s >= 0 for s in dim_strides) and starts.size > 0
        view = None
        if viewable:
            view = (int(starts.reshape(-1)[0]),
                    self.outer_dims + (len(xs), self.width),
                    tuple(int(s) for s in dim_strides))
        return {"ref": ref, "arr": arr, "starts": starts, "view": view}

    def specialize(self, arrays: Mapping[str, np.ndarray]) -> _Specialized:
        """Emit + compile the specialized sweep function for these
        arrays' shapes (cached)."""
        names = sorted({r.array for r in self.refs})
        for name in names:
            if name not in arrays:
                raise MachineError(f"unknown array {name!r} in program "
                                   f"{self.program.name!r}")
        key = tuple((name, arrays[name].shape) for name in names)
        spec = self._specs.get(key)
        if spec is None:
            self._validate_layout(arrays, names)
            spec = self._emit(arrays, key)
            self._specs[key] = spec
        return spec

    def _validate_layout(self, arrays, names) -> None:
        for name in names:
            arr = arrays[name]
            if arr.dtype != self.dtype:
                raise CodegenFallback(
                    "layout",
                    f"array {name!r} has dtype {arr.dtype}, program "
                    f"expects {np.dtype(self.dtype)}")
            if not arr.flags.c_contiguous:
                raise CodegenFallback(
                    "layout",
                    f"array {name!r} is not C-contiguous; flat-index "
                    f"addressing needs a contiguous buffer")

    def run(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Execute one full sweep.  Raises :class:`CodegenFallback` when
        the arrays' layout defeats flattening or a loop-carried
        recurrence fails to converge (deferred stores make the failed
        attempt harmless); the caller then degrades to the batch
        backend."""
        if self._undefined_carry is not None:
            raise IsaError(
                f"read of undefined register {self._undefined_carry!r}")
        names = sorted({r.array for r in self.refs})
        self._validate_layout(arrays, names)
        spec = self.specialize(arrays)
        spec.fn(arrays)

    # -- emission ----------------------------------------------------------

    def _emit(self, arrays, key) -> _Specialized:
        width = self.width
        sites = [self._resolve_ref(ref, arrays) for ref in self.refs]
        budget = sum(
            s["starts"].size * width for s in sites
            if s["view"] is None or s["ref"].is_store)
        if budget > MEMORY_GUARD:
            raise CodegenFallback(
                "memory",
                f"hoisted index constants would need {budget} elements "
                f"(guard: {MEMORY_GUARD}); batch backend is cheaper here")
        store_plan = self._plan_stores(sites)

        ns = {"np": np, "_as_view": _as_view,
              "CodegenFallback": CodegenFallback,
              "_DT": self.dtype}
        consts = itertools.count()
        vars_ = itertools.count()

        def hoist(value) -> str:
            name = f"_K{next(consts)}"
            ns[name] = value
            return name

        arr_names = sorted({r.array for r in self.refs})
        arr_var = {name: f"_a{i}" for i, name in enumerate(arr_names)}
        site_of = {id(s["ref"]): s for s in sites}

        pro_lines: List[str] = []
        body_lines: List[str] = []

        def out(section) -> List[str]:
            return pro_lines if section == "pro" else body_lines

        def load_expr(ref: _MemRef) -> str:
            s = site_of[id(ref)]
            a = arr_var[ref.array]
            if s["view"] is not None:
                off, shape, strides = s["view"]
                return f"_as_view({a}, {off}, {shape}, {strides})"
            cols = np.arange(width, dtype=np.int64)
            idx = s["starts"][..., None] + cols
            return f"{a}[{hoist(idx)}]"

        for node in self.nodes:
            sec = node.section
            if node.kind == "const":
                value = np.full((1,) * (len(node.shape) - 1) + (width,),
                                node.data, dtype=self.dtype)
                node.text = hoist(value)
            elif node.kind == "carry":
                node.text = f"_c{node.data}"
            elif node.kind == "load":
                ref = next(r for r in self.refs
                           if not r.is_store and r.vid == node.vid)
                v = f"_v{next(vars_)}"
                out(sec).append(f"{v} = {load_expr(ref)}")
                node.text = v
            elif node.kind == "shuffle":
                groups, zero_cols = node.data
                v = f"_v{next(vars_)}"
                single = (len(groups) == 1 and len(zero_cols) == 0
                          and len(groups[0][1]) == width)
                if single:
                    src = self.nodes[groups[0][0]].text
                    take = hoist(groups[0][2].astype(np.int64))
                    out(sec).append(f"{v} = {src}[..., {take}]")
                else:
                    out(sec).append(
                        f"{v} = np.empty({node.shape}, _DT)")
                    for gvid, cols, take in groups:
                        src = self.nodes[gvid].text
                        kc = hoist(cols.astype(np.int64))
                        kt = hoist(take.astype(np.int64))
                        out(sec).append(f"{v}[..., {kc}] = {src}[..., {kt}]")
                    if len(zero_cols):
                        kz = hoist(zero_cols.astype(np.int64))
                        out(sec).append(f"{v}[..., {kz}] = 0.0")
                node.text = v
            elif node.kind == "arith":
                a = [self.nodes[x].text for x in node.args]
                if node.op is Op.ADD:
                    expr = f"({a[0]} + {a[1]})"
                elif node.op is Op.SUB:
                    expr = f"({a[0]} - {a[1]})"
                elif node.op is Op.MUL:
                    expr = f"({a[0]} * {a[1]})"
                else:  # FMA: same evaluation as the interpreter, unfused
                    expr = f"({a[0]} * {a[1]} + {a[2]})"
                if node.uses > 1 or node.pinned:
                    v = f"_v{next(vars_)}"
                    out(sec).append(f"{v} = {expr}")
                    node.text = v
                else:
                    node.text = expr

        commit_lines = self._emit_commits(store_plan, sites, arr_var, hoist)

        src = self._assemble(arr_var, pro_lines, body_lines, commit_lines,
                             arrays, key)
        code = compile(src, f"<codegen:{self.program.name}>", "exec")
        exec(code, ns)
        return _Specialized(key=key, fn=ns["_sweep"], source=src)

    def _plan_stores(self, sites) -> Dict[int, str]:
        """Choose a commit strategy per store site: ``direct`` (scatter
        or view — order-free), ``rowloop`` (in-order over x rows,
        vectorized over envs) or ``elemloop`` (fully ordered)."""
        width = self.width
        plan: Dict[int, str] = {}
        by_array: Dict[str, list] = {}
        for s in sites:
            if s["ref"].is_store:
                by_array.setdefault(s["ref"].array, []).append(s)
        for name, group in by_array.items():
            starts = np.concatenate(
                [s["starts"].reshape(-1) for s in group])
            order = np.sort(starts)
            disjoint = order.size < 2 or bool(
                (np.diff(order) >= width).all())
            if disjoint:
                for s in group:
                    plan[id(s["ref"])] = "direct"
                continue
            if len(group) > 1:
                raise CodegenFallback(
                    "layout",
                    f"{len(group)} stores to {name!r} interleave "
                    f"overlapping rows; codegen cannot reproduce the "
                    f"interpreter's write order")
            s = group[0]
            rows = s["starts"].reshape(-1, s["starts"].shape[-1])
            env_ok = True
            if rows.shape[0] > 1:
                span = np.sort(
                    np.stack([rows.min(axis=1), rows.max(axis=1)], axis=1),
                    axis=0)
                gaps = span[1:, 0] - span[:-1, 1]
                env_ok = bool((gaps >= width).all())
            plan[id(s["ref"])] = "rowloop" if env_ok else "elemloop"
        return plan

    def _emit_commits(self, plan, sites, arr_var, hoist) -> List[str]:
        width = self.width
        lines: List[str] = []
        stores = sorted((s for s in sites if s["ref"].is_store),
                        key=lambda s: s["ref"].order)
        for i, s in enumerate(stores):
            ref = s["ref"]
            a = arr_var[ref.array]
            val = self.nodes[ref.vid].text
            mode = plan[id(ref)]
            full = self.outer_dims + (ref.rows, width)
            cols = np.arange(width, dtype=np.int64)
            if mode == "direct":
                if s["view"] is not None:
                    off, shape, strides = s["view"]
                    lines.append(
                        f"_as_view({a}, {off}, {shape}, {strides})[...]"
                        f" = {val}")
                else:
                    idx = s["starts"][..., None] + cols
                    lines.append(f"{a}[{hoist(idx)}] = {val}")
                continue
            idx = s["starts"][..., None] + cols
            k = hoist(idx)
            bv = f"_bv{i}"
            if mode == "rowloop":
                lines.append(f"{bv} = np.broadcast_to({val}, {full})")
                lines.append(f"for _t in range({ref.rows}):")
                lines.append(f"    {a}[{k}[..., _t, :]] = {bv}[..., _t, :]")
            else:  # elemloop: env-major row-major, the interpreter's order
                lines.append(
                    f"{bv} = np.broadcast_to({val}, {full})"
                    f".reshape(-1, {width})")
                lines.append(f"_ix{i} = {k}.reshape(-1, {width})")
                lines.append(f"for _j in range(_ix{i}.shape[0]):")
                lines.append(f"    {a}[_ix{i}[_j]] = {bv}[_j]")
        return lines

    def _assemble(self, arr_var, pro_lines, body_lines, commit_lines,
                  arrays, key) -> str:
        p = self.program
        lines = [
            f"# codegen: {p.name} [{p.scheme}] width={p.width} "
            f"elem_bytes={p.elem_bytes}",
            f"# outer={self.outer_dims} trips={self.trips} "
            f"carried={self.carried}",
        ]
        for name, shape in key:
            lines.append(f"# array {name}: shape={shape}")
        lines.append("def _sweep(arrays):")

        def block(text_lines, indent):
            pad = " " * indent
            for ln in text_lines:
                lines.append(pad + ln if ln else "")

        entry = [f"{var} = arrays[{name!r}].reshape(-1)"
                 for name, var in sorted(arr_var.items())]
        block(entry, 4)
        if pro_lines:
            block(["# prologue (all outer environments at once)"], 4)
            block(pro_lines, 4)
        if not self.carried:
            if body_lines:
                block(["# body (flattened loop nest)"], 4)
                block(body_lines, 4)
        else:
            shape = self.outer_dims + (self.trips, self.width)
            init = ["# loop-carried registers: peel into shifted rows"]
            for name in self.carried:
                j = self.nodes[self._carry_vid[name]].data
                head = self.nodes[self._heads[name]].text
                init.append(f"_c{j} = np.zeros({shape}, _DT)")
                init.append(f"_c{j}[..., :1, :] = {head}")
            block(init, 4)
            block([f"for _round in range({self._max_rounds}):"], 4)
            block(body_lines, 8)
            conv = ["_cv = True"]
            for name in self.carried:
                j = self.nodes[self._carry_vid[name]].data
                head = self.nodes[self._heads[name]].text
                fin = self.nodes[self._finals[name]]
                shift = ("[..., :-1, :]" if fin.shape[-2] == self.trips
                         else "[..., :1, :]")
                conv += [
                    f"_n{j} = np.empty({shape}, _DT)",
                    f"_n{j}[..., :1, :] = {head}",
                    f"_n{j}[..., 1:, :] = {fin.text}{shift}",
                    f"_cv = _cv and (_n{j}.tobytes() == _c{j}.tobytes())",
                ]
            conv.append("if _cv:")
            conv.append("    break")
            for name in self.carried:
                j = self.nodes[self._carry_vid[name]].data
                conv.append(f"_c{j} = _n{j}")
            block(conv, 8)
            block(["else:"], 4)
            msg = (f"{p.name}: loop-carried registers {self.carried} "
                   f"did not reach a fixed point in {self._max_rounds} "
                   f"rounds (true recurrence)")
            block([f"raise CodegenFallback('recurrence', {msg!r})"], 8)
        if commit_lines:
            block(["# deferred stores (committed in interpreter order)"], 4)
            block(commit_lines, 4)
        if not (entry or pro_lines or body_lines or commit_lines
                or self.carried):
            block(["pass"], 4)
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# compile cache
# ---------------------------------------------------------------------------

@lru_cache(maxsize=128)
def get_codegen(program) -> CodegenProgram:
    """Lower (memoized) — raises :class:`CodegenFallback` for programs
    the codegen backend cannot flatten."""
    return CodegenProgram(program)


def emitted_source(program, arrays: Mapping[str, np.ndarray]) -> str:
    """The specialized source text for ``program`` on these arrays —
    the artifact the golden-source conformance tests snapshot."""
    return get_codegen(program).specialize(arrays).source


__all__ = ["CodegenFallback", "CodegenProgram", "MEMORY_GUARD",
           "emitted_source", "get_codegen"]
