"""Trace-driven set-associative cache simulation.

The analytic memory model (:mod:`repro.machine.memory`) *assumes* two
things: redundant vector loads replay from L1, and the level feeding the
registers sees each grid byte once per sweep (compulsory traffic).  This
module lets the repository *measure* both instead of assuming them: the
SIMD machine records every memory access it executes
(:class:`MemoryTraceRecorder`), and :class:`CacheHierarchySim` replays the
trace through LRU set-associative caches sized like the target machine.

``simulate_program_cache`` ties it together: one sweep of any generated
scheme yields per-level hit counts, miss traffic, and the set of unique
lines touched — the numbers behind EXPERIMENTS.md's model-validation
bench (Auto's k-fold loads hit L1 at >95%; every scheme's DRAM line
traffic equals the compulsory footprint).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import MachineConfig
from ..errors import ModelError

LINE_BYTES = 64

#: (array_name, byte_offset, byte_length, is_store)
MemAccess = Tuple[str, int, int, bool]


class CacheLevelSim:
    """One set-associative LRU cache level."""

    def __init__(self, size_bytes: int, *, ways: int = 8,
                 line_bytes: int = LINE_BYTES, name: str = "L?") -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ModelError("cache geometry must be positive")
        lines = size_bytes // line_bytes
        if lines < ways:
            ways = max(1, lines)
        self.name = name
        self.ways = ways
        self.line_bytes = line_bytes
        self.sets = max(1, lines // ways)
        # per-set ordered dict of resident line tags (LRU order)
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def access(self, line_addr: int) -> bool:
        """Touch one line; returns True on hit.  Misses install the line
        (evicting LRU)."""
        s = self._sets[line_addr % self.sets]
        if line_addr in s:
            s.move_to_end(line_addr)
            self.hits += 1
            return True
        self.misses += 1
        s[line_addr] = True
        if len(s) > self.ways:
            s.popitem(last=False)
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class CacheStats:
    """Per-level results of one trace replay."""

    levels: Tuple[Tuple[str, int, int], ...]  #: (name, hits, misses)
    dram_lines: int                           #: line fetches from memory
    unique_lines: int                         #: compulsory footprint
    accesses: int

    def hit_rate(self, name: str) -> float:
        for lname, hits, misses in self.levels:
            if lname == name:
                total = hits + misses
                return hits / total if total else 0.0
        raise ModelError(f"no cache level named {name!r}")

    @property
    def dram_bytes(self) -> int:
        return self.dram_lines * LINE_BYTES

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {"accesses": self.accesses}
        for name, hits, misses in self.levels:
            total = hits + misses
            out[f"{name} hit rate"] = hits / total if total else 0.0
        out["DRAM lines"] = self.dram_lines
        out["compulsory lines"] = self.unique_lines
        return out


class CacheHierarchySim:
    """An inclusive multi-level hierarchy: misses walk down and install
    the line at every level on the way back up."""

    def __init__(self, levels: Sequence[CacheLevelSim]) -> None:
        if not levels:
            raise ModelError("hierarchy needs at least one level")
        self.levels = list(levels)
        self.dram_lines = 0
        self._touched: set = set()
        self.accesses = 0

    @classmethod
    def for_machine(cls, machine: MachineConfig, *,
                    levels: int | None = None) -> "CacheHierarchySim":
        sims = [
            CacheLevelSim(lvl.size_bytes, name=lvl.name)
            for lvl in machine.caches[:levels]
        ]
        return cls(sims)

    def access(self, array: str, offset: int, nbytes: int,
               is_store: bool) -> None:
        """One vector access: touch every line it covers."""
        first = offset // LINE_BYTES
        last = (offset + max(1, nbytes) - 1) // LINE_BYTES
        for line in range(first, last + 1):
            key = (array, line)
            self.accesses += 1
            self._touched.add(key)
            addr = hash(key) & 0x7FFFFFFFFFFF
            for lvl in self.levels:
                if lvl.access(addr):
                    break
            else:
                self.dram_lines += 1

    def stats(self) -> CacheStats:
        return CacheStats(
            levels=tuple((l.name, l.hits, l.misses) for l in self.levels),
            dram_lines=self.dram_lines,
            unique_lines=len(self._touched),
            accesses=self.accesses,
        )


class MemoryTraceRecorder:
    """Collects the SIMD machine's memory accesses (bounded)."""

    def __init__(self, limit: int = 2_000_000) -> None:
        self.limit = limit
        self.accesses: List[MemAccess] = []

    def __call__(self, array: str, offset: int, nbytes: int,
                 is_store: bool) -> None:
        if len(self.accesses) >= self.limit:
            raise ModelError(
                f"memory trace exceeded {self.limit} accesses; "
                f"use a smaller grid for cache simulation"
            )
        self.accesses.append((array, offset, nbytes, is_store))

    def replay(self, hierarchy: CacheHierarchySim) -> CacheStats:
        for acc in self.accesses:
            hierarchy.access(*acc)
        return hierarchy.stats()


def simulate_program_cache(
    program,
    grid,
    machine: MachineConfig,
    *,
    steps: Optional[int] = None,
    boundary: str = "periodic",
) -> CacheStats:
    """Execute ``program`` for one (fused) sweep while recording its memory
    trace, then replay the trace through caches sized like ``machine``.

    Returns the per-level statistics.  Grids should be small (the trace is
    kept in memory)."""
    from ..vectorize.driver import run_program

    recorder = MemoryTraceRecorder()
    run_program(program, grid, steps if steps is not None
                else program.steps_per_iter,
                boundary=boundary, mem_hook=recorder)
    hierarchy = CacheHierarchySim.for_machine(machine)
    return recorder.replay(hierarchy)
