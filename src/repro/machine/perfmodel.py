"""End-to-end GStencil/s estimation.

``GStencil/s = T * prod(N_i) / (t * 1e9)`` (paper Eq. 3) where ``t`` is the
maximum of the compute-bound time (:mod:`repro.machine.pipeline`) and the
memory-bound time (:mod:`repro.machine.memory`) — the roofline composition
the stencil literature standardly assumes for these memory-bound kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import MachineConfig
from ..errors import ModelError
from .costs import CostTable, cost_table_for
from .memory import CacheHierarchyModel, MemoryEstimate
from .pipeline import PipelineEstimate, PipelineModel


@dataclass(frozen=True)
class KernelCost:
    """The scheme-dependent per-iteration facts the model needs, decoupled
    from a concrete grid (so the same cost works for any problem size)."""

    scheme: str
    width: int
    vectors_per_iter: int
    steps_per_iter: int
    loads_per_iter: float
    stores_per_iter: float
    cycles_per_iter: float
    registers_used: int = 0

    @classmethod
    def from_program(cls, program, machine: MachineConfig,
                     table: Optional[CostTable] = None) -> "KernelCost":
        est = PipelineModel(machine, table).estimate(program)
        mix = program.body_mix()
        return cls(
            scheme=program.scheme,
            width=program.width,
            vectors_per_iter=program.vectors_per_iter,
            steps_per_iter=program.steps_per_iter,
            loads_per_iter=mix.loads,
            stores_per_iter=mix.stores,
            cycles_per_iter=est.cycles_per_iter,
            registers_used=program.registers_used(),
        )

    @property
    def elems_per_iter(self) -> int:
        return self.width * self.vectors_per_iter


@dataclass(frozen=True)
class PerfResult:
    gstencil_s: float
    time_s: float
    compute_time_s: float
    memory_time_s: float
    level: str
    bottleneck: str  # "compute" | "memory"

    def speedup_over(self, other: "PerfResult") -> float:
        return self.gstencil_s / other.gstencil_s


class PerformanceModel:
    """Combines the pipeline and cache models for one machine."""

    def __init__(self, machine: MachineConfig,
                 table: Optional[CostTable] = None) -> None:
        self.machine = machine
        self.table = table or cost_table_for(machine)
        self.pipeline = PipelineModel(machine, self.table)
        self.memory = CacheHierarchyModel(machine)

    # -- helpers -----------------------------------------------------------------
    def pipeline_estimate(self, program) -> PipelineEstimate:
        return self.pipeline.estimate(program)

    def kernel_cost(self, program) -> KernelCost:
        return KernelCost.from_program(program, self.machine, self.table)

    # -- main entry point ----------------------------------------------------------
    def estimate(
        self,
        cost: KernelCost,
        *,
        points: int,
        steps: int,
        working_set_bytes: Optional[float] = None,
        cores: int = 1,
        numa_remote_fraction: float = 0.0,
        sync_phases: int = 0,
        efficiency: float = 1.0,
        working_set_per_core: bool = False,
    ) -> PerfResult:
        """Estimate GStencil/s for ``steps`` sweeps over ``points`` grid
        points.

        ``working_set_bytes`` defaults to in+out grids (2 arrays); pass the
        tile working set when modelling cache blocking.  ``sync_phases``
        adds per-phase barrier overhead for parallel runs.  ``efficiency``
        scales compute throughput (scheme-level derating, e.g. DSL
        baselines)."""
        if points <= 0 or steps <= 0:
            raise ModelError("points and steps must be positive")
        if cores < 1 or cores > self.machine.total_cores:
            raise ModelError(
                f"cores must be in [1, {self.machine.total_cores}], got {cores}"
            )
        if efficiency <= 0:
            raise ModelError("efficiency must be positive")
        elem = self.machine.element_bytes
        if working_set_bytes is None:
            working_set_bytes = 2.0 * points * elem

        # compute term ---------------------------------------------------------
        iters_per_sweep = points / cost.elems_per_iter
        sweeps = steps / cost.steps_per_iter
        cycles = cost.cycles_per_iter * iters_per_sweep * sweeps
        freq_hz = self.machine.freq_ghz * 1e9
        compute_time = cycles / freq_hz / cores / efficiency

        # memory term: compulsory traffic.  Redundant vector loads replay
        # from L1 (they are charged as load-port pressure in the compute
        # term); the feeding level sees each grid byte once per fused
        # sweep, plus the store stream.
        bytes_loaded = float(points) * elem * sweeps
        bytes_stored = float(points) * elem * sweeps
        mem: MemoryEstimate = self.memory.sweep_time(
            bytes_loaded=bytes_loaded,
            bytes_stored=bytes_stored,
            working_set_bytes=working_set_bytes,
            cores=cores,
            numa_remote_fraction=numa_remote_fraction,
            working_set_per_core=working_set_per_core,
        )

        time_s = max(compute_time, mem.time_s)
        time_s += sync_phases * self.machine.sync_overhead_us * 1e-6
        updates = points * steps
        return PerfResult(
            gstencil_s=updates / time_s / 1e9,
            time_s=time_s,
            compute_time_s=compute_time,
            memory_time_s=mem.time_s,
            level=mem.level,
            bottleneck="compute" if compute_time >= mem.time_s else "memory",
        )
