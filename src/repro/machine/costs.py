"""Per-instruction cost tables.

The cross-lane / in-lane asymmetry is the paper's Table 1 (Alder/Ice Lake):

============  ========= ==========
instruction    latency   CPI
============  ========= ==========
vpermpd        3         1
vperm2f128     3         1
vshufpd        1         0.5
vpermilpd      1         1
============  ========= ==========

Loads use the 7-cycle ``vmovupd`` figure the paper quotes in §3.1; FMA and
the remaining entries use standard published figures for these
microarchitectures.  CPI is reciprocal throughput: 0.5 means two can issue
per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping

from ..config import MachineConfig
from ..errors import ModelError
from .isa import Op


@dataclass(frozen=True)
class OpCost:
    latency: float
    cpi: float  # reciprocal throughput (cycles per instruction)

    def __post_init__(self) -> None:
        if self.latency < 0 or self.cpi <= 0:
            raise ModelError(f"invalid cost {self}")


_DEFAULT: Dict[Op, OpCost] = {
    Op.LOAD: OpCost(latency=7.0, cpi=0.5),
    Op.STORE: OpCost(latency=4.0, cpi=1.0),
    Op.BROADCAST: OpCost(latency=7.0, cpi=0.5),
    Op.SHUFPD: OpCost(latency=1.0, cpi=0.5),      # Table 1, in-lane
    Op.PERMILPD: OpCost(latency=1.0, cpi=1.0),    # Table 1, in-lane
    Op.SHUFPS: OpCost(latency=1.0, cpi=0.5),      # f32 twin of vshufpd
    Op.PERMILPS: OpCost(latency=1.0, cpi=1.0),
    Op.UNPCKLPS: OpCost(latency=1.0, cpi=1.0),
    Op.UNPCKHPS: OpCost(latency=1.0, cpi=1.0),
    Op.PERM2F128: OpCost(latency=3.0, cpi=1.0),   # Table 1, cross-lane
    Op.PERMPD: OpCost(latency=3.0, cpi=1.0),      # Table 1, cross-lane
    Op.ADD: OpCost(latency=4.0, cpi=0.5),
    Op.SUB: OpCost(latency=4.0, cpi=0.5),
    Op.MUL: OpCost(latency=4.0, cpi=0.5),
    Op.FMA: OpCost(latency=4.0, cpi=0.5),
    Op.MOV: OpCost(latency=0.5, cpi=0.25),        # mostly move-eliminated
    Op.SETZERO: OpCost(latency=0.5, cpi=0.25),    # zeroing idiom
}


@dataclass(frozen=True)
class CostTable:
    """Latency/CPI per opcode for one microarchitecture."""

    name: str
    costs: Mapping[Op, OpCost]

    def latency(self, op: Op) -> float:
        return self._get(op).latency

    def cpi(self, op: Op) -> float:
        return self._get(op).cpi

    def _get(self, op: Op) -> OpCost:
        try:
            return self.costs[op]
        except KeyError:
            raise ModelError(f"cost table {self.name!r} has no entry for {op}") from None

    def with_cost(self, op: Op, *, latency: float | None = None,
                  cpi: float | None = None) -> "CostTable":
        cur = self._get(op)
        new = OpCost(
            latency=cur.latency if latency is None else latency,
            cpi=cur.cpi if cpi is None else cpi,
        )
        costs = dict(self.costs)
        costs[op] = new
        return replace(self, costs=costs)


DEFAULT_COSTS = CostTable(name="avx2-default", costs=dict(_DEFAULT))

#: Zen 3 executes vperm2f128 slightly faster but keeps the same in-lane vs
#: cross-lane asymmetry; we encode a mild difference so the two paper
#: machines are not numerically identical.
ZEN3_COSTS = (
    DEFAULT_COSTS
    .with_cost(Op.PERM2F128, latency=3.0, cpi=1.0)
    .with_cost(Op.LOAD, latency=6.0, cpi=0.5)
)
ZEN3_COSTS = replace(ZEN3_COSTS, name="zen3")

_BY_MACHINE = {
    "intel-xeon-6230r": DEFAULT_COSTS,
    "amd-epyc-7v13": ZEN3_COSTS,
}


def cost_table_for(machine: MachineConfig) -> CostTable:
    """The cost table matching a machine config (default AVX2 figures for
    machines we have no specific data for)."""
    return _BY_MACHINE.get(machine.name, DEFAULT_COSTS)
