"""Instruction-trace accounting.

:class:`TraceCounter` tallies executed (or statically listed) instructions
by :class:`~repro.machine.isa.InstrClass` and by opcode — the currency of
the paper's Table 2 ("analytical vector instructions per vector") and of
the Figure-8 hotspot breakdown.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable

from .isa import Instr, InstrClass, Op


@dataclass
class TraceCounter:
    by_class: Counter = field(default_factory=Counter)
    by_op: Counter = field(default_factory=Counter)
    vectors: int = 0  #: output vectors produced
    steps: int = 0    #: time steps advanced (ITM fuses several per sweep)

    def add(self, instr: Instr, times: int = 1) -> None:
        self.by_class[instr.klass] += times
        self.by_op[instr.op] += times

    def add_many(self, instrs: Iterable[Instr], times: int = 1) -> None:
        for instr in instrs:
            self.add(instr, times)

    def merge(self, other: "TraceCounter") -> "TraceCounter":
        self.by_class.update(other.by_class)
        self.by_op.update(other.by_op)
        self.vectors += other.vectors
        self.steps += other.steps
        return self

    # -- queries -------------------------------------------------------------
    def count(self, klass: InstrClass) -> int:
        return int(self.by_class.get(klass, 0))

    @property
    def loads(self) -> int:
        return self.count(InstrClass.LOAD)

    @property
    def stores(self) -> int:
        return self.count(InstrClass.STORE)

    @property
    def cross_lane(self) -> int:
        return self.count(InstrClass.CROSS_LANE)

    @property
    def in_lane(self) -> int:
        return self.count(InstrClass.IN_LANE)

    @property
    def arith(self) -> int:
        return self.count(InstrClass.ARITH)

    @property
    def shuffles(self) -> int:
        return self.cross_lane + self.in_lane

    @property
    def total(self) -> int:
        return int(sum(self.by_class.values()))

    def per_vector(self) -> Dict[str, float]:
        """Per-output-vector-per-time-step averages — directly comparable to
        the paper's Table 2 rows."""
        denom = max(1, self.vectors) * max(1, self.steps or 1)
        return {
            "L": self.loads / denom,
            "S": self.stores / denom,
            "C": self.cross_lane / denom,
            "I": self.in_lane / denom,
            "A": self.arith / denom,
        }

    def summary(self) -> Dict[str, int]:
        out = {k.value: int(v) for k, v in sorted(self.by_class.items(),
                                                  key=lambda kv: kv[0].value)}
        out["total"] = self.total
        return out

    def op_summary(self) -> Dict[str, int]:
        return {op.value: int(n) for op, n in sorted(self.by_op.items(),
                                                     key=lambda kv: kv[0].value)}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        pv = self.per_vector()
        return ("TraceCounter(" +
                ", ".join(f"{k}={v:.3g}" for k, v in pv.items()) +
                f", vectors={self.vectors}, steps={self.steps})")


def mix_of(instrs: Iterable[Instr]) -> TraceCounter:
    """Static instruction mix of a code sequence."""
    tc = TraceCounter()
    tc.add_many(instrs)
    return tc
