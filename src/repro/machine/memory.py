"""Cache-hierarchy / bandwidth time model.

The data term of a stencil sweep is modelled by (a) finding the cache level
whose capacity holds the sweep's working set — that level feeds the
registers — and (b) dividing the bytes the instruction stream actually
moves by that level's (core-aggregated) bandwidth.

This produces the paper's Figure-9 stair curves: as the problem grows past
L1, L2 and L3 capacity, the feeding level drops to a slower tier and
GStencil/s steps down.  Because redundant loads (Multiple Loads) multiply
the bytes moved, the model also reproduces why conflict-heavy schemes lose
even when resident in cache.

DRAM stores pay a write-allocate factor (a store miss first reads the
line), the standard behaviour of these machines for streaming stencil
writes without non-temporal hints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import CacheLevel, MachineConfig
from ..errors import ModelError

#: stores to DRAM read the line before writing it (write-allocate)
WRITE_ALLOCATE_FACTOR = 2.0

#: fraction of a socket's DRAM bandwidth one core can draw
PER_CORE_DRAM_SHARE = 0.18


@dataclass(frozen=True)
class MemoryEstimate:
    time_s: float
    level: str             #: cache level (or "DRAM") feeding the registers
    bandwidth_gbs: float   #: aggregate bandwidth used
    bytes_moved: float

    @property
    def gbs(self) -> float:
        return self.bandwidth_gbs


class CacheHierarchyModel:
    """Working-set placement + bandwidth time for one machine."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine

    def feeding_level(self, working_set_bytes: float, cores: int = 1,
                      *, per_core: bool = False) -> Optional[CacheLevel]:
        """Smallest cache level that holds the working set; ``None`` = DRAM.

        ``per_core=False`` (default): ``working_set_bytes`` is the whole
        problem's footprint, divided among cores for private levels.
        ``per_core=True``: it is one core's tile footprint (cache-blocked
        runs); shared levels must then hold every core's tile at once.
        """
        if working_set_bytes <= 0:
            raise ModelError("working set must be positive")
        if cores < 1:
            raise ModelError("cores must be >= 1")
        for level in self.machine.caches:
            if per_core:
                budget = working_set_bytes * cores if level.shared \
                    else working_set_bytes
            else:
                budget = working_set_bytes if level.shared \
                    else working_set_bytes / cores
            if budget <= level.size_bytes:
                return level
        return None

    def bandwidth(self, level: Optional[CacheLevel], cores: int) -> float:
        if level is not None:
            return level.aggregate_bandwidth(cores)
        bw = self.machine.total_dram_bandwidth(cores)
        # A single core cannot saturate a socket's DRAM channels.
        per_core_cap = self.machine.dram_bandwidth_gbs * PER_CORE_DRAM_SHARE
        return min(bw, per_core_cap * cores)

    def sweep_time(
        self,
        *,
        bytes_loaded: float,
        bytes_stored: float,
        working_set_bytes: float,
        cores: int = 1,
        numa_remote_fraction: float = 0.0,
        working_set_per_core: bool = False,
    ) -> MemoryEstimate:
        """Time for moving a sweep's traffic out of/into the feeding level.

        ``numa_remote_fraction`` is the share of traffic served by a remote
        socket (Intel dual-socket runs, §4.5); it is slowed by the
        machine's :attr:`~repro.config.MachineConfig.numa_remote_penalty`.
        """
        if bytes_loaded < 0 or bytes_stored < 0:
            raise ModelError("traffic must be non-negative")
        level = self.feeding_level(working_set_bytes, cores,
                                   per_core=working_set_per_core)
        store_factor = 1.0 if level is not None else WRITE_ALLOCATE_FACTOR
        moved = bytes_loaded + store_factor * bytes_stored
        bw = self.bandwidth(level, cores)
        if bw <= 0:
            raise ModelError("model bandwidth must be positive")
        time_s = moved / (bw * 1e9)
        if numa_remote_fraction > 0.0 and level is None:
            time_s *= 1.0 + numa_remote_fraction * self.machine.numa_remote_penalty
        return MemoryEstimate(
            time_s=time_s,
            level=level.name if level is not None else "DRAM",
            bandwidth_gbs=bw,
            bytes_moved=moved,
        )
