"""The vector instruction set.

Shuffle semantics follow the Intel AVX/AVX2 definitions exactly for the
256-bit case and generalize lane-wise to 128-bit (SSE, one lane) and
512-bit (AVX-512, four lanes) registers:

* :attr:`Op.SHUFPD` — ``vshufpd``: element ``2k`` of each 128-bit lane comes
  from *src1* (low or high element of that lane, chosen by imm bit ``2k``),
  element ``2k+1`` from *src2* (imm bit ``2k+1``).  **In-lane** (Table 1:
  latency 1, 0.5 CPI).
* :attr:`Op.PERMILPD` — ``vpermilpd``: each element picks low/high of its
  own lane of the single source.  **In-lane** (latency 1, 1 CPI).
* :attr:`Op.PERM2F128` — ``vperm2f128`` generalized to a lane concatenator:
  each destination lane selects any lane of the concatenation
  ``src1.lanes + src2.lanes`` (AVX-512's ``vshufi64x2`` plays this role for
  four lanes).  **Cross-lane** (latency 3, 1 CPI).
* :attr:`Op.PERMPD` — ``vpermpd``: arbitrary element permutation of one
  source across the whole register.  **Cross-lane** (latency 3, 1 CPI).

Memory operands are affine in the loop variables so that one symbolic
program describes a whole loop nest; :class:`repro.machine.machine.SimdMachine`
binds the variables while sweeping the iteration space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..errors import IsaError


# ---------------------------------------------------------------------------
# affine index expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Affine:
    """``const + sum(coeff[v] * v)`` over loop variables ``v``."""

    const: int = 0
    terms: Tuple[Tuple[str, int], ...] = ()

    @classmethod
    def of(cls, const: int = 0, **coeffs: int) -> "Affine":
        return cls(const=int(const),
                   terms=tuple(sorted((v, int(c)) for v, c in coeffs.items() if c)))

    @classmethod
    def var(cls, name: str, coeff: int = 1, const: int = 0) -> "Affine":
        return cls.of(const, **{name: coeff})

    def shift(self, delta: int) -> "Affine":
        return Affine(self.const + int(delta), self.terms)

    def evaluate(self, env: Mapping[str, int]) -> int:
        total = self.const
        for var, coeff in self.terms:
            try:
                total += coeff * env[var]
            except KeyError:
                raise IsaError(f"unbound loop variable {var!r} in address") from None
        return total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [str(self.const)] if self.const or not self.terms else []
        parts += [f"{c}*{v}" if c != 1 else v for v, c in self.terms]
        return "+".join(parts) or "0"


@dataclass(frozen=True)
class MemRef:
    """A vector memory operand: ``array[idx_0, ..., idx_{d-2}, idx_{d-1} :
    idx_{d-1} + W]`` — W contiguous elements along the unit-stride axis."""

    array: str
    index: Tuple[Affine, ...]

    def evaluate(self, env: Mapping[str, int]) -> Tuple[int, ...]:
        return tuple(ix.evaluate(env) for ix in self.index)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.array}[{', '.join(map(str, self.index))}]"


# ---------------------------------------------------------------------------
# opcodes
# ---------------------------------------------------------------------------

class Op(enum.Enum):
    LOAD = "vmovupd.load"
    STORE = "vmovupd.store"
    BROADCAST = "vbroadcastsd"
    SHUFPD = "vshufpd"
    PERMILPD = "vpermilpd"
    SHUFPS = "vshufps"
    PERMILPS = "vpermilps"
    UNPCKLPS = "vunpcklps"
    UNPCKHPS = "vunpckhps"
    PERM2F128 = "vperm2f128"
    PERMPD = "vpermpd"
    ADD = "vaddpd"
    SUB = "vsubpd"
    MUL = "vmulpd"
    FMA = "vfmadd231pd"
    MOV = "vmovapd"
    SETZERO = "vxorpd"


class InstrClass(enum.Enum):
    """The cost classes of the paper's Table 1/Table 2 accounting."""

    LOAD = "load"
    STORE = "store"
    CROSS_LANE = "cross-lane"
    IN_LANE = "in-lane"
    ARITH = "arith"
    OTHER = "other"


_CLASS: Dict[Op, InstrClass] = {
    Op.LOAD: InstrClass.LOAD,
    Op.STORE: InstrClass.STORE,
    Op.BROADCAST: InstrClass.OTHER,
    Op.SHUFPD: InstrClass.IN_LANE,
    Op.PERMILPD: InstrClass.IN_LANE,
    Op.SHUFPS: InstrClass.IN_LANE,
    Op.PERMILPS: InstrClass.IN_LANE,
    Op.UNPCKLPS: InstrClass.IN_LANE,
    Op.UNPCKHPS: InstrClass.IN_LANE,
    Op.PERM2F128: InstrClass.CROSS_LANE,
    Op.PERMPD: InstrClass.CROSS_LANE,
    Op.ADD: InstrClass.ARITH,
    Op.SUB: InstrClass.ARITH,
    Op.MUL: InstrClass.ARITH,
    Op.FMA: InstrClass.ARITH,
    Op.MOV: InstrClass.OTHER,
    Op.SETZERO: InstrClass.OTHER,
}


def classify(op: Op) -> InstrClass:
    return _CLASS[op]


# ---------------------------------------------------------------------------
# instructions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Instr:
    """One vector instruction.

    ``dst`` / ``srcs`` are virtual register names.  ``imm`` carries the
    shuffle control (int bitmask for SHUFPD/PERMILPD, tuple of selectors for
    PERM2F128/PERMPD) or the broadcast constant.  ``mem`` is the memory
    operand of LOAD/STORE.
    """

    op: Op
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    imm: object = None
    mem: Optional[MemRef] = None
    #: memory operand not aligned to the vector width (unaligned vmovupd
    #: pays split-line penalties; the pipeline model charges it extra)
    unaligned: bool = False
    comment: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        n_src = {
            Op.LOAD: 0, Op.STORE: 1, Op.BROADCAST: 0, Op.SETZERO: 0,
            Op.SHUFPD: 2, Op.PERMILPD: 1, Op.PERM2F128: 2, Op.PERMPD: 1,
            Op.SHUFPS: 2, Op.PERMILPS: 1, Op.UNPCKLPS: 2, Op.UNPCKHPS: 2,
            Op.ADD: 2, Op.SUB: 2, Op.MUL: 2, Op.FMA: 3, Op.MOV: 1,
        }[self.op]
        if len(self.srcs) != n_src:
            raise IsaError(f"{self.op.value} expects {n_src} sources, got {self.srcs}")
        needs_dst = self.op is not Op.STORE
        if needs_dst and not self.dst:
            raise IsaError(f"{self.op.value} needs a destination register")
        if self.op is Op.STORE and self.dst:
            raise IsaError("STORE has no destination register")
        if self.op in (Op.LOAD, Op.STORE) and self.mem is None:
            raise IsaError(f"{self.op.value} needs a memory operand")
        if self.op not in (Op.LOAD, Op.STORE) and self.mem is not None:
            raise IsaError(f"{self.op.value} takes no memory operand")
        if self.op is Op.BROADCAST and not isinstance(self.imm, (int, float)):
            raise IsaError("BROADCAST imm must be a scalar constant")

    @property
    def klass(self) -> InstrClass:
        return classify(self.op)

    @property
    def reads(self) -> Tuple[str, ...]:
        return self.srcs

    @property
    def writes(self) -> Optional[str]:
        return self.dst

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.op.value]
        if self.dst:
            parts.append(self.dst)
        parts.extend(self.srcs)
        if self.mem is not None:
            parts.append(str(self.mem))
        if self.imm is not None:
            parts.append(f"imm={self.imm}")
        text = " ".join(parts)
        return f"{text}  ; {self.comment}" if self.comment else text


# ---------------------------------------------------------------------------
# semantics
# ---------------------------------------------------------------------------

def _check_width(value: np.ndarray, width: int, what: str) -> np.ndarray:
    if value.shape != (width,):
        raise IsaError(f"{what}: expected width {width}, got shape {value.shape}")
    return value


def _shufpd(src1: np.ndarray, src2: np.ndarray, imm: int, width: int) -> np.ndarray:
    """AVX ``vshufpd`` generalized lane-wise.

    For each 128-bit lane ``k`` (elements ``2k, 2k+1``):
    ``dst[2k]   = src1[2k + imm_bit(2k)]``;
    ``dst[2k+1] = src2[2k + imm_bit(2k+1)]``.
    """
    if not isinstance(imm, (int, np.integer)):
        raise IsaError(f"SHUFPD imm must be an int bitmask, got {imm!r}")
    if imm < 0 or imm >= (1 << width):
        raise IsaError(f"SHUFPD imm {imm:#x} out of range for width {width}")
    dst = np.empty(width, dtype=src1.dtype)
    for lane in range(width // 2):
        e0, e1 = 2 * lane, 2 * lane + 1
        dst[e0] = src1[e0 + ((imm >> e0) & 1)]
        dst[e1] = src2[e0 + ((imm >> e1) & 1)]
    return dst


def _permilpd(src: np.ndarray, imm: int, width: int) -> np.ndarray:
    """``vpermilpd``: each element selects low/high of its own lane."""
    if not isinstance(imm, (int, np.integer)):
        raise IsaError(f"PERMILPD imm must be an int bitmask, got {imm!r}")
    if imm < 0 or imm >= (1 << width):
        raise IsaError(f"PERMILPD imm {imm:#x} out of range for width {width}")
    dst = np.empty(width, dtype=src.dtype)
    for i in range(width):
        lane_base = (i // 2) * 2
        dst[i] = src[lane_base + ((imm >> i) & 1)]
    return dst


def _perm2f128(src1: np.ndarray, src2: np.ndarray, imm, width: int,
               epl: int) -> np.ndarray:
    """Lane concatenator (``vperm2f128`` / ``vshufi64x2``).

    ``imm`` is a tuple with one selector per destination lane; selector
    ``s`` picks lane ``s`` of the concatenation ``src1.lanes + src2.lanes``
    (``None`` zeroes the lane, mirroring vperm2f128's zero bit).  ``epl``
    is the elements-per-128-bit-lane (2 for f64, 4 for f32).
    """
    lanes = width // epl
    if not isinstance(imm, tuple) or len(imm) != lanes:
        raise IsaError(
            f"PERM2F128 imm must be a tuple of {lanes} lane selectors, got {imm!r}"
        )
    cat = np.concatenate([src1, src2])
    dst = np.empty(width, dtype=src1.dtype)
    for lane, sel in enumerate(imm):
        if sel is None:
            dst[epl * lane: epl * (lane + 1)] = 0.0
            continue
        if not 0 <= int(sel) < 2 * lanes:
            raise IsaError(f"PERM2F128 lane selector {sel} out of range")
        dst[epl * lane: epl * (lane + 1)] = cat[epl * sel: epl * (sel + 1)]
    return dst


def _shufps(src1: np.ndarray, src2: np.ndarray, imm: int,
            width: int) -> np.ndarray:
    """``vshufps`` (float32 lanes of 4): per lane, elements 0-1 select any
    element of src1's lane (2-bit fields), elements 2-3 of src2's lane.
    The same 8-bit imm applies to every lane."""
    if not isinstance(imm, (int, np.integer)) or not 0 <= imm < 256:
        raise IsaError(f"SHUFPS imm must be an 8-bit int, got {imm!r}")
    if width % 4:
        raise IsaError("SHUFPS needs 4-element lanes (float32 registers)")
    sel = [(imm >> (2 * k)) & 3 for k in range(4)]
    dst = np.empty(width, dtype=src1.dtype)
    for base in range(0, width, 4):
        dst[base + 0] = src1[base + sel[0]]
        dst[base + 1] = src1[base + sel[1]]
        dst[base + 2] = src2[base + sel[2]]
        dst[base + 3] = src2[base + sel[3]]
    return dst


def _permilps(src: np.ndarray, imm: int, width: int) -> np.ndarray:
    """``vpermilps``: each element selects any element of its own lane
    (2-bit fields, same imm every lane)."""
    if not isinstance(imm, (int, np.integer)) or not 0 <= imm < 256:
        raise IsaError(f"PERMILPS imm must be an 8-bit int, got {imm!r}")
    if width % 4:
        raise IsaError("PERMILPS needs 4-element lanes (float32 registers)")
    sel = [(imm >> (2 * k)) & 3 for k in range(4)]
    dst = np.empty(width, dtype=src.dtype)
    for base in range(0, width, 4):
        for k in range(4):
            dst[base + k] = src[base + sel[k]]
    return dst


def _unpckps(src1: np.ndarray, src2: np.ndarray, width: int,
             high: bool) -> np.ndarray:
    """``vunpcklps``/``vunpckhps``: per lane interleave the low (or high)
    halves: ``(a0, b0, a1, b1)`` / ``(a2, b2, a3, b3)``."""
    if width % 4:
        raise IsaError("UNPCK*PS needs 4-element lanes (float32 registers)")
    o = 2 if high else 0
    dst = np.empty(width, dtype=src1.dtype)
    for base in range(0, width, 4):
        dst[base + 0] = src1[base + o]
        dst[base + 1] = src2[base + o]
        dst[base + 2] = src1[base + o + 1]
        dst[base + 3] = src2[base + o + 1]
    return dst


def _permpd(src: np.ndarray, imm, width: int) -> np.ndarray:
    """``vpermpd``: arbitrary full-register element permutation."""
    if not isinstance(imm, tuple) or len(imm) != width:
        raise IsaError(
            f"PERMPD imm must be a tuple of {width} element selectors, got {imm!r}"
        )
    if any(not 0 <= int(s) < width for s in imm):
        raise IsaError(f"PERMPD selectors {imm} out of range for width {width}")
    return src[list(imm)].copy()


def execute_alu(instr: Instr, regs: Dict[str, np.ndarray], width: int,
                epl: int = 2, dtype=np.float64) -> None:
    """Execute a non-memory instruction against a register file in place.

    ``epl`` is the elements-per-128-bit-lane (2 for float64, 4 for
    float32); the pd-family shuffles require ``epl == 2`` and the
    ps-family ``epl == 4``."""
    op = instr.op
    if op in (Op.SHUFPD, Op.PERMILPD) and epl != 2:
        raise IsaError(f"{op.value} operates on float64 lanes (epl=2)")
    if op in (Op.SHUFPS, Op.PERMILPS, Op.UNPCKLPS, Op.UNPCKHPS) and epl != 4:
        raise IsaError(f"{op.value} operates on float32 lanes (epl=4)")
    if op is Op.BROADCAST:
        regs[instr.dst] = np.full(width, instr.imm, dtype=dtype)
        return
    if op is Op.SETZERO:
        regs[instr.dst] = np.zeros(width, dtype=dtype)
        return
    try:
        srcs = [
            _check_width(regs[name], width, f"register {name!r}")
            for name in instr.srcs
        ]
    except KeyError as exc:
        raise IsaError(f"read of undefined register {exc.args[0]!r}") from None
    if op is Op.MOV:
        regs[instr.dst] = srcs[0].copy()
    elif op is Op.SHUFPD:
        regs[instr.dst] = _shufpd(srcs[0], srcs[1], instr.imm, width)
    elif op is Op.PERMILPD:
        regs[instr.dst] = _permilpd(srcs[0], instr.imm, width)
    elif op is Op.PERM2F128:
        regs[instr.dst] = _perm2f128(srcs[0], srcs[1], instr.imm, width, epl)
    elif op is Op.SHUFPS:
        regs[instr.dst] = _shufps(srcs[0], srcs[1], instr.imm, width)
    elif op is Op.PERMILPS:
        regs[instr.dst] = _permilps(srcs[0], instr.imm, width)
    elif op is Op.UNPCKLPS:
        regs[instr.dst] = _unpckps(srcs[0], srcs[1], width, high=False)
    elif op is Op.UNPCKHPS:
        regs[instr.dst] = _unpckps(srcs[0], srcs[1], width, high=True)
    elif op is Op.PERMPD:
        regs[instr.dst] = _permpd(srcs[0], instr.imm, width)
    elif op is Op.ADD:
        regs[instr.dst] = srcs[0] + srcs[1]
    elif op is Op.SUB:
        regs[instr.dst] = srcs[0] - srcs[1]
    elif op is Op.MUL:
        regs[instr.dst] = srcs[0] * srcs[1]
    elif op is Op.FMA:
        # vfmadd231pd dst, a, b computes dst = a*b + dst; we expose the
        # three-source functional form dst = srcs[0]*srcs[1] + srcs[2].
        regs[instr.dst] = srcs[0] * srcs[1] + srcs[2]
    else:  # pragma: no cover - defensive
        raise IsaError(f"execute_alu cannot handle {op}")
