"""The SIMD machine interpreter.

Executes a :class:`~repro.vectorize.program.VectorProgram` against named
numpy arrays, with strict bounds checking (numpy slices silently truncate;
real vector loads fault).  This is the semantic referee: every scheme's
program must reproduce :func:`repro.stencils.reference.apply_numpy` exactly
(up to floating-point reassociation).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..errors import MachineError
from .isa import Instr, Op, execute_alu
from .trace import TraceCounter


class SimdMachine:
    """Interpreter for vector programs.

    ``width`` is the number of float64 elements per register (4 for AVX2).
    The register file is reset at each innermost-loop entry and persists
    across iterations within it — that is what makes loop-carried register
    reuse (Algorithm 1's ``v0``/``vp0``) observable and testable.
    """

    def __init__(self, width: int, *, elem_bytes: int = 8,
                 mem_hook=None) -> None:
        if width < 2 or width % 2:
            raise MachineError(f"width must be an even element count, got {width}")
        if elem_bytes not in (4, 8):
            raise MachineError(f"elem_bytes must be 4 (f32) or 8 (f64)")
        self.width = width
        self.elem_bytes = elem_bytes
        #: elements per 128-bit lane (2 for f64, 4 for f32)
        self.epl = 16 // elem_bytes
        self.dtype = np.float32 if elem_bytes == 4 else np.float64
        if width % self.epl:
            raise MachineError(
                f"width {width} is not a whole number of {self.epl}-element lanes"
            )
        self.regs: Dict[str, np.ndarray] = {}
        #: optional callable(array, byte_offset, nbytes, is_store) invoked
        #: per memory access — feeds the trace-driven cache simulator
        self.mem_hook = mem_hook

    # -- memory helpers ---------------------------------------------------------
    def _locate(self, arrays: Mapping[str, np.ndarray], instr: Instr,
                env: Mapping[str, int]) -> tuple:
        mem = instr.mem
        if mem.array not in arrays:
            raise MachineError(f"unknown array {mem.array!r} in {instr}")
        arr = arrays[mem.array]
        idx = mem.evaluate(env)
        if len(idx) != arr.ndim:
            raise MachineError(
                f"{instr}: address has {len(idx)} axes, array has {arr.ndim}"
            )
        for axis, (i, n) in enumerate(zip(idx[:-1], arr.shape[:-1])):
            if not 0 <= i < n:
                raise MachineError(
                    f"{instr}: axis {axis} index {i} out of bounds [0, {n}) "
                    f"with env {dict(env)}"
                )
        x = idx[-1]
        if not (0 <= x and x + self.width <= arr.shape[-1]):
            raise MachineError(
                f"{instr}: x range [{x}, {x + self.width}) out of bounds "
                f"[0, {arr.shape[-1]}) with env {dict(env)}"
            )
        return arr, idx

    def _exec(self, instr: Instr, arrays: Mapping[str, np.ndarray],
              env: Mapping[str, int], counter: Optional[TraceCounter]) -> None:
        if counter is not None:
            counter.add(instr)
        if instr.op is Op.LOAD:
            arr, idx = self._locate(arrays, instr, env)
            x = idx[-1]
            sl = idx[:-1] + (slice(x, x + self.width),)
            self.regs[instr.dst] = np.array(arr[sl], dtype=self.dtype)
            if self.mem_hook is not None:
                self._record(instr, arr, idx, is_store=False)
        elif instr.op is Op.STORE:
            arr, idx = self._locate(arrays, instr, env)
            src = self.regs.get(instr.srcs[0])
            if src is None:
                raise MachineError(f"{instr}: store of undefined register")
            x = idx[-1]
            sl = idx[:-1] + (slice(x, x + self.width),)
            arr[sl] = src
            if self.mem_hook is not None:
                self._record(instr, arr, idx, is_store=True)
        else:
            execute_alu(instr, self.regs, self.width, epl=self.epl,
                        dtype=self.dtype)

    def _record(self, instr: Instr, arr: np.ndarray, idx: tuple,
                is_store: bool) -> None:
        offset = sum(int(i) * int(s) for i, s in zip(idx, arr.strides))
        self.mem_hook(instr.mem.array, offset,
                      self.width * arr.itemsize, is_store)

    # -- program execution --------------------------------------------------------
    def run(
        self,
        program,
        arrays: Mapping[str, np.ndarray],
        *,
        counter: Optional[TraceCounter] = None,
    ) -> Optional[TraceCounter]:
        """Execute ``program`` over its full loop nest.

        ``arrays`` maps array names to the padded (halo-inclusive) numpy
        buffers the program addresses.  Returns the counter if provided.
        """
        if program.width != self.width:
            raise MachineError(
                f"program width {program.width} != machine width {self.width}"
            )
        x_loop = program.loops[-1]
        for env in program.iter_outer():
            self.regs = {}
            env = dict(env)
            if program.prologue:
                # Prologue addresses may reference the x variable at its
                # initial value (Algorithm 1 lines 3-4).
                env[x_loop.var] = x_loop.start
                for instr in program.prologue:
                    self._exec(instr, arrays, env, counter)
            for x in x_loop.indices():
                env[x_loop.var] = x
                for instr in program.body:
                    self._exec(instr, arrays, env, counter)
        if counter is not None:
            counter.vectors += program.vectors_per_iter * program.total_body_runs()
            counter.steps = program.steps_per_iter
        return counter
