"""JSON serialization of vector programs.

Generated instruction streams are artifacts worth keeping: diffing a
kernel's stream across library versions, feeding external analyzers
(e.g. a real uop simulator), or archiving the exact code an experiment
costed.  This module round-trips
:class:`~repro.vectorize.program.VectorProgram` (with its loops, affine
addresses, shuffle controls, and tail spec) through plain JSON-compatible
dicts.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional

from ..errors import IsaError
from ..stencils.spec import StencilSpec
from .isa import Affine, Instr, MemRef, Op


def affine_to_dict(a: Affine) -> Dict[str, Any]:
    return {"const": a.const, "terms": [[v, c] for v, c in a.terms]}


def affine_from_dict(d: Dict[str, Any]) -> Affine:
    return Affine(const=int(d["const"]),
                  terms=tuple((str(v), int(c)) for v, c in d["terms"]))


def memref_to_dict(m: MemRef) -> Dict[str, Any]:
    return {"array": m.array, "index": [affine_to_dict(a) for a in m.index]}


def memref_from_dict(d: Dict[str, Any]) -> MemRef:
    return MemRef(array=str(d["array"]),
                  index=tuple(affine_from_dict(a) for a in d["index"]))


def _imm_to_json(imm: Any) -> Any:
    if isinstance(imm, tuple):
        return {"tuple": [None if v is None else int(v) for v in imm]}
    return imm


def _imm_from_json(imm: Any) -> Any:
    if isinstance(imm, dict) and "tuple" in imm:
        return tuple(None if v is None else int(v) for v in imm["tuple"])
    return imm


def instr_to_dict(instr: Instr) -> Dict[str, Any]:
    out: Dict[str, Any] = {"op": instr.op.value}
    if instr.dst:
        out["dst"] = instr.dst
    if instr.srcs:
        out["srcs"] = list(instr.srcs)
    if instr.imm is not None:
        out["imm"] = _imm_to_json(instr.imm)
    if instr.mem is not None:
        out["mem"] = memref_to_dict(instr.mem)
    if instr.unaligned:
        out["unaligned"] = True
    if instr.comment:
        out["comment"] = instr.comment
    return out


def instr_from_dict(d: Dict[str, Any]) -> Instr:
    try:
        op = Op(d["op"])
    except ValueError:
        raise IsaError(f"unknown opcode {d.get('op')!r}") from None
    return Instr(
        op=op,
        dst=d.get("dst"),
        srcs=tuple(d.get("srcs", ())),
        imm=_imm_from_json(d.get("imm")),
        mem=memref_from_dict(d["mem"]) if "mem" in d else None,
        unaligned=bool(d.get("unaligned", False)),
        comment=d.get("comment", ""),
    )


def _spec_to_dict(spec: Optional[StencilSpec]) -> Optional[Dict[str, Any]]:
    if spec is None:
        return None
    return {
        "name": spec.name,
        "ndim": spec.ndim,
        "offsets": [list(o) for o in spec.offsets],
        "coeffs": list(spec.coeffs),
    }


def _spec_from_dict(d: Optional[Dict[str, Any]]) -> Optional[StencilSpec]:
    if d is None:
        return None
    return StencilSpec(
        name=str(d["name"]),
        ndim=int(d["ndim"]),
        offsets=tuple(tuple(int(x) for x in o) for o in d["offsets"]),
        coeffs=tuple(float(c) for c in d["coeffs"]),
    )


#: public aliases — the kernel cache (:mod:`repro.core.cache`) and external
#: tools persist specs alongside programs.
def spec_to_dict(spec: Optional[StencilSpec]) -> Optional[Dict[str, Any]]:
    return _spec_to_dict(spec)


def spec_from_dict(d: Optional[Dict[str, Any]]) -> Optional[StencilSpec]:
    return _spec_from_dict(d)


def machine_to_dict(machine) -> Dict[str, Any]:
    """Canonical JSON-compatible form of a
    :class:`~repro.config.MachineConfig` (every field, caches included) —
    the content the kernel cache fingerprints, so *any* machine change
    produces a different dict."""
    return dataclasses.asdict(machine)


def machine_from_dict(d: Dict[str, Any]):
    from ..config import CacheLevel, MachineConfig
    d = dict(d)
    d["caches"] = tuple(CacheLevel(**lvl) for lvl in d.get("caches", ()))
    return MachineConfig(**d)


def term_to_dict(term) -> Dict[str, Any]:
    """One SDF :class:`~repro.core.sdf.Rank1Term` as plain JSON data."""
    return {
        "u": [[list(outer), c] for outer, c in sorted(term.u.items())],
        "v": [[int(dx), c] for dx, c in sorted(term.v.items())],
        "sigma": term.sigma,
    }


def term_from_dict(d: Dict[str, Any]):
    from ..core.sdf import Rank1Term
    return Rank1Term(
        u={tuple(int(x) for x in outer): float(c) for outer, c in d["u"]},
        v={int(dx): float(c) for dx, c in d["v"]},
        sigma=float(d["sigma"]),
    )


def program_to_dict(program) -> Dict[str, Any]:
    return {
        "name": program.name,
        "scheme": program.scheme,
        "width": program.width,
        "loops": [
            {"var": l.var, "start": l.start, "stop": l.stop, "step": l.step}
            for l in program.loops
        ],
        "prologue": [instr_to_dict(i) for i in program.prologue],
        "body": [instr_to_dict(i) for i in program.body],
        "vectors_per_iter": program.vectors_per_iter,
        "steps_per_iter": program.steps_per_iter,
        "overlapped": program.overlapped,
        "elem_bytes": program.elem_bytes,
        "input_array": program.input_array,
        "output_array": program.output_array,
        "tail_spec": _spec_to_dict(program.tail_spec),
        "notes": program.notes,
    }


def program_from_dict(d: Dict[str, Any]):
    from ..vectorize.program import Loop, VectorProgram
    return VectorProgram(
        name=str(d["name"]),
        scheme=str(d["scheme"]),
        width=int(d["width"]),
        loops=tuple(
            Loop(var=str(l["var"]), start=int(l["start"]),
                 stop=int(l["stop"]), step=int(l["step"]))
            for l in d["loops"]
        ),
        prologue=tuple(instr_from_dict(i) for i in d["prologue"]),
        body=tuple(instr_from_dict(i) for i in d["body"]),
        vectors_per_iter=int(d["vectors_per_iter"]),
        steps_per_iter=int(d.get("steps_per_iter", 1)),
        overlapped=bool(d.get("overlapped", False)),
        elem_bytes=int(d.get("elem_bytes", 8)),
        input_array=str(d.get("input_array", "a")),
        output_array=str(d.get("output_array", "out")),
        tail_spec=_spec_from_dict(d.get("tail_spec")),
        notes=str(d.get("notes", "")),
    )


def dumps(program, **json_kwargs) -> str:
    """Serialize a program to a JSON string."""
    return json.dumps(program_to_dict(program), **json_kwargs)


def loads(text: str):
    """Deserialize a program from a JSON string."""
    return program_from_dict(json.loads(text))
