"""Jigsaw — conflict-free vectorized stencil computation by tessellating
swizzled registers (PPoPP'25), reproduced in Python.

Python has no register-level control, so the hardware is substituted by a
faithful SIMD register-machine simulator plus analytic pipeline/cache
models (see DESIGN.md).  Quick start: ``examples/quickstart.py``.

Subpackages
-----------
``stencils``    kernel specs, grids, boundaries, references
``machine``     SIMD ISA interpreter + cost/pipeline/cache models
``vectorize``   baseline scheme generators (Auto, Reorg, Folding, Tess.)
``core``        Jigsaw: LBV, SDF, ITM, planner, compiled kernels
``tiling``      spatial blocking + tessellating tiling
``parallel``    multicore model + real thread-pool executor
``analysis``    Table-2 accounting, hotspots, ablation, metrics
``experiments`` one runner per paper table/figure
``schemes``     the scheme registry used across analyses
"""

from . import config, errors
from .errors import ReproError

__version__ = "1.0.0"

__all__ = ["config", "errors", "ReproError", "__version__"]
