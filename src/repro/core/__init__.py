"""Jigsaw's core: Lane-based Butterfly Vectorization (LBV), SVD-based
Dimension Flattening (SDF), and Iteration-based Temporal Merging (ITM),
composed by the planner into compiled kernels.

Public entry point::

    from repro.core import jigsaw
    kernel = jigsaw.compile(spec, machine, grid, time_fusion=2)
    result = kernel.run(grid, steps=100)
"""

from .lbv import generate_lbv
from .sdf import Rank1Term, flatten_terms, matricize, reconstruct
from .itm import merged_spec, fusable
from .planner import JigsawPlan, plan
from .jigsaw import compile as compile_kernel, generate_jigsaw
from .kernel import CompiledKernel
from .cache import (
    CacheStats,
    KernelCache,
    configure_default_cache,
    default_cache,
)

__all__ = [
    "generate_lbv",
    "Rank1Term",
    "flatten_terms",
    "matricize",
    "reconstruct",
    "merged_spec",
    "fusable",
    "JigsawPlan",
    "plan",
    "compile_kernel",
    "generate_jigsaw",
    "CompiledKernel",
    "CacheStats",
    "KernelCache",
    "configure_default_cache",
    "default_cache",
]
