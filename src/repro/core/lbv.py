"""Lane-based Butterfly Vectorization (LBV) — §3.1 / Algorithm 1.

LBV computes a 1-D stencil over a block of ``2W`` outputs in a *swizzled
(butterfly) domain* reachable with cheap in-lane shuffles:

* ``E(b) = vshufpd(F(b), F(b+W), 0...0)`` holds the even elements of the
  2W-block starting at ``x+b`` and ``O(b)`` (all-ones mask) the odd ones,
  where ``F(o)`` is the plain vector ``a[x+o .. x+o+W-1]``.  Crucially the
  internal element permutation ``p`` (``p_{2k} = 2k, p_{2k+1} = W + 2k``)
  is *identical for every base b*, so a neighbour at distance δ is simply
  another butterfly register:

  - even-position results: ``V(δ) = E(δ)`` for even δ, ``O(δ-1)`` for odd δ
  - odd-position results:  ``V(δ) = O(δ)`` for even δ, ``E(δ+1)`` for odd δ

* Only the even-offset full vectors ``F(o)`` with ``o % W != 0`` need a
  cross-lane lane-concat; with the sliding register window of Algorithm 1
  that is **2 cross-lane instructions per iteration = 1 per output vector**
  — the theoretical lower bound §3.1 proves.
* The butterfly arithmetic runs directly on the swizzled registers; two
  final ``vshufpd`` re-interleave ``R_E``/``R_O`` into the stored output
  vectors (Algorithm 1 line 16).

The construction reproduces Algorithm 1 exactly for the 1D5P case: the
carried ``F(0)``/``F(-2)`` are its ``v0``/``vp0``, the two fresh loads are
``v1``/``v2``, and the lane concats are its ``vperm2f128`` calls.

:class:`ButterflyEmitter` abstracts where aligned vectors come from (a
plain load for 1-D; an SDF row accumulation for N-D), which is what lets
SDF reuse this machinery unchanged (§3.2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import MachineConfig
from ..errors import VectorizeError
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from ..vectorize.common import check_geometry, loop_nest, out_addr, point_addr
from ..vectorize.program import ProgramBuilder, VectorProgram

#: provider(offset, in_prologue, dst) -> emits code leaving the aligned
#: vector at ``x + offset`` (offset % W == 0) in register ``dst``.
AlignedProvider = Callable[[int, bool, str], str]


def butterfly_requirements(
    taps: Mapping[int, float], width: int
) -> Tuple[List[int], List[int], List[int]]:
    """The butterfly register working set for tap offsets ``taps``.

    Returns ``(e_bases, o_bases, f_need)``: the even bases whose ``E``/``O``
    deinterleaves are needed, and the closed set of full-vector offsets
    ``F`` they are built from (closure includes lane-concat parents and the
    sliding-window carry analysis).
    """
    if not taps:
        raise VectorizeError("butterfly needs at least one tap")
    radius = max(abs(d) for d in taps)
    if radius > width:
        raise VectorizeError(
            f"LBV butterfly supports x-radius <= W={width}, got {radius}; "
            f"split the kernel or reduce temporal fusion"
        )
    e_bases: set = set()
    o_bases: set = set()
    for d in taps:
        if d % 2 == 0:
            e_bases.add(d)      # even-position results read E(d)
            o_bases.add(d)      # odd-position results read O(d)
        else:
            o_bases.add(d - 1)  # even-position results read O(d-1)
            e_bases.add(d + 1)  # odd-position results read E(d+1)
    bases = e_bases | o_bases

    f_need = set()
    for b in bases:
        f_need.add(b)
        f_need.add(b + width)
    # closure: a fresh non-aligned F needs its aligned lane-concat parents;
    # an F is carried (no parents needed) when F(o + 2W) is in the set.
    changed = True
    while changed:
        changed = False
        for o in sorted(f_need):
            carried = (o + 2 * width) in f_need
            if o % width != 0 and not carried:
                parent = (o // width) * width  # floor for negatives too
                for p in (parent, parent + width):
                    if p not in f_need:
                        f_need.add(p)
                        changed = True
    return sorted(e_bases), sorted(o_bases), sorted(f_need)


def _odd_mask(width: int) -> int:
    return (1 << width) - 1


class ButterflyEmitter:
    """Emits the LBV butterfly for one set of x-taps over aligned vectors
    supplied by ``provider`` (load or SDF row accumulation).

    The emitter owns the loop-carried ``F`` window: stable register names,
    prologue materialization, per-iteration fresh loads/concats, and the
    end-of-body slide moves (call :meth:`emit_slide` once after all stores).
    """

    def __init__(
        self,
        builder: ProgramBuilder,
        taps: Mapping[int, float],
        provider: AlignedProvider,
        *,
        tag: str = "lbv",
    ) -> None:
        self.b = builder
        self.w = builder.width
        self.taps = dict(taps)
        self.provider = provider
        self.tag = tag
        self.e_bases, self.o_bases, self.f_need = butterfly_requirements(
            taps, self.w
        )
        self._f: Dict[int, str] = {}
        self._carried: List[int] = [
            o for o in self.f_need if (o + 2 * self.w) in self.f_need
        ]
        self.epl = getattr(builder, "elems_per_lane", 2)
        # per-(stream, parent) shift caches for sub-lane F materialization
        # (float32 lanes: even offsets are not always lane-aligned)
        self._pair_caches: Dict[tuple, object] = {}

    def _fname(self, o: int) -> str:
        return f"{self.tag}_F{'m' if o < 0 else ''}{abs(o)}"

    def _materialize_f(self, o: int, in_prologue: bool) -> str:
        """Emit the computation of ``F(o)`` into its stable register."""
        name = self._fname(o)
        parent = (o // self.w) * self.w
        have_parents = parent in self._f and (parent + self.w) in self._f
        if o % self.w == 0 or (in_prologue and not have_parents):
            # Aligned vectors come from the provider; in the prologue,
            # carried window entries whose concat parents are outside the
            # working set are prefetched unaligned (Algorithm 1's vp0).
            self.provider(o, in_prologue, name)
        else:
            d = o - parent
            if d % self.epl == 0:
                # lane-aligned: one cross-lane lane concat
                q = d // self.epl
                lanes = self.w // self.epl
                selectors = tuple(range(q, q + lanes))
                self.b.lane_concat(
                    self._f[parent], self._f[parent + self.w], selectors,
                    comment=f"{self.tag}: F({o}) lane concat", dst=name,
                )
            else:
                # float32 lanes: the even offset falls inside a lane;
                # build it through the shared pair-shift cache (lane
                # concats + vshufps), then pin the stable name.
                from ..vectorize.shifts import ShiftCache
                key = (in_prologue, parent)
                cache = self._pair_caches.get(key)
                if cache is None:
                    cache = ShiftCache(self.b, self._f[parent],
                                       self._f[parent + self.w])
                    self._pair_caches[key] = cache
                reg = cache.shift(d)
                self.b.mov_to(name, reg,
                              comment=f"{self.tag}: pin F({o})")
        self._f[o] = name
        return name

    # -- emission phases -------------------------------------------------------
    def emit_prologue(self) -> None:
        """Materialize the whole F window at the x-loop entry (aligned
        offsets first so concat parents exist)."""
        self.b.in_prologue()
        for o in sorted(self.f_need, key=lambda o: (o % self.w != 0, o)):
            self._materialize_f(o, in_prologue=True)
        self.b.in_body()

    def emit_fresh(self) -> None:
        """Per-iteration window refresh: fresh aligned vectors, then fresh
        lane concats (carried entries are refreshed by :meth:`emit_slide`)."""
        fresh = [o for o in self.f_need if o not in self._carried]
        for o in sorted(fresh, key=lambda o: (o % self.w != 0, o)):
            self._materialize_f(o, in_prologue=False)

    def emit_butterfly(self) -> Tuple[str, str]:
        """Deinterleave and accumulate; returns the swizzled result pair
        ``(R_E, R_O)``."""
        b, w = self.b, self.w
        if self.epl == 4:
            e_regs = {
                base: b.shufps(self._f[base], self._f[base + w], 0x88,
                               comment=f"{self.tag}: E({base})")
                for base in self.e_bases
            }
            o_regs = {
                base: b.shufps(self._f[base], self._f[base + w], 0xDD,
                               comment=f"{self.tag}: O({base})")
                for base in self.o_bases
            }
        else:
            e_regs = {
                base: b.shufpd(self._f[base], self._f[base + w], 0,
                               comment=f"{self.tag}: E({base})")
                for base in self.e_bases
            }
            o_regs = {
                base: b.shufpd(self._f[base], self._f[base + w], _odd_mask(w),
                               comment=f"{self.tag}: O({base})")
                for base in self.o_bases
            }
        even_terms: List[Tuple[float, str]] = []
        odd_terms: List[Tuple[float, str]] = []
        for d in sorted(self.taps):
            c = self.taps[d]
            if d % 2 == 0:
                even_terms.append((c, e_regs[d]))
                odd_terms.append((c, o_regs[d]))
            else:
                even_terms.append((c, o_regs[d - 1]))
                odd_terms.append((c, e_regs[d + 1]))
        r_e = b.weighted_sum(even_terms, comment=f"{self.tag}: R_E")
        r_o = b.weighted_sum(odd_terms, comment=f"{self.tag}: R_O")
        return r_e, r_o

    def emit_interleave(self, r_e: str, r_o: str) -> Tuple[str, str]:
        """Re-interleave the swizzled results into the two output vectors
        (Algorithm 1 line 16)."""
        return self.b.interleave(r_e, r_o,
                                 comment=f"{self.tag}: interleave")

    def emit_slide(self) -> None:
        """Slide the carried F window (ascending order keeps sources
        intact: targets are always 2W below their sources)."""
        for o in sorted(self._carried):
            self.b.mov_to(self._f[o], self._f[o + 2 * self.w],
                          comment=f"{self.tag}: slide F({o}) <- F({o + 2 * self.w})")


def required_halo(spec: StencilSpec, machine: MachineConfig) -> Tuple[int, ...]:
    """LBV's window spans aligned vectors up to W beyond the tap radius."""
    r = spec.radius
    w = machine.vector_elems
    return r[:-1] + (max(r[-1], 2 * w),)


def generate_lbv(
    spec: StencilSpec,
    machine: MachineConfig,
    grid: Grid,
    *,
    steps_fused: int = 1,
) -> VectorProgram:
    """Lower a 1-D stencil sweep with pure LBV (Algorithm 1 generalized to
    any radius ``<= W``).

    ``steps_fused`` only annotates the program when the caller already
    merged time steps into ``spec`` via ITM.
    """
    if spec.ndim != 1:
        raise VectorizeError(
            f"generate_lbv handles 1-D kernels; use the Jigsaw planner for "
            f"{spec.tag}"
        )
    width = machine.vector_elems
    block = 2 * width
    check_geometry(spec, grid, block=block,
                   halo_needed=required_halo(spec, machine))
    b = ProgramBuilder(width, elem_bytes=machine.element_bytes)
    taps = spec.axis_taps(0)

    def provider(offset: int, in_prologue: bool, dst: str) -> str:
        return b.load_to(
            dst,
            point_addr(grid, (0,), array=b.input_array, x_extra=offset),
            comment=f"load F({offset})",
            unaligned=offset % width != 0,
        )

    emitter = ButterflyEmitter(b, taps, provider, tag="lbv")
    emitter.emit_prologue()
    emitter.emit_fresh()
    r_e, r_o = emitter.emit_butterfly()
    out0, out1 = emitter.emit_interleave(r_e, r_o)
    b.store(out0, out_addr(grid), comment="store outputs [x, x+W)")
    b.store(out1, out_addr(grid, x_extra=width),
            comment="store outputs [x+W, x+2W)")
    emitter.emit_slide()

    return b.build(
        name=f"lbv/{spec.name}",
        scheme="jigsaw-lbv",
        loops=loop_nest(grid, block=block),
        vectors_per_iter=2,
        steps_per_iter=steps_fused,
        overlapped=True,
        tail_spec=spec,
        notes="butterfly-domain computation; 1 cross-lane per output vector",
    )
