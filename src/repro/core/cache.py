"""Content-addressed kernel compilation cache.

Every call to :func:`repro.core.jigsaw.compile` used to re-plan, re-run
the SDF decomposition, and re-generate the vector program from scratch.
At service scale (many kernels, many repeated geometries) that is pure
redundancy: the compile pipeline is a deterministic function of
``(StencilSpec, MachineConfig, plan options, grid geometry)``.

:class:`KernelCache` memoizes all three stages under content-addressed
keys (SHA-256 over the canonical JSON of every input field, so *any*
change to the spec, the machine, the plan options, or the grid geometry
produces a different key):

* **plans** — :class:`~repro.core.planner.JigsawPlan` objects (whose SDF
  ``terms`` are themselves memoized per plan);
* **programs** — generated :class:`~repro.vectorize.program.VectorProgram`
  streams, in a bounded in-memory LRU and, when a ``cache_dir`` is
  configured, as JSON artifacts on disk (the
  :mod:`repro.machine.serialize` format).  Corrupted or stale disk
  entries are discarded and recompiled, never trusted.

Concurrency: the cache is fully thread-safe, and concurrent misses for
the *same* key are collapsed through per-key in-flight locks — the first
caller compiles, every waiter reuses the result (a service and a tuner
sharing one cache no longer run the same compile twice).

Hit/miss/evict counters are exposed through :class:`CacheStats`.  For
disk-backed caches every writer persists its *own* session counters to a
``_stats-<writer>.json`` delta file under the atomic-rename discipline;
:func:`persisted_totals` merges the legacy ``_stats.json`` base with all
delta files, so concurrent processes sharing a cache directory never
overwrite each other's counts (the old base+session scheme was
last-writer-wins).  With observability enabled (:mod:`repro.obs`), cache
operations additionally record spans (``cache.plan``, ``cache.program``,
``cache.disk_load``, ``cache.disk_store``) and hit/miss latency
histograms.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from .. import faults, obs
from ..config import MachineConfig
from ..machine.serialize import (
    machine_to_dict,
    program_from_dict,
    program_to_dict,
    spec_to_dict,
    term_to_dict,
)
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from ..vectorize.driver import check_program_grid
from ..vectorize.program import VectorProgram
from .jigsaw import generate_jigsaw
from .planner import JigsawPlan, plan as build_plan

#: bump when the on-disk entry layout changes; older entries are discarded.
#: v2 added the program checksum (semantic corruption is now detectable,
#: not just structural corruption).
ENTRY_FORMAT = 2

#: corrupt/truncated/stale disk entries are moved here (under the cache
#: directory) instead of deleted, so operators can inspect what broke.
QUARANTINE_DIR = "_quarantine"

#: legacy/compacted cumulative counters, one file per cache directory.
STATS_FILE = "_stats.json"

#: per-writer session-counter delta files (see :func:`persisted_totals`).
STATS_DELTA_PREFIX = "_stats-"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/kernels``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "kernels")


# -- content fingerprints ------------------------------------------------------

def spec_fingerprint(spec: StencilSpec) -> Dict[str, Any]:
    """Canonical JSON-compatible content of a spec (every field)."""
    return spec_to_dict(spec)


def machine_fingerprint(machine: MachineConfig) -> Dict[str, Any]:
    """Canonical JSON-compatible content of a machine (every field,
    cache hierarchy included)."""
    return machine_to_dict(machine)


def digest(payload: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of ``payload`` — the key function
    shared by the kernel cache and the tuning database
    (:mod:`repro.tune.db`)."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


_digest = digest  # backwards-compatible private alias


def plan_key(spec: StencilSpec, machine: MachineConfig, *,
             time_fusion: Union[int, str] = "auto",
             use_sdf: bool = True, backend: str = "auto") -> str:
    """Content hash identifying one planning request.

    ``backend`` is an execution-time preference carried on the plan; it
    keys plan lookups (so a cached plan honours the requested backend)
    but never the program cache (generated programs are backend-neutral).
    """
    payload = {
        "kind": "plan",
        "spec": spec_fingerprint(spec),
        "machine": machine_fingerprint(machine),
        "time_fusion": time_fusion,
        "use_sdf": use_sdf,
    }
    if backend != "auto":  # default keys stay stable across versions
        payload["backend"] = backend
    return _digest(payload)


def program_key(plan: JigsawPlan, grid: Grid) -> str:
    """Content hash identifying one generated program: the plan inputs
    plus the grid geometry the addresses were lowered against."""
    return _digest({
        "kind": "program",
        "spec": spec_fingerprint(plan.spec),
        "machine": machine_fingerprint(plan.machine),
        "options": plan.cache_token(),
        "grid": {"shape": list(grid.shape), "halo": list(grid.halo)},
    })


# -- statistics ----------------------------------------------------------------

@dataclass
class CacheStats:
    """Counters for one :class:`KernelCache` (a live view, not a copy)."""

    hits: int = 0            #: program served from memory or disk
    misses: int = 0          #: program generated from scratch
    evictions: int = 0       #: programs dropped from the in-memory LRU
    plan_hits: int = 0
    plan_misses: int = 0
    disk_hits: int = 0       #: subset of ``hits`` loaded from cache_dir
    disk_writes: int = 0
    disk_discards: int = 0   #: corrupted/stale entries thrown away
    disk_quarantined: int = 0  #: subset of ``disk_discards`` moved aside
    disk_write_faults: int = 0  #: persists skipped by an injected fault

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "disk_discards": self.disk_discards,
            "disk_quarantined": self.disk_quarantined,
            "disk_write_faults": self.disk_write_faults,
        }

    def reset(self) -> None:
        for name in self.as_dict():
            setattr(self, name, 0)


def _is_stats_delta(name: str) -> bool:
    return name.startswith(STATS_DELTA_PREFIX) and name.endswith(".json")


def _is_stats_name(name: str) -> bool:
    return name == STATS_FILE or _is_stats_delta(name)


def persisted_totals(cache_dir: str) -> Dict[str, int]:
    """Cumulative counters for a cache directory: the ``_stats.json``
    base (legacy single-writer totals, kept as a compaction target) plus
    every per-writer ``_stats-*.json`` delta file.  Safe with live
    writers — each delta is rewritten atomically by its owning writer
    only, so the merge never observes torn or double-counted data."""
    sources = []
    base = read_json(os.path.join(cache_dir, STATS_FILE))
    if isinstance(base, dict):
        sources.append(base)
    try:
        names = sorted(os.listdir(cache_dir))
    except OSError:
        names = []
    for name in names:
        if _is_stats_delta(name):
            delta = read_json(os.path.join(cache_dir, name))
            if isinstance(delta, dict):
                sources.append(delta)
    totals: Dict[str, int] = {}
    for src in sources:
        for k, v in src.items():
            if isinstance(v, (int, float)):
                totals[k] = totals.get(k, 0) + int(v)
    return totals


class KernelCache:
    """Memoizes the Jigsaw compile pipeline (see module docstring).

    Thread-safe; safe to share across a :class:`~repro.service.KernelService`
    compile pool.  ``cache_dir=None`` keeps the cache purely in memory.
    """

    def __init__(self, cache_dir: Optional[str] = None, *,
                 max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.cache_dir = cache_dir
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._plans: "OrderedDict[str, JigsawPlan]" = OrderedDict()
        self._programs: "OrderedDict[str, VectorProgram]" = OrderedDict()
        #: per-key in-flight locks collapsing concurrent same-key misses
        self._inflight: Dict[str, threading.Lock] = {}
        #: this instance's stats delta file name (pid + random so writer
        #: identities never collide, even across pid reuse)
        self._writer_name = (
            f"{STATS_DELTA_PREFIX}{os.getpid()}-{uuid.uuid4().hex[:8]}.json")
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    # -- in-flight dedup -------------------------------------------------------
    def _key_lock(self, key: str) -> threading.Lock:
        with self._lock:
            lock = self._inflight.get(key)
            if lock is None:
                lock = self._inflight[key] = threading.Lock()
            return lock

    def _drop_key_lock(self, key: str) -> None:
        with self._lock:
            self._inflight.pop(key, None)

    # -- plans -----------------------------------------------------------------
    def plan(self, spec: StencilSpec, machine: MachineConfig, *,
             time_fusion: Union[int, str] = "auto",
             use_sdf: bool = True, backend: str = "auto") -> JigsawPlan:
        """Memoized :func:`repro.core.planner.plan`."""
        key = plan_key(spec, machine, time_fusion=time_fusion,
                       use_sdf=use_sdf, backend=backend)
        t0 = time.perf_counter()
        with obs.span("cache.plan", kernel=spec.name):
            cached = self._plan_hit(key)
            if cached is not None:
                self._observe("cache.plan.hit", t0)
                return cached
            lock = self._key_lock("plan:" + key)
            try:
                with lock:
                    cached = self._plan_hit(key)
                    if cached is not None:  # a waiter reuses the leader's plan
                        self._observe("cache.plan.hit", t0)
                        return cached
                    built = build_plan(spec, machine, time_fusion=time_fusion,
                                       use_sdf=use_sdf, backend=backend)
                    with self._lock:
                        self.stats.plan_misses += 1
                        self._plans[key] = built
                        while len(self._plans) > self.max_entries:
                            self._plans.popitem(last=False)
            finally:
                self._drop_key_lock("plan:" + key)
            self._observe("cache.plan.miss", t0)
            return built

    def _plan_hit(self, key: str) -> Optional[JigsawPlan]:
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self._plans.move_to_end(key)
                self.stats.plan_hits += 1
            return cached

    # -- programs --------------------------------------------------------------
    def program(self, plan: JigsawPlan, grid: Grid) -> VectorProgram:
        """The generated vector program for ``plan`` on ``grid``'s
        geometry — from memory, then disk, then a fresh compile.
        Concurrent misses for one key compile once (the in-flight lock);
        every waiter gets the leader's program and counts as a hit."""
        key = program_key(plan, grid)
        t0 = time.perf_counter()
        with obs.span("cache.program", kernel=plan.spec.name):
            cached = self._program_hit(key)
            if cached is not None:
                self._observe("cache.program.hit", t0)
                return cached
            lock = self._key_lock("prog:" + key)
            try:
                with lock:
                    cached = self._program_hit(key)
                    if cached is not None:
                        self._observe("cache.program.hit", t0)
                        return cached
                    loaded = self._load_entry(key, plan, grid)
                    if loaded is not None:
                        with self._lock:
                            self.stats.hits += 1
                            self.stats.disk_hits += 1
                            self._remember(key, loaded)
                        self._persist_stats()
                        self._observe("cache.program.hit", t0)
                        return loaded
                    faults.fault_point("compile.kernel")
                    program = generate_jigsaw(
                        plan.spec, plan.machine, grid,
                        time_fusion=plan.time_fusion,
                        terms=plan.terms,
                        scheme=plan.scheme,
                    )
                    with self._lock:
                        self.stats.misses += 1
                        self._remember(key, program)
                    self._store_entry(key, plan, grid, program)
                    self._persist_stats()
            finally:
                self._drop_key_lock("prog:" + key)
            self._observe("cache.program.miss", t0)
            return program

    def _program_hit(self, key: str) -> Optional[VectorProgram]:
        with self._lock:
            cached = self._programs.get(key)
            if cached is not None:
                self._programs.move_to_end(key)
                self.stats.hits += 1
            return cached

    def compile(self, spec: StencilSpec, machine: MachineConfig, grid: Grid,
                *, time_fusion: Union[int, str] = "auto",
                use_sdf: bool = True, backend: str = "auto"):
        """Cache-aware equivalent of :func:`repro.core.jigsaw.compile`."""
        from .kernel import CompiledKernel
        p = self.plan(spec, machine, time_fusion=time_fusion,
                      use_sdf=use_sdf, backend=backend)
        return CompiledKernel(plan=p, machine=machine, grid=grid, cache=self)

    def _remember(self, key: str, program: VectorProgram) -> None:
        self._programs[key] = program
        while len(self._programs) > self.max_entries:
            self._programs.popitem(last=False)
            self.stats.evictions += 1

    @staticmethod
    def _observe(event: str, t0: float) -> None:
        """Record one cache event (``cache.program.hit`` etc.) as a
        counter plus a latency histogram — only when observability is on."""
        if obs.enabled():
            plural = "es" if event.endswith("miss") else "s"
            obs.counter(event + plural).inc()
            obs.histogram(event + "_ms").observe(
                (time.perf_counter() - t0) * 1e3)

    # -- disk persistence ------------------------------------------------------
    def _entry_path(self, key: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"{key}.json")

    def _load_entry(self, key: str, plan: JigsawPlan,
                    grid: Grid) -> Optional[VectorProgram]:
        path = self._entry_path(key)
        if path is None or not os.path.exists(path):
            return None
        with obs.span("cache.disk_load", key=key[:12]):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    raw = fh.read()
            except OSError:
                return None  # a vanished/unreadable file is a plain miss
            try:
                raw = faults.fault_point("cache.disk_read", payload=raw)
                entry = json.loads(raw)
                if (not isinstance(entry, dict)
                        or entry.get("format") != ENTRY_FORMAT
                        or entry.get("key") != key):
                    raise ValueError("malformed or stale cache entry")
                if entry.get("checksum") != _digest(entry.get("program")):
                    raise ValueError("program checksum mismatch")
                program = program_from_dict(entry["program"])
                if (program.width != plan.machine.vector_elems
                        or program.elem_bytes != plan.machine.element_bytes):
                    raise ValueError("entry lowered for a different machine")
                check_program_grid(program, grid)
            except Exception:
                # Anything wrong with a disk entry — unreadable or
                # truncated JSON, a checksum mismatch, an unknown opcode,
                # a geometry mismatch, a simulated read fault — means
                # recompile, not crash.  The bad file is quarantined for
                # inspection instead of silently deleted.
                self._quarantine(path)
                return None
            return program

    def _quarantine(self, path: str) -> None:
        """Move a bad disk entry into ``_quarantine/`` (falling back to
        deletion when the move itself fails) and count the discard."""
        with self._lock:
            self.stats.disk_discards += 1
            self.stats.disk_quarantined += 1
        obs.counter("cache.disk_discards").inc()
        obs.counter("cache.disk_quarantined").inc()
        qdir = os.path.join(os.path.dirname(path), QUARANTINE_DIR)
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
        except OSError:
            try:
                os.remove(path)
            except OSError:
                pass

    def quarantined_entries(self) -> Tuple[int, int]:
        """``(count, bytes)`` of quarantined disk entries."""
        if self.cache_dir is None:
            return 0, 0
        qdir = os.path.join(self.cache_dir, QUARANTINE_DIR)
        if not os.path.isdir(qdir):
            return 0, 0
        count = size = 0
        for name in os.listdir(qdir):
            count += 1
            try:
                size += os.path.getsize(os.path.join(qdir, name))
            except OSError:
                pass
        return count, size

    def _store_entry(self, key: str, plan: JigsawPlan, grid: Grid,
                     program: VectorProgram) -> None:
        path = self._entry_path(key)
        if path is None:
            return
        program_dict = program_to_dict(program)
        entry = {
            "format": ENTRY_FORMAT,
            "key": key,
            "spec": spec_fingerprint(plan.spec),
            "machine": machine_fingerprint(plan.machine),
            "options": plan.cache_token(),
            "grid": {"shape": list(grid.shape), "halo": list(grid.halo)},
            "terms": [term_to_dict(t) for t in plan.terms],
            "program": program_dict,
            "checksum": _digest(program_dict),
        }
        text = json.dumps(entry, sort_keys=True)
        with obs.span("cache.disk_store", key=key[:12]):
            try:
                text = faults.fault_point("cache.disk_write", payload=text)
            except faults.FaultInjected:
                # a failed persist degrades to memory-only for this entry;
                # the next reader simply misses and recompiles
                with self._lock:
                    self.stats.disk_write_faults += 1
                obs.counter("cache.disk_write_faults").inc()
                return
            try:
                write_text_atomic(path, text)
            except OSError:
                return  # a read-only cache dir degrades to memory-only
        with self._lock:
            self.stats.disk_writes += 1

    def _persist_stats(self) -> None:
        """Write this writer's session counters to its own delta file.
        No read-modify-write, no base+session arithmetic: concurrent
        writers each own one file, and :func:`persisted_totals` merges."""
        if self.cache_dir is None:
            return
        with self._lock:
            session = self.stats.as_dict()
        try:
            _write_json_atomic(
                os.path.join(self.cache_dir, self._writer_name), session)
        except OSError:
            pass

    # -- maintenance -----------------------------------------------------------
    def clear(self, *, disk: bool = True) -> int:
        """Drop every cached object *and every counter*; returns the
        number of disk entries removed.  Persisted stats files (base and
        all writer deltas) are deleted too, so ``repro cache stats``
        after a clear reports a genuinely empty cache instead of
        cumulative counters from deleted state."""
        removed = 0
        with self._lock:
            self._plans.clear()
            self._programs.clear()
            self.stats.reset()
        if disk and self.cache_dir is not None:
            try:
                names = os.listdir(self.cache_dir)
            except OSError:
                names = []
            for name in names:
                path = os.path.join(self.cache_dir, name)
                if _is_stats_name(name):
                    try:
                        os.remove(path)
                    except OSError:
                        pass
                elif name.endswith(".json"):
                    try:
                        os.remove(path)
                        removed += 1
                    except OSError:
                        pass
            qdir = os.path.join(self.cache_dir, QUARANTINE_DIR)
            if os.path.isdir(qdir):
                for name in os.listdir(qdir):
                    try:
                        os.remove(os.path.join(qdir, name))
                    except OSError:
                        pass
        return removed

    def disk_entries(self) -> Tuple[int, int]:
        """``(count, bytes)`` of persisted program entries."""
        if self.cache_dir is None or not os.path.isdir(self.cache_dir):
            return 0, 0
        count = size = 0
        for name in os.listdir(self.cache_dir):
            if name.endswith(".json") and not _is_stats_name(name):
                count += 1
                try:
                    size += os.path.getsize(os.path.join(self.cache_dir, name))
                except OSError:
                    pass
        return count, size

    def stats_dict(self) -> Dict[str, int]:
        """Session counters plus disk occupancy, for the stats API/CLI.
        The counter snapshot is taken under the cache lock so it is
        internally consistent (no torn hit/miss pairs)."""
        with self._lock:
            out = dict(self.stats.as_dict())
            out["memory_programs"] = len(self._programs)
            out["memory_plans"] = len(self._plans)
        count, size = self.disk_entries()
        out["disk_entry_count"] = count
        out["disk_entry_bytes"] = size
        out["quarantine_entry_count"] = self.quarantined_entries()[0]
        return out


# -- module default ------------------------------------------------------------

_default: Optional[KernelCache] = None
_default_lock = threading.Lock()


def default_cache() -> KernelCache:
    """The process-wide in-memory cache :func:`repro.core.jigsaw.compile`
    uses when no explicit cache is given."""
    global _default
    with _default_lock:
        if _default is None:
            _default = KernelCache()
        return _default


def configure_default_cache(cache_dir: Optional[str] = None, *,
                            max_entries: int = 512) -> KernelCache:
    """Replace the process-wide default cache (e.g. to attach a disk
    directory); returns the new cache."""
    global _default
    with _default_lock:
        _default = KernelCache(cache_dir, max_entries=max_entries)
        return _default


# -- small io helpers (shared with repro.tune.db) ------------------------------

def read_json(path: str) -> Optional[Any]:
    """Parse a JSON file, returning ``None`` on any IO/parse failure
    (disk artifacts are never trusted to be well-formed)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


#: distinguishes temp files from concurrent writers within one process —
#: the pid alone is shared by every thread.
_tmp_counter = itertools.count()


def write_text_atomic(path: str, text: str) -> None:
    """Write ``text`` via a temp file + atomic rename, so a concurrent
    reader never observes a half-written entry.  The temp name includes
    the pid, the thread id, and a process-wide monotonic counter: two
    threads (or two renames racing in one thread) can never interleave
    writes into a shared temp file."""
    tmp = (f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
           f".{next(_tmp_counter)}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    finally:
        try:
            if os.path.exists(tmp):
                os.remove(tmp)
        except OSError:
            pass


def write_json_atomic(path: str, payload: Any) -> None:
    """:func:`write_text_atomic` over the sorted-key JSON of ``payload``."""
    write_text_atomic(path, json.dumps(payload, sort_keys=True))


_read_json = read_json       # backwards-compatible private aliases
_write_json_atomic = write_json_atomic
