"""The Jigsaw code generator and public compile API.

``generate_jigsaw`` lowers any supported stencil through the full pipeline
of the paper (Figure 5's flow):

1. **ITM** (optional): replace the stencil by its ``s``-step convolution
   power (:mod:`repro.core.itm`).
2. **SDF**: decompose the (rows × x-taps) matricization into rank-1 terms
   (:mod:`repro.core.sdf`).  Each term's vertical accumulation is
   conflict-free: aligned row vectors are combined with FMAs only.
3. **LBV**: each term's horizontal taps run in the butterfly domain
   (:mod:`repro.core.lbv`); all terms accumulate in swizzled space and a
   single final re-interleave feeds the two stores.

Row loads are shared across terms through a load cache, so the per-vector
load count equals the row count (amortized over the ``2W`` block and over
fused steps) — reproducing the paper's Table-2 "Jigsaw" row.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..config import MachineConfig
from ..errors import VectorizeError
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from ..vectorize.common import check_geometry, loop_nest, out_addr, point_addr
from ..vectorize.program import ProgramBuilder, VectorProgram
from .itm import merged_spec
from .lbv import ButterflyEmitter
from .sdf import Rank1Term, structured_terms

Outer = Tuple[int, ...]


def required_halo(spec: StencilSpec, machine: MachineConfig,
                  *, time_fusion: int = 1) -> Tuple[int, ...]:
    """Halo for the (possibly fused) kernel: fused radius on outer axes,
    a two-vector window on x."""
    fused = merged_spec(spec, time_fusion)
    r = fused.radius
    w = machine.vector_elems
    return r[:-1] + (max(r[-1], 2 * w),)


class _RowLoadCache:
    """Shares aligned row loads across SDF terms within one emission
    stream (prologue or body)."""

    def __init__(self, builder: ProgramBuilder, grid: Grid) -> None:
        self.b = builder
        self.grid = grid
        self._cache: Dict[Tuple[bool, Outer, int], str] = {}

    def get(self, outer: Outer, offset: int, in_prologue: bool) -> str:
        key = (in_prologue, outer, offset)
        if key not in self._cache:
            off0 = outer + (0,)
            self._cache[key] = self.b.load(
                point_addr(self.grid, off0, array=self.b.input_array,
                           x_extra=offset),
                comment=f"row {outer} load F({offset})",
                unaligned=offset % self.b.width != 0,
            )
        return self._cache[key]


def _term_provider(builder: ProgramBuilder, cache: _RowLoadCache,
                   term: Rank1Term, tag: str):
    """An :data:`~repro.core.lbv.AlignedProvider` computing the flattened
    vector ``G(o) = Σ_outer u[outer] · a[·+outer, x+o]`` (Algorithm 2's
    ``Flattening`` — FMAs only, no shuffles)."""

    def provider(offset: int, in_prologue: bool, dst: str) -> str:
        rows = sorted(term.u)
        if len(rows) == 1 and term.u[rows[0]] == 1.0:
            # single unit row: the load itself is G.
            reg = cache.get(rows[0], offset, in_prologue)
            return builder.mov_to(dst, reg, comment=f"{tag}: pin G({offset})")
        acc: Optional[str] = None
        for i, outer in enumerate(rows):
            reg = cache.get(outer, offset, in_prologue)
            c = builder.broadcast(term.u[outer])
            last = i == len(rows) - 1
            if acc is None:
                acc = builder.mul(c, reg, comment=f"{tag}: flatten G({offset})",
                                  dst=dst if last else None)
            else:
                acc = builder.fma(c, reg, acc,
                                  comment=f"{tag}: flatten G({offset})",
                                  dst=dst if last else None)
        return acc

    return provider


class _DirectWindow:
    """Loop-carried aligned ``G`` registers for a shuffle-free term (all
    taps ``≡ 0 (mod W)``, in practice the residualized ``dx = 0`` column).

    Its contribution lands *after* the interleave with plain FMAs: the
    output vector at ``[x, x+W)`` just adds ``c · G(dx)`` for each aligned
    tap — zero shuffles (the payoff of residualizing the centre column,
    §3.2's "only a few rank-1 matrices" observation taken to the ISA).
    The window extends to ``2W`` so its fresh offsets coincide with the
    butterfly terms' row loads and stay shared through the load cache.
    """

    def __init__(self, builder: ProgramBuilder, provider, taps, width: int,
                 tag: str) -> None:
        self.b = builder
        self.provider = provider
        self.taps = dict(taps)
        self.w = width
        self.tag = tag
        offs = set()
        for dx in self.taps:
            offs.add(dx)
            offs.add(dx + width)
        hi = max(offs)
        offs.update(range(min(offs), hi + width + 1, width))
        self.offsets = sorted(offs)
        self._carried = [o for o in self.offsets
                         if (o + 2 * width) in self.offsets]
        self._g = {o: f"{tag}_G{'m' if o < 0 else ''}{abs(o)}"
                   for o in self.offsets}

    def emit_prologue(self) -> None:
        self.b.in_prologue()
        for o in self.offsets:
            self.provider(o, True, self._g[o])
        self.b.in_body()

    def emit_fresh(self) -> None:
        for o in self.offsets:
            if o not in self._carried:
                self.provider(o, False, self._g[o])

    def contributions(self) -> List[Tuple[float, str, str]]:
        """(coeff, reg_for_out0, reg_for_out1) per tap."""
        return [
            (c, self._g[dx], self._g[dx + self.w])
            for dx, c in sorted(self.taps.items())
        ]

    def emit_slide(self) -> None:
        for o in self._carried:
            self.b.mov_to(self._g[o], self._g[o + 2 * self.w],
                          comment=f"{self.tag}: slide G({o})")


def generate_jigsaw(
    spec: StencilSpec,
    machine: MachineConfig,
    grid: Grid,
    *,
    time_fusion: int = 1,
    terms: Optional[Sequence[Rank1Term]] = None,
    scheme: Optional[str] = None,
) -> VectorProgram:
    """Lower one (possibly ITM-fused) Jigsaw sweep.

    ``terms`` overrides the SDF decomposition — pass
    :func:`repro.core.sdf.rows_as_terms` of the fused spec for the
    LBV-without-SDF ablation.  ``time_fusion=s`` advances ``s`` time steps
    per sweep.
    """
    with obs.span("codegen", kernel=spec.name, time_fusion=time_fusion):
        return _generate_jigsaw(spec, machine, grid,
                                time_fusion=time_fusion, terms=terms,
                                scheme=scheme)


def _generate_jigsaw(
    spec: StencilSpec,
    machine: MachineConfig,
    grid: Grid,
    *,
    time_fusion: int = 1,
    terms: Optional[Sequence[Rank1Term]] = None,
    scheme: Optional[str] = None,
) -> VectorProgram:
    width = machine.vector_elems
    block = 2 * width
    fused = merged_spec(spec, time_fusion)
    if terms is None:
        with obs.span("sdf", kernel=spec.name):
            terms = structured_terms(fused)
    check_geometry(spec, grid, block=block,
                   halo_needed=required_halo(spec, machine,
                                             time_fusion=time_fusion))
    b = ProgramBuilder(width, elem_bytes=machine.element_bytes)
    cache = _RowLoadCache(b, grid)

    emitters: List[ButterflyEmitter] = []
    directs: List[_DirectWindow] = []
    for i, term in enumerate(terms):
        provider = _term_provider(b, cache, term, tag=f"t{i}")
        if all(dx % width == 0 for dx in term.v):
            directs.append(_DirectWindow(b, provider, term.v, width,
                                         tag=f"t{i}"))
        else:
            emitters.append(ButterflyEmitter(b, term.v, provider, tag=f"t{i}"))

    for em in emitters:
        em.emit_prologue()
    for dw in directs:
        dw.emit_prologue()

    r_e_total: Optional[str] = None
    r_o_total: Optional[str] = None
    for em in emitters:
        em.emit_fresh()
        r_e, r_o = em.emit_butterfly()
        if r_e_total is None:
            r_e_total, r_o_total = r_e, r_o
        else:
            r_e_total = b.add(r_e_total, r_e, comment="accumulate term R_E")
            r_o_total = b.add(r_o_total, r_o, comment="accumulate term R_O")

    out0: Optional[str] = None
    out1: Optional[str] = None
    if emitters:
        out0, out1 = emitters[0].emit_interleave(r_e_total, r_o_total)
    for dw in directs:
        dw.emit_fresh()
        for c, g0, g1 in dw.contributions():
            if out0 is None:
                cr = b.broadcast(c)
                out0 = b.mul(cr, g0, comment="direct term out0")
                out1 = b.mul(cr, g1, comment="direct term out1")
            elif c == 1.0:
                out0 = b.add(out0, g0, comment="direct term out0")
                out1 = b.add(out1, g1, comment="direct term out1")
            else:
                cr = b.broadcast(c)
                out0 = b.fma(cr, g0, out0, comment="direct term out0")
                out1 = b.fma(cr, g1, out1, comment="direct term out1")
    if out0 is None:
        raise VectorizeError(f"{spec.name}: no terms produced any output")
    b.store(out0, out_addr(grid), comment="store outputs [x, x+W)")
    b.store(out1, out_addr(grid, x_extra=width),
            comment="store outputs [x+W, x+2W)")
    for em in emitters:
        em.emit_slide()
    for dw in directs:
        dw.emit_slide()

    label = scheme or ("t-jigsaw" if time_fusion > 1 else "jigsaw")
    return b.build(
        name=f"{label}/{spec.name}",
        scheme=label,
        loops=loop_nest(grid, block=block),
        vectors_per_iter=2,
        steps_per_iter=time_fusion,
        overlapped=True,
        tail_spec=fused,
        notes=(
            f"SDF terms={len(terms)}, fused steps={time_fusion}, "
            f"fused kernel {fused.tag}"
        ),
    )


def compile(
    spec: StencilSpec,
    machine: MachineConfig,
    grid: Grid,
    *,
    time_fusion: int | str = "auto",
    use_sdf: bool = True,
    cache=None,
    backend: str = "auto",
    tuned=None,
):
    """Compile ``spec`` into a ready-to-run :class:`~repro.core.kernel.CompiledKernel`
    (planner-selected fusion depth when ``time_fusion="auto"``).

    Planning, SDF decomposition, and program generation are memoized
    through a :class:`~repro.core.cache.KernelCache`: pass one explicitly
    via ``cache``, or leave it ``None`` to share the process-wide default
    cache.  ``cache=False`` disables memoization entirely.

    ``backend`` selects the SIMD-machine execution engine the kernel's
    :meth:`~repro.core.kernel.CompiledKernel.run` uses (``"auto"`` =
    batched tensor execution with automatic interpreter fallback).

    ``tuned`` applies an autotuned configuration (e.g. a
    :class:`repro.tune.TuningDB` winner) over the static defaults: its
    ``time_fusion``/``use_sdf``/plan backend replace the corresponding
    keywords, so runs after a ``repro tune`` transparently pick up the
    stored plan.
    """
    # local imports: planner/cache import this module
    from .cache import default_cache
    from .kernel import CompiledKernel
    from .planner import plan
    if tuned is not None:
        time_fusion = getattr(tuned, "time_fusion", time_fusion)
        use_sdf = getattr(tuned, "use_sdf", use_sdf)
        backend = getattr(tuned, "plan_backend", None) or backend
    if cache is None:
        cache = default_cache()
    if cache is False:
        p = plan(spec, machine, time_fusion=time_fusion, use_sdf=use_sdf,
                 backend=backend)
        return CompiledKernel(plan=p, machine=machine, grid=grid)
    return cache.compile(spec, machine, grid, time_fusion=time_fusion,
                         use_sdf=use_sdf, backend=backend)
