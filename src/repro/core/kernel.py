"""Compiled Jigsaw kernels — the user-facing execution object.

A :class:`CompiledKernel` bundles a :class:`~repro.core.planner.JigsawPlan`
with a concrete grid geometry and exposes three things:

* :meth:`run` — cycle-exact execution on the SIMD machine interpreter
  (small grids; this is what the test suite validates against the
  reference);
* :meth:`run_numpy` — a fast numpy path computing the *same algorithm*
  (ITM-fused spec, per-term flatten-then-1D passes), usable at realistic
  problem sizes.  The low-rank structure makes this genuinely cheaper than
  a dense tap-by-tap sweep;
* :meth:`trace` / :meth:`kernel_cost` / :meth:`estimate` — the analytic
  accounting that feeds the paper's tables and figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .. import obs
from ..config import MachineConfig
from ..errors import VectorizeError
from ..machine.perfmodel import KernelCost, PerformanceModel, PerfResult
from ..machine.trace import TraceCounter
from ..stencils.boundary import fill_halo
from ..stencils.grid import Grid
from ..vectorize.driver import measure_trace, run_program
from ..vectorize.program import VectorProgram
from .jigsaw import generate_jigsaw, required_halo
from .planner import JigsawPlan


@dataclass
class CompiledKernel:
    plan: JigsawPlan
    machine: MachineConfig
    grid: Grid  #: geometry template (shape + halo) programs are bound to
    #: optional :class:`~repro.core.cache.KernelCache` the lowering is
    #: memoized through (kernels from ``jigsaw.compile`` share the process
    #: default cache)
    cache: Optional[object] = None
    #: SIMD-machine execution backend for :meth:`run` / :meth:`trace`
    #: (one of :data:`repro.vectorize.driver.EXEC_BACKENDS`); defaults to
    #: the plan's preference (normally ``"auto"`` = batched tensor
    #: execution with automatic interpreter fallback)
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        self._program: Optional[VectorProgram] = None

    # -- lowering ----------------------------------------------------------------
    @property
    def program(self) -> VectorProgram:
        if self._program is None:
            if self.cache is not None:
                self._program = self.cache.program(self.plan, self.grid)
            else:
                self._program = generate_jigsaw(
                    self.plan.spec,
                    self.machine,
                    self.grid,
                    time_fusion=self.plan.time_fusion,
                    terms=self.plan.terms,
                    scheme=self.plan.scheme,
                )
        return self._program

    def halo(self) -> tuple:
        return required_halo(self.plan.spec, self.machine,
                             time_fusion=self.plan.time_fusion)

    def grid_like(self, shape, *, seed: Optional[int] = None) -> Grid:
        """A grid with the halo this kernel needs."""
        if seed is None:
            return Grid(shape, self.halo())
        return Grid.random(shape, self.halo(), seed=seed)

    def exec_backend(self) -> str:
        """The resolved SIMD-machine backend: the kernel's own override,
        else the plan's preference, else ``"auto"``."""
        if self.backend is not None:
            return self.backend
        return getattr(self.plan, "backend", None) or "auto"

    # -- execution ----------------------------------------------------------------
    def run(self, grid: Grid, steps: int, *, boundary: str = "periodic",
            value: float = 0.0, backend: Optional[str] = None) -> Grid:
        """Cycle-exact execution on the SIMD machine (batched tensor
        backend by default, with automatic interpreter fallback — both
        produce bitwise-identical grids)."""
        self._check_grid(grid)
        return run_program(self.program, grid, steps, boundary=boundary,
                           value=value,
                           backend=backend or self.exec_backend())

    def run_sharded(self, grid: Grid, steps: int, *,
                    shards: int,
                    temporal_block: Optional[int] = None,
                    executor: str = "process",
                    boundary: str = "periodic", value: float = 0.0,
                    backend: Optional[str] = None,
                    workers: Optional[int] = None,
                    retries: int = 2, pool_restarts: int = 2) -> Grid:
        """Sharded execution: the outer axis is partitioned into ``shards``
        slabs, each advanced by this kernel's compiled pipeline in its own
        worker, with deep-halo exchange every ``temporal_block`` sub-steps
        (default: the plan's fused depth, i.e. one exchange per fused
        sweep).  Bitwise identical to :meth:`run` on the interior."""
        from ..shard.runner import run_sharded
        from ..shard.worker import KernelRecipe
        if grid.shape != self.grid.shape:
            raise VectorizeError(
                f"grid shape {grid.shape} does not match the compiled "
                f"shape {self.grid.shape}")
        recipe = KernelRecipe(
            spec=self.plan.spec, machine=self.machine,
            time_fusion=self.plan.time_fusion, use_sdf=self.plan.use_sdf,
            exec_backend=backend or self.exec_backend())
        return run_sharded(
            self.plan.spec, grid, steps, shards=shards,
            temporal_block=(temporal_block if temporal_block is not None
                            else self.plan.time_fusion),
            executor=executor, workers=workers, boundary=boundary,
            value=value, recipe=recipe,
            exec_backend=backend or self.exec_backend(),
            retries=retries, pool_restarts=pool_restarts)

    def run_numpy(self, grid: Grid, steps: int, *, boundary: str = "periodic",
                  value: float = 0.0) -> Grid:
        """Fast numpy execution of the same (fused, flattened) algorithm."""
        s = self.plan.time_fusion
        if steps % s:
            raise VectorizeError(
                f"steps={steps} not a multiple of fused depth {s}"
            )
        if s > 1 and boundary != "periodic":
            raise VectorizeError(
                "temporally merged kernels are exact only with periodic boundaries"
            )
        fused = self.plan.fused_spec
        terms = self.plan.terms
        rx = max(max(abs(d) for d in t.v) for t in terms)
        cur = grid.copy()
        nxt = grid.like()
        ndim = grid.ndim
        hx = grid.halo[-1]
        nx = grid.shape[-1]
        observing = obs.enabled()
        with obs.span("execute", kernel=self.plan.spec.name,
                      backend="numpy", steps=steps) as espan:
            for _ in range(steps // s):
                t0 = time.perf_counter() if observing else 0.0
                fill_halo(cur, boundary, value=value)
                out = nxt.interior
                out.fill(0.0)
                for term in terms:
                    g = self._flatten_numpy(cur, term, rx)
                    for dx, c in term.v.items():
                        lo = rx + dx
                        np.add(out, c * g[..., lo:lo + nx], out=out)
                cur, nxt = nxt, cur
                if observing:
                    obs.counter("exec.sweeps").inc()
                    obs.histogram("exec.sweep_ms").observe(
                        (time.perf_counter() - t0) * 1e3)
            if observing:
                espan.set(engine="numpy")
        return cur

    def _flatten_numpy(self, grid: Grid, term, rx: int) -> np.ndarray:
        """Algorithm 2's Flattening on numpy views: the x axis keeps an
        ``rx`` margin so the subsequent 1-D pass can shift within it."""
        hx = grid.halo[-1]
        nx = grid.shape[-1]
        shape = grid.shape[:-1] + (nx + 2 * rx,)
        g = np.zeros(shape)
        for outer, c in term.u.items():
            sl = []
            for axis in range(grid.ndim - 1):
                h, n = grid.halo[axis], grid.shape[axis]
                o = outer[axis]
                sl.append(slice(h + o, h + o + n))
            sl.append(slice(hx - rx, hx - rx + nx + 2 * rx))
            np.add(g, c * grid.data[tuple(sl)], out=g)
        return g

    # -- accounting ----------------------------------------------------------------
    def trace(self, grid: Optional[Grid] = None) -> TraceCounter:
        g = grid if grid is not None else self.grid
        self._check_grid(g)
        return measure_trace(self.program, g, backend=self.exec_backend())

    def per_vector_mix(self) -> Dict[str, float]:
        return self.program.per_vector_mix()

    def kernel_cost(self) -> KernelCost:
        return PerformanceModel(self.machine).kernel_cost(self.program)

    def estimate(self, *, points: int, steps: int, **kwargs) -> PerfResult:
        model = PerformanceModel(self.machine)
        return model.estimate(self.kernel_cost(), points=points, steps=steps,
                              **kwargs)

    # -- internals ----------------------------------------------------------------
    def _check_grid(self, grid: Grid) -> None:
        if grid.shape != self.grid.shape or grid.halo != self.grid.halo:
            raise VectorizeError(
                f"grid geometry {grid.shape}/{grid.halo} does not match the "
                f"compiled geometry {self.grid.shape}/{self.grid.halo}"
            )
