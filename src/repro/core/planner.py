"""The Jigsaw planner: chooses ITM depth and the SDF decomposition.

Encodes the paper's deployment decisions (§4.3-§4.4):

* 1-D kernels take the deepest feasible fusion (the paper ships a 4-step
  ITM for Heat-1D, Figure 6 / "T-4 Jigsaw");
* 2-D kernels and 3-D stars take 2-step fusion when the fused x-radius
  still fits the butterfly window;
* 3-D boxes stay unfused — ITM's dependency growth exceeds the register
  file ("ITM introduces too many data dependencies in 3D", §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from .. import obs
from ..config import MachineConfig
from ..errors import PlanError
from ..stencils.spec import StencilSpec
from ..vectorize.driver import EXEC_BACKENDS
from .itm import fusable, merged_spec
from .sdf import Rank1Term, rows_as_terms, structured_terms


@dataclass(frozen=True)
class JigsawPlan:
    """Everything the generator needs for one kernel on one machine."""

    spec: StencilSpec
    machine: MachineConfig
    time_fusion: int
    use_sdf: bool = True
    #: preferred SIMD-machine execution backend ("auto" | "codegen" |
    #: "batch" | "interp").  An execution-time preference only: it does not change
    #: the generated program, so it participates in plan lookup keys but
    #: never in :meth:`cache_token` (program cache entries are shared
    #: across backends).
    backend: str = field(default="auto", compare=False)
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.time_fusion < 1:
            raise PlanError("time_fusion must be >= 1")

    @property
    def fused_spec(self) -> StencilSpec:
        return merged_spec(self.spec, self.time_fusion)

    @property
    def terms(self) -> List[Rank1Term]:
        # The decomposition (an SVD for SDF plans) is deterministic in the
        # plan, so compute it once per plan object; the kernel cache shares
        # plan objects across compiles, making this a process-wide memo.
        cached = getattr(self, "_terms_memo", None)
        if cached is None:
            with obs.span("sdf", kernel=self.spec.name,
                          use_sdf=self.use_sdf) as s:
                fused = self.fused_spec
                cached = (structured_terms(fused) if self.use_sdf
                          else rows_as_terms(fused))
                s.set(terms=len(cached))
            object.__setattr__(self, "_terms_memo", cached)
        return cached

    def cache_token(self) -> dict:
        """The plan options that participate in kernel-cache keys (the
        spec and machine are fingerprinted separately)."""
        return {"time_fusion": self.time_fusion, "use_sdf": self.use_sdf}

    @property
    def scheme(self) -> str:
        name = "jigsaw" if self.use_sdf else "jigsaw-lbv-only"
        return f"t-{name}" if self.time_fusion > 1 else name

    def describe(self) -> str:
        fused = self.fused_spec
        return (
            f"{self.spec.name}: fuse {self.time_fusion} step(s) -> "
            f"{fused.tag}, {'SDF' if self.use_sdf else 'per-row'} terms="
            f"{len(self.terms)}"
        )


def auto_fusion(spec: StencilSpec, machine: MachineConfig) -> int:
    """The paper's fusion-depth policy (see module docstring)."""
    width = machine.vector_elems
    if spec.ndim == 1:
        # standard T-Jigsaw uses 2-step fusion; the 4-step variant is the
        # separately-reported "T-4 Jigsaw" (§4.4, Figure 6)
        return 2 if fusable(spec, 2, width=width) else 1
    if spec.ndim == 3 and spec.is_box:
        return 1
    return 2 if fusable(spec, 2, width=width) else 1


def plan(
    spec: StencilSpec,
    machine: MachineConfig,
    *,
    time_fusion: Union[int, str] = "auto",
    use_sdf: bool = True,
    backend: str = "auto",
    tuned=None,
) -> JigsawPlan:
    """Build a :class:`JigsawPlan`, validating feasibility.

    ``tuned`` overrides the static policy with an autotuned
    configuration — any object carrying ``time_fusion``/``use_sdf`` (a
    :class:`repro.tune.TuneConfig`, a :class:`repro.tune.TuningRecord`'s
    ``config``) takes precedence over the corresponding keyword, so a
    stored tuning-database winner is applied transparently.
    """
    if tuned is not None:
        time_fusion = getattr(tuned, "time_fusion", time_fusion)
        use_sdf = getattr(tuned, "use_sdf", use_sdf)
        backend = getattr(tuned, "plan_backend", None) or backend
    with obs.span("plan", kernel=spec.name, time_fusion=time_fusion,
                  use_sdf=use_sdf):
        return _plan_checked(spec, machine, time_fusion=time_fusion,
                             use_sdf=use_sdf, backend=backend)


def _plan_checked(
    spec: StencilSpec,
    machine: MachineConfig,
    *,
    time_fusion: Union[int, str],
    use_sdf: bool,
    backend: str,
) -> JigsawPlan:
    if backend not in EXEC_BACKENDS:
        raise PlanError(
            f"unknown execution backend {backend!r}; "
            f"known: {EXEC_BACKENDS}"
        )
    if time_fusion == "auto":
        depth = auto_fusion(spec, machine)
    else:
        depth = int(time_fusion)
        if depth < 1:
            raise PlanError(f"time_fusion must be >= 1, got {depth}")
        if not fusable(spec, depth, width=machine.vector_elems):
            raise PlanError(
                f"{spec.name}: {depth}-step fusion gives x-radius "
                f"{spec.radius[-1] * depth} > W={machine.vector_elems}; "
                f"the butterfly window cannot cover it"
            )
    return JigsawPlan(
        spec=spec,
        machine=machine,
        time_fusion=depth,
        use_sdf=use_sdf,
        backend=backend,
        notes=f"auto={time_fusion == 'auto'}",
    )


def ablation_ladder(
    spec: StencilSpec,
    machine: MachineConfig,
) -> Sequence[Tuple[str, Optional[JigsawPlan]]]:
    """The Figure-7 optimization ladder: Tessellating-Tiling base (no plan
    — the Reorg in-core scheme), +LBV, +SDF, +ITM."""
    steps: List[Tuple[str, Optional[JigsawPlan]]] = [("base", None)]
    steps.append(("+LBV", plan(spec, machine, time_fusion=1, use_sdf=False)))
    steps.append(("+SDF", plan(spec, machine, time_fusion=1, use_sdf=True)))
    depth = auto_fusion(spec, machine)
    if depth > 1:
        steps.append(("+ITM", plan(spec, machine, time_fusion=depth,
                                   use_sdf=True)))
    else:
        steps.append(("+ITM", plan(spec, machine, time_fusion=1,
                                   use_sdf=True)))
    return steps
