"""Iteration-based Temporal Merging (ITM) — §3.3.

A Jacobi sweep is a linear convolution of the grid with the coefficient
array, so ``s`` consecutive sweeps equal one sweep with the coefficient
array's ``s``-th convolution power (the paper's Figure 5/6 coefficient
unfolding: the 2D5P stencil squared becomes the 13-point stencil with
``β``/``γ`` weights; the 1D3P stencil cubed becomes the 7-point stencil
with the ``β_i`` polynomial weights of Figure 6).

The fused stencil has radius ``s·r`` and keeps the coefficient symmetry of
the base stencil (the convolution of centro-symmetric arrays is
centro-symmetric), so SDF applies unchanged afterwards — exactly the ITM →
SDF pipeline of Figure 5.

Exactness caveat: the identity holds on an unbounded (or periodic) domain;
with Dirichlet ghosts the fused operator differs near boundaries, so the
driver restricts fused programs to periodic halos (DESIGN.md §7).
"""

from __future__ import annotations

import numpy as np

from ..errors import PlanError
from ..stencils.spec import StencilSpec, from_array


def convolution_power(coeffs: np.ndarray, s: int) -> np.ndarray:
    """The ``s``-th full convolution power of a dense coefficient array."""
    if s < 1:
        raise PlanError(f"fusion depth must be >= 1, got {s}")
    result = coeffs
    for _ in range(s - 1):
        result = _convolve_full(result, coeffs)
    return result


def _convolve_full(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense full ND convolution (direct sum; kernels are tiny)."""
    out_shape = tuple(sa + sb - 1 for sa, sb in zip(a.shape, b.shape))
    out = np.zeros(out_shape)
    for idx in np.ndindex(*b.shape):
        sl = tuple(slice(i, i + sa) for i, sa in zip(idx, a.shape))
        out[sl] += a * b[idx]
    return out


def merged_spec(spec: StencilSpec, steps: int, *, tol: float = 0.0) -> StencilSpec:
    """The stencil computing ``steps`` Jacobi sweeps of ``spec`` at once.

    ``steps=1`` returns ``spec`` unchanged.  Structural zeros produced by
    the convolution (e.g. the corner holes of a fused star) are kept when
    their dropping would change semantics — with ``tol=0`` only exact
    zeros are dropped.
    """
    if steps == 1:
        return spec
    merged = convolution_power(spec.coefficient_array(), steps)
    return from_array(
        merged,
        name=f"{spec.name}-itm{steps}",
        tol=tol,
    )


def fusable(spec: StencilSpec, steps: int, *, width: int,
            max_radius: int | None = None) -> bool:
    """Whether ``steps``-deep fusion stays within the LBV butterfly's
    x-radius bound (``s·r_x <= W`` by default).

    This is the feasibility check behind §4.3's observation that deep ITM
    stops paying off for 3-D boxes: the fused dependency set outgrows the
    register file.
    """
    if steps < 1:
        return False
    limit = width if max_radius is None else max_radius
    return spec.radius[-1] * steps <= limit


def traffic_reduction(spec: StencilSpec, steps: int) -> float:
    """Per-step load/store amortization factor of ``steps``-deep fusion
    (the §3.3 "1/3 of loads for 3-step 1D3P" argument): fused sweeps touch
    the grid once per ``steps`` steps."""
    if steps < 1:
        raise PlanError(f"fusion depth must be >= 1, got {steps}")
    return 1.0 / steps


def arithmetic_growth(spec: StencilSpec, steps: int) -> float:
    """Ratio of fused-stencil points to ``steps`` applications of the base
    stencil — the compute-side cost ITM pays for its traffic savings."""
    fused = merged_spec(spec, steps)
    return fused.npoints / (spec.npoints * steps)
