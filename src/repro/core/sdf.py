"""SVD-based Dimension Flattening (SDF) — §3.2.

The stencil's coefficients are matricized as ``M[outer, dx]`` where
``outer`` ranges over the non-unit-stride offsets (the paper's vertical
axis; for 3-D kernels the ``(z, y)`` pairs) and ``dx`` over the x-taps.
For the 2-D case this *is* the paper's coefficient matrix ``W``.

``numpy.linalg.svd`` decomposes ``M = U Σ Vᵀ``; each retained singular
triple yields a :class:`Rank1Term` ``(u_i, v_i)`` with σ folded into
``u_i`` (Equations 1-2).  A term is computed as:

1. **Flattening** (Algorithm 2 ``Flattening``): the conflict-free vertical
   accumulation ``G(o) = Σ_outer u[outer] · a[p + outer, x + o]`` over
   *aligned* vectors — same column ⇒ same register position ⇒ zero
   shuffles.  This turns the N-D stencil into a 1-D stencil.
2. **LBV** on ``G`` with taps ``v`` (§3.1).

Because the paper's kernels have symmetric coefficients, ``M`` is low rank
(box-2D9P: rank 2 = the all-ones ring + centre point of Figure 4;
box-3D27P: rank 1 — fully separable; star kernels: rank 2), which is what
§3.2 "Coefficient Symmetry" exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import PlanError
from ..stencils.spec import StencilSpec, iter_row_offsets

Outer = Tuple[int, ...]

#: singular values below ``RANK_TOL * sigma_max`` are treated as zero.
RANK_TOL = 1e-12


@dataclass(frozen=True)
class Rank1Term:
    """One rank-1 component ``u ⊗ v`` of the flattening decomposition.

    ``u`` maps outer offsets to vertical weights (σ folded in); ``v`` maps
    x-offsets to the 1-D taps LBV consumes.  Entries with negligible weight
    are dropped.
    """

    u: Dict[Outer, float]
    v: Dict[int, float]
    sigma: float

    @property
    def rows(self) -> int:
        return len(self.u)

    @property
    def taps(self) -> int:
        return len(self.v)

    def dense(self, outers: Sequence[Outer], dxs: Sequence[int]) -> np.ndarray:
        m = np.zeros((len(outers), len(dxs)))
        for i, o in enumerate(outers):
            for j, d in enumerate(dxs):
                m[i, j] = self.u.get(o, 0.0) * self.v.get(d, 0.0)
        return m


def matricize(spec: StencilSpec) -> Tuple[List[Outer], List[int], np.ndarray]:
    """``(outers, dxs, M)`` with ``M[i, j]`` the coefficient of offset
    ``outers[i] + (dxs[j],)`` (zero where the stencil has no point)."""
    rows = list(iter_row_offsets(spec))
    outers = [outer for outer, _ in rows]
    dxs = sorted({dx for _, taps in rows for dx in taps})
    m = np.zeros((len(outers), len(dxs)))
    col = {d: j for j, d in enumerate(dxs)}
    for i, (_, taps) in enumerate(rows):
        for dx, c in taps.items():
            m[i, col[dx]] = c
    return outers, dxs, m


def flatten_terms(
    spec: StencilSpec,
    *,
    tol: float = RANK_TOL,
    max_terms: int | None = None,
) -> List[Rank1Term]:
    """The SDF decomposition of ``spec`` (Equations 1-2).

    Raises :class:`~repro.errors.PlanError` if truncation to ``max_terms``
    would change the stencil (SDF is exact; it is a reorganization, not an
    approximation).
    """
    outers, dxs, m = matricize(spec)
    u_mat, sigmas, vt = np.linalg.svd(m, full_matrices=False)
    if sigmas.size == 0 or sigmas[0] == 0.0:
        raise PlanError(f"{spec.name}: coefficient matrix is zero")
    rank = int(np.sum(sigmas > tol * sigmas[0]))
    if max_terms is not None and rank > max_terms:
        raise PlanError(
            f"{spec.name}: rank {rank} exceeds max_terms={max_terms}; "
            f"SDF must keep every non-negligible singular value"
        )
    terms: List[Rank1Term] = []
    for i in range(rank):
        u_vec = u_mat[:, i] * sigmas[i]
        v_vec = vt[i, :]
        # Drop numerically-zero entries so star kernels produce sparse rows.
        entry_tol = tol * max(np.max(np.abs(u_vec)), np.max(np.abs(v_vec)))
        u = {o: float(c) for o, c in zip(outers, u_vec) if abs(c) > entry_tol}
        v = {d: float(c) for d, c in zip(dxs, v_vec) if abs(c) > entry_tol}
        if not u or not v:
            continue
        terms.append(Rank1Term(u=u, v=v, sigma=float(sigmas[i])))
    if not terms:
        raise PlanError(f"{spec.name}: SVD produced no usable terms")
    return terms


def rows_as_terms(spec: StencilSpec) -> List[Rank1Term]:
    """The *unflattened* decomposition: one term per stencil row
    (``u = e_row``).  This is what "LBV without SDF" means in the paper's
    Figure-7 ablation — every row runs its own butterfly, paying the
    vector-dimension conflicts SDF would remove."""
    terms = []
    for outer, taps in iter_row_offsets(spec):
        terms.append(Rank1Term(u={outer: 1.0}, v=dict(taps), sigma=1.0))
    return terms


def structured_terms(spec: StencilSpec, *, tol: float = RANK_TOL) -> List[Rank1Term]:
    """The shuffle-minimal exact decomposition Jigsaw lowers (the paper's
    Figure-4 form generalized):

    ``M = Σ_i u_i ⊗ v_i  +  d ⊗ e_0``

    The whole ``dx = 0`` column is *residualized* into ``d ⊗ e_0`` — its
    contribution is alignment-free, so the generator adds it after the
    final interleave with plain FMAs, paying **zero** shuffles for it.
    The remaining shifted columns are SVD-decomposed on their own, so only
    genuinely shifted work enters LBV butterflies.

    This reproduces the paper's examples exactly: box-2D9P = rank-1 ring ⊗
    (±1 taps) + centre column (Figure 4); star kernels = centre-row taps +
    axis column; separable boxes stay a single term family.  1-D kernels
    (a single row) keep their taps in one butterfly — splitting the centre
    saves nothing there.
    """
    outers, dxs, m = matricize(spec)
    if spec.ndim == 1 or 0 not in dxs:
        return flatten_terms(spec, tol=tol)
    zero_col = dxs.index(0)
    shifted = np.delete(m, zero_col, axis=1)
    shifted_dxs = [d for d in dxs if d != 0]
    terms: List[Rank1Term] = []
    if shifted.size and np.any(np.abs(shifted) > tol):
        u_mat, sigmas, vt = np.linalg.svd(shifted, full_matrices=False)
        rank = int(np.sum(sigmas > tol * sigmas[0]))
        for i in range(rank):
            u_vec = u_mat[:, i] * sigmas[i]
            v_vec = vt[i, :]
            entry_tol = tol * max(np.max(np.abs(u_vec)),
                                  np.max(np.abs(v_vec)), 1.0)
            u = {o: float(c) for o, c in zip(outers, u_vec)
                 if abs(c) > entry_tol}
            v = {d: float(c) for d, c in zip(shifted_dxs, v_vec)
                 if abs(c) > entry_tol}
            if u and v:
                terms.append(Rank1Term(u=u, v=v, sigma=float(sigmas[i])))
    d_map = {o: float(c) for o, c in zip(outers, m[:, zero_col])
             if abs(c) > tol}
    if d_map:
        terms.append(Rank1Term(u=d_map, v={0: 1.0}, sigma=1.0))
    if not terms:
        raise PlanError(f"{spec.name}: structured decomposition produced no terms")
    err = reconstruction_error(spec, terms)
    if err > 1e-9 * max(1.0, float(np.max(np.abs(m)))):
        # numerical trouble (e.g. wildly scaled coefficients) — be safe.
        return flatten_terms(spec, tol=tol)
    return terms


def reconstruct(terms: Sequence[Rank1Term], spec: StencilSpec) -> np.ndarray:
    """Re-assemble the matricization from rank-1 terms (for validation:
    must equal :func:`matricize`'s M within fp tolerance)."""
    outers, dxs, _ = matricize(spec)
    total = np.zeros((len(outers), len(dxs)))
    for t in terms:
        total += t.dense(outers, dxs)
    return total


def reconstruction_error(spec: StencilSpec,
                         terms: Sequence[Rank1Term] | None = None) -> float:
    """Max-abs error between the stencil and its SDF decomposition."""
    terms = flatten_terms(spec) if terms is None else terms
    _, _, m = matricize(spec)
    return float(np.max(np.abs(reconstruct(terms, spec) - m)))


def effective_rank(spec: StencilSpec, *, tol: float = RANK_TOL) -> int:
    """The number of rank-1 terms SDF needs for ``spec``."""
    return len(flatten_terms(spec, tol=tol))


def shuffle_reduction(spec: StencilSpec) -> float:
    """Fraction of row-gathering shuffle work SDF removes vs per-row
    reorganization: ``1 - rank/rows`` (the §3.2 2/3 for Box-2D9P, 8/9 for
    Box-3D27P)."""
    shifted_rows = sum(
        1 for _outer, taps in iter_row_offsets(spec)
        if any(dx != 0 for dx in taps)
    )
    if shifted_rows == 0:
        return 0.0
    shifted_terms = sum(
        1 for t in structured_terms(spec) if any(dx != 0 for dx in t.v)
    )
    return max(0.0, 1.0 - shifted_terms / shifted_rows)
