"""The ``python -m repro`` command-line interface.

Subcommands::

    kernels                      list the kernel library
    machines                     list machine models
    inspect SCHEME KERNEL        print the generated program + mix
    estimate SCHEME KERNEL ...   modelled GStencil/s for a problem
    tune KERNEL ...              autotune blocking for a problem
    run KERNEL ...               execute the numpy path and time it
    cache stats|clear            inspect / wipe the kernel compile cache
    experiments [ID ...]         regenerate paper tables/figures
"""

from __future__ import annotations

import argparse
import sys
import time

from .analysis.report import render_dict, render_table
from .config import PAPER_MACHINES, get_machine
from .errors import ReproError


def _add_machine_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--machine", default=PAPER_MACHINES[0].name,
                   help="machine model name (default: %(default)s)")


def _size(text: str) -> tuple:
    return tuple(int(t) for t in text.lower().split("x"))


def cmd_kernels(_args) -> int:
    from .stencils import library
    rows = []
    for name in library.names():
        spec = library.get(name)
        rows.append([name, spec.tag, "star" if spec.is_star else "box",
                     spec.order, spec.npoints])
    print(render_table(["kernel", "tag", "shape", "order", "points"], rows))
    return 0


def cmd_machines(_args) -> int:
    from .config import _REGISTRY  # noqa: SLF001 - CLI introspection
    rows = []
    for m in _REGISTRY.values():
        rows.append([m.name, m.isa, m.freq_ghz, m.total_cores,
                     m.vector_elems, m.vector_registers])
    print(render_table(
        ["machine", "isa", "GHz", "cores", "elems/reg", "regs"], rows))
    return 0


def cmd_inspect(args) -> int:
    from .analysis.hotspots import hotspot_breakdown
    from .machine.pipeline import PipelineModel
    from .schemes import model_program
    from .stencils import library
    machine = get_machine(args.machine)
    spec = library.get(args.kernel)
    prog = model_program(args.scheme, spec, machine)
    print(prog.listing())
    print()
    print(render_dict("per-vector mix", prog.per_vector_mix()))
    est = PipelineModel(machine).estimate(prog)
    util = {
        f"port {k}": f"{v / est.cycles_per_iter * 100:.0f}%"
        for k, v in est.port_cycles.items() if v
    }
    print(render_dict("pipeline estimate", {
        "cycles/iter": est.cycles_per_iter,
        "bound": est.bound,
        "stall penalty": est.stall_penalty,
        "spills": est.spills,
        **util,
    }))
    hb = hotspot_breakdown(prog, machine)
    print(render_dict("hotspot events (cycles/vector)",
                      dict(hb.events[:8])))
    print(f"max live registers: {prog.max_live_registers()} "
          f"(budget {machine.vector_registers})")
    return 0


def cmd_estimate(args) -> int:
    from .parallel.simulator import MulticoreModel, ParallelSetup
    from .schemes import model_cost
    from .stencils import library
    machine = get_machine(args.machine)
    spec = library.get(args.kernel)
    cost = model_cost(args.scheme, spec, machine)
    points = 1
    for n in args.size:
        points *= n
    setup = ParallelSetup(
        tile_shape=args.tile, time_depth=args.time_depth,
    ) if args.tile else ParallelSetup(time_depth=args.time_depth)
    res = MulticoreModel(machine).estimate(
        cost, spec, points=points, steps=args.steps,
        cores=args.cores or machine.total_cores, setup=setup,
    )
    print(render_dict(
        f"{args.scheme} / {args.kernel} on {machine.name}",
        {
            "GStencil/s": res.gstencil_s,
            "time (s)": res.time_s,
            "bottleneck": res.bottleneck,
            "fed from": res.level,
        },
    ))
    return 0


def cmd_tune(args) -> int:
    from .stencils import library
    from .tuning import autotune
    machine = get_machine(args.machine)
    spec = library.get(args.kernel)
    result = autotune(spec, machine, problem_size=args.size,
                      steps=args.steps, cores=args.cores)
    print(result.summary())
    rows = [
        [c.scheme, "x".join(map(str, c.tile_shape)), c.time_depth,
         c.gstencil_s, c.result.bottleneck]
        for c in result.ranking[:args.top]
    ]
    print(render_table(["scheme", "tile", "Tb", "GStencil/s", "bound"],
                       rows))
    return 0


def cmd_run(args) -> int:
    from .core import compile_kernel, configure_default_cache
    from .stencils import library
    from .stencils.grid import Grid
    machine = get_machine(args.machine)
    spec = library.get(args.kernel)
    cache = None
    if args.cache_dir:
        cache = configure_default_cache(args.cache_dir)
    exec_backend = "auto" if args.backend == "numpy" else args.backend
    template = compile_kernel(spec, machine, Grid(args.size, 16),
                              backend=exec_backend)
    grid = template.grid_like(args.size, seed=0)
    kernel = compile_kernel(spec, machine, grid, backend=exec_backend)
    steps = args.steps - args.steps % kernel.plan.time_fusion
    t0 = time.perf_counter()
    if args.backend == "numpy":
        kernel.run_numpy(grid, steps)
        engine = "numpy path"
    else:
        # cycle-exact SIMD machine: batched tensor execution by default,
        # per-instruction interpreter with --backend interp
        kernel.run(grid, steps, backend=args.backend)
        engine = f"machine/{args.backend}"
    dt = time.perf_counter() - t0
    points = grid.npoints()
    print(f"{spec.name}: {steps} steps over {'x'.join(map(str, args.size))} "
          f"in {dt:.3f}s ({points * steps / dt / 1e6:.1f} MStencil/s, "
          f"{engine}, plan: {kernel.plan.describe()})")
    if cache is not None:
        kernel.program  # lower through the disk cache so reruns hit it
        s = cache.stats
        print(f"cache: {s.hits} hit(s), {s.misses} miss(es) "
              f"[{args.cache_dir}]")
    return 0


def cmd_cache(args) -> int:
    from .core.cache import KernelCache, default_cache_dir
    cache_dir = args.cache_dir or default_cache_dir()
    cache = KernelCache(cache_dir)
    if args.cache_cmd == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached kernel(s) from {cache_dir}")
        return 0
    # stats: persisted cumulative counters + current disk occupancy
    import json
    import os
    totals = {}
    stats_path = os.path.join(cache_dir, "_stats.json")
    if os.path.exists(stats_path):
        try:
            with open(stats_path, "r", encoding="utf-8") as fh:
                totals = json.load(fh)
        except (OSError, ValueError):
            totals = {}
    count, size = cache.disk_entries()
    print(render_dict(f"kernel cache @ {cache_dir}", {
        "entries": count,
        "bytes": size,
        "hits": totals.get("hits", 0),
        "misses": totals.get("misses", 0),
        "disk hits": totals.get("disk_hits", 0),
        "disk writes": totals.get("disk_writes", 0),
        "disk discards": totals.get("disk_discards", 0),
        "evictions": totals.get("evictions", 0),
    }))
    return 0


def cmd_validate(args) -> int:
    from .config import get_machine as _gm
    from .validate import DEFAULT_MACHINES, validate
    machines = ([_gm(args.machine)] if args.machine else DEFAULT_MACHINES)
    report = validate(machines=machines)
    print(report.summary())
    return 0 if report.all_ok else 1


def cmd_experiments(args) -> int:
    from .experiments.__main__ import main as exp_main
    return exp_main(args.ids)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels").set_defaults(fn=cmd_kernels)
    sub.add_parser("machines").set_defaults(fn=cmd_machines)

    p = sub.add_parser("inspect")
    p.add_argument("scheme")
    p.add_argument("kernel")
    _add_machine_arg(p)
    p.set_defaults(fn=cmd_inspect)

    p = sub.add_parser("estimate")
    p.add_argument("scheme")
    p.add_argument("kernel")
    p.add_argument("--size", type=_size, required=True,
                   help="interior extents, e.g. 10000x10000")
    p.add_argument("--steps", type=int, default=100)
    p.add_argument("--cores", type=int, default=None)
    p.add_argument("--tile", type=_size, default=None)
    p.add_argument("--time-depth", type=int, default=1)
    _add_machine_arg(p)
    p.set_defaults(fn=cmd_estimate)

    p = sub.add_parser("tune")
    p.add_argument("kernel")
    p.add_argument("--size", type=_size, required=True)
    p.add_argument("--steps", type=int, default=100)
    p.add_argument("--cores", type=int, default=None)
    p.add_argument("--top", type=int, default=8)
    _add_machine_arg(p)
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("run")
    p.add_argument("kernel")
    p.add_argument("--size", type=_size, required=True)
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--backend", default="numpy",
                   choices=("numpy", "auto", "batch", "interp"),
                   help="execution engine: the numpy fast path (default), "
                        "or the cycle-exact SIMD machine with batched "
                        "tensor execution (auto/batch) or the "
                        "per-instruction interpreter (interp)")
    p.add_argument("--cache-dir", default=None,
                   help="persist compiled kernels to this directory")
    _add_machine_arg(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("cache")
    cache_sub = p.add_subparsers(dest="cache_cmd", required=True)
    for sub_cmd in ("stats", "clear"):
        pc = cache_sub.add_parser(sub_cmd)
        pc.add_argument("--cache-dir", default=None,
                        help="cache directory (default: $REPRO_CACHE_DIR "
                             "or ~/.cache/repro/kernels)")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser("validate")
    p.add_argument("--machine", default=None,
                   help="restrict to one machine model (default: all widths)")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("experiments")
    p.add_argument("ids", nargs="*", default=None)
    p.set_defaults(fn=cmd_experiments)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
