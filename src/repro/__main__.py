"""The ``python -m repro`` command-line interface.

Subcommands::

    kernels                      list the kernel library
    machines                     list machine models
    inspect SCHEME KERNEL        print the generated program + mix
    estimate SCHEME KERNEL ...   modelled GStencil/s for a problem
    tune KERNEL --shape ...      model-guided + empirical autotuning
                                 (persistent winner DB; --model-only for
                                 the analytic blocking tuner)
    run KERNEL ...               execute a kernel and time it
                                 (--profile prints the span tree +
                                 metrics snapshot of the whole pipeline;
                                 --fault-plan replays a stored fault plan)
    serve [--port N]             async multi-tenant stencil server: a
                                 JSON-lines TCP front end over deadline
                                 micro-batching + admission control
                                 (--selftest N drives a verified load
                                 through it and exits)
    chaos [--seed N]             randomized fault injection over the full
                                 compile-and-sweep workload (and the
                                 serving layer); verifies the faulted run
                                 is bitwise-identical to clean
    stats [--json]               persisted cache/tuning counters +
                                 the current observability snapshot
    cache stats|clear            inspect / wipe the kernel compile cache
    experiments [ID ...]         regenerate paper tables/figures
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import obs
from .analysis.report import render_dict, render_table
from .config import PAPER_MACHINES, get_machine
from .errors import ReproError
from .schemes import SCHEMES
from .vectorize.driver import EXEC_BACKENDS


def _add_machine_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--machine", default=PAPER_MACHINES[0].name,
                   help="machine model name (default: %(default)s)")


def _size(text: str) -> tuple:
    return tuple(int(t) for t in text.lower().split("x"))


def cmd_kernels(_args) -> int:
    from .stencils import library
    rows = []
    for name in library.names():
        spec = library.get(name)
        rows.append([name, spec.tag, "star" if spec.is_star else "box",
                     spec.order, spec.npoints])
    print(render_table(["kernel", "tag", "shape", "order", "points"], rows))
    return 0


def cmd_machines(_args) -> int:
    from .config import _REGISTRY  # noqa: SLF001 - CLI introspection
    rows = []
    for m in _REGISTRY.values():
        rows.append([m.name, m.isa, m.freq_ghz, m.total_cores,
                     m.vector_elems, m.vector_registers])
    print(render_table(
        ["machine", "isa", "GHz", "cores", "elems/reg", "regs"], rows))
    return 0


def cmd_inspect(args) -> int:
    from .analysis.hotspots import hotspot_breakdown
    from .machine.pipeline import PipelineModel
    from .schemes import model_program
    from .stencils import library
    machine = get_machine(args.machine)
    spec = library.get(args.kernel)
    prog = model_program(args.scheme, spec, machine)
    print(prog.listing())
    print()
    print(render_dict("per-vector mix", prog.per_vector_mix()))
    est = PipelineModel(machine).estimate(prog)
    util = {
        f"port {k}": f"{v / est.cycles_per_iter * 100:.0f}%"
        for k, v in est.port_cycles.items() if v
    }
    print(render_dict("pipeline estimate", {
        "cycles/iter": est.cycles_per_iter,
        "bound": est.bound,
        "stall penalty": est.stall_penalty,
        "spills": est.spills,
        **util,
    }))
    hb = hotspot_breakdown(prog, machine)
    print(render_dict("hotspot events (cycles/vector)",
                      dict(hb.events[:8])))
    print(f"max live registers: {prog.max_live_registers()} "
          f"(budget {machine.vector_registers})")
    return 0


def cmd_estimate(args) -> int:
    from .parallel.simulator import MulticoreModel, ParallelSetup
    from .schemes import model_cost
    from .stencils import library
    machine = get_machine(args.machine)
    spec = library.get(args.kernel)
    cost = model_cost(args.scheme, spec, machine)
    points = 1
    for n in args.size:
        points *= n
    setup = ParallelSetup(
        tile_shape=args.tile, time_depth=args.time_depth,
    ) if args.tile else ParallelSetup(time_depth=args.time_depth)
    res = MulticoreModel(machine).estimate(
        cost, spec, points=points, steps=args.steps,
        cores=args.cores or machine.total_cores, setup=setup,
    )
    print(render_dict(
        f"{args.scheme} / {args.kernel} on {machine.name}",
        {
            "GStencil/s": res.gstencil_s,
            "time (s)": res.time_s,
            "bottleneck": res.bottleneck,
            "fed from": res.level,
        },
    ))
    return 0


def cmd_tune(args) -> int:
    from .stencils import library
    machine = get_machine(args.machine)
    spec = library.get(args.kernel)
    shape = args.shape if args.shape is not None else args.size
    if args.model_only:
        from .tuning import autotune
        if shape is None:
            raise ReproError(
                "pass the problem extents via --shape (e.g. --shape 128 "
                "128) or --size 128x128")
        result = autotune(spec, machine, problem_size=shape,
                          steps=args.steps, cores=args.cores)
        print(result.summary())
        rows = [
            [c.scheme, "x".join(map(str, c.tile_shape)), c.time_depth,
             c.gstencil_s, c.result.bottleneck]
            for c in result.ranking[:args.top]
        ]
        print(render_table(["scheme", "tile", "Tb", "GStencil/s", "bound"],
                           rows))
        return 0

    from .tune import TuneBudget, Tuner, TuningDB, default_tuning_dir
    if shape is None:
        raise ReproError(
            "pass the interior extents via --shape (e.g. --shape 128 128) "
            "or --size 128x128")
    db_dir = args.db_dir or default_tuning_dir()
    budget = TuneBudget(
        max_trials=args.budget_trials,
        max_seconds=args.budget_seconds,
        warmup=args.warmup,
        repeats=args.repeats,
        trial_timeout_s=args.trial_timeout,
        patience=args.patience,
    )
    exec_backends = ((args.backend,) if args.backend is not None
                     else ("auto", "batch", "interp"))
    engines = tuple(e.strip() for e in args.engines.split(",") if e.strip())
    schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
    tuner = Tuner(machine, db=TuningDB(db_dir), budget=budget)
    report = tuner.tune(spec, shape, steps=args.steps, engines=engines,
                        exec_backends=exec_backends, schemes=schemes,
                        force=args.force)
    print(report.summary())
    if report.trials:
        rows = []
        for t in report.ranking[:args.top]:
            rows.append([t.config.label(), f"{t.model_score:.1f}",
                         f"{t.seconds * 1e3:.2f}", f"{t.mstencil_s:.2f}",
                         t.repeats, "<- winner" if t is report.ranking[0]
                         else ""])
        for t in report.trials:
            if not t.ok:
                rows.append([t.config.label(), f"{t.model_score:.1f}",
                             "-", "-", t.repeats,
                             t.error or "timed out"])
        print(render_table(
            ["configuration", "model", "median ms", "MStencil/s",
             "reps", ""], rows))
    print(f"tuning db: {db_dir} [{report.key[:12]}...]")
    return 0


#: ``repro run --scheme`` values that map onto the jigsaw compile
#: pipeline; the other SCHEMES run their generated baseline program on
#: the SIMD machine.
_JIGSAW_RUN_OPTIONS = {
    "lbv": {"time_fusion": 1, "use_sdf": False},
    "jigsaw": {"time_fusion": 1, "use_sdf": True},
    "t-jigsaw": {"time_fusion": "auto", "use_sdf": True},
    "t4-jigsaw": {"time_fusion": 4, "use_sdf": True},
}


def _report_run(spec, size, steps: int, dt: float, engine: str,
                detail: str) -> None:
    points = 1
    for n in size:
        points *= n
    rate = points * steps / dt / 1e6 if dt > 0 else float("inf")
    print(f"{spec.name}: {steps} steps over {'x'.join(map(str, size))} "
          f"in {dt:.3f}s ({rate:.1f} MStencil/s, {engine}, {detail})")


def _emit_profile(args) -> None:
    """Print the span tree and the metrics snapshot recorded during a
    ``--profile`` run; optionally persist the full snapshot as JSON."""
    snap = obs.snapshot()
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.profile:
        print("\n-- profile: span tree " + "-" * 40)
        print(obs.render())
        print("\n-- profile: metrics " + "-" * 42)
        print(json.dumps(snap["metrics"], indent=2, sort_keys=True))
        if args.metrics_json:
            print(f"\nmetrics written to {args.metrics_json}")


def cmd_run(args) -> int:
    from contextlib import nullcontext
    if args.profile or args.metrics_json:
        obs.enable(reset=True)
    cm = nullcontext(None)
    if args.fault_plan:
        from .faults import FaultPlan, inject
        cm = inject(FaultPlan.load(args.fault_plan))
    inj = None
    try:
        with cm as inj, obs.span("repro.run", kernel=args.kernel,
                                 machine=args.machine):
            code = _cmd_run_inner(args)
    finally:
        if obs.enabled():
            _emit_profile(args)
            obs.disable()
    if inj is not None:
        by_site = inj.injected_by_site()
        detail = ", ".join(f"{site} x{n}"
                           for site, n in sorted(by_site.items()))
        print(f"fault plan {args.fault_plan}: "
              f"{sum(by_site.values())} fault(s) injected"
              + (f" ({detail})" if detail else ""))
    return code


def _cmd_run_inner(args) -> int:
    import numpy as np

    from .core import compile_kernel, configure_default_cache
    from .stencils import library
    from .stencils.grid import Grid
    machine = get_machine(args.machine)
    spec = library.get(args.kernel)
    if args.tuned and args.scheme:
        raise ReproError("--tuned and --scheme are mutually exclusive")
    if args.temporal_block is not None and args.shards is None:
        raise ReproError("--temporal-block requires --shards N")
    if args.shards is not None and args.tuned:
        raise ReproError("--shards and --tuned are mutually exclusive "
                         "(tune the shard engine via `repro tune` instead)")
    cache = None
    if args.cache_dir:
        cache = configure_default_cache(args.cache_dir)
    dtype = np.float32 if machine.element_bytes == 4 else np.float64

    if args.scheme is not None and args.scheme not in _JIGSAW_RUN_OPTIONS:
        if args.shards is not None:
            raise ReproError(
                "--shards runs the jigsaw compile pipeline; baseline "
                "schemes cannot be sharded")
        # baseline schemes execute their generated program on the SIMD
        # machine (the numpy fast path only knows jigsaw plans), so the
        # default --backend numpy silently means machine/auto here
        from .schemes import generate, scheme_halo
        from .vectorize.driver import run_program
        grid = Grid.random(args.size,
                           scheme_halo(args.scheme, spec, machine),
                           seed=0, dtype=dtype)
        prog = generate(args.scheme, spec, machine, grid)
        backend = "auto" if args.backend == "numpy" else args.backend
        # fused schemes (temporal) advance steps_per_iter steps per sweep;
        # round down the same way the jigsaw pipeline rounds to time_fusion
        steps = args.steps - args.steps % prog.steps_per_iter
        t0 = time.perf_counter()
        run_program(prog, grid, steps, backend=backend)
        dt = time.perf_counter() - t0
        _report_run(spec, args.size, steps, dt,
                    f"machine/{backend}", f"scheme: {args.scheme}")
        return 0

    tuned_cfg = None
    plan_kwargs = {}
    backend_flag = args.backend
    if args.tuned:
        from .tune import Tuner, TuningDB, default_tuning_dir
        db = TuningDB(args.db_dir or default_tuning_dir())
        tuned_cfg = Tuner(machine, db=db).tuned_config(spec, args.size)
        if tuned_cfg is None:
            raise ReproError(
                f"no tuned configuration stored for {spec.name} @ "
                f"{'x'.join(map(str, args.size))} on {machine.name}; run "
                f"`repro tune {args.kernel} --shape ...` first")
        if tuned_cfg.engine == "tiled":
            from .parallel.executor import run_parallel
            grid = Grid.random(args.size, spec.radius, seed=0, dtype=dtype)
            t0 = time.perf_counter()
            run_parallel(spec, grid, args.steps,
                         tile_shape=tuned_cfg.tile_shape,
                         workers=tuned_cfg.workers,
                         backend=tuned_cfg.run_backend)
            dt = time.perf_counter() - t0
            _report_run(spec, args.size, args.steps, dt, "tiled executor",
                        f"tuned: {tuned_cfg.label()}")
            return 0
        if tuned_cfg.engine == "shard":
            from .parallel.executor import run_parallel
            grid = Grid.random(args.size, spec.radius, seed=0, dtype=dtype)
            t0 = time.perf_counter()
            run_parallel(spec, grid, args.steps,
                         shards=tuned_cfg.shards,
                         temporal_block=tuned_cfg.temporal_block,
                         workers=tuned_cfg.shards,
                         backend=tuned_cfg.run_backend)
            dt = time.perf_counter() - t0
            _report_run(spec, args.size, args.steps, dt, "shard executor",
                        f"tuned: {tuned_cfg.label()}")
            return 0
        if tuned_cfg.engine == "scheme":
            from .schemes import generate, scheme_halo
            from .vectorize.driver import run_program
            tf = (tuned_cfg.scheme_fusion
                  if tuned_cfg.scheme == "temporal" else None)
            grid = Grid.random(args.size,
                               scheme_halo(tuned_cfg.scheme, spec, machine,
                                           time_fusion=tf),
                               seed=0, dtype=dtype)
            prog = generate(tuned_cfg.scheme, spec, machine, grid,
                            time_fusion=tf)
            steps = args.steps - args.steps % prog.steps_per_iter
            t0 = time.perf_counter()
            run_program(prog, grid, steps,
                        backend=tuned_cfg.exec_backend)
            dt = time.perf_counter() - t0
            _report_run(spec, args.size, steps, dt,
                        f"machine/{tuned_cfg.exec_backend}",
                        f"tuned: {tuned_cfg.label()}")
            return 0
        backend_flag = ("numpy" if tuned_cfg.engine == "numpy"
                        else tuned_cfg.exec_backend)
        plan_kwargs = {"tuned": tuned_cfg}
    elif args.scheme is not None:
        plan_kwargs = dict(_JIGSAW_RUN_OPTIONS[args.scheme])

    exec_backend = "auto" if backend_flag == "numpy" else backend_flag
    template = compile_kernel(spec, machine, Grid(args.size, 16, dtype=dtype),
                              backend=exec_backend, **plan_kwargs)
    grid = Grid.random(args.size, template.halo(), seed=0, dtype=dtype)
    kernel = compile_kernel(spec, machine, grid, backend=exec_backend,
                            **plan_kwargs)
    steps = args.steps - args.steps % kernel.plan.time_fusion
    if args.shards is not None:
        # sharded execution always drives the compiled pipeline in the
        # workers; --backend numpy (the default) means auto here, the
        # same mapping the baseline-scheme path uses
        exec_b = None if backend_flag == "numpy" else backend_flag
        s = (args.temporal_block if args.temporal_block is not None
             else kernel.plan.time_fusion)
        t0 = time.perf_counter()
        kernel.run_sharded(grid, steps, shards=args.shards,
                           temporal_block=args.temporal_block,
                           executor=args.shard_executor, backend=exec_b)
        dt = time.perf_counter() - t0
        _report_run(spec, args.size, steps, dt,
                    f"shard[{args.shards}]/{args.shard_executor}",
                    f"s={s}, plan: {kernel.plan.describe()}")
        return 0
    t0 = time.perf_counter()
    if backend_flag == "numpy":
        kernel.run_numpy(grid, steps)
        engine = "numpy path"
    else:
        # cycle-exact SIMD machine: batched tensor execution by default,
        # per-instruction interpreter with --backend interp
        kernel.run(grid, steps, backend=backend_flag)
        engine = f"machine/{backend_flag}"
    dt = time.perf_counter() - t0
    detail = (f"tuned: {tuned_cfg.label()}" if tuned_cfg is not None
              else f"plan: {kernel.plan.describe()}")
    _report_run(spec, args.size, steps, dt, engine, detail)
    if cache is not None:
        kernel.program  # lower through the disk cache so reruns hit it
        s = cache.stats
        print(f"cache: {s.hits} hit(s), {s.misses} miss(es) "
              f"[{args.cache_dir}]")
    return 0


def cmd_serve(args) -> int:
    """The async multi-tenant stencil server (see
    :mod:`repro.server`): JSON-lines requests over TCP, deadline
    micro-batching into the kernel service, per-tenant quotas and
    queue-depth admission control.  ``--selftest N`` drives N verified
    requests through the running server (plus one TCP probe) and exits
    with the load report."""
    import asyncio

    from .server import (LoadConfig, StencilServer, reference_results,
                         run_load)
    from .server.net import request_tcp, serve_tcp
    machine = get_machine(args.machine)
    record = bool(args.metrics_json) or args.selftest is not None
    if record:
        obs.enable(reset=True)
    online_cfg = None
    if args.online_tune:
        from .tune import OnlineTuneConfig
        online_cfg = OnlineTuneConfig(epsilon=args.tune_epsilon,
                                      max_trials=args.tune_trials)
    server = StencilServer(
        machine=machine,
        max_queue_depth=args.max_queue_depth,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        batch_window_s=args.batch_window_ms / 1e3,
        max_batch=args.max_batch,
        executor_workers=args.executor_workers,
        online_tune=args.online_tune,
        online_tune_config=online_cfg,
        run_backend=args.run_backend,
        run_workers=args.run_workers,
        cache_dir=args.cache_dir,
    )

    async def main() -> int:
        code = 0
        async with server:
            tcp = await serve_tcp(server, host=args.host, port=args.port)
            port = tcp.sockets[0].getsockname()[1]
            print(f"serving stencils on {args.host}:{port} "
                  f"(queue depth {args.max_queue_depth}, "
                  f"batch <= {args.max_batch} / "
                  f"{args.batch_window_ms:g} ms window)")
            if args.online_tune:
                print("online tuning on: exploring in idle slots "
                      f"(epsilon {args.tune_epsilon:g}, budget "
                      f"{args.tune_trials or 'unlimited'})")
            if args.selftest is not None:
                cfg = LoadConfig(requests=args.selftest,
                                 shape=args.size, steps=args.steps,
                                 deadline_s=args.deadline_ms / 1e3
                                 if args.deadline_ms else None)
                refs = reference_results(cfg, machine)
                probe = (await request_tcp("127.0.0.1", port, [
                    {"kernel": cfg.kernels[0], "shape": list(cfg.shape),
                     "steps": cfg.steps, "seed": 0}]))[0]
                report = await run_load(server, cfg, references=refs)
                print(report.summary())
                if server.online_tuner is not None:
                    ts = server.online_tuner.stats()
                    print(f"online tuning   {ts['trials']} trial(s), "
                          f"{ts['promotions']} promotion(s), "
                          f"{ts['gated']} gated step(s)")
                print(f"tcp probe       "
                      f"{'ok' if probe.get('ok') else 'FAILED'} "
                      f"(checksum {str(probe.get('checksum'))[:12]}...)")
                code = 0 if report.ok and probe.get("ok") else 1
            else:
                try:
                    await asyncio.Event().wait()
                except asyncio.CancelledError:
                    pass
            tcp.close()
            await tcp.wait_closed()
        return code

    try:
        code = asyncio.run(main())
    except KeyboardInterrupt:
        print("\nshutting down")
        code = 0
    if args.metrics_json:
        # a point-in-time copy: the live registry keeps accumulating
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(obs.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"metrics written to {args.metrics_json}")
    if record:
        obs.disable()
    return code


def cmd_chaos(args) -> int:
    """Randomized fault injection with bitwise-equality verification
    (see :mod:`repro.faults.chaos`).  Exit 0 iff every site class the
    selected stages cover took at least one fault and the faulted run
    matched the clean run."""
    from .faults.chaos import STAGES, run_chaos
    machine = get_machine(args.machine)
    backends = (("thread", "process") if args.backend == "both"
                else (args.backend,))
    stages = (STAGES if args.stages == "all" else
              tuple(s.strip() for s in args.stages.split(",") if s.strip()))
    report = run_chaos(kernel=args.kernel, size=args.size, steps=args.steps,
                       seed=args.seed, backends=backends, machine=machine,
                       stages=stages)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def cmd_cache(args) -> int:
    from .core.cache import KernelCache, default_cache_dir
    cache_dir = args.cache_dir or default_cache_dir()
    cache = KernelCache(cache_dir)
    if args.cache_cmd == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached kernel(s) from {cache_dir}")
        return 0
    # stats: persisted cumulative counters (every writer's delta files
    # merged, so concurrent processes all show up) + disk occupancy
    from .core.cache import persisted_totals
    totals = persisted_totals(cache_dir)
    count, size = cache.disk_entries()
    print(render_dict(f"kernel cache @ {cache_dir}", {
        "entries": count,
        "bytes": size,
        "hits": totals.get("hits", 0),
        "misses": totals.get("misses", 0),
        "disk hits": totals.get("disk_hits", 0),
        "disk writes": totals.get("disk_writes", 0),
        "disk discards": totals.get("disk_discards", 0),
        "disk quarantined": totals.get("disk_quarantined", 0),
        "quarantine entries": cache.quarantined_entries()[0],
        "evictions": totals.get("evictions", 0),
    }))
    return 0


def _server_stats(snapshot: dict) -> dict:
    """The serving-layer slice of a saved observability snapshot: every
    ``server.*`` and ``tune.online.*`` counter/gauge, plus per-tenant
    latency summaries pulled from the histograms."""
    metrics = snapshot.get("metrics", snapshot)
    out: dict = {"counters": {}, "gauges": {}, "latency_ms": {}}
    for name, value in (metrics.get("counters") or {}).items():
        if name.startswith(("server.", "tune.online.")):
            out["counters"][name] = value
    for name, value in (metrics.get("gauges") or {}).items():
        if name.startswith(("server.", "tune.online.")):
            out["gauges"][name] = value
    for name, hist in (metrics.get("histograms") or {}).items():
        if name.startswith("server.latency_ms"):
            out["latency_ms"][name] = {
                "count": hist.get("count"),
                "mean": hist.get("mean"),
                "min": hist.get("min"),
                "max": hist.get("max"),
            }
    return out


def cmd_stats(args) -> int:
    """Persisted cache/tuning counters plus the in-process observability
    snapshot (spans + metrics recorded since the last reset).  With
    ``--metrics-json`` a saved serve-run snapshot's server counters are
    folded into the output."""
    from .core.cache import KernelCache, default_cache_dir, persisted_totals
    from .tune import TuningDB, default_tuning_dir
    cache_dir = args.cache_dir or default_cache_dir()
    db_dir = args.db_dir or default_tuning_dir()
    cache = KernelCache(cache_dir)
    count, size = cache.disk_entries()
    cache_stats = dict(persisted_totals(cache_dir))
    cache_stats["disk_entry_count"] = count
    cache_stats["disk_entry_bytes"] = size
    tuning_stats = TuningDB(db_dir).stats_dict()
    server_stats = None
    if getattr(args, "metrics_json", None):
        try:
            with open(args.metrics_json, "r", encoding="utf-8") as fh:
                saved = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ReproError(
                f"cannot read metrics snapshot {args.metrics_json!r}: {exc}")
        if not isinstance(saved, dict):
            raise ReproError(
                f"{args.metrics_json!r} is not an observability snapshot")
        server_stats = _server_stats(saved)
    if args.json:
        payload = {
            "cache_dir": cache_dir,
            "cache": cache_stats,
            "tuning_dir": db_dir,
            "tuning": tuning_stats,
            "obs": obs.snapshot(),
        }
        if server_stats is not None:
            payload["server"] = server_stats
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(render_dict(f"kernel cache @ {cache_dir}", cache_stats or
                      {"(no persisted counters)": ""}))
    print(render_dict(f"tuning db @ {db_dir}", tuning_stats))
    if server_stats is not None:
        flat = dict(server_stats["counters"])
        flat.update(server_stats["gauges"])
        for name, summary in server_stats["latency_ms"].items():
            count_ = summary.get("count") or 0
            mean = summary.get("mean")
            flat[name] = (f"n={count_} mean={mean:.3f}"
                          if isinstance(mean, (int, float))
                          else f"n={count_}")
        print(render_dict(f"server @ {args.metrics_json}", flat or
                          {"(no server metrics in snapshot)": ""}))
    snap = obs.snapshot()
    if snap["spans"] or any(snap["metrics"].values()):
        print("\nobservability snapshot:")
        print(json.dumps(snap["metrics"], indent=2, sort_keys=True))
    return 0


def cmd_validate(args) -> int:
    from .config import get_machine as _gm
    from .validate import DEFAULT_MACHINES, validate
    machines = ([_gm(args.machine)] if args.machine else DEFAULT_MACHINES)
    report = validate(machines=machines)
    print(report.summary())
    return 0 if report.all_ok else 1


def cmd_experiments(args) -> int:
    from .experiments.__main__ import main as exp_main
    return exp_main(args.ids)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels").set_defaults(fn=cmd_kernels)
    sub.add_parser("machines").set_defaults(fn=cmd_machines)

    p = sub.add_parser("inspect")
    p.add_argument("scheme", choices=SCHEMES)
    p.add_argument("kernel")
    _add_machine_arg(p)
    p.set_defaults(fn=cmd_inspect)

    p = sub.add_parser("estimate")
    p.add_argument("scheme", choices=SCHEMES)
    p.add_argument("kernel")
    p.add_argument("--size", type=_size, required=True,
                   help="interior extents, e.g. 10000x10000")
    p.add_argument("--steps", type=int, default=100)
    p.add_argument("--cores", type=int, default=None)
    p.add_argument("--tile", type=_size, default=None)
    p.add_argument("--time-depth", type=int, default=1)
    _add_machine_arg(p)
    p.set_defaults(fn=cmd_estimate)

    p = sub.add_parser(
        "tune",
        description="Model-guided + empirical autotuning: rank the legal "
                    "configurations with the analytic models, time the "
                    "most promising ones under a budget, and store the "
                    "winner in a persistent tuning database.")
    p.add_argument("kernel")
    p.add_argument("--shape", type=int, nargs="+", default=None,
                   metavar="N", help="interior extents, e.g. --shape 128 128")
    p.add_argument("--size", type=_size, default=None,
                   help="interior extents as NxM (alias for --shape)")
    p.add_argument("--steps", type=int, default=4,
                   help="sweeps per empirical trial (default: %(default)s)")
    p.add_argument("--budget-trials", type=int, default=8,
                   help="max empirical trials (default: %(default)s)")
    p.add_argument("--budget-seconds", type=float, default=None,
                   help="wall-clock search budget in seconds")
    p.add_argument("--repeats", type=int, default=3,
                   help="timed repetitions per trial; the median is kept "
                        "(default: %(default)s)")
    p.add_argument("--warmup", type=int, default=1,
                   help="untimed warmup runs per trial (default: %(default)s)")
    p.add_argument("--trial-timeout", type=float, default=60.0,
                   help="per-trial timeout in seconds (default: %(default)s)")
    p.add_argument("--patience", type=int, default=4,
                   help="stop after this many trials without a new best "
                        "(default: %(default)s)")
    p.add_argument("--backend", default=None, choices=EXEC_BACKENDS,
                   help="restrict the SIMD-machine engine to one execution "
                        "backend (default: search auto, batch and interp)")
    p.add_argument("--engines", default="machine,numpy,tiled,shard,scheme",
                   help="comma-separated engine families to search "
                        "(default: %(default)s)")
    p.add_argument("--schemes", default="temporal,redundancy",
                   help="comma-separated registry schemes the scheme "
                        "engine searches (default: %(default)s)")
    p.add_argument("--db-dir", default=None,
                   help="tuning database directory (default: "
                        "$REPRO_TUNING_DIR or <cache>/tuning)")
    p.add_argument("--force", action="store_true",
                   help="re-tune even if the database has a winner")
    p.add_argument("--top", type=int, default=8,
                   help="ranked rows to print (default: %(default)s)")
    p.add_argument("--model-only", action="store_true",
                   help="legacy analytic blocking tuner (no empirical "
                        "trials, no database)")
    p.add_argument("--cores", type=int, default=None,
                   help="core count for --model-only")
    _add_machine_arg(p)
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("run")
    p.add_argument("kernel")
    p.add_argument("--size", type=_size, required=True)
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--backend", default="numpy",
                   choices=("numpy",) + EXEC_BACKENDS,
                   help="execution engine: the numpy fast path (default), "
                        "or the cycle-exact SIMD machine with emitted-"
                        "source execution (auto/codegen), batched tensor "
                        "closures (batch), or the per-instruction "
                        "interpreter (interp)")
    p.add_argument("--scheme", default=None, choices=SCHEMES,
                   help="run a specific vectorization scheme (jigsaw "
                        "variants use the compile pipeline; baselines run "
                        "their generated program on the SIMD machine)")
    p.add_argument("--tuned", action="store_true",
                   help="apply the stored tuning-database winner for this "
                        "workload (see `repro tune`)")
    p.add_argument("--db-dir", default=None,
                   help="tuning database directory for --tuned (default: "
                        "$REPRO_TUNING_DIR or <cache>/tuning)")
    p.add_argument("--cache-dir", default=None,
                   help="persist compiled kernels to this directory")
    p.add_argument("--profile", action="store_true",
                   help="record spans + metrics across the whole "
                        "plan/SDF/codegen/execute pipeline and print the "
                        "span tree and metrics snapshot")
    p.add_argument("--metrics-json", default=None, metavar="PATH",
                   help="write the observability snapshot (spans + "
                        "metrics) to PATH as JSON (implies recording)")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="shard the outer axis into N slabs and run them "
                        "on a worker pool with halo exchange at each "
                        "synchronization point (bitwise identical to the "
                        "unsharded engines)")
    p.add_argument("--temporal-block", type=int, default=None, metavar="S",
                   help="sub-steps per halo exchange under --shards "
                        "(deeper halos, fewer barriers; default: the "
                        "plan's fused depth)")
    p.add_argument("--shard-executor", default="process",
                   choices=("thread", "process"),
                   help="worker pool backend for --shards "
                        "(default: %(default)s)")
    p.add_argument("--fault-plan", default=None, metavar="PATH",
                   help="inject the faults described by this JSON plan "
                        "during the run (see docs/architecture.md, "
                        "Failure model)")
    _add_machine_arg(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "chaos",
        description="Randomized fault injection: run the full "
                    "compile-and-sweep workload clean and again under a "
                    "seeded random fault plan covering every injection "
                    "site, then verify the faulted run produced "
                    "bitwise-identical results.")
    p.add_argument("--kernel", default="heat-2d",
                   help="library kernel to exercise (default: %(default)s)")
    p.add_argument("--size", type=_size, default=(48, 48),
                   help="interior extents (default: 48x48)")
    p.add_argument("--steps", type=int, default=4,
                   help="sweeps per workload stage (default: %(default)s)")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-plan seed (default: %(default)s)")
    p.add_argument("--backend", default="both",
                   choices=("thread", "process", "both"),
                   help="parallel executor backend(s) to sweep on "
                        "(default: %(default)s)")
    p.add_argument("--stages", default="all",
                   help="comma-separated workload stages to exercise "
                        "(pipeline,server; default: all)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    _add_machine_arg(p)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "serve",
        description="Async multi-tenant stencil server: JSON-lines "
                    "requests over TCP are admission-controlled "
                    "(per-tenant token buckets + a global queue-depth "
                    "ceiling), coalesced by deadline-aware "
                    "micro-batching, and executed through the kernel "
                    "service. Under load the server degrades "
                    "gracefully: batch shedding, then the interp "
                    "compile backend (bitwise identical), then fast "
                    "rejection.")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default: an ephemeral port, printed "
                        "at startup)")
    p.add_argument("--max-queue-depth", type=int, default=256,
                   help="global in-flight admission ceiling "
                        "(default: %(default)s)")
    p.add_argument("--quota-rate", type=float, default=float("inf"),
                   help="per-tenant sustained requests/second "
                        "(default: unlimited)")
    p.add_argument("--quota-burst", type=float, default=None,
                   help="per-tenant burst size (default: 2x rate)")
    p.add_argument("--batch-window-ms", type=float, default=5.0,
                   help="micro-batch coalescing window in milliseconds "
                        "(default: %(default)s)")
    p.add_argument("--max-batch", type=int, default=16,
                   help="requests per micro-batch (default: %(default)s)")
    p.add_argument("--executor-workers", type=int, default=4,
                   help="batch-execution threads (default: %(default)s)")
    p.add_argument("--run-backend", default="thread",
                   choices=("thread", "process"),
                   help="kernel-service sweep backend "
                        "(default: %(default)s)")
    p.add_argument("--run-workers", type=int, default=4,
                   help="kernel-service sweep workers "
                        "(default: %(default)s)")
    p.add_argument("--cache-dir", default=None,
                   help="persist compiled kernels to this directory")
    p.add_argument("--online-tune", action="store_true",
                   help="explore tuning candidates in idle serving slots "
                        "(epsilon-greedy, occupancy-gated, "
                        "bitwise-verified promotion into the tuning DB)")
    p.add_argument("--tune-epsilon", type=float, default=0.25,
                   help="online-tune exploration probability "
                        "(default: %(default)s)")
    p.add_argument("--tune-trials", type=int, default=None, metavar="N",
                   help="online-tune lifetime trial budget "
                        "(default: unlimited)")
    p.add_argument("--selftest", type=int, default=None, metavar="N",
                   help="drive N verified requests through the running "
                        "server (plus one TCP probe), print the load "
                        "report, and exit")
    p.add_argument("--size", type=_size, default=(32, 32),
                   help="selftest interior extents (default: 32x32)")
    p.add_argument("--steps", type=int, default=2,
                   help="selftest sweeps per request "
                        "(default: %(default)s)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="selftest per-request deadline in milliseconds")
    p.add_argument("--metrics-json", default=None, metavar="PATH",
                   help="on exit, write the observability snapshot "
                        "(server.* counters, per-tenant latency "
                        "histograms) to PATH as JSON")
    _add_machine_arg(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "stats",
        description="Persisted cache/tuning counters and the current "
                    "observability snapshot.")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.add_argument("--cache-dir", default=None,
                   help="kernel cache directory (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro/kernels)")
    p.add_argument("--db-dir", default=None,
                   help="tuning database directory (default: "
                        "$REPRO_TUNING_DIR or <cache>/tuning)")
    p.add_argument("--metrics-json", default=None, metavar="PATH",
                   help="fold the server counters from a saved "
                        "observability snapshot (a `repro serve "
                        "--metrics-json` file) into the output")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("cache")
    cache_sub = p.add_subparsers(dest="cache_cmd", required=True)
    for sub_cmd in ("stats", "clear"):
        pc = cache_sub.add_parser(sub_cmd)
        pc.add_argument("--cache-dir", default=None,
                        help="cache directory (default: $REPRO_CACHE_DIR "
                             "or ~/.cache/repro/kernels)")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser("validate")
    p.add_argument("--machine", default=None,
                   help="restrict to one machine model (default: all widths)")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("experiments")
    p.add_argument("ids", nargs="*", default=None)
    p.set_defaults(fn=cmd_experiments)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
