"""Tessellating tiling [Yuan et al., SC'17] — the cache/time tiling the
paper composes Jigsaw with (§4.4).

The scheme covers the space-time iteration prism with two *phases* of
congruent tiles per dimension (triangles and inverted triangles in 1-D;
``2^d`` phases in d-D).  Tiles within one phase are dependence-free, so a
phase is embarrassingly parallel; the grid is read once per ``Tb`` fused
time steps instead of once per step, which is the traffic reduction the
multicore model credits.

:func:`tessellate_nd` is an exact executable implementation for any
dimension (validated point-for-point against the Jacobi reference): per
time block it runs the ``2^d`` phase families indexed by their seam-axis
set — shrinking tile cores, expanding seam bands, and their mixed
products (triangles/inverted triangles in 1-D; cores, wedges and corners
in 2-D; up to the 8-phase 3-D tessellation).  Every point is computed
exactly once (no ghost-zone redundancy) and regions within one phase
touch disjoint data, so each phase is embarrassingly parallel.
:func:`tessellate_1d` and :func:`tessellate_2d` are dimension-specialized
variants kept for their richer ``on_phase`` reporting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..errors import TilingError
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec


@dataclass(frozen=True)
class TessellationPlan:
    """Accounting for a tessellated time-block: phases per block, tiles
    per phase, and the per-step traffic factor."""

    spec_radius: Tuple[int, ...]
    tile_shape: Tuple[int, ...]
    time_depth: int

    @property
    def ndim(self) -> int:
        return len(self.tile_shape)

    @property
    def phases(self) -> int:
        """Dependence-free parallel phases per time block (2 per axis)."""
        return 2 ** self.ndim

    @property
    def traffic_factor(self) -> float:
        """Grid reads per time step relative to untiled sweeps (1/Tb)."""
        return 1.0 / self.time_depth

    def validate(self) -> "TessellationPlan":
        for t, r in zip(self.tile_shape, self.spec_radius):
            if 2 * r * self.time_depth > t:
                raise TilingError(
                    f"time depth {self.time_depth} too deep: 2*r*Tb = "
                    f"{2 * r * self.time_depth} exceeds tile extent {t}"
                )
        return self


def tessellation_plan(spec: StencilSpec, tile_shape: Sequence[int],
                      time_depth: int) -> TessellationPlan:
    if time_depth < 1:
        raise TilingError("time_depth must be >= 1")
    if len(tile_shape) != spec.ndim:
        raise TilingError(
            f"tile rank {len(tile_shape)} != stencil ndim {spec.ndim}"
        )
    return TessellationPlan(
        spec_radius=spec.radius,
        tile_shape=tuple(int(t) for t in tile_shape),
        time_depth=time_depth,
    ).validate()


# ---------------------------------------------------------------------------
# exact 1-D execution
# ---------------------------------------------------------------------------

def _apply_range_periodic(
    spec: StencilSpec,
    src: np.ndarray,
    dst: np.ndarray,
    lo: int,
    hi: int,
) -> None:
    """dst[i] = stencil(src)[i] for i in [lo, hi) with periodic wrap
    (indices taken modulo N)."""
    n = src.shape[0]
    if hi <= lo:
        return
    idx = np.arange(lo, hi)
    acc = np.zeros(hi - lo)
    for off, c in zip(spec.offsets, spec.coeffs):
        acc += c * src.take(idx + off[0], mode="wrap")
    dst[idx % n] = acc


def tessellate_1d(
    spec: StencilSpec,
    values: np.ndarray,
    steps: int,
    *,
    tile: int,
    time_depth: int | None = None,
    on_phase: Callable[[int, int, List[Tuple[int, int]]], None] | None = None,
) -> np.ndarray:
    """Run ``steps`` periodic Jacobi steps of a 1-D ``spec`` with
    tessellating tiling.

    ``tile`` is the phase-1 tile width; ``time_depth`` (default: the
    largest legal ``Tb``) steps are fused per tessellated block.
    ``on_phase(block, phase, ranges)`` is invoked per phase with the tile
    ranges it computed — used by tests to assert the tessellation
    geometry and by the parallel executor to fan tiles out.
    """
    if spec.ndim != 1:
        raise TilingError("tessellate_1d is for 1-D stencils")
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    r = spec.radius[0]
    if tile <= 0 or n % tile:
        raise TilingError(f"tile {tile} must positively divide N={n}")
    max_depth = tile // (2 * r)
    tb = max_depth if time_depth is None else int(time_depth)
    tessellation_plan(spec, (tile,), tb)  # validates 2*r*Tb <= tile
    if tb < 1:
        raise TilingError(f"tile {tile} too narrow for radius {r}")

    cur = values.copy()
    block_no = 0
    remaining = steps
    while remaining > 0:
        depth = min(tb, remaining)
        levels = [cur] + [np.empty(n) for _ in range(depth)]
        # phase 1: shrinking triangles per tile
        ranges1: List[Tuple[int, int]] = []
        for a in range(0, n, tile):
            for t in range(1, depth + 1):
                lo, hi = a + r * t, a + tile - r * t
                _apply_range_periodic(spec, levels[t - 1], levels[t], lo, hi)
            ranges1.append((a, a + tile))
        if on_phase is not None:
            on_phase(block_no, 0, ranges1)
        # phase 2: expanding inverted triangles per tile boundary
        ranges2: List[Tuple[int, int]] = []
        for c in range(0, n, tile):
            for t in range(1, depth + 1):
                _apply_range_periodic(spec, levels[t - 1], levels[t],
                                      c - r * t, c + r * t)
            ranges2.append((c - r * depth, c + r * depth))
        if on_phase is not None:
            on_phase(block_no, 1, ranges2)
        cur = levels[depth]
        remaining -= depth
        block_no += 1
    return cur


def tessellate_grid_1d(spec: StencilSpec, grid: Grid, steps: int, *,
                       tile: int, time_depth: int | None = None) -> Grid:
    """Grid-level wrapper around :func:`tessellate_1d`."""
    out = grid.like()
    out.interior[...] = tessellate_1d(
        spec, grid.interior, steps, tile=tile, time_depth=time_depth
    )
    return out


# ---------------------------------------------------------------------------
# exact 2-D execution
# ---------------------------------------------------------------------------

def _apply_rect_periodic(
    spec: StencilSpec,
    src: np.ndarray,
    dst: np.ndarray,
    yr: Tuple[int, int],
    xr: Tuple[int, int],
) -> None:
    """dst[y, x] = stencil(src)[y, x] over the (possibly wrapping)
    rectangle ``yr x xr``, indices modulo the grid extents."""
    ny, nx = src.shape
    if yr[1] <= yr[0] or xr[1] <= xr[0]:
        return
    ys = np.arange(yr[0], yr[1])
    xs = np.arange(xr[0], xr[1])
    acc = np.zeros((len(ys), len(xs)))
    for off, c in zip(spec.offsets, spec.coeffs):
        acc += c * src[np.ix_((ys + off[0]) % ny, (xs + off[1]) % nx)]
    dst[np.ix_(ys % ny, xs % nx)] = acc


def tessellate_2d(
    spec: StencilSpec,
    values: np.ndarray,
    steps: int,
    *,
    tile: Tuple[int, int],
    time_depth: int | None = None,
    on_phase: Callable[[int, int, int], None] | None = None,
) -> np.ndarray:
    """Run ``steps`` periodic Jacobi steps of a 2-D ``spec`` with the
    four-phase tessellating tiling [Yuan et al., SC'17].

    Per time block of depth ``Tb`` (levels ``t = 1..Tb``):

    * **phase 1 — cores**: per tile, the shrinking pyramid
      ``[ay+rt, by-rt) x [ax+rt, bx-rt)``;
    * **phase 2 — y-seam wedges**: per y-boundary ``cy`` and x-tile,
      ``[cy-rt, cy+rt) x [ax+rt, bx-rt)`` (expanding in y, shrinking in x);
    * **phase 3 — x-seam wedges**: symmetric in the other axis;
    * **phase 4 — corners**: ``[cy-rt, cy+rt) x [cx-rt, cx+rt)``,
      expanding in both axes.

    Per level the four families partition the plane exactly (no redundant
    computation) and each family's dependencies are satisfied by families
    of earlier phases at the previous level — the closure argument needs
    exactly the constraint ``2 r Tb <= tile`` per axis, which the paper's
    Table-3 blockings satisfy.  Tiles within one phase touch disjoint
    data, so each phase is embarrassingly parallel.

    ``on_phase(block, phase, regions)`` reports the number of regions each
    phase computed (tests assert the tessellation geometry).
    """
    if spec.ndim != 2:
        raise TilingError("tessellate_2d is for 2-D stencils")
    values = np.asarray(values, dtype=np.float64)
    ny, nx = values.shape
    r = max(spec.radius)
    by, bx = int(tile[0]), int(tile[1])
    if by <= 0 or ny % by or bx <= 0 or nx % bx:
        raise TilingError(
            f"tile {tile} must positively divide the grid {values.shape}"
        )
    max_depth = min(by, bx) // (2 * r)
    tb = max_depth if time_depth is None else int(time_depth)
    tessellation_plan(spec, (by, bx), tb)
    if tb < 1:
        raise TilingError(f"tile {tile} too narrow for radius {r}")

    y_tiles = [(a, a + by) for a in range(0, ny, by)]
    x_tiles = [(a, a + bx) for a in range(0, nx, bx)]
    y_seams = [a for a, _ in y_tiles]
    x_seams = [a for a, _ in x_tiles]

    cur = values.copy()
    block_no = 0
    remaining = steps
    while remaining > 0:
        depth = min(tb, remaining)
        levels = [cur] + [np.empty((ny, nx)) for _ in range(depth)]

        def sweep(regions_of_t) -> int:
            count = 0
            for t in range(1, depth + 1):
                for yr, xr in regions_of_t(t):
                    _apply_rect_periodic(spec, levels[t - 1], levels[t],
                                         yr, xr)
                    count += 1
            return count

        n1 = sweep(lambda t: [
            ((ay + r * t, byy - r * t), (ax + r * t, bxx - r * t))
            for ay, byy in y_tiles for ax, bxx in x_tiles
        ])
        if on_phase is not None:
            on_phase(block_no, 0, n1)
        n2 = sweep(lambda t: [
            ((cy - r * t, cy + r * t), (ax + r * t, bxx - r * t))
            for cy in y_seams for ax, bxx in x_tiles
        ])
        if on_phase is not None:
            on_phase(block_no, 1, n2)
        n3 = sweep(lambda t: [
            ((ay + r * t, byy - r * t), (cx - r * t, cx + r * t))
            for ay, byy in y_tiles for cx in x_seams
        ])
        if on_phase is not None:
            on_phase(block_no, 2, n3)
        n4 = sweep(lambda t: [
            ((cy - r * t, cy + r * t), (cx - r * t, cx + r * t))
            for cy in y_seams for cx in x_seams
        ])
        if on_phase is not None:
            on_phase(block_no, 3, n4)

        cur = levels[depth]
        remaining -= depth
        block_no += 1
    return cur


def tessellate_grid_2d(spec: StencilSpec, grid: Grid, steps: int, *,
                       tile: Tuple[int, int],
                       time_depth: int | None = None) -> Grid:
    """Grid-level wrapper around :func:`tessellate_2d`."""
    out = grid.like()
    out.interior[...] = tessellate_2d(
        spec, grid.interior, steps, tile=tile, time_depth=time_depth
    )
    return out


# ---------------------------------------------------------------------------
# exact N-D execution (the generic 2^d-phase engine)
# ---------------------------------------------------------------------------

def _apply_box_periodic(
    spec: StencilSpec,
    src: np.ndarray,
    dst: np.ndarray,
    ranges: Sequence[Tuple[int, int]],
) -> None:
    """dst = stencil(src) over the (possibly wrapping) hyper-rectangle
    given by per-axis ``[lo, hi)`` ranges, indices modulo the extents."""
    if any(hi <= lo for lo, hi in ranges):
        return
    idx = [np.arange(lo, hi) for lo, hi in ranges]
    acc = np.zeros(tuple(len(i) for i in idx))
    shape = src.shape
    for off, c in zip(spec.offsets, spec.coeffs):
        gather = tuple((ix + o) % n for ix, o, n in zip(idx, off, shape))
        acc += c * src[np.ix_(*gather)]
    dst[np.ix_(*(ix % n for ix, n in zip(idx, shape)))] = acc


def tessellate_nd(
    spec: StencilSpec,
    values: np.ndarray,
    steps: int,
    *,
    tile: Sequence[int],
    time_depth: int | None = None,
    on_phase: Callable[[int, int, int], None] | None = None,
    pool=None,
) -> np.ndarray:
    """Periodic Jacobi steps with the generic ``2^d``-phase tessellating
    tiling — the N-dimensional form of [Yuan et al., SC'17].

    Each phase is identified by the set ``S`` of *seam axes*: per axis the
    level-``t`` ranges are the shrinking tile cores
    ``[a + r·t, a+B - r·t)`` (axis not in ``S``) or the expanding seam
    bands ``[c - r·t, c + r·t)`` around each tile boundary (axis in
    ``S``); a phase's regions are the cross products.  Per level the
    ``2^d`` families partition the space exactly (no redundant
    computation), regions within a phase touch disjoint data (parallel
    phase), and processing phases in order of ``|S|`` satisfies every
    dependency: a point's ``r``-neighbourhood decomposes per axis into
    same-or-core roles, i.e. into phases with seam-set ``⊆ S`` — already
    complete — or the same phase at the previous level.  Validity needs
    ``2·r_a·Tb <= tile_a`` per axis (checked).

    ``on_phase(block, phase_index, region_count)`` reports progress;
    phases are indexed by the seam-set's bitmask (axis ``a`` seams ⇔ bit
    ``a``), so phase 0 is the core phase.

    ``pool`` (any executor with ``map``, e.g.
    ``concurrent.futures.ThreadPoolExecutor``) fans the regions of each
    (phase, level) out concurrently — they touch disjoint data, which is
    precisely the parallelism tessellating tiling was designed for.
    """
    values = np.asarray(values, dtype=np.float64)
    ndim = spec.ndim
    if values.ndim != ndim:
        raise TilingError(
            f"values rank {values.ndim} != stencil ndim {ndim}"
        )
    shape = values.shape
    tile = tuple(int(t) for t in tile)
    if len(tile) != ndim:
        raise TilingError(f"tile rank {len(tile)} != stencil ndim {ndim}")
    radius = spec.radius
    for n, b in zip(shape, tile):
        if b <= 0 or n % b:
            raise TilingError(
                f"tile {tile} must positively divide the grid {shape}"
            )
    caps = [
        b // (2 * r) if r else steps or 1
        for b, r in zip(tile, radius)
    ]
    tb = min(caps) if time_depth is None else int(time_depth)
    if tb < 1:
        raise TilingError(f"tile {tile} too narrow for radius {radius}")
    tessellation_plan(spec, tile, tb)

    axis_tiles = [
        [(a, a + b) for a in range(0, n, b)]
        for n, b in zip(shape, tile)
    ]
    axis_seams = [[a for a, _ in tiles] for tiles in axis_tiles]

    cur = values.copy()
    block_no = 0
    remaining = steps
    while remaining > 0:
        depth = min(tb, remaining)
        levels = [cur] + [np.empty(shape) for _ in range(depth)]
        for mask in range(1 << ndim):
            count = 0
            for t in range(1, depth + 1):
                per_axis: List[List[Tuple[int, int]]] = []
                for axis in range(ndim):
                    r = radius[axis]
                    if mask >> axis & 1:
                        per_axis.append([
                            (c - r * t, c + r * t)
                            for c in axis_seams[axis]
                        ])
                    else:
                        per_axis.append([
                            (a + r * t, b - r * t)
                            for a, b in axis_tiles[axis]
                        ])
                regions = list(itertools.product(*per_axis))
                if pool is not None and len(regions) > 1:
                    # regions of one (phase, level) touch disjoint data
                    list(pool.map(
                        lambda rr: _apply_box_periodic(
                            spec, levels[t - 1], levels[t], rr),
                        regions,
                    ))
                else:
                    for ranges in regions:
                        _apply_box_periodic(spec, levels[t - 1],
                                            levels[t], ranges)
                count += len(regions)
            if on_phase is not None:
                on_phase(block_no, mask, count)
        cur = levels[depth]
        remaining -= depth
        block_no += 1
    return cur


def tessellate_grid(spec: StencilSpec, grid: Grid, steps: int, *,
                    tile: Sequence[int],
                    time_depth: int | None = None) -> Grid:
    """Grid-level wrapper around :func:`tessellate_nd` (any dimension)."""
    out = grid.like()
    out.interior[...] = tessellate_nd(
        spec, grid.interior, steps, tile=tile, time_depth=time_depth
    )
    return out
