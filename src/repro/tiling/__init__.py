"""Cache tiling substrates.

* :mod:`repro.tiling.blocks` — hyper-rectangular spatial blocking
  (Table 3's blocking sizes) with working-set accounting for the cache
  model;
* :mod:`repro.tiling.tessellate` — tessellating tiling [Yuan et al.
  SC'17], the time-tiling scheme the paper pairs Jigsaw with (§4.4): exact
  executable 1-D (two phases: triangles + inverted triangles) and 2-D
  (four phases: cores, seam wedges, corners) implementations with no
  redundant computation, plus the phase/traffic accounting used for N-D
  cost modelling;
* :mod:`repro.tiling.schedule` — tile schedules consumed by the parallel
  executor and the multicore model.
"""

from .blocks import BlockPartition, Tile, partition, tile_working_set
from .tessellate import (
    TessellationPlan,
    tessellate_1d,
    tessellate_2d,
    tessellate_grid,
    tessellate_nd,
    tessellation_plan,
)
from .schedule import TileSchedule, build_schedule

__all__ = [
    "BlockPartition",
    "Tile",
    "partition",
    "tile_working_set",
    "TessellationPlan",
    "tessellate_1d",
    "tessellate_2d",
    "tessellate_grid",
    "tessellate_nd",
    "tessellation_plan",
    "TileSchedule",
    "build_schedule",
]
