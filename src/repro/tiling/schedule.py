"""Tile schedules: which tiles run concurrently, in how many phases.

A :class:`TileSchedule` is the contract between the tiling layer and both
consumers: the real thread-pool executor (:mod:`repro.parallel.executor`)
runs each phase's tiles concurrently with a barrier between phases, and
the multicore model (:mod:`repro.parallel.simulator`) charges one sync per
phase per time block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import TilingError
from ..stencils.spec import StencilSpec
from .blocks import BlockPartition, Tile, partition


@dataclass(frozen=True)
class TileSchedule:
    """Phases of dependence-free tiles covering one (time-blocked) sweep."""

    phases: Tuple[Tuple[Tile, ...], ...]
    time_depth: int

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    @property
    def n_tiles(self) -> int:
        return sum(len(p) for p in self.phases)

    def max_parallelism(self) -> int:
        return max((len(p) for p in self.phases), default=0)

    def all_tiles(self) -> List[Tile]:
        return [t for phase in self.phases for t in phase]


def build_schedule(
    shape: Sequence[int],
    tile_shape: Sequence[int],
    *,
    spec: StencilSpec | None = None,
    time_depth: int = 1,
) -> TileSchedule:
    """A schedule over ``shape``.

    With ``time_depth == 1`` (pure spatial blocking of a Jacobi sweep,
    in/out arrays distinct) every tile is independent: one phase.  With
    deeper time blocks the tessellation needs ``2^d`` phases; tiles are
    split checkerboard-style by tile-index parity, which over-approximates
    the tessellated geometry but preserves its phase count and parallelism
    for modelling and for redundant-halo execution.
    """
    if time_depth < 1:
        raise TilingError("time_depth must be >= 1")
    part: BlockPartition = partition(shape, tile_shape)
    if time_depth == 1:
        return TileSchedule(phases=(part.tiles,), time_depth=1)
    ndim = len(part.shape)
    buckets: List[List[Tile]] = [[] for _ in range(2 ** ndim)]
    for tile in part:
        key = 0
        for axis, (a, t) in enumerate(zip(tile.start, part.tile_shape)):
            key |= ((a // t) % 2) << axis
        buckets[key].append(tile)
    phases = tuple(tuple(b) for b in buckets if b)
    return TileSchedule(phases=phases, time_depth=time_depth)
