"""Hyper-rectangular spatial blocking.

Splits an interior iteration space into tiles (the paper's Table-3
"Blocking Size" column), with exact-partition guarantees and working-set
accounting for the cache model: a tile's sweep working set is the tile
plus its stencil halo, for the input and output arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, List, Sequence, Tuple

from ..errors import TilingError
from ..stencils.spec import StencilSpec


@dataclass(frozen=True)
class Tile:
    """One tile: per-axis ``[start, stop)`` in interior coordinates."""

    start: Tuple[int, ...]
    stop: Tuple[int, ...]

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(b - a for a, b in zip(self.start, self.stop))

    @property
    def points(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def slices(self, halo: Sequence[int] | None = None) -> Tuple[slice, ...]:
        """Numpy slices into a padded array (halo offsets added)."""
        halo = tuple(halo) if halo is not None else (0,) * len(self.start)
        return tuple(
            slice(h + a, h + b)
            for h, a, b in zip(halo, self.start, self.stop)
        )


@dataclass(frozen=True)
class BlockPartition:
    shape: Tuple[int, ...]
    tile_shape: Tuple[int, ...]
    tiles: Tuple[Tile, ...]

    def __iter__(self) -> Iterator[Tile]:
        return iter(self.tiles)

    def __len__(self) -> int:
        return len(self.tiles)

    @property
    def covers_exactly(self) -> bool:
        return sum(t.points for t in self.tiles) == _prod(self.shape)


def _prod(xs: Sequence[int]) -> int:
    n = 1
    for x in xs:
        n *= x
    return n


def partition(shape: Sequence[int], tile_shape: Sequence[int]) -> BlockPartition:
    """Tile ``shape`` with ``tile_shape`` blocks (edge tiles clipped).

    The result is an exact partition: every interior point belongs to
    exactly one tile.
    """
    shape = tuple(int(s) for s in shape)
    tile_shape = tuple(int(t) for t in tile_shape)
    if len(tile_shape) != len(shape):
        raise TilingError(
            f"tile rank {len(tile_shape)} != space rank {len(shape)}"
        )
    if any(s <= 0 for s in shape) or any(t <= 0 for t in tile_shape):
        raise TilingError("shape and tile extents must be positive")
    axes_starts: List[range] = [
        range(0, s, t) for s, t in zip(shape, tile_shape)
    ]
    tiles = []
    for starts in product(*axes_starts):
        stop = tuple(
            min(a + t, s) for a, t, s in zip(starts, tile_shape, shape)
        )
        tiles.append(Tile(start=tuple(starts), stop=stop))
    return BlockPartition(shape=shape, tile_shape=tile_shape,
                          tiles=tuple(tiles))


def tile_working_set(
    tile_shape: Sequence[int],
    spec: StencilSpec,
    *,
    element_bytes: int = 8,
    arrays: int = 2,
    time_depth: int = 1,
) -> int:
    """Bytes a tile's sweep keeps live: tile + stencil halo (scaled by the
    time-tiling depth for trapezoid/tessellated blocks), for ``arrays``
    buffers."""
    if time_depth < 1:
        raise TilingError("time_depth must be >= 1")
    r = spec.radius
    if len(tile_shape) != spec.ndim:
        raise TilingError(
            f"tile rank {len(tile_shape)} != stencil ndim {spec.ndim}"
        )
    padded = _prod(
        int(t) + 2 * ra * time_depth for t, ra in zip(tile_shape, r)
    )
    return padded * element_bytes * arrays
