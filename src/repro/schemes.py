"""The scheme registry: one place that knows how to lower every
vectorization scheme the paper evaluates.

Names follow the paper's figures:

========== ====================================================
``auto``     Multiple Loads / compiler auto-vectorization
``reorg``    Multiple Permutations / Data Reorganization
``folding``  Folding [SC'21]
``tess``     Tessellation in-core scheme [ICPP'19]
``jigsaw``   LBV + SDF (spatial-only Jigsaw, §4.3's "Jigsaw")
``t-jigsaw`` LBV + SDF + ITM(auto depth) ("T-Jigsaw")
``t4-jigsaw``LBV + SDF + 4-step ITM (Figure 6 / "T-4 Jigsaw";
             1-D kernels only)
``lbv``      LBV without SDF (Figure-7 ablation rung)
``temporal`` Vertical time fusion in registers (Yuan et al.)
``redundancy`` Data-reorg redundancy elimination (Li et al.)
========== ====================================================

:func:`model_program` lowers a scheme against a small model grid with the
right halo/divisibility, which is all the analytic cost model needs (the
body instruction mix is grid-size independent).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from .config import MachineConfig
from .core.jigsaw import generate_jigsaw
from .core.jigsaw import required_halo as jigsaw_halo
from .core.planner import auto_fusion, plan
from .core.sdf import rows_as_terms
from .errors import VectorizeError
from .machine.perfmodel import KernelCost, PerformanceModel
from .stencils.grid import Grid
from .stencils.spec import StencilSpec
from .vectorize.folding import generate_folding
from .vectorize.folding import required_halo as folding_halo
from .vectorize.multiple_loads import generate_multiple_loads
from .vectorize.multiple_perms import generate_multiple_perms
from .vectorize.multiple_perms import required_halo as perms_halo
from .vectorize.program import VectorProgram
from .vectorize.redundancy import generate_redundancy_elim
from .vectorize.redundancy import required_halo as redundancy_halo
from .vectorize.temporal import default_fusion as temporal_default_fusion
from .vectorize.temporal import generate_temporal
from .vectorize.temporal import required_halo as temporal_halo
from .vectorize.tessellation import generate_tessellation

SCHEMES: Tuple[str, ...] = (
    "auto", "reorg", "folding", "tess", "lbv", "jigsaw", "t-jigsaw",
    "t4-jigsaw", "temporal", "redundancy",
)

#: display names used in tables/figures
LABELS: Dict[str, str] = {
    "auto": "Auto (Multiple Loads)",
    "reorg": "Reorg (Multiple Perms)",
    "folding": "Folding",
    "tess": "Tessellation",
    "lbv": "Jigsaw (LBV only)",
    "jigsaw": "Jigsaw",
    "t-jigsaw": "T-Jigsaw",
    "t4-jigsaw": "T-4 Jigsaw",
    "temporal": "Temporal (Vertical Fusion)",
    "redundancy": "Redundancy Elim",
}


def scheme_halo(scheme: str, spec: StencilSpec, machine: MachineConfig,
                *, time_fusion: Optional[int] = None) -> Tuple[int, ...]:
    """Halo ``scheme`` needs on ``machine``.  ``time_fusion`` applies to
    ``temporal`` only (``None`` = the registry default depth)."""
    if scheme == "folding":
        return folding_halo(spec, machine)
    if scheme in ("auto", "reorg", "tess"):
        return perms_halo(spec, machine)
    if scheme == "redundancy":
        return redundancy_halo(spec, machine)
    if scheme == "temporal":
        s = (temporal_default_fusion(spec, machine)
             if time_fusion is None else time_fusion)
        return temporal_halo(spec, machine, time_fusion=s)
    fusion = _fusion_depth(scheme, spec, machine)
    return jigsaw_halo(spec, machine, time_fusion=fusion)


def scheme_block(scheme: str, machine: MachineConfig) -> int:
    w = machine.vector_elems
    if scheme == "folding":
        return w * w
    if scheme in ("auto", "reorg", "tess", "temporal", "redundancy"):
        return w
    return 2 * w


def _fusion_depth(scheme: str, spec: StencilSpec,
                  machine: MachineConfig) -> int:
    if scheme == "t-jigsaw":
        return auto_fusion(spec, machine)
    if scheme == "t4-jigsaw":
        if spec.ndim != 1:
            raise VectorizeError("t4-jigsaw applies to 1-D kernels only (§4.4)")
        return 4
    return 1


def model_grid(scheme: str, spec: StencilSpec, machine: MachineConfig,
               *, seed: Optional[int] = None,
               time_fusion: Optional[int] = None) -> Grid:
    """A small grid with valid halo/divisibility for lowering ``scheme``
    (x extent covers several blocks so sliding-window reuse is exercised)."""
    block = scheme_block(scheme, machine)
    nx = 3 * max(block, 16)
    shape = (4,) * (spec.ndim - 1) + (nx,)
    halo = scheme_halo(scheme, spec, machine, time_fusion=time_fusion)
    if seed is None:
        return Grid(shape, halo)
    return Grid.random(shape, halo, seed=seed)


def generate(scheme: str, spec: StencilSpec, machine: MachineConfig,
             grid: Grid, *, time_fusion: Optional[int] = None) -> VectorProgram:
    """Lower ``scheme`` for ``spec`` against ``grid``.  ``time_fusion``
    selects the vertical fusion depth for ``temporal`` (``None`` = the
    registry default); other schemes pick their own depth."""
    if scheme == "auto":
        return generate_multiple_loads(spec, machine, grid)
    if scheme == "reorg":
        return generate_multiple_perms(spec, machine, grid)
    if scheme == "folding":
        return generate_folding(spec, machine, grid)
    if scheme == "tess":
        return generate_tessellation(spec, machine, grid)
    if scheme == "temporal":
        return generate_temporal(spec, machine, grid, time_fusion=time_fusion)
    if scheme == "redundancy":
        return generate_redundancy_elim(spec, machine, grid)
    if scheme == "lbv":
        return generate_jigsaw(spec, machine, grid,
                               terms=rows_as_terms(spec),
                               scheme="jigsaw-lbv-only")
    if scheme in ("jigsaw", "t-jigsaw", "t4-jigsaw"):
        fusion = _fusion_depth(scheme, spec, machine)
        p = plan(spec, machine, time_fusion=fusion)
        return generate_jigsaw(spec, machine, grid, time_fusion=fusion,
                               terms=p.terms, scheme=p.scheme)
    raise VectorizeError(f"unknown scheme {scheme!r}; known: {SCHEMES}")


def model_program(scheme: str, spec: StencilSpec, machine: MachineConfig,
                  *, time_fusion: Optional[int] = None) -> VectorProgram:
    """Lower against a model grid (instruction mix only)."""
    grid = model_grid(scheme, spec, machine, time_fusion=time_fusion)
    return generate(scheme, spec, machine, grid, time_fusion=time_fusion)


def model_cost(scheme: str, spec: StencilSpec, machine: MachineConfig,
               *, time_fusion: Optional[int] = None) -> KernelCost:
    """The scheme's :class:`~repro.machine.perfmodel.KernelCost` for
    ``spec`` on ``machine``."""
    program = model_program(scheme, spec, machine, time_fusion=time_fusion)
    return PerformanceModel(machine).kernel_cost(program)
