"""The shard runner: superstep loop, dispatch, checkpoint/restart.

:class:`ShardRunner` owns a persistent worker pool (thread or pinned
spawn-safe process pool) and drives the deep-halo schedule: per
superstep it gathers every shard's padded window from the authoritative
grid (:mod:`repro.shard.exchange`), dispatches the windows to
:func:`~repro.shard.worker.run_shard_task`, scatters the returned slabs
into the output buffer, and swaps.  The swap is the synchronization
barrier *and* the recovery checkpoint — exactly the phase-barrier role
:func:`~repro.parallel.executor.run_parallel` plays for tiles:

* a task that fails with a :class:`~repro.errors.ReproError` (injected
  faults included) is recomputed in the parent from the same window —
  idempotent, because windows are private copies and slabs land in
  disjoint output slices;
* a killed worker (``BrokenProcessPool``) triggers a pool restart with
  the unfinished shards regathered and resubmitted, up to
  ``pool_restarts`` times; past the budget the parent degrades to
  computing stragglers itself;
* a faulted *gather* (``shard.exchange``) is retried against the
  authoritative grid, which the superstep never mutates.

Every recovery path replays the same arithmetic on the same inputs, so
faulted runs stay bitwise identical to clean ones — the property
``repro chaos`` gates.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Tuple

import numpy as np

from .. import faults, obs
from ..errors import ReproError, TilingError
from ..parallel.executor import BACKENDS, _PoolBox
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from .exchange import gather_window, scatter_slab, window_bytes
from .plan import ShardBounds, ShardPlan, make_shard_plan
from .worker import KernelRecipe, ShardJob, run_shard_task


class ShardRunner:
    """Reusable sharded executor for one ``(spec, shards, s)`` setup.

    Construct once, call :meth:`run` many times: the worker pool (and,
    for the program engine, each worker's compiled local program)
    persists across runs, so repeated sweeps pay the pool spin-up and
    per-window compilation once.  Use as a context manager or call
    :meth:`close`.
    """

    def __init__(
        self,
        spec: StencilSpec,
        *,
        shards: int,
        temporal_block: int = 1,
        executor: str = "thread",
        workers: Optional[int] = None,
        recipe: Optional[KernelRecipe] = None,
        exec_backend: str = "auto",
        retries: int = 2,
        pool_restarts: int = 2,
    ) -> None:
        if shards < 1:
            raise TilingError("shards must be >= 1")
        if temporal_block < 1:
            raise TilingError("temporal_block must be >= 1")
        if executor not in BACKENDS:
            raise TilingError(
                f"unknown executor backend {executor!r}; known: {BACKENDS}")
        if workers is not None and workers < 1:
            raise TilingError("workers must be >= 1")
        if retries < 0:
            raise TilingError("retries must be >= 0")
        if pool_restarts < 0:
            raise TilingError("pool_restarts must be >= 0")
        if recipe is not None:
            if spec.ndim < 2:
                raise TilingError(
                    "the program engine shards the outer axis of a >= 2-D "
                    "kernel; 1-D kernels shard on the reference engine only")
            if temporal_block % recipe.time_fusion:
                raise TilingError(
                    f"temporal_block={temporal_block} must be a multiple of "
                    f"the plan's fused depth {recipe.time_fusion}")
        self.spec = spec
        self.shards = shards
        self.temporal_block = temporal_block
        self.executor = executor
        self.workers = min(shards, workers) if workers else shards
        self.recipe = recipe
        self.exec_backend = exec_backend
        self.retries = retries
        self.pool_restarts = pool_restarts
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._pool_box: Optional[_PoolBox] = None

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        if self._thread_pool is not None:
            self._thread_pool.shutdown()
            self._thread_pool = None
        if self._pool_box is not None:
            self._pool_box.shutdown()
            self._pool_box = None

    def __enter__(self) -> "ShardRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution -----------------------------------------------------------
    def run(self, grid: Grid, steps: int, *, boundary: str = "periodic",
            value: float = 0.0) -> Grid:
        """``steps`` sweeps of the sharded schedule; returns a new grid
        whose interior is bitwise identical to the unsharded engine's."""
        if steps < 0:
            raise TilingError("steps must be non-negative")
        tf = self.recipe.time_fusion if self.recipe is not None else 1
        if steps % tf:
            raise TilingError(
                f"steps={steps} not a multiple of the fused depth {tf}")
        if tf > 1 and boundary != "periodic":
            raise TilingError(
                "temporally merged programs are exact only with periodic "
                "boundaries; use time_fusion=1 for dirichlet shards")
        plan = make_shard_plan(self.spec, grid.shape, shards=self.shards,
                               temporal_block=self.temporal_block,
                               boundary=boundary)
        if steps == 0:
            return grid.copy()
        inner_points = 1
        for n in grid.shape[1:]:
            inner_points *= n
        observing = obs.enabled()
        cur = grid.copy()
        nxt = grid.like()
        restarts_left = self.pool_restarts
        for step_idx, s_eff in enumerate(plan.supersteps(steps)):
            with obs.span("shard.superstep", step=step_idx,
                          sub_steps=s_eff, shards=plan.shards):
                tasks = self._gather_all(cur, plan, s_eff,
                                         boundary=boundary, value=value)
                if self.executor == "process":
                    restarts_left = self._dispatch_process(
                        tasks, nxt, restarts_left)
                else:
                    self._dispatch_thread(tasks, nxt)
            if observing:
                obs.counter("shard.supersteps").inc()
                obs.counter("shard.redundant_points").inc(
                    plan.redundant_rows(
                        s_eff, full_interior=self.recipe is not None)
                    * inner_points)
            cur, nxt = nxt, cur
        return cur

    # -- exchange ------------------------------------------------------------
    def _gather_all(self, cur: Grid, plan: ShardPlan, s_eff: int, *,
                    boundary: str, value: float
                    ) -> List[Tuple[ShardBounds, ShardJob, np.ndarray]]:
        tasks = []
        for i in range(plan.shards):
            b = plan.bounds(i, s_eff)
            payload = self._gather(cur, plan, b)
            job = ShardJob(index=i, s_eff=s_eff,
                           lo_pad=b.lo_pad, hi_pad=b.hi_pad,
                           lo_edge=b.lo_edge, hi_edge=b.hi_edge,
                           boundary=boundary, value=value,
                           recipe=self.recipe,
                           exec_backend=self.exec_backend)
            tasks.append((b, job, payload))
        return tasks

    def _gather(self, cur: Grid, plan: ShardPlan,
                b: ShardBounds) -> np.ndarray:
        """One window gather with a bounded retry against the (immutable
        within the superstep) authoritative grid."""
        last: Optional[ReproError] = None
        for _ in range(self.retries + 1):
            try:
                with obs.span("shard.exchange", shard=b.slab.index):
                    payload = gather_window(cur, plan, b)
            except faults.FaultInjected as exc:
                last = exc
                obs.counter("shard.exchange_retries").inc()
                continue
            if obs.enabled():
                obs.counter("shard.exchange_bytes").inc(
                    window_bytes(b, cur))
            return payload
        raise last

    # -- dispatch ------------------------------------------------------------
    def _recompute(self, job: ShardJob, payload: np.ndarray) -> np.ndarray:
        """Serial in-parent recomputation of a failed shard task, with a
        bounded retry budget (mirrors the tile executor's ``_retry_tile``)."""
        obs.counter("shard.task_retries").inc()
        last: Optional[ReproError] = None
        for _ in range(self.retries + 1):
            try:
                return run_shard_task((self.spec, job, payload, ()))
            except ReproError as exc:
                last = exc
        raise last

    def _dispatch_thread(self, tasks, nxt: Grid) -> None:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(max_workers=self.workers)

        def task(job: ShardJob, payload: np.ndarray) -> np.ndarray:
            faults.fault_point("pool.task_start")
            return run_shard_task((self.spec, job, payload, ()))

        futures = [(self._thread_pool.submit(task, job, payload), b, job,
                    payload) for b, job, payload in tasks]
        failed = []
        for fut, b, job, payload in futures:
            try:
                patch = fut.result()
            except ReproError:
                failed.append((b, job, payload))
            else:
                scatter_slab(nxt, b, patch)
        for b, job, payload in failed:
            scatter_slab(nxt, b, self._recompute(job, payload))

    @staticmethod
    def _decide_task_faults(inj) -> Tuple[faults.FaultAction, ...]:
        """Consume this task's ``pool.task_start`` hit in the parent (the
        deterministic stand-in for the worker-side call; see
        :mod:`repro.faults.injector`)."""
        if inj is None:
            return ()
        action = inj.decide("pool.task_start")
        return (action,) if action is not None else ()

    def _dispatch_process(self, tasks, nxt: Grid, restarts_left: int) -> int:
        """One superstep on the process pool; returns the remaining
        restart budget (negative = degraded to the parent for the rest
        of the run).  Loops until every shard's slab has landed."""
        if restarts_left < 0:
            for b, job, payload in tasks:
                scatter_slab(nxt, b, self._recompute(job, payload))
            return restarts_left
        if self._pool_box is None:
            self._pool_box = _PoolBox(self.workers)
        pending = list(tasks)
        while pending:
            inj = faults.active()
            futures = []
            unsubmitted = []
            try:
                for b, job, payload in pending:
                    futures.append((self._pool_box.pool.submit(
                        run_shard_task,
                        (self.spec, job, payload,
                         self._decide_task_faults(inj))), b, job, payload))
            except BrokenProcessPool:
                unsubmitted = pending[len(futures):]
            still_pending = list(unsubmitted)
            broken = bool(unsubmitted)
            for fut, b, job, payload in futures:
                try:
                    patch = fut.result()
                except faults.FaultInjected:
                    # the worker replayed a raise-style fault: recompute
                    # here from the same (still checkpointed) window
                    scatter_slab(nxt, b, self._recompute(job, payload))
                except BrokenProcessPool:
                    broken = True
                    still_pending.append((b, job, payload))
                else:
                    scatter_slab(nxt, b, patch)
            pending = still_pending
            if broken and pending:
                obs.counter("shard.pool_restarts").inc()
                obs.counter("parallel.fallback.reason.worker_lost").inc()
                if restarts_left > 0:
                    restarts_left -= 1
                    self._pool_box.restart()
                else:
                    restarts_left = -1
                    for b, job, payload in pending:
                        scatter_slab(nxt, b, self._recompute(job, payload))
                    pending = []
        return restarts_left


def run_sharded(
    spec: StencilSpec,
    grid: Grid,
    steps: int,
    *,
    shards: int,
    temporal_block: int = 1,
    executor: str = "thread",
    workers: Optional[int] = None,
    boundary: str = "periodic",
    value: float = 0.0,
    recipe: Optional[KernelRecipe] = None,
    exec_backend: str = "auto",
    retries: int = 2,
    pool_restarts: int = 2,
) -> Grid:
    """One-shot convenience wrapper: build a :class:`ShardRunner`, run,
    tear the pool down.  For repeated runs hold a runner instead."""
    with ShardRunner(spec, shards=shards, temporal_block=temporal_block,
                     executor=executor, workers=workers, recipe=recipe,
                     exec_backend=exec_backend, retries=retries,
                     pool_restarts=pool_restarts) as runner:
        return runner.run(grid, steps, boundary=boundary, value=value)
