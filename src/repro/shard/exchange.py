"""The halo-exchange protocol: gather windows, scatter slabs.

The parent holds the authoritative grid at every superstep barrier, so
an "exchange" is parent-mediated: :func:`gather_window` cuts one shard's
local window — its slab plus ``r0*s`` context rows per side — out of the
authoritative interior (wrapping around the domain under periodic
boundaries, clipping to it under dirichlet), and :func:`scatter_slab`
writes the returned slab back.  Because the parent never hands out live
views of rows another shard writes, shards cannot race, and because the
authoritative grid survives the superstep, any failed or killed shard
can be regathered and recomputed bitwise identically — the checkpoint
that backs the restart story in :mod:`repro.shard.runner`.

``shard.exchange`` is the gather's fault site (one hit per shard per
superstep): an injected raise models a lost exchange message, and the
runner's bounded regather retry is the recovery path chaos verifies.
"""

from __future__ import annotations

import numpy as np

from .. import faults
from ..stencils.grid import Grid
from .plan import ShardBounds, ShardPlan


def gather_window(grid: Grid, plan: ShardPlan,
                  bounds: ShardBounds) -> np.ndarray:
    """One shard's local window, copied out of the authoritative
    interior (full inner-axis rows; the outer axis spans the padded
    window).  The copy *is* the exchange message: workers never alias
    the parent's buffers."""
    faults.fault_point("shard.exchange")
    interior = grid.interior
    lo = bounds.slab.start - bounds.lo_pad
    hi = bounds.slab.stop + bounds.hi_pad
    if plan.boundary == "periodic" and (lo < 0 or hi > plan.extent):
        idx = np.arange(lo, hi) % plan.extent
        return interior[idx]  # fancy indexing copies
    return np.array(interior[lo:hi], copy=True, order="C")


def scatter_slab(grid: Grid, bounds: ShardBounds,
                 patch: np.ndarray) -> None:
    """Land one shard's computed slab in the authoritative output grid
    (disjoint slices per shard, so scatter order cannot matter)."""
    grid.interior[bounds.slab.start:bounds.slab.stop] = patch


def window_bytes(bounds: ShardBounds, grid: Grid) -> int:
    """Exchanged context bytes for one gather: the pad rows only (the
    slab itself is the shard's own data, not exchange traffic)."""
    inner = 1
    for n in grid.shape[1:]:
        inner *= n
    return (bounds.lo_pad + bounds.hi_pad) * inner * grid.data.itemsize
