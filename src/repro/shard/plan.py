"""Shard geometry: slabs, deep halos, and the temporal-block contract.

A :class:`ShardPlan` fixes everything static about one sharded run: the
outer-axis partition (:func:`repro.parallel.topology.partition_axis`),
the outer radius ``r0`` the exchange depth derives from, and the
temporal block ``s``.  The deep-halo scheme is the classic ghost-zone
temporal blocking: each exchange ships ``pad = r0*s`` context rows per
side, so a shard can advance ``s`` sweeps before the next exchange —
trading redundant ghost-row recomputation (tracked by
:meth:`redundant_points`) for ``s``-fold fewer synchronizations, the
amortization the temporal-vectorization line of work builds on.

Validity bookkeeping (:meth:`local_geometry` / :meth:`margins`): a
gathered context row is exact at exchange time and loses one ``r0`` band
of validity per sub-step, so sub-step ``k`` computes the slab plus a
``r0*(s-k)`` collar — after ``s`` sub-steps exactly the slab is exact.
A side that coincides with a dirichlet domain edge is clipped to the
domain instead and refills its constant ghost every sub-step, so it
never loses validity (``margins`` returns 0 there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import TilingError
from ..parallel.topology import ShardSlab, partition_axis
from ..stencils.boundary import MODES
from ..stencils.spec import StencilSpec


@dataclass(frozen=True)
class ShardBounds:
    """One shard's local outer-axis window for one superstep.

    ``lo_pad``/``hi_pad`` are the in-domain context rows gathered below /
    above the slab; ``lo_edge``/``hi_edge`` mark sides that sit on a
    dirichlet domain edge (constant ghosts instead of neighbor data).
    """

    slab: ShardSlab
    lo_pad: int
    hi_pad: int
    lo_edge: bool
    hi_edge: bool

    @property
    def extent(self) -> int:
        """Local interior rows: pads + slab."""
        return self.lo_pad + self.slab.rows + self.hi_pad


@dataclass(frozen=True)
class ShardPlan:
    """The static geometry of one sharded run (see module docstring)."""

    shards: int
    temporal_block: int
    radius: int                      #: outer-axis stencil radius ``r0``
    extent: int                      #: global outer-axis interior extent
    boundary: str
    slabs: Tuple[ShardSlab, ...]

    @property
    def pad(self) -> int:
        """Exchange depth per side at the full temporal block."""
        return self.radius * self.temporal_block

    def pad_for(self, s_eff: int) -> int:
        """Exchange depth for a (possibly remainder) superstep of
        ``s_eff`` sub-steps."""
        return self.radius * s_eff

    def bounds(self, index: int, s_eff: int) -> ShardBounds:
        """Shard ``index``'s local window for one superstep.

        Periodic boundaries always gather the full ``pad`` (wrapping
        around the domain as needed); dirichlet clips the window to the
        domain and marks the clipped side as a constant-ghost edge.
        """
        slab = self.slabs[index]
        pad = self.pad_for(s_eff)
        if self.boundary == "periodic":
            return ShardBounds(slab=slab, lo_pad=pad, hi_pad=pad,
                               lo_edge=False, hi_edge=False)
        lo_pad = min(pad, slab.start)
        hi_pad = min(pad, self.extent - slab.stop)
        return ShardBounds(slab=slab, lo_pad=lo_pad, hi_pad=hi_pad,
                           lo_edge=lo_pad < pad, hi_edge=hi_pad < pad)

    def supersteps(self, steps: int) -> Tuple[int, ...]:
        """The superstep schedule for ``steps`` sweeps: full temporal
        blocks, then one remainder block."""
        if steps < 0:
            raise TilingError("steps must be non-negative")
        full, rem = divmod(steps, self.temporal_block)
        out = (self.temporal_block,) * full
        return out + ((rem,) if rem else ())

    # -- accounting ----------------------------------------------------------
    def exchange_rows(self, s_eff: int) -> int:
        """In-domain context rows gathered across all shards for one
        superstep (the exchange traffic, in rows)."""
        total = 0
        for i in range(self.shards):
            b = self.bounds(i, s_eff)
            total += b.lo_pad + b.hi_pad
        return total

    def redundant_rows(self, s_eff: int, *, full_interior: bool) -> int:
        """Ghost rows recomputed beyond the slabs during one superstep —
        the price of temporal blocking (Li et al.'s redundancy metric).

        ``full_interior=True`` models engines that sweep the whole local
        window every sub-step (the program engine); ``False`` models the
        shrinking-collar reference engine, which only computes rows still
        needed for later sub-steps.
        """
        total = 0
        for i in range(self.shards):
            b = self.bounds(i, s_eff)
            for k in range(1, s_eff + 1):
                if full_interior:
                    total += b.lo_pad + b.hi_pad
                    continue
                m_lo, m_hi = self.margins(b, k, s_eff)
                total += (b.lo_pad - m_lo) + (b.hi_pad - m_hi)
        return total

    def margins(self, b: ShardBounds, k: int, s_eff: int) -> Tuple[int, int]:
        """Rows of the local window sub-step ``k`` (1-based) skips from
        each side: ``r0*k`` on a neighbor-fed side (validity shrinks one
        radius per sub-step), 0 on a constant-ghost domain edge."""
        m_lo = 0 if b.lo_edge else b.lo_pad - self.radius * (s_eff - k)
        m_hi = 0 if b.hi_edge else b.hi_pad - self.radius * (s_eff - k)
        return (m_lo, m_hi)


def make_shard_plan(spec: StencilSpec, shape: Tuple[int, ...], *,
                    shards: int, temporal_block: int = 1,
                    boundary: str = "periodic") -> ShardPlan:
    """Build and validate the shard geometry for one workload."""
    if temporal_block < 1:
        raise TilingError("temporal_block must be >= 1")
    if boundary not in MODES:
        raise TilingError(
            f"unknown boundary mode {boundary!r}; known: {MODES}")
    if len(shape) != spec.ndim:
        raise TilingError(
            f"shape rank {len(shape)} != stencil ndim {spec.ndim}")
    extent = int(shape[0])
    slabs = partition_axis(extent, shards)
    return ShardPlan(shards=shards, temporal_block=temporal_block,
                     radius=spec.radius[0], extent=extent,
                     boundary=boundary, slabs=slabs)
