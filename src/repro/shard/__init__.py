"""Sharded multi-process execution with halo exchange and temporal
blocking.

The grid is partitioned into contiguous slabs along the outermost axis
(one per shard); each shard sweeps its slab privately — on the reference
tap order or the compiled codegen/batch/interp pipeline — and ghost rows
are exchanged at every synchronization point.  Temporal blocking widens
the exchanged halo to ``radius * s`` so ``s`` sweeps run per exchange,
amortizing synchronization the way the temporal-vectorization literature
amortizes data movement, at the cost of redundant ghost-row
recomputation the runner meters.

Entry points: ``run_parallel(..., shards=N, temporal_block=s)``,
:meth:`repro.core.kernel.CompiledKernel.run_sharded`,
``repro run --shards N --temporal-block s``, and the
:class:`ShardRunner` class for repeated runs over a warm pool.
"""

from .plan import ShardPlan, make_shard_plan
from .runner import ShardRunner, run_sharded
from .worker import KernelRecipe, ShardJob

__all__ = [
    "KernelRecipe",
    "ShardJob",
    "ShardPlan",
    "ShardRunner",
    "make_shard_plan",
    "run_sharded",
]
